//! Property-based tests over the core data structures and the
//! cross-system invariants.

use csi::core::config::{ConfigMap, MergePolicy};
use csi::core::sim::Sim;
use csi::core::value::{
    format_date, format_timestamp, parse_date, parse_timestamp, DataType, Decimal, StructField,
    Value,
};
use csi::hdfs::{HdfsPath, MiniHdfs};
use csi::kafka::{MiniKafka, PartitionId};
use miniformats::physical::{FileSchema, PhysicalType, PhysicalValue};
use minihive::metastore::StorageFormat;
use parking_lot::Mutex;
use proptest::prelude::*;
use std::sync::Arc;

// --- Strategies -----------------------------------------------------------

/// Values that every system and format represent identically ("portable").
fn portable_value() -> impl Strategy<Value = (DataType, Value)> {
    prop_oneof![
        any::<bool>().prop_map(|b| (DataType::Boolean, Value::Boolean(b))),
        any::<i32>().prop_map(|v| (DataType::Int, Value::Int(v))),
        any::<i64>().prop_map(|v| (DataType::Long, Value::Long(v))),
        any::<f64>().prop_map(|v| (DataType::Double, Value::Double(v))),
        "[a-zA-Z0-9 _.-]{0,24}".prop_map(|s| (DataType::String, Value::Str(s))),
        proptest::collection::vec(any::<u8>(), 0..48)
            .prop_map(|b| (DataType::Binary, Value::Binary(b))),
        (-100_000i32..100_000).prop_map(|d| (DataType::Date, Value::Date(d))),
    ]
}

fn physical_value() -> impl Strategy<Value = (PhysicalType, PhysicalValue)> {
    prop_oneof![
        any::<bool>().prop_map(|b| (PhysicalType::Bool, PhysicalValue::Bool(b))),
        any::<i8>().prop_map(|v| (PhysicalType::Int8, PhysicalValue::Int8(v))),
        any::<i16>().prop_map(|v| (PhysicalType::Int16, PhysicalValue::Int16(v))),
        any::<i32>().prop_map(|v| (PhysicalType::Int32, PhysicalValue::Int32(v))),
        any::<i64>().prop_map(|v| (PhysicalType::Int64, PhysicalValue::Int64(v))),
        any::<f32>().prop_map(|v| (PhysicalType::Float32, PhysicalValue::Float32(v))),
        any::<f64>().prop_map(|v| (PhysicalType::Float64, PhysicalValue::Float64(v))),
        "[\\PC]{0,16}".prop_map(|s| (PhysicalType::Utf8, PhysicalValue::Utf8(s))),
        proptest::collection::vec(any::<u8>(), 0..32)
            .prop_map(|b| (PhysicalType::Bytes, PhysicalValue::Bytes(b))),
        (any::<i64>(), 0u8..38).prop_map(|(u, s)| (
            PhysicalType::Decimal,
            PhysicalValue::Decimal {
                unscaled: u as i128,
                scale: s
            }
        )),
    ]
}

fn float_eq(a: &PhysicalValue, b: &PhysicalValue) -> bool {
    match (a, b) {
        (PhysicalValue::Float32(x), PhysicalValue::Float32(y)) => x.to_bits() == y.to_bits(),
        (PhysicalValue::Float64(x), PhysicalValue::Float64(y)) => x.to_bits() == y.to_bits(),
        _ => a == b,
    }
}

// --- Wire formats ----------------------------------------------------------

proptest! {
    #[test]
    fn wire_round_trip_preserves_rows(values in proptest::collection::vec(physical_value(), 1..12)) {
        let schema = FileSchema {
            columns: values
                .iter()
                .enumerate()
                .map(|(i, (ty, _))| miniformats::physical::PhysicalColumn {
                    name: format!("c{i}"),
                    ty: ty.clone(),
                    logical: None,
                })
                .collect(),
            meta: Default::default(),
        };
        let row: Vec<PhysicalValue> = values.into_iter().map(|(_, v)| v).collect();
        let bytes = miniformats::orc::encode(&schema, std::slice::from_ref(&row)).unwrap();
        let (back_schema, back_rows) = miniformats::orc::decode(&bytes).unwrap();
        prop_assert_eq!(back_schema, schema);
        prop_assert_eq!(back_rows.len(), 1);
        for (a, b) in back_rows[0].iter().zip(&row) {
            prop_assert!(float_eq(a, b), "{:?} != {:?}", a, b);
        }
    }

    #[test]
    fn decimal_parse_display_round_trips(unscaled in any::<i64>(), scale in 0u8..18) {
        let d = Decimal::new(unscaled as i128, 38, scale).unwrap();
        let back = Decimal::parse(&d.to_string()).unwrap();
        prop_assert!(Value::Decimal(d).canonical_eq(&Value::Decimal(back)));
    }

    #[test]
    fn date_format_parse_round_trips(days in -700_000i32..2_900_000) {
        let text = format_date(days);
        prop_assert_eq!(parse_date(&text), Some(days), "{}", text);
    }

    #[test]
    fn timestamp_format_parse_round_trips(us in -60_000_000_000_000_000i64..250_000_000_000_000_000) {
        let text = format_timestamp(us);
        prop_assert_eq!(parse_timestamp(&text), Some(us), "{}", text);
    }

    #[test]
    fn value_signature_is_stable_and_injective_enough(
        (ty, v) in portable_value(),
        (ty2, v2) in portable_value(),
    ) {
        prop_assert_eq!(v.signature(), v.clone().signature());
        if ty == ty2 && v.canonical_eq(&v2) {
            prop_assert_eq!(v.signature(), v2.signature());
        }
        let _ = (ty, ty2);
    }
}

// --- Spark/Hive serde layers ------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn spark_serde_round_trips_portable_values(
        items in proptest::collection::vec(portable_value(), 1..6),
        format_idx in 0usize..3,
    ) {
        let format = StorageFormat::ALL[format_idx];
        let schema: Vec<StructField> = items
            .iter()
            .enumerate()
            .map(|(i, (ty, _))| StructField::new(format!("c{i}"), ty.clone()))
            .collect();
        let row: Vec<Value> = items.into_iter().map(|(_, v)| v).collect();
        let config = csi::spark::SparkConfig::new();
        let bytes =
            csi::spark::serde_layer::write_file(format, &schema, std::slice::from_ref(&row), &config)
                .unwrap();
        let back =
            csi::spark::serde_layer::read_file(format, &schema, &bytes, &config).unwrap();
        prop_assert_eq!(back.len(), 1);
        for (a, b) in back[0].iter().zip(&row) {
            prop_assert!(a.canonical_eq(b), "{:?} != {:?}", a, b);
        }
    }

    #[test]
    fn hive_serde_round_trips_portable_values(
        items in proptest::collection::vec(portable_value(), 1..6),
        format_idx in 0usize..3,
    ) {
        let format = StorageFormat::ALL[format_idx];
        let columns: Vec<minihive::metastore::ColumnDef> = items
            .iter()
            .enumerate()
            .map(|(i, (ty, _))| minihive::metastore::ColumnDef {
                name: format!("c{i}"),
                hive_type: minihive::HiveType::from_data_type(ty).unwrap(),
            })
            .collect();
        let row: Vec<Value> = items.into_iter().map(|(_, v)| v).collect();
        let sink = csi::core::diag::DiagSink::new();
        let h = sink.handle("minihive");
        let bytes =
            minihive::serde_layer::write_file(format, &columns, std::slice::from_ref(&row), &h)
                .unwrap();
        let back = minihive::serde_layer::read_file(format, &columns, &bytes, &h).unwrap();
        for (a, b) in back[0].iter().zip(&row) {
            prop_assert!(a.canonical_eq(b), "{:?} != {:?}", a, b);
        }
    }

    #[test]
    fn cross_system_write_read_is_consistent_for_portable_values(
        (ty, v) in portable_value(),
    ) {
        // The core cross-system invariant: portable values survive every
        // interface pair unchanged — Spark-written files read identically
        // from Hive and vice versa (ORC path).
        use csi::cross_test::generator::{TestInput, Validity};
        use csi::cross_test::Campaign;
        // Skip sub-second NaN-ish strings that Hive renders differently.
        let inputs = vec![TestInput {
            id: 0,
            column_type: ty,
            value: v,
            validity: Validity::Valid,
            label: "prop".into(),
            expected_back: None,
        }];
        let outcome = Campaign::new(&inputs)
            .formats(vec![StorageFormat::Orc])
            .run();
        prop_assert!(
            outcome.report.raw_failures.is_empty(),
            "{:?}",
            outcome.report.raw_failures
        );
    }
}

// --- Substrates -------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn hdfs_create_read_round_trips(
        names in proptest::collection::vec("[a-z][a-z0-9]{0,8}", 1..4),
        data in proptest::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut fs = MiniHdfs::with_datanodes(3);
        let mut path = HdfsPath::root();
        for n in &names {
            path = path.join(n);
        }
        fs.create(&path, &data).unwrap();
        let read_back = fs.read(&path).unwrap();
        prop_assert_eq!(read_back.as_ref(), &data[..]);
        prop_assert_eq!(fs.get_file_status(&path).unwrap().len, data.len() as i64);
        // Rename preserves content.
        let dst = HdfsPath::root().join("renamed");
        fs.rename(&path, &dst).unwrap();
        let renamed = fs.read(&dst).unwrap();
        prop_assert_eq!(renamed.as_ref(), &data[..]);
        prop_assert!(!fs.exists(&path));
    }

    #[test]
    fn kafka_offsets_strictly_increase_and_compaction_keeps_latest(
        keys in proptest::collection::vec(0u8..5, 1..64),
    ) {
        let mut k = MiniKafka::new();
        k.create_topic("t", 1);
        for (i, key) in keys.iter().enumerate() {
            k.produce("t", PartitionId(0), Some(&[*key]), Some(&[i as u8]), 0).unwrap();
        }
        let batch = k.fetch("t", PartitionId(0), 0, usize::MAX).unwrap();
        prop_assert!(batch.records.windows(2).all(|w| w[0].offset < w[1].offset));
        k.compact("t", PartitionId(0)).unwrap();
        let compacted = k.fetch("t", PartitionId(0), 0, usize::MAX).unwrap();
        // Exactly one survivor per distinct key, and it is the latest write.
        let mut distinct: Vec<u8> = keys.clone();
        distinct.sort_unstable();
        distinct.dedup();
        prop_assert_eq!(compacted.records.len(), distinct.len());
        for r in &compacted.records {
            let key = r.key.as_ref().unwrap()[0];
            let last_index = keys.iter().rposition(|k| *k == key).unwrap();
            prop_assert_eq!(r.value.as_ref().unwrap()[0], last_index as u8);
        }
    }

    #[test]
    fn hbase_wal_recovery_preserves_every_write(
        ops in proptest::collection::vec((0u8..4, 0u8..3, any::<u8>()), 1..32),
        flush_at in proptest::sample::select(vec![0usize, 5, 10, 1000]),
    ) {
        use csi::hbase::Region;
        let mut fs = MiniHdfs::with_datanodes(3);
        let mut region = Region::open("p", &mut fs).unwrap();
        let mut expected: std::collections::BTreeMap<(u8, u8), u8> =
            std::collections::BTreeMap::new();
        for (i, (row, col, val)) in ops.iter().enumerate() {
            region.put(&[*row], &[*col], &[*val], &mut fs).unwrap();
            expected.insert((*row, *col), *val);
            if i == flush_at {
                region.flush(&mut fs).unwrap();
            }
        }
        // Crash (drop without flush) and recover.
        drop(region);
        let recovered = Region::open("p", &mut fs).unwrap();
        for ((row, col), val) in expected {
            let got = recovered.get(&[row], &[col]);
            let want = [val];
            prop_assert_eq!(got.as_deref(), Some(want.as_ref()));
        }
    }

    #[test]
    fn sql_literals_round_trip_through_the_sparksql_frontend(
        (_ty, v) in portable_value(),
    ) {
        // render_literal . parse . eval == identity (canonically) for
        // every portable value — the harness's encoding is faithful.
        use csi::cross_test::exec::render_literal;
        let stmt = format!("INSERT INTO t VALUES ({})", render_literal(&v));
        let parsed = csi::core::sql::parse(&stmt).unwrap();
        let csi::core::sql::Statement::Insert { rows, .. } = parsed else {
            panic!("not an insert");
        };
        let sink = csi::core::diag::DiagSink::new();
        let spark = csi::spark::SparkSession::connect(
            Arc::new(Mutex::new(csi::hive::Metastore::new())),
            Arc::new(Mutex::new(MiniHdfs::with_datanodes(1))),
            sink.handle("minispark"),
        );
        let evaluated = csi::spark::SparkSql::new(&spark).eval(&rows[0][0]).unwrap();
        prop_assert!(evaluated.canonical_eq(&v), "{:?} != {:?}", evaluated, v);
    }

    #[test]
    fn parsers_and_decoders_never_panic_on_arbitrary_input(
        text in "\\PC{0,80}",
        bytes in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        // Robustness: hostile inputs produce errors, never panics.
        let _ = csi::core::sql::parse(&text);
        let _ = csi::core::value::parse_date(&text);
        let _ = csi::core::value::parse_timestamp(&text);
        let _ = csi::core::value::Decimal::parse(&text);
        let _ = csi::hdfs::HdfsPath::parse(&text);
        let _ = miniformats::orc::decode(&bytes);
        let _ = miniformats::parquet::decode(&bytes);
        let _ = miniformats::avro::decode(&bytes);
    }

    #[test]
    fn sim_is_deterministic(delays in proptest::collection::vec(0u64..1000, 1..32)) {
        let run = |delays: &[u64]| -> (u64, Vec<u64>) {
            let mut sim = Sim::new(Vec::new());
            for &d in delays {
                sim.schedule_in(d, move |log: &mut Vec<u64>, ops| log.push(ops.now()));
            }
            let end = sim.run();
            (end, sim.state)
        };
        let a = run(&delays);
        let b = run(&delays);
        prop_assert_eq!(&a, &b);
        // Events fire in nondecreasing time order.
        prop_assert!(a.1.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn config_merge_ours_win_never_mutates_existing(
        shared in proptest::collection::btree_map("[a-z]{1,6}", "[a-z0-9]{0,6}", 0..16),
        incoming in proptest::collection::btree_map("[a-z]{1,6}", "[a-z0-9]{0,6}", 0..16),
    ) {
        let mut ours = ConfigMap::new("ours");
        for (k, v) in &shared {
            ours.set(k, v, "init");
        }
        let mut theirs = ConfigMap::new("theirs");
        for (k, v) in &incoming {
            theirs.set(k, v, "init");
        }
        let before: Vec<(String, String)> =
            ours.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
        ours.merge(&theirs, MergePolicy::OursWin, "merge");
        for (k, v) in before {
            prop_assert_eq!(ours.get(&k), Some(v.as_str()));
        }
        // Every incoming key now resolves to *something*.
        for k in incoming.keys() {
            prop_assert!(ours.get(k).is_some());
        }
    }
}
