//! Integration tests: the Section 8 cross-testing case study end to end
//! (the C2/E2 claims of the artifact appendix).

use csi::core::report::ProblemCategory;
use csi::cross_test::{active_ids, generate_inputs, Campaign, CrossTestConfig, Validity};

#[test]
fn input_catalogue_matches_section_8_1() {
    let inputs = generate_inputs();
    let valid = inputs
        .iter()
        .filter(|i| i.validity == Validity::Valid)
        .count();
    assert_eq!((inputs.len(), valid, inputs.len() - valid), (422, 210, 212));
}

#[test]
fn claim_c2_fifteen_discrepancies_with_paper_category_totals() {
    let inputs = generate_inputs();
    let outcome = Campaign::new(&inputs).run();
    let report = &outcome.report;
    assert_eq!(report.distinct(), 15, "{}", report.render());
    assert!(report.unattributed.is_empty());
    // Section 8.2's category totals: 2 / 2 / 5 / 7 / 8.
    let counts: Vec<(ProblemCategory, usize)> = report.category_counts();
    let get = |c: ProblemCategory| counts.iter().find(|(cc, _)| *cc == c).unwrap().1;
    assert_eq!(get(ProblemCategory::CannotReadWritten), 2);
    assert_eq!(get(ProblemCategory::TypeViolation), 2);
    assert_eq!(get(ProblemCategory::InternalConfigExposure), 5);
    assert_eq!(get(ProblemCategory::InconsistentErrorBehavior), 7);
    assert_eq!(get(ProblemCategory::CustomConfigReliance), 8);
    // The issue keys the paper's artifact appendix names.
    let keys = report.issue_keys();
    for key in [
        "SPARK-39075",
        "SPARK-39158",
        "HIVE-26533",
        "HIVE-26531",
        "SPARK-40439",
    ] {
        assert!(
            keys.contains(&key.to_string()),
            "{key} missing from {keys:?}"
        );
    }
    // Every observation was executed: 422 inputs x (4+2+2 plans) x 3 formats.
    assert_eq!(outcome.observations.len(), 422 * 8 * 3);
}

#[test]
fn custom_configuration_resolves_exactly_the_eight_paper_discrepancies() {
    let inputs = generate_inputs();
    let default_run = Campaign::new(&inputs).run();
    let custom_run = Campaign::new(&inputs)
        .spark_overrides(CrossTestConfig::custom_resolving_overrides())
        .run();
    let before = active_ids(&default_run.report);
    let after = active_ids(&custom_run.report);
    assert_eq!(
        before,
        (1..=15).map(|i| format!("D{i:02}")).collect::<Vec<_>>()
    );
    let resolved: Vec<String> = before
        .iter()
        .filter(|d| !after.contains(d))
        .cloned()
        .collect();
    assert_eq!(
        resolved,
        vec!["D05", "D08", "D09", "D10", "D11", "D12", "D13", "D15"],
        "custom configuration must resolve exactly the paper's 8"
    );
    // And the unresolvable ones remain active.
    for d in ["D01", "D02", "D03", "D04", "D06", "D07", "D14"] {
        assert!(
            after.contains(&d.to_string()),
            "{d} should persist, got {after:?}"
        );
    }
}

#[test]
fn each_oracle_contributes_failures() {
    use csi::core::oracle::OracleKind;
    let inputs = generate_inputs();
    let outcome = Campaign::new(&inputs).run();
    for kind in [
        OracleKind::WriteRead,
        OracleKind::ErrorHandling,
        OracleKind::Differential,
    ] {
        assert!(
            outcome.report.raw_failures.iter().any(|f| f.oracle == kind),
            "no failures from oracle {kind}"
        );
    }
}

#[test]
fn happy_path_values_are_clean_across_all_plans() {
    use csi::core::value::{DataType, Value};
    use csi::cross_test::generator::TestInput;
    // A sanity slice of obviously portable values: no oracle should fire.
    let inputs = vec![
        TestInput {
            id: 0,
            column_type: DataType::Int,
            value: Value::Int(12345),
            validity: Validity::Valid,
            label: "int".into(),
            expected_back: None,
        },
        TestInput {
            id: 1,
            column_type: DataType::String,
            value: Value::Str("plain".into()),
            validity: Validity::Valid,
            label: "string".into(),
            expected_back: None,
        },
        TestInput {
            id: 2,
            column_type: DataType::Double,
            value: Value::Double(2.5),
            validity: Validity::Valid,
            label: "double".into(),
            expected_back: None,
        },
    ];
    let outcome = Campaign::new(&inputs).run();
    assert!(
        outcome.report.raw_failures.is_empty(),
        "{:#?}",
        outcome.report.raw_failures
    );
}
