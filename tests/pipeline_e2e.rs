//! A full cross-system pipeline: Flink discovers Kafka partitions, consumes
//! records, lands a table in the Hive catalog, and Spark reads it — five
//! systems interacting, with the studied discrepancies live at each seam.

use csi::core::boundary::CrossingContext;
use csi::core::diag::DiagSink;
use csi::core::value::Value;
use csi::flink::hive_catalog::{store_table, CatalogMode, FlinkSchema, FlinkType};
use csi::flink::kafka_source::{connector_discover, DiscoveryMode, Reachability};
use csi::hdfs::MiniHdfs;
use csi::hive::hiveql::HiveQl;
use csi::hive::metastore::Metastore;
use csi::kafka::{MiniKafka, PartitionId};
use csi::spark::connectors::kafka::{consume_range, plan_range, OffsetModel};
use csi::spark::SparkSession;
use parking_lot::Mutex;
use std::sync::Arc;

#[test]
fn kafka_to_hive_to_spark_pipeline() {
    // --- The streaming side: a compacted Kafka topic. ---
    let mut kafka = MiniKafka::new();
    kafka.create_topic("orders", 2);
    for i in 0..8u8 {
        kafka
            .produce(
                "orders",
                PartitionId(0),
                Some(&[i % 3]),
                Some(&[i]),
                i as u64,
            )
            .unwrap();
    }
    kafka.compact("orders", PartitionId(0)).unwrap();

    // Flink's fixed partition discovery runs in the cluster context.
    let partitions = connector_discover(
        &kafka,
        "orders",
        DiscoveryMode::Fixed,
        Reachability::default(),
    )
    .unwrap();
    assert_eq!(partitions.len(), 2);

    // Consuming with the gap-tolerant reader (the SPARK-19361 fix) — the
    // shipped contiguous reader dies on the compacted partition.
    let off = CrossingContext::disabled();
    let range = plan_range(&kafka, "orders", PartitionId(0), 0, &off).unwrap();
    assert!(consume_range(
        &kafka,
        "orders",
        PartitionId(0),
        range,
        OffsetModel::AssumeContiguous,
        &off
    )
    .is_err());
    let records = consume_range(
        &kafka,
        "orders",
        PartitionId(0),
        range,
        OffsetModel::TolerateGaps,
        &off,
    )
    .unwrap();
    assert_eq!(records.len(), 3); // One survivor per key.

    // --- The catalog side: Flink lands a table definition in Hive. ---
    let sink = DiagSink::new();
    let metastore = Arc::new(Mutex::new(Metastore::new()));
    let fs = Arc::new(Mutex::new(MiniHdfs::with_datanodes(3)));
    {
        let mut ms = metastore.lock();
        store_table(
            &mut ms,
            "orders_by_key",
            &FlinkSchema {
                columns: vec![
                    ("order_key".into(), FlinkType::Int),
                    ("payload".into(), FlinkType::Str),
                ],
            },
            CatalogMode::Fixed,
        )
        .unwrap();
    }

    // --- The batch side: Hive materializes, Spark reads. ---
    let hive = HiveQl::new(metastore.clone(), fs.clone(), sink.handle("minihive"));
    for r in &records {
        let key = r.key.as_ref().unwrap()[0] as i32;
        let payload = r.value.as_ref().unwrap()[0];
        hive.execute(&format!(
            "INSERT INTO orders_by_key VALUES ({key}, 'payload-{payload}')"
        ))
        .unwrap();
    }
    let spark = SparkSession::connect(metastore, fs, sink.handle("minispark"));
    let result = spark.sql("SELECT * FROM orders_by_key").unwrap();
    assert_eq!(result.rows.len(), 3);
    // The latest payload per key survived compaction end to end.
    let mut keys: Vec<i32> = result
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Int(k) => *k,
            other => panic!("unexpected {other:?}"),
        })
        .collect();
    keys.sort_unstable();
    assert_eq!(keys, vec![0, 1, 2]);
    // Hive's view agrees with Spark's: no discrepancy on this (portable)
    // slice of the data plane.
    let hive_view = hive.execute("SELECT * FROM orders_by_key").unwrap();
    assert_eq!(hive_view.rows.len(), result.rows.len());
}

#[test]
fn pipeline_survives_datanode_loss_with_re_replication() {
    // Failure injection at the storage layer mid-pipeline.
    let sink = DiagSink::new();
    let metastore = Arc::new(Mutex::new(Metastore::new()));
    let fs = Arc::new(Mutex::new(MiniHdfs::with_datanodes(4)));
    let hive = HiveQl::new(metastore.clone(), fs.clone(), sink.handle("minihive"));
    hive.execute("CREATE TABLE t (a INT) STORED AS ORC")
        .unwrap();
    hive.execute("INSERT INTO t VALUES (1), (2), (3)").unwrap();
    {
        let mut f = fs.lock();
        f.kill_datanode(csi::hdfs::DataNodeId(0));
        assert!(f.under_replicated_blocks() > 0);
        f.replicate_under_replicated();
        assert_eq!(f.under_replicated_blocks(), 0);
    }
    // Reads keep working throughout (the namenode holds the data in this
    // miniature; replica health is tracked for the control plane).
    let spark = SparkSession::connect(metastore, fs, sink.handle("minispark"));
    assert_eq!(spark.sql("SELECT * FROM t").unwrap().rows.len(), 3);
}
