//! Integration tests: data-plane failures end to end through the real
//! substrate stacks (Figure 2/4 and the serde-level discrepancies).

use csi::core::boundary::CrossingContext;
use csi::core::diag::DiagSink;
use csi::core::value::{parse_timestamp, DataType, Decimal, StructField, Value};
use csi::hdfs::{HdfsPath, MiniHdfs};
use csi::hive::hiveql::HiveQl;
use csi::hive::metastore::{Metastore, StorageFormat};
use csi::spark::connectors::hdfs::{read_file, LengthCheck};
use csi::spark::SparkSession;
use parking_lot::Mutex;
use std::sync::Arc;

type SharedFs = Arc<Mutex<MiniHdfs>>;

fn deployment() -> (SparkSession, HiveQl, DiagSink, SharedFs) {
    let sink = DiagSink::new();
    let metastore = Arc::new(Mutex::new(Metastore::new()));
    let fs: SharedFs = Arc::new(Mutex::new(MiniHdfs::with_datanodes(3)));
    let spark = SparkSession::connect(metastore.clone(), fs.clone(), sink.handle("minispark"));
    let hive = HiveQl::new(metastore, fs.clone(), sink.handle("minihive"));
    (spark, hive, sink, fs)
}

#[test]
fn figure_2_and_4_compressed_file_length() {
    let mut fs = MiniHdfs::with_datanodes(1);
    let path = HdfsPath::parse("/data/part.gz").unwrap();
    fs.create_compressed(&path, b"payload").unwrap();
    assert_eq!(fs.get_file_status(&path).unwrap().len, -1);
    let err = read_file(
        &fs,
        &path,
        LengthCheck::Shipped,
        &CrossingContext::disabled(),
    )
    .unwrap_err();
    assert!(err.to_string().contains("length (-1) cannot be negative"));
    assert_eq!(
        read_file(&fs, &path, LengthCheck::Fixed, &CrossingContext::disabled())
            .unwrap()
            .as_ref(),
        b"payload"
    );
}

#[test]
fn spark_and_hive_share_one_warehouse() {
    // A plain interoperable table: written by SparkSQL, read by HiveQL.
    let (spark, hive, _, _) = deployment();
    spark
        .sql("CREATE TABLE shared (a INT, b STRING) STORED AS ORC")
        .unwrap();
    spark
        .sql("INSERT INTO shared VALUES (1, 'from spark')")
        .unwrap();
    hive.execute("INSERT INTO shared VALUES (2, 'from hive')")
        .unwrap();
    let spark_view = spark.sql("SELECT * FROM shared").unwrap();
    let hive_view = hive.execute("SELECT * FROM shared").unwrap();
    assert_eq!(spark_view.rows.len(), 2);
    assert_eq!(spark_view.rows, hive_view.rows);
}

#[test]
fn d01_spark_avro_byte_round_trip_fails_but_hive_reads_it() {
    let (spark, hive, _, _) = deployment();
    let df = spark.dataframe();
    df.create_table(
        "b",
        &[StructField::new("c", DataType::Byte)],
        StorageFormat::Avro,
    )
    .unwrap();
    df.insert_into("b", &[vec![Value::Byte(5)]]).unwrap();
    // Spark cannot read its own file back (SPARK-39075)...
    let err = df.read_table("b").unwrap_err();
    assert!(err.to_string().contains("IncompatibleSchema"), "{err}");
    // ... while Hive narrows the widened int happily.
    let r = hive.execute("SELECT * FROM b").unwrap();
    assert_eq!(r.rows[0][0], Value::Byte(5));
}

#[test]
fn d02_dataframe_decimal_unreadable_from_hiveql() {
    let (spark, hive, _, _) = deployment();
    let df = spark.dataframe();
    df.create_table(
        "d",
        &[StructField::new("c", DataType::Decimal(10, 2))],
        StorageFormat::Orc,
    )
    .unwrap();
    df.insert_into("d", &[vec![Value::Decimal(Decimal::parse("1.5").unwrap())]])
        .unwrap();
    // Spark reads its own runtime-scaled decimal back fine...
    let (_, rows) = df.read_table("d").unwrap();
    assert!(rows[0][0].canonical_eq(&Value::Decimal(Decimal::parse("1.5").unwrap())));
    // ... but HiveQL validates the declared scale and fails (SPARK-39158).
    let err = hive.execute("SELECT * FROM d").unwrap_err();
    assert!(err.to_string().contains("scale"), "{err}");
    // SparkSQL's ANSI path rescales on write, which Hive reads fine.
    spark.sql("INSERT INTO d VALUES (2.5)").unwrap();
    let err2 = hive.execute("SELECT * FROM d").unwrap_err();
    // (Still fails on the first file, demonstrating the poisoned table.)
    assert!(err2.to_string().contains("scale"));
}

#[test]
fn d07_julian_rebase_shift_through_parquet() {
    let (spark, hive, _, _) = deployment();
    hive.execute("CREATE TABLE ancient (ts TIMESTAMP) STORED AS PARQUET")
        .unwrap();
    hive.execute("INSERT INTO ancient VALUES (TIMESTAMP '1500-06-01 00:00:00')")
        .unwrap();
    // Hive round-trips its own rebase.
    let hv = hive.execute("SELECT * FROM ancient").unwrap();
    let want = parse_timestamp("1500-06-01 00:00:00").unwrap();
    assert_eq!(hv.rows[0][0], Value::Timestamp(want));
    // Spark (CORRECTED mode) reads the raw Julian value: 10 days off.
    let sv = spark.sql("SELECT * FROM ancient").unwrap();
    assert_eq!(sv.rows[0][0], Value::Timestamp(want - 10 * 86_400_000_000));
    // The LEGACY rebase mode closes the gap for the same session.
    let mut legacy = spark;
    legacy
        .config
        .set(csi::spark::config::PARQUET_REBASE_MODE, "LEGACY");
    let lv = legacy.sql("SELECT * FROM ancient").unwrap();
    assert_eq!(lv.rows[0][0], Value::Timestamp(want));
}

#[test]
fn d14_struct_case_fold_between_interfaces() {
    let (spark, hive, _, _) = deployment();
    let df = spark.dataframe();
    let ty = DataType::Struct(vec![StructField::new("Inner", DataType::Int)]);
    df.create_table("s", &[StructField::new("c", ty)], StorageFormat::Orc)
        .unwrap();
    df.insert_into(
        "s",
        &[vec![Value::Struct(vec![("Inner".into(), Value::Int(3))])]],
    )
    .unwrap();
    // DataFrame sees its case-preserved field...
    let (_, rows) = df.read_table("s").unwrap();
    assert_eq!(
        rows[0][0],
        Value::Struct(vec![("Inner".into(), Value::Int(3))])
    );
    // ... HiveQL reports its lowercase schema.
    let r = hive.execute("SELECT * FROM s").unwrap();
    assert_eq!(
        r.rows[0][0],
        Value::Struct(vec![("inner".into(), Value::Int(3))])
    );
}

#[test]
fn inconsistent_error_behavior_d05_at_the_api_level() {
    let (spark, _, sink, _) = deployment();
    spark
        .sql("CREATE TABLE t (c DECIMAL(10,2)) STORED AS ORC")
        .unwrap();
    // SparkSQL raises...
    let err = spark.sql("INSERT INTO t VALUES (123.456)").unwrap_err();
    assert_eq!(err.code(), "CAST_OVERFLOW");
    // ... the DataFrame writer silently writes NULL.
    sink.drain();
    spark
        .dataframe()
        .insert_into(
            "t",
            &[vec![Value::Decimal(Decimal::parse("123.456").unwrap())]],
        )
        .unwrap();
    // The legacy coercion is silent: the only diagnostics are the schema
    // fallback warnings, never a word about the value written as NULL.
    let diags = sink.drain();
    assert!(
        diags.iter().all(|d| d.code == "NOT_CASE_PRESERVING"),
        "{diags:?}"
    );
    let r = spark.sql("SELECT * FROM t").unwrap();
    assert_eq!(r.rows[0][0], Value::Null);
}

#[test]
fn schema_evolution_goes_stale_in_the_cached_spark_schema() {
    // Software-evolution hazard (Section 10 "change analysis"): Hive adds
    // a column; Spark's cached case-preserving schema predates it.
    let (spark, hive, _, _) = deployment();
    let df = spark.dataframe();
    df.create_table(
        "e",
        &[StructField::new("a", DataType::Int)],
        StorageFormat::Orc,
    )
    .unwrap();
    df.insert_into("e", &[vec![Value::Int(1)]]).unwrap();
    spark
        .metastore()
        .lock()
        .add_column("default", "e", "b", csi::hive::HiveType::Str)
        .unwrap();
    hive.execute("INSERT INTO e VALUES (2, 'two')").unwrap();
    // Hive sees both columns; old files fill the new one with NULL.
    let hv = hive.execute("SELECT * FROM e").unwrap();
    assert_eq!(hv.columns, vec!["a", "b"]);
    assert_eq!(hv.rows[0], vec![Value::Int(1), Value::Null]);
    assert_eq!(hv.rows[1], vec![Value::Int(2), Value::Str("two".into())]);
    // Spark still resolves through its *stale* cached property schema and
    // does not see the new column at all — neither side is buggy, but
    // their views of the same table have diverged.
    let sv = spark.sql("SELECT * FROM e").unwrap();
    assert_eq!(sv.columns, vec!["a"]);
    assert_eq!(sv.rows.len(), 2);
}

#[test]
fn where_clause_literal_casting_diverges_between_engines() {
    // The same query, two engines: Hive's lenient literal coercion matches
    // nothing on garbage, Spark's ANSI cast raises — the inconsistent-error
    // pattern extends to the query path, not just inserts.
    let (spark, hive, _, _) = deployment();
    spark.sql("CREATE TABLE q (a INT)").unwrap();
    spark.sql("INSERT INTO q VALUES (1), (2), (3)").unwrap();
    let same = "SELECT * FROM q WHERE a > 1";
    assert_eq!(spark.sql(same).unwrap().rows.len(), 2);
    assert_eq!(hive.execute(same).unwrap().rows.len(), 2);
    let garbage = "SELECT * FROM q WHERE a = 'junk'";
    assert!(hive.execute(garbage).unwrap().rows.is_empty()); // Lenient.
    assert!(spark.sql(garbage).is_err()); // ANSI raises.
}

#[test]
fn safe_mode_blocks_both_engines_writes_but_not_reads() {
    // A cross-cutting scenario: the shared filesystem enters safe mode;
    // both engines' writes fail while their reads keep working.
    let (spark, hive, _, fs) = deployment();
    spark.sql("CREATE TABLE t (a INT)").unwrap();
    spark.sql("INSERT INTO t VALUES (1)").unwrap();
    fs.lock().set_safe_mode(true);
    assert!(spark.sql("INSERT INTO t VALUES (2)").is_err());
    assert!(hive.execute("INSERT INTO t VALUES (3)").is_err());
    assert_eq!(spark.sql("SELECT * FROM t").unwrap().rows.len(), 1);
    assert_eq!(hive.execute("SELECT * FROM t").unwrap().rows.len(), 1);
    fs.lock().set_safe_mode(false);
    spark.sql("INSERT INTO t VALUES (2)").unwrap();
    assert_eq!(hive.execute("SELECT * FROM t").unwrap().rows.len(), 2);
}
