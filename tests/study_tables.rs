//! Integration tests: the failure-study datasets regenerate every table and
//! finding the paper publishes (the C1/E1 claims of the artifact appendix).

use csi::core::plane::Plane;
use csi::study::{analyze, cbs, findings, incidents, Dataset};

#[test]
fn claim_c1_all_thirteen_findings_hold() {
    let ds = Dataset::load();
    let all = findings::all_findings(&ds);
    assert_eq!(all.len(), 13);
    let failing: Vec<u32> = all.iter().filter(|f| !f.holds).map(|f| f.number).collect();
    assert!(failing.is_empty(), "findings failing: {failing:?}");
}

#[test]
fn finding_1_incident_statistics() {
    let incidents = incidents::load_incidents();
    assert_eq!(incidents.len(), 55);
    let csi: Vec<_> = incidents.iter().filter(|i| i.is_csi).collect();
    assert_eq!(csi.len(), 11);
    assert_eq!(incidents::median_csi_duration(&incidents), 106);
    assert_eq!(csi.iter().filter(|i| i.impaired_external).count(), 8);
}

#[test]
fn table_2_planes() {
    let ds = Dataset::load();
    assert_eq!(
        analyze::plane_table(&ds),
        vec![
            (Plane::Control, 20),
            (Plane::Data, 61),
            (Plane::Management, 39)
        ]
    );
}

#[test]
fn tables_4_5_6_data_plane_root_causes() {
    let ds = Dataset::load();
    let m = analyze::abstraction_matrix(&ds);
    assert_eq!(m[0], [1, 13, 16, 0, 5], "Table row");
    assert_eq!(m[1], [8, 0, 0, 8, 2], "File row");
    assert_eq!(m[2], [1, 1, 2, 0, 4], "Stream row");
    assert_eq!(m[3], [0, 0, 0, 0, 0], "KV row");
    assert_eq!(analyze::metadata_split(&ds), (50, 42, 8, 11));
    assert_eq!(analyze::serialization_rooted_count(&ds), 15);
    let patterns: Vec<usize> = analyze::data_pattern_table(&ds)
        .into_iter()
        .map(|(_, n)| n)
        .collect();
    assert_eq!(patterns, vec![12, 15, 9, 7, 18]);
}

#[test]
fn tables_7_8_9_management_control_fixes() {
    let ds = Dataset::load();
    let config: Vec<usize> = analyze::config_pattern_table(&ds)
        .into_iter()
        .map(|(_, n)| n)
        .collect();
    assert_eq!(config, vec![12, 6, 10, 2]);
    assert_eq!(analyze::config_scope_split(&ds), (21, 9));
    assert_eq!(analyze::control_pattern_table(&ds), (13, 5, 2));
    assert_eq!(analyze::api_misuse_split(&ds), (8, 5));
    let fixes: Vec<usize> = analyze::fix_table(&ds)
        .into_iter()
        .map(|(_, n)| n)
        .collect();
    assert_eq!(fixes, vec![38, 8, 69, 5]);
    let loc = analyze::fix_locations(&ds);
    assert_eq!(
        (
            loc.fixed,
            loc.upstream_specific,
            loc.in_connectors,
            loc.downstream
        ),
        (115, 79, 68, 1)
    );
}

#[test]
fn cbs_comparison_shares() {
    let sample = cbs::load_cbs_sample();
    assert_eq!(sample.len(), 105);
    assert_eq!(cbs::cbs_control_plane_percent(&sample), 69);
}

#[test]
fn every_named_case_appears_exactly_once() {
    let ds = Dataset::load();
    for key in [
        "SPARK-27239",
        "FLINK-12342",
        "FLINK-19141",
        "FLINK-17189",
        "SPARK-18910",
        "SPARK-21686",
        "SPARK-19361",
        "SPARK-10181",
        "SPARK-16901",
        "SPARK-15046",
        "HIVE-11250",
        "SPARK-10851",
        "SPARK-3627",
        "FLINK-887",
        "HBASE-537",
        "HBASE-16621",
        "SPARK-2604",
        "YARN-9724",
        "FLINK-5542",
        "FLINK-4155",
        "FLINK-13758",
        "FLINK-3081",
        "YARN-2790",
        "SPARK-10122",
        "SPARK-21150",
    ] {
        assert_eq!(
            ds.cases.iter().filter(|c| c.key == key).count(),
            1,
            "{key} should appear exactly once"
        );
    }
}
