//! Integration tests for the Section 10 directions implemented as library
//! features: interface-redundant reads, configuration audits, and
//! machine-checkable data contracts.

use csi::core::audit::{audit_deployment, AuditSeverity, CoherenceRule};
use csi::core::config::{ConfigMap, MergePolicy};
use csi::core::diag::DiagSink;
use csi::core::value::{DataType, StructField, Value};
use csi::cross_test::{redundant_read, ReadPath};
use csi::hdfs::MiniHdfs;
use csi::hive::hiveql::HiveQl;
use csi::hive::metastore::{Metastore, StorageFormat};
use csi::spark::SparkSession;
use parking_lot::Mutex;
use std::sync::Arc;

fn deployment() -> (SparkSession, HiveQl) {
    let sink = DiagSink::new();
    let ms = Arc::new(Mutex::new(Metastore::new()));
    let fs = Arc::new(Mutex::new(MiniHdfs::with_datanodes(3)));
    let spark = SparkSession::connect(ms.clone(), fs.clone(), sink.handle("minispark"));
    let hive = HiveQl::new(ms, fs, sink.handle("minihive"));
    (spark, hive)
}

#[test]
fn interface_redundancy_tolerates_spark_39075() {
    // The D01 situation: a DataFrame-written Avro table with BYTE data
    // that Spark itself cannot read back. The redundant reader serves it
    // through the (independently implemented) HiveQL interface.
    let (spark, hive) = deployment();
    let df = spark.dataframe();
    df.create_table(
        "events",
        &[StructField::new("code", DataType::Byte)],
        StorageFormat::Avro,
    )
    .unwrap();
    df.insert_into("events", &[vec![Value::Byte(42)], vec![Value::Byte(-1)]])
        .unwrap();
    assert!(
        spark.sql("SELECT * FROM events").is_err(),
        "primary path must fail"
    );
    let read = redundant_read(&spark, &hive, "events").unwrap();
    assert_eq!(read.path, ReadPath::HiveFallback);
    assert_eq!(
        read.rows,
        vec![vec![Value::Byte(42)], vec![Value::Byte(-1)]]
    );
}

#[test]
fn config_audit_catches_the_three_table_7_shapes_predeployment() {
    // Build the configurations of a Spark+Hive+YARN deployment with all
    // three coherence problems present, then audit.
    let mut spark = ConfigMap::new("spark");
    spark.set("spark.sql.session.timeZone", "UTC", "spark-defaults.conf");
    spark.set(
        "spark.yarn.keytab",
        "/keytabs/spark.keytab",
        "spark-defaults.conf",
    );
    spark.set(
        "yarn.scheduler.minimum-allocation-mb",
        "1024",
        "spark-defaults.conf",
    );

    let mut hive = ConfigMap::new("hive");
    hive.set("spark.sql.session.timeZone", "PST", "hive-site.xml");
    // SPARK-16901 shape: Spark's overlay silently overrides Hive's value.
    hive.merge(&spark, MergePolicy::TheirsWin, "spark overlay");

    let mut yarn = ConfigMap::new("yarn");
    yarn.set(
        "yarn.scheduler.minimum-allocation-mb",
        "512",
        "yarn-site.xml",
    );
    // SPARK-10181 shape: an operator's update is silently dropped.
    let mut operator = ConfigMap::new("operator");
    operator.set(
        "spark.yarn.keytab",
        "/keytabs/rotated.keytab",
        "ops runbook",
    );
    spark.merge(&operator, MergePolicy::OursWin, "session merge");

    let rules = vec![CoherenceRule {
        key: "yarn.scheduler.minimum-allocation-mb".into(),
        // FLINK-19141 shape: both sides size containers from this key.
        why: "upstream predicts container sizes from it".into(),
    }];
    let findings = audit_deployment(&[&spark, &hive, &yarn], &rules);
    let patterns: Vec<&str> = findings.iter().map(|f| f.pattern).collect();
    assert!(patterns.contains(&"Ignorance"), "{patterns:?}");
    assert!(patterns.contains(&"Unexpected override"), "{patterns:?}");
    assert!(patterns.contains(&"Inconsistent context"), "{patterns:?}");
    assert!(findings.iter().all(|f| f.severity >= AuditSeverity::Notice));
    // The ranking puts the failure-shaped findings first.
    assert_eq!(findings[0].severity, AuditSeverity::Critical);
}

#[test]
fn contracts_distinguish_documented_conversions_from_bugs() {
    use csi::cross_test::contracts::{check_observations, documented_contracts, naive_contracts};
    use csi::cross_test::generator::{TestInput, Validity};
    use csi::cross_test::Campaign;
    let inputs = vec![
        TestInput {
            id: 0,
            column_type: DataType::Byte,
            value: Value::Byte(9),
            validity: Validity::Valid,
            label: "byte".into(),
            expected_back: None,
        },
        TestInput {
            id: 1,
            column_type: DataType::Char(8),
            value: Value::Str("ab".into()),
            validity: Validity::Valid,
            label: "char".into(),
            expected_back: None,
        },
    ];
    let outcome = Campaign::new(&inputs).run();
    let naive = check_observations(&inputs, &outcome.observations, naive_contracts);
    let documented = check_observations(&inputs, &outcome.observations, documented_contracts);
    // CHAR padding and BYTE widening are documented; the Avro read failure
    // is not.
    assert!(documented.len() < naive.len());
    assert!(documented
        .iter()
        .all(|v| v.observed.contains("read failed") || v.observed.contains("value changed")));
    assert!(documented.iter().any(|v| v.data_type == DataType::Byte));
}
