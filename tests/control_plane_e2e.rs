//! Integration tests: control- and management-plane failures end to end,
//! across the substrate crates (Figures 1, 3, 5 and the named control-plane
//! cases of Tables 7 and 8).

use csi::core::boundary::CrossingContext;
use csi::flink::jobmanager::{
    launch_jobmanager, JobManagerSpec, LaunchOutcome, MemoryModel, SizingPolicy,
};
use csi::flink::kafka_source::{connector_discover, DiscoveryMode, Reachability};
use csi::flink::yarn_driver::{
    capacity_scheduler, check_allocation_consistency, fair_scheduler, run_driver, DriverMode,
    DriverRun,
};
use csi::hdfs::{HdfsError, HdfsPath, MiniHdfs};
use csi::kafka::MiniKafka;
use csi::spark::config::EXECUTOR_MEMORY_MB;
use csi::spark::connectors::yarn::{validate_executor_sizing, SizingCheck};
use csi::spark::SparkConfig;
use csi::yarn::rm::RmMode;
use csi::yarn::{Resource, ResourceManager};

#[test]
fn figure_1_storm_and_figure_5_fixes() {
    let base = DriverRun {
        target: 200,
        interval_ms: 500,
        alloc_service_ms: 100,
        start_latency_ms: 5,
        deadline_ms: 60_000,
        mode: DriverMode::BuggySync,
    };
    let buggy = run_driver(base);
    assert!(
        buggy.total_requested > 4000,
        "storm: {}",
        buggy.total_requested
    );
    let longer = run_driver(DriverRun {
        mode: DriverMode::LongerInterval,
        ..base
    });
    let eager = run_driver(DriverRun {
        mode: DriverMode::EagerRemove,
        ..base
    });
    let fixed = run_driver(DriverRun {
        mode: DriverMode::AsyncClient,
        ..base
    });
    // The final fix is strictly the best: it asks for exactly C containers.
    assert_eq!(fixed.total_requested, 200);
    assert_eq!(fixed.started, 200);
    // Workarounds lie between the bug and the fix.
    assert!(longer.total_requested <= buggy.total_requested);
    assert!(eager.max_pending <= buggy.max_pending);
    // Without the latency inversion there is no storm at all.
    let benign = run_driver(DriverRun {
        alloc_service_ms: 1,
        ..base
    });
    assert_eq!(benign.total_requested, 200);
}

#[test]
fn figure_3_scheduler_config_discrepancy() {
    let conf = csi::yarn::config::default_yarn_config();
    let ask = Resource::new(1536, 1);
    assert!(check_allocation_consistency(ask, &conf, &capacity_scheduler()).is_ok());
    let err = check_allocation_consistency(ask, &conf, &fair_scheduler()).unwrap_err();
    assert!(err
        .to_string()
        .contains("Could not allocate the required resource"));
}

#[test]
fn flink_887_pmem_kill_and_fix() {
    let mut rm = ResourceManager::with_nodes(2, Resource::new(16384, 16));
    let app = rm.register_application("flink");
    let memory = MemoryModel {
        heap_mb: 4096,
        off_heap_mb: 512,
    };
    let shipped = JobManagerSpec {
        memory,
        policy: SizingPolicy::HeapOnly,
        vcores: 1,
    };
    assert!(matches!(
        launch_jobmanager(&mut rm, app, &shipped).unwrap(),
        LaunchOutcome::KilledByPmemMonitor { .. }
    ));
    let fixed = JobManagerSpec {
        memory,
        policy: SizingPolicy::ProcessSizeWithCutoff,
        vcores: 1,
    };
    assert!(matches!(
        launch_jobmanager(&mut rm, app, &fixed).unwrap(),
        LaunchOutcome::Running(_)
    ));
}

#[test]
fn yarn_9724_metrics_unavailable_in_federation() {
    let rm = ResourceManager::new(csi::yarn::config::default_yarn_config(), RmMode::Federation);
    let err = csi::spark::connectors::yarn::cluster_metrics(&rm, &CrossingContext::disabled())
        .unwrap_err();
    assert!(err.to_string().contains("not supported in federation mode"));
}

#[test]
fn spark_2604_sizing_check_inconsistency() {
    let mut config = SparkConfig::new();
    config.set(EXECUTOR_MEMORY_MB, "8000");
    let max = Resource::new(8192, 8);
    // Shipped validation passes...
    validate_executor_sizing(&config, max, SizingCheck::Shipped).unwrap();
    // ... but YARN rejects the actual (overhead-inclusive) ask.
    let mut rm = ResourceManager::with_nodes(4, Resource::new(8192, 8));
    let app = rm.register_application("spark");
    let ask = csi::spark::connectors::yarn::executor_container_request(&config);
    assert!(rm.add_container_request(app, ask).is_err());
    // The fixed validation catches it before submission.
    assert!(validate_executor_sizing(&config, max, SizingCheck::Fixed).is_err());
}

#[test]
fn flink_4155_partition_discovery_context() {
    let mut kafka = MiniKafka::new();
    kafka.create_topic("orders", 8);
    let net = Reachability::default();
    assert!(connector_discover(&kafka, "orders", DiscoveryMode::Shipped, net).is_err());
    let parts = connector_discover(&kafka, "orders", DiscoveryMode::Fixed, net).unwrap();
    assert_eq!(parts.len(), 8);
}

#[test]
fn hbase_537_safe_mode_assumption() {
    // HBase assumed the NameNode was ready; it was in safe mode.
    let mut fs = MiniHdfs::new();
    assert!(fs.in_safe_mode());
    let root = HdfsPath::parse("/hbase").unwrap();
    assert!(matches!(fs.mkdirs(&root), Err(HdfsError::SafeMode)));
    // Once datanodes register, the same call succeeds.
    fs.register_datanode(csi::hdfs::DataNodeId(0));
    fs.mkdirs(&root).unwrap();
}

#[test]
fn hbase_on_hdfs_full_lifecycle_with_failures() {
    use csi::hbase::{HBaseError, Region};
    // Startup races HDFS safe mode (HBASE-537), then the region runs a
    // full WAL/flush/compact lifecycle over the shared DFS, surviving a
    // datanode loss in the middle.
    let mut fs = MiniHdfs::new();
    assert!(matches!(
        Region::open("orders", &mut fs),
        Err(HBaseError::NameNodeNotReady)
    ));
    for i in 0..3 {
        fs.register_datanode(csi::hdfs::DataNodeId(i));
    }
    let mut region = Region::open("orders", &mut fs).unwrap();
    for i in 0..20u8 {
        region
            .put(format!("row{}", i % 5).as_bytes(), b"cf:v", &[i], &mut fs)
            .unwrap();
    }
    region.flush(&mut fs).unwrap();
    fs.kill_datanode(csi::hdfs::DataNodeId(1));
    fs.replicate_under_replicated();
    region
        .put(b"row0", b"cf:v", b"after-failure", &mut fs)
        .unwrap();
    region.compact(&mut fs).unwrap();
    // Crash-recover: reopen and verify both flushed and WAL'd data.
    let recovered = Region::open("orders", &mut fs).unwrap();
    assert_eq!(
        recovered.get(b"row0", b"cf:v").as_deref(),
        Some(b"after-failure".as_ref())
    );
    assert_eq!(
        recovered.get(b"row4", b"cf:v").as_deref(),
        Some([19u8].as_ref())
    );
}

#[test]
fn hbase_16621_stale_location_cache() {
    use csi::hbase::cluster::{ClusterState, HBaseClient, RetryPolicy, ServerId};
    let mut cluster = ClusterState::new();
    cluster.assign("orders,0", ServerId(1));
    let mut client = HBaseClient::new();
    client
        .route(&cluster, "orders,0", RetryPolicy::TrustCache)
        .unwrap();
    // A concurrent balancer move invalidates the client's view.
    cluster.assign("orders,0", ServerId(7));
    assert!(client
        .route(&cluster, "orders,0", RetryPolicy::TrustCache)
        .is_err());
    assert_eq!(
        client
            .route(&cluster, "orders,0", RetryPolicy::RefreshAndRetry)
            .unwrap(),
        ServerId(7)
    );
}

#[test]
fn yarn_2790_token_expiry_between_renewal_and_use() {
    let mut fs = MiniHdfs::with_datanodes(1);
    let path = HdfsPath::parse("/staging/job.xml").unwrap();
    fs.create(&path, b"job config").unwrap();
    // YARN renews early; the job consumes the token much later.
    let token = fs.issue_token("yarn-rm", 1_000, 86_400_000);
    fs.advance_clock(5_000);
    assert!(matches!(
        fs.read_with_token(&path, token.id),
        Err(HdfsError::TokenInvalid { .. })
    ));
    // The fix renews adjacent to the use.
    fs.renew_token(token.id, 1_000).unwrap();
    assert_eq!(
        fs.read_with_token(&path, token.id).unwrap().as_ref(),
        b"job config"
    );
}

#[test]
fn spark_19361_offset_gap_assumption() {
    use csi::kafka::PartitionId;
    use csi::spark::connectors::kafka::{consume_range, plan_range, OffsetModel};
    let mut kafka = MiniKafka::new();
    kafka.create_topic("events", 1);
    for i in 0..10u8 {
        kafka
            .produce("events", PartitionId(0), Some(&[i % 3]), Some(&[i]), 0)
            .unwrap();
    }
    kafka.compact("events", PartitionId(0)).unwrap();
    let off = CrossingContext::disabled();
    let range = plan_range(&kafka, "events", PartitionId(0), 0, &off).unwrap();
    assert!(consume_range(
        &kafka,
        "events",
        PartitionId(0),
        range,
        OffsetModel::AssumeContiguous,
        &off
    )
    .is_err());
    let records = consume_range(
        &kafka,
        "events",
        PartitionId(0),
        range,
        OffsetModel::TolerateGaps,
        &off,
    )
    .unwrap();
    assert_eq!(records.len(), 3); // One survivor per key.
}

#[test]
fn spark_10181_kerberos_forwarding() {
    use csi::spark::connectors::hive::{
        build_hive_client_config, can_authenticate, ForwardingMode,
    };
    let mut spark = SparkConfig::new();
    spark.set(csi::spark::config::YARN_KEYTAB, "/keytabs/spark.keytab");
    spark.set(csi::spark::config::YARN_PRINCIPAL, "spark@REALM");
    let off = CrossingContext::disabled();
    assert!(!can_authenticate(&build_hive_client_config(
        &spark,
        ForwardingMode::Shipped,
        &off
    )));
    assert!(can_authenticate(&build_hive_client_config(
        &spark,
        ForwardingMode::Fixed,
        &off
    )));
}

#[test]
fn spark_3627_monitoring_discrepancy_through_yarn() {
    use csi::spark::connectors::yarn::{
        register_final_status, FinalStatus, JobOutcome, StatusReporting,
    };
    use csi::yarn::{AmFinalStatus, AppLifecycle};
    let mut rm = ResourceManager::with_nodes(2, Resource::new(8192, 8));
    let app = rm.register_application("spark-etl");
    rm.add_container_request(app, Resource::new(1024, 1))
        .unwrap();
    rm.advance_clock(50);
    rm.allocate(app).unwrap();
    // The Spark job fails, but the shipped AM registers SUCCEEDED.
    let registered = match register_final_status(JobOutcome::Failed, StatusReporting::Shipped) {
        FinalStatus::Succeeded => AmFinalStatus::Succeeded,
        FinalStatus::Failed => AmFinalStatus::Failed,
        FinalStatus::Undefined => AmFinalStatus::Undefined,
    };
    rm.unregister_application(app, registered).unwrap();
    // Every monitoring consumer downstream of YARN now sees success.
    let report = rm.application_report(app).unwrap();
    assert_eq!(report.state, AppLifecycle::Finished);
    assert_eq!(report.final_status, AmFinalStatus::Succeeded); // The lie.
                                                               // Under the fix, YARN's view matches reality.
    let app2 = rm.register_application("spark-etl-2");
    let registered = match register_final_status(JobOutcome::Failed, StatusReporting::Fixed) {
        FinalStatus::Failed => AmFinalStatus::Failed,
        other => panic!("unexpected {other:?}"),
    };
    rm.unregister_application(app2, registered).unwrap();
    assert_eq!(
        rm.application_report(app2).unwrap().final_status,
        AmFinalStatus::Failed
    );
}

#[test]
fn flink_17189_proctime_round_trip() {
    use csi::flink::hive_catalog::{load_table, store_table, CatalogMode, FlinkSchema, FlinkType};
    let schema = FlinkSchema {
        columns: vec![("ts".into(), FlinkType::ProcTime)],
    };
    let mut ms = csi::hive::Metastore::new();
    store_table(&mut ms, "shipped", &schema, CatalogMode::Shipped).unwrap();
    assert_ne!(load_table(&ms, "shipped").unwrap(), schema);
    store_table(&mut ms, "fixed", &schema, CatalogMode::Fixed).unwrap();
    assert_eq!(load_table(&ms, "fixed").unwrap(), schema);
}
