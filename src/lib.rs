//! Umbrella crate for the CSI-failures reproduction workspace.
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! a single dependency. See the README for the architecture overview.

pub use csi_core as core;
pub use csi_study as study;
pub use csi_test as cross_test;
pub use miniflink as flink;
pub use minihbase as hbase;
pub use minihdfs as hdfs;
pub use minihive as hive;
pub use minikafka as kafka;
pub use minispark as spark;
pub use miniyarn as yarn;
