//! Offline stand-in for [`bytes`](https://crates.io/crates/bytes).
//!
//! Provides a cheaply-cloneable, immutable byte buffer backed by
//! `Arc<[u8]>`. Only the constructors and accessors used by this workspace
//! are implemented; clones share the same allocation, matching the real
//! crate's zero-copy semantics.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// A cheaply-cloneable contiguous slice of memory.
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty `Bytes`.
    pub fn new() -> Bytes {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Copies `data` into a new shared allocation.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Returns the number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Returns the contents as a `Vec<u8>` copy.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        Bytes { data: Arc::from(v) }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::copy_from_slice(v)
    }
}

impl From<&str> for Bytes {
    fn from(v: &str) -> Bytes {
        Bytes::copy_from_slice(v.as_bytes())
    }
}

impl From<String> for Bytes {
    fn from(v: String) -> Bytes {
        Bytes::from(v.into_bytes())
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            for esc in std::ascii::escape_default(b) {
                write!(f, "{}", esc as char)?;
            }
        }
        write!(f, "\"")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_storage() {
        let a = Bytes::copy_from_slice(b"hello");
        let b = a.clone();
        assert_eq!(a, b);
        assert_eq!(Arc::strong_count(&a.data), 2);
    }

    #[test]
    fn conversions_round_trip() {
        let v = vec![1u8, 2, 3];
        let b = Bytes::from(v.clone());
        assert_eq!(b.to_vec(), v);
        assert_eq!(&b[..], &v[..]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
    }
}
