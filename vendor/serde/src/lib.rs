//! Offline stand-in for [`serde`](https://crates.io/crates/serde).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! a minimal data model instead: every serializable value lowers to a
//! [`Content`] tree (null / bool / int / float / string / seq / map), and the
//! [`Serialize`] / [`Deserialize`] traits convert to and from that tree.
//! `serde_json` (also vendored) renders `Content` as JSON text.
//!
//! The derive macros re-exported here generate the same externally-tagged
//! representation real serde uses for the shapes present in this workspace:
//! named structs become maps, newtype structs are transparent, unit enum
//! variants become their name as a string, and data-carrying variants become
//! single-entry maps keyed by the variant name.

use std::collections::BTreeMap;

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model: a self-describing value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// Any integer (covers every integer width this workspace serializes).
    Int(i128),
    /// A binary floating-point number (always finite; non-finite floats
    /// serialize as the strings `"NaN"`, `"inf"`, `"-inf"`).
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Content>),
    /// An ordered list of key/value entries (preserves insertion order).
    Map(Vec<(Content, Content)>),
}

/// A value that can lower itself to [`Content`].
pub trait Serialize {
    /// Converts `self` into the serialization data model.
    fn to_content(&self) -> Content;
}

/// A value that can be rebuilt from [`Content`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self`, or explains why the content does not fit.
    fn from_content(c: &Content) -> Result<Self, String>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_content(&self) -> Content {
        Content::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Bool(b) => Ok(*b),
            other => Err(format!("expected bool, found {other:?}")),
        }
    }
}

macro_rules! int_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                Content::Int(*self as i128)
            }
        }

        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, String> {
                match c {
                    Content::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| format!("integer {i} out of range for {}", stringify!($t))),
                    other => Err(format!("expected integer, found {other:?}")),
                }
            }
        }
    )*};
}

int_impls!(i8, i16, i32, i64, i128, u8, u16, u32, u64, usize, isize);

macro_rules! float_impls {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_content(&self) -> Content {
                let v = *self as f64;
                if v.is_nan() {
                    Content::Str("NaN".to_string())
                } else if v == f64::INFINITY {
                    Content::Str("inf".to_string())
                } else if v == f64::NEG_INFINITY {
                    Content::Str("-inf".to_string())
                } else {
                    Content::Float(v)
                }
            }
        }

        impl Deserialize for $t {
            fn from_content(c: &Content) -> Result<Self, String> {
                match c {
                    Content::Float(f) => Ok(*f as $t),
                    Content::Int(i) => Ok(*i as $t),
                    Content::Str(s) if s == "NaN" => Ok(<$t>::NAN),
                    Content::Str(s) if s == "inf" => Ok(<$t>::INFINITY),
                    Content::Str(s) if s == "-inf" => Ok(<$t>::NEG_INFINITY),
                    other => Err(format!("expected float, found {other:?}")),
                }
            }
        }
    )*};
}

float_impls!(f32, f64);

impl Serialize for String {
    fn to_content(&self) -> Content {
        Content::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Str(s) => Ok(s.clone()),
            other => Err(format!("expected string, found {other:?}")),
        }
    }
}

impl Serialize for str {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            // `&'static str` struct fields can only be rebuilt by leaking;
            // acceptable here because deserialization of such types is a
            // test-only path in this workspace.
            Content::Str(s) => Ok(Box::leak(s.clone().into_boxed_str())),
            other => Err(format!("expected string, found {other:?}")),
        }
    }
}

impl Serialize for () {
    fn to_content(&self) -> Content {
        Content::Null
    }
}

impl Deserialize for () {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Null => Ok(()),
            other => Err(format!("expected null, found {other:?}")),
        }
    }
}

impl Serialize for char {
    fn to_content(&self) -> Content {
        Content::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(format!("expected single-char string, found {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Composite impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_content(&self) -> Content {
        (**self).to_content()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_content(c: &Content) -> Result<Self, String> {
        T::from_content(c).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_content(&self) -> Content {
        match self {
            Some(v) => v.to_content(),
            None => Content::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Null => Ok(None),
            other => T::from_content(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(format!("expected sequence, found {other:?}")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Serialize> Serialize for std::collections::BTreeSet<T> {
    fn to_content(&self) -> Content {
        Content::Seq(self.iter().map(Serialize::to_content).collect())
    }
}

impl<T: Deserialize + Ord> Deserialize for std::collections::BTreeSet<T> {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Seq(items) => items.iter().map(T::from_content).collect(),
            other => Err(format!("expected sequence, found {other:?}")),
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_content(&self) -> Content {
        Content::Map(
            self.iter()
                .map(|(k, v)| (k.to_content(), v.to_content()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((K::from_content(k)?, V::from_content(v)?)))
                .collect(),
            other => Err(format!("expected map, found {other:?}")),
        }
    }
}

macro_rules! tuple_impls {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_content(&self) -> Content {
                Content::Seq(vec![$(self.$idx.to_content()),+])
            }
        }

        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_content(c: &Content) -> Result<Self, String> {
                let items = match c {
                    Content::Seq(items) => items,
                    other => return Err(format!("expected tuple sequence, found {other:?}")),
                };
                let want = [$($idx),+].len();
                if items.len() != want {
                    return Err(format!("expected {}-tuple, found {} items", want, items.len()));
                }
                Ok(($($name::from_content(&items[$idx])?,)+))
            }
        }
    )*};
}

tuple_impls! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl<T: Serialize, E: Serialize> Serialize for Result<T, E> {
    fn to_content(&self) -> Content {
        match self {
            Ok(v) => Content::Map(vec![(Content::Str("Ok".to_string()), v.to_content())]),
            Err(e) => Content::Map(vec![(Content::Str("Err".to_string()), e.to_content())]),
        }
    }
}

impl<T: Deserialize, E: Deserialize> Deserialize for Result<T, E> {
    fn from_content(c: &Content) -> Result<Self, String> {
        match c {
            Content::Map(entries) if entries.len() == 1 => match &entries[0] {
                (Content::Str(tag), v) if tag == "Ok" => T::from_content(v).map(Ok),
                (Content::Str(tag), v) if tag == "Err" => E::from_content(v).map(Err),
                (k, _) => Err(format!("expected Ok/Err tag, found {k:?}")),
            },
            other => Err(format!("expected Result map, found {other:?}")),
        }
    }
}

// ---------------------------------------------------------------------------
// Helpers the derive macros expand to
// ---------------------------------------------------------------------------

/// Views content as a map, for derived struct deserializers.
#[doc(hidden)]
pub fn de_map<'c>(c: &'c Content, ty: &str) -> Result<&'c [(Content, Content)], String> {
    match c {
        Content::Map(entries) => Ok(entries),
        other => Err(format!("expected map for {ty}, found {other:?}")),
    }
}

/// Views content as a sequence of exactly `n` items, for tuple shapes.
#[doc(hidden)]
pub fn de_seq<'c>(c: &'c Content, n: usize, ty: &str) -> Result<&'c [Content], String> {
    match c {
        Content::Seq(items) if items.len() == n => Ok(items),
        Content::Seq(items) => Err(format!(
            "expected {n} items for {ty}, found {}",
            items.len()
        )),
        other => Err(format!("expected sequence for {ty}, found {other:?}")),
    }
}

/// Pulls a named field out of a derived struct's map entries.
#[doc(hidden)]
pub fn de_field<T: Deserialize>(entries: &[(Content, Content)], name: &str) -> Result<T, String> {
    for (k, v) in entries {
        if matches!(k, Content::Str(s) if s == name) {
            return T::from_content(v);
        }
    }
    Err(format!("missing field `{name}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i32::from_content(&42i32.to_content()), Ok(42));
        assert_eq!(bool::from_content(&true.to_content()), Ok(true));
        assert_eq!(
            String::from_content(&"hi".to_string().to_content()),
            Ok("hi".to_string())
        );
    }

    #[test]
    fn non_finite_floats_round_trip_as_strings() {
        assert_eq!(f64::NAN.to_content(), Content::Str("NaN".to_string()));
        assert!(f64::from_content(&f64::NAN.to_content()).unwrap().is_nan());
        assert_eq!(
            f32::from_content(&f32::NEG_INFINITY.to_content()),
            Ok(f32::NEG_INFINITY)
        );
    }

    #[test]
    fn composites_round_trip() {
        let v: Vec<(String, Option<i64>)> = vec![("a".into(), Some(1)), ("b".into(), None)];
        let back = Vec::<(String, Option<i64>)>::from_content(&v.to_content()).unwrap();
        assert_eq!(v, back);

        let mut m = BTreeMap::new();
        m.insert("k".to_string(), vec![1u8, 2]);
        assert_eq!(
            BTreeMap::<String, Vec<u8>>::from_content(&m.to_content()),
            Ok(m)
        );
    }
}
