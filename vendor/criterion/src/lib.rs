//! Offline stand-in for [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the subset of the criterion API this workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`] / [`Bencher::iter_batched`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros. Measurement is a
//! simple wall-clock loop (warmup + timed iterations until the measurement
//! window closes) reporting mean time per iteration on stdout — enough to
//! compare executors on the same machine, without the statistical machinery
//! of the real crate.

use std::time::{Duration, Instant};

/// Re-export of the standard black box, like the real crate provides.
pub use std::hint::black_box;

/// How `iter_batched` amortizes setup cost; the stand-in times the routine
/// in isolation regardless, so the variants only document intent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One setup per routine invocation.
    PerIteration,
}

/// Benchmark driver: holds the measurement settings benches run under.
pub struct Criterion {
    measurement_time: Duration,
    min_iters: u64,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_millis(500),
            min_iters: 10,
        }
    }
}

impl Criterion {
    /// Sets the wall-clock budget for each benchmark's measurement loop.
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Sets the minimum number of timed iterations (the real crate's
    /// statistical sample count; here a floor on loop iterations).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        self.min_iters = n.max(1) as u64;
        self
    }

    /// Runs one benchmark closure under this driver's settings.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            measurement_time: self.measurement_time,
            min_iters: self.min_iters,
            sample: None,
        };
        f(&mut b);
        report(&id.into(), b.sample);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.measurement_time,
            min_iters: self.min_iters,
            _parent: self,
        }
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    min_iters: u64,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the group's measurement window.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Overrides the group's minimum iteration count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.min_iters = n.max(1) as u64;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            measurement_time: self.measurement_time,
            min_iters: self.min_iters,
            sample: None,
        };
        f(&mut b);
        report(&format!("{}/{}", self.name, id.into()), b.sample);
        self
    }

    /// Ends the group (prints nothing extra; provided for API parity).
    pub fn finish(self) {}
}

struct Sample {
    total: Duration,
    iters: u64,
}

/// Times closures handed to it by a benchmark function.
pub struct Bencher {
    measurement_time: Duration,
    min_iters: u64,
    sample: Option<Sample>,
}

impl Bencher {
    /// Times `routine` repeatedly until the measurement window closes.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        black_box(routine()); // warmup
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(routine());
            iters += 1;
            if iters >= self.min_iters && start.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.sample = Some(Sample {
            total: start.elapsed(),
            iters,
        });
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup cost.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        black_box(routine(setup())); // warmup
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        let window = Instant::now();
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            total += start.elapsed();
            iters += 1;
            if iters >= self.min_iters && window.elapsed() >= self.measurement_time {
                break;
            }
        }
        self.sample = Some(Sample { total, iters });
    }
}

fn report(id: &str, sample: Option<Sample>) {
    match sample {
        Some(s) if s.iters > 0 => {
            let per_iter = s.total / u32::try_from(s.iters).unwrap_or(u32::MAX).max(1);
            println!("{id:<48} time: {per_iter:>12.2?}/iter  ({} iters)", s.iters);
        }
        _ => println!("{id:<48} time: <no measurement>"),
    }
}

/// Declares a benchmark group function, mirroring the real macro's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench binary's `main`, running each group in order.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_records_a_sample() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(1));
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut g = c.benchmark_group("g");
        g.sample_size(2)
            .measurement_time(Duration::from_millis(1))
            .bench_function("batched", |b| {
                b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput)
            });
        g.finish();
    }
}
