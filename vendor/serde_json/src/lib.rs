//! Offline stand-in for [`serde_json`](https://crates.io/crates/serde_json).
//!
//! Renders the vendored serde [`Content`] tree as JSON text and parses JSON
//! text back into it. Only the entry points this workspace calls are
//! provided: [`to_string`], [`to_string_pretty`], and [`from_str`].

use serde::{Content, Deserialize, Serialize};
use std::fmt;

/// Error raised by JSON encoding or decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    message: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error: {}", self.message)
    }
}

impl std::error::Error for Error {}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` as JSON indented with two spaces.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_content(&value.to_content(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a JSON string into a `T`.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let content = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!("trailing input at byte {}", p.pos)));
    }
    T::from_content(&content).map_err(Error::new)
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn write_content(c: &Content, out: &mut String, indent: Option<usize>, depth: usize) {
    match c {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::Int(i) => {
            out.push_str(&i.to_string());
        }
        Content::Float(f) => {
            // `{:?}` prints the shortest string that round-trips the value.
            out.push_str(&format!("{f:?}"));
        }
        Content::Str(s) => write_json_string(s, out),
        Content::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_content(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Content::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_key(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_content(v, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

/// JSON object keys must be strings; non-string keys (integer-keyed maps)
/// are stringified the way real serde_json stringifies integer keys.
fn write_key(k: &Content, out: &mut String) {
    match k {
        Content::Str(s) => write_json_string(s, out),
        Content::Int(i) => write_json_string(&i.to_string(), out),
        Content::Bool(b) => write_json_string(&b.to_string(), out),
        other => {
            let mut inner = String::new();
            write_content(other, &mut inner, None, 0);
            write_json_string(&inner, out);
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..depth * step {
            out.push(' ');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{8}' => out.push_str("\\b"),
            '\u{c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len()
            && matches!(self.bytes[self.pos], b' ' | b'\t' | b'\n' | b'\r')
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') if self.eat_literal("null") => Ok(Content::Null),
            Some(b't') if self.eat_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.eat_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            entries.push((Content::Str(key), value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at byte {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while self.pos < self.bytes.len()
                && self.bytes[self.pos] != b'"'
                && self.bytes[self.pos] != b'\\'
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| Error::new(e.to_string()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    self.parse_escape(&mut out)?;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_escape(&mut self, out: &mut String) -> Result<(), Error> {
        let esc = self
            .peek()
            .ok_or_else(|| Error::new("unterminated escape"))?;
        self.pos += 1;
        match esc {
            b'"' => out.push('"'),
            b'\\' => out.push('\\'),
            b'/' => out.push('/'),
            b'n' => out.push('\n'),
            b'r' => out.push('\r'),
            b't' => out.push('\t'),
            b'b' => out.push('\u{8}'),
            b'f' => out.push('\u{c}'),
            b'u' => {
                let first = self.parse_hex4()?;
                let code = if (0xD800..0xDC00).contains(&first) {
                    // High surrogate: a low surrogate escape must follow.
                    if !(self.eat_literal("\\u")) {
                        return Err(Error::new("lone high surrogate"));
                    }
                    let low = self.parse_hex4()?;
                    if !(0xDC00..0xE000).contains(&low) {
                        return Err(Error::new("invalid low surrogate"));
                    }
                    0x10000 + ((first - 0xD800) << 10) + (low - 0xDC00)
                } else {
                    first
                };
                out.push(char::from_u32(code).ok_or_else(|| Error::new("invalid unicode escape"))?);
            }
            other => {
                return Err(Error::new(format!("invalid escape `\\{}`", other as char)));
            }
        }
        Ok(())
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|e| Error::new(e.to_string()))?;
        self.pos += 4;
        u32::from_str_radix(hex, 16).map_err(|e| Error::new(e.to_string()))
    }

    fn parse_number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| Error::new(e.to_string()))?;
        if is_float {
            text.parse::<f64>()
                .map(Content::Float)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        } else {
            text.parse::<i128>()
                .map(Content::Int)
                .map_err(|e| Error::new(format!("bad number `{text}`: {e}")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&"a\"b\n".to_string()).unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
    }

    #[test]
    fn composites_round_trip() {
        let v: Vec<Option<i32>> = vec![Some(1), None, Some(-3)];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,null,-3]");
        assert_eq!(from_str::<Vec<Option<i32>>>(&s).unwrap(), v);

        let mut m = std::collections::BTreeMap::new();
        m.insert("x".to_string(), vec![1u8, 2]);
        let s = to_string(&m).unwrap();
        assert_eq!(s, r#"{"x":[1,2]}"#);
        assert_eq!(
            from_str::<std::collections::BTreeMap<String, Vec<u8>>>(&s).unwrap(),
            m
        );
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = vec![1, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn unicode_escapes_parse() {
        assert_eq!(from_str::<String>(r#""é😀""#).unwrap(), "é😀");
    }
}
