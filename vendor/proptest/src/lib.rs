//! Offline stand-in for [`proptest`](https://crates.io/crates/proptest).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a miniature property-testing harness with the same API shape:
//! [`Strategy`](strategy::Strategy) values generate inputs from a
//! deterministic RNG, and the [`proptest!`] macro expands each property into
//! an ordinary `#[test]` that loops over generated cases. There is no
//! shrinking and no persistence — failures report the generated values via
//! the assertion message, which is enough for a deterministic, offline test
//! suite.
//!
//! Deliberate deviations from real proptest, chosen for determinism:
//! the RNG is fixed-seed (every run sees the same cases), and
//! `any::<f32/f64>()` generates decimal-friendly finite values rather than
//! arbitrary bit patterns.

pub mod test_runner {
    //! Test configuration and the deterministic RNG cases are drawn from.

    /// Per-block configuration; only `cases` is meaningful here.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> ProptestConfig {
            ProptestConfig { cases: 64 }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> ProptestConfig {
            ProptestConfig { cases }
        }
    }

    /// A fixed-seed xorshift64* generator: every test run sees the same
    /// sequence, so failures are always reproducible.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// The RNG every property test starts from.
        pub fn deterministic() -> TestRng {
            TestRng {
                state: 0x9E37_79B9_7F4A_7C15,
            }
        }

        /// Next raw 64-bit value.
        pub fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_F491_4F6C_DD1D)
        }

        /// Uniform value in `0..n` (`0` when `n == 0`).
        pub fn below(&mut self, n: u64) -> u64 {
            if n == 0 {
                0
            } else {
                self.next_u64() % n
            }
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value from the strategy.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Erases the strategy's concrete type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// Object-safe core of [`Strategy`], used by [`BoxedStrategy`].
    trait DynStrategy {
        type Value;
        fn generate_dyn(&self, rng: &mut TestRng) -> Self::Value;
    }

    impl<S: Strategy> DynStrategy for S {
        type Value = S::Value;

        fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn DynStrategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.0.generate_dyn(rng)
        }
    }

    /// `strategy.prop_map(f)`.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
        type Value = U;

        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Chooses among boxed alternatives, optionally weighted; the expansion
    /// target of [`prop_oneof!`](crate::prop_oneof).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Equal-probability alternatives.
        pub fn uniform(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            Union::weighted(arms.into_iter().map(|a| (1, a)).collect())
        }

        /// Weighted alternatives.
        pub fn weighted(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total_weight = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total_weight > 0, "prop_oneof! needs at least one arm");
            Union { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight);
            for (w, arm) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return arm.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights sum to total_weight")
        }
    }

    macro_rules! int_range_strategies {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128) - (self.start as i128);
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    (self.start as i128 + off) as $t
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128) - (start as i128) + 1;
                    let off = (rng.next_u64() as i128).rem_euclid(span);
                    (start as i128 + off) as $t
                }
            }
        )*};
    }

    int_range_strategies!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! tuple_strategies {
        ($(($($name:ident : $idx:tt),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    ($(self.$idx.generate(rng),)+)
                }
            }
        )*};
    }

    tuple_strategies! {
        (A: 0)
        (A: 0, B: 1)
        (A: 0, B: 1, C: 2)
        (A: 0, B: 1, C: 2, D: 3)
    }

    /// String literals act as generation patterns (a small regex subset:
    /// literal chars, `[...]` classes with ranges, `\PC` for printable
    /// chars, and `{n}` / `{m,n}` repetition).
    impl Strategy for &'static str {
        type Value = String;

        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_from_pattern(self, rng)
        }
    }
}

pub mod string {
    //! Pattern-string generation for `&str` strategies.

    use crate::test_runner::TestRng;

    /// Printable pool backing `\PC`: ASCII printables plus a few multibyte
    /// characters so UTF-8 handling gets exercised.
    fn printable_pool() -> Vec<char> {
        let mut pool: Vec<char> = (0x20u8..0x7F).map(|b| b as char).collect();
        pool.extend(['é', 'ß', 'λ', '中', '½', '😀']);
        pool
    }

    enum Atom {
        Choice(Vec<char>),
        Literal(char),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '[' => {
                    let mut options = Vec::new();
                    loop {
                        match chars.next() {
                            Some(']') => break,
                            Some('\\') => {
                                // Only `\PC` appears in this workspace.
                                let p = chars.next();
                                let c2 = chars.next();
                                assert_eq!(
                                    (p, c2),
                                    (Some('P'), Some('C')),
                                    "unsupported escape in class of {pattern:?}"
                                );
                                options.extend(printable_pool());
                            }
                            Some(lo) => {
                                if chars.peek() == Some(&'-') {
                                    let mut look = chars.clone();
                                    look.next(); // the '-'
                                    match look.peek() {
                                        Some(&hi) if hi != ']' => {
                                            chars.next();
                                            chars.next();
                                            options.extend((lo..=hi).filter(|c| c.is_ascii()));
                                            continue;
                                        }
                                        _ => {}
                                    }
                                }
                                options.push(lo);
                            }
                            None => panic!("unterminated class in {pattern:?}"),
                        }
                    }
                    Atom::Choice(options)
                }
                '\\' => {
                    let p = chars.next();
                    let c2 = chars.next();
                    assert_eq!(
                        (p, c2),
                        (Some('P'), Some('C')),
                        "unsupported escape in {pattern:?}"
                    );
                    Atom::Choice(printable_pool())
                }
                lit => Atom::Literal(lit),
            };
            let (min, max) = if chars.peek() == Some(&'{') {
                chars.next();
                let mut min_txt = String::new();
                let mut max_txt = String::new();
                let mut in_max = false;
                loop {
                    match chars.next() {
                        Some('}') => break,
                        Some(',') => in_max = true,
                        Some(d) if d.is_ascii_digit() => {
                            if in_max {
                                max_txt.push(d);
                            } else {
                                min_txt.push(d);
                            }
                        }
                        other => panic!("bad repetition {other:?} in {pattern:?}"),
                    }
                }
                let min: usize = min_txt.parse().expect("repetition min");
                let max: usize = if in_max {
                    max_txt.parse().expect("repetition max")
                } else {
                    min
                };
                (min, max)
            } else {
                (1, 1)
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    /// Generates one string matching `pattern`.
    pub fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let count = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            for _ in 0..count {
                match &piece.atom {
                    Atom::Literal(c) => out.push(*c),
                    Atom::Choice(options) => {
                        out.push(options[rng.below(options.len() as u64) as usize]);
                    }
                }
            }
        }
        out
    }
}

pub mod arbitrary {
    //! `any::<T>()` and the [`Arbitrary`] trait backing it.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // Floats are decimal-friendly finite values (exactly representable in
    // few decimal digits) so they survive every text round-trip the tests
    // push them through; a few fixed anchors keep edge cases in the mix.
    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            match rng.below(16) {
                0 => 0.0,
                1 => 1.0,
                2 => -1.0,
                3 => 1e15,
                _ => {
                    let mantissa = rng.below(2_000_000_001) as i64 - 1_000_000_000;
                    let scale = 10f64.powi(rng.below(7) as i32);
                    mantissa as f64 / scale
                }
            }
        }
    }

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            match rng.below(16) {
                0 => 0.0,
                1 => 1.0,
                2 => -1.0,
                3 => 1e7,
                _ => {
                    let mantissa = rng.below(2_000_001) as i32 - 1_000_000;
                    let scale = 10f32.powi(rng.below(4) as i32);
                    mantissa as f32 / scale
                }
            }
        }
    }

    impl Arbitrary for char {
        fn arbitrary(rng: &mut TestRng) -> char {
            char::from_u32(rng.below(0xD800) as u32).unwrap_or('a')
        }
    }
}

pub mod collection {
    //! Collection strategies (`vec`, `btree_map`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// A `Vec` whose length is drawn from `size` (half-open, like the real
    /// crate's range syntax) and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let len = self.size.start + rng.below(span as u64) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeMap` with up to `size.end - 1` entries (duplicate keys
    /// merge, as with the real crate).
    pub fn btree_map<K: Strategy, V: Strategy>(
        key: K,
        value: V,
        size: Range<usize>,
    ) -> BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, size }
    }

    /// Strategy returned by [`btree_map`].
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        size: Range<usize>,
    }

    impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
    where
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let span = self.size.end.saturating_sub(self.size.start).max(1);
            let entries = self.size.start + rng.below(span as u64) as usize;
            let mut out = BTreeMap::new();
            for _ in 0..entries {
                out.insert(self.key.generate(rng), self.value.generate(rng));
            }
            out
        }
    }
}

pub mod sample {
    //! Choosing from a fixed set of options.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Uniformly picks one of `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }

    /// Strategy returned by [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    //! The glob import real proptest users write: `use proptest::prelude::*;`.

    pub use crate::arbitrary::{any, Any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Property assertion; identical to `assert!` in this stand-in.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Property equality assertion; identical to `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Property inequality assertion; identical to `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Chooses among alternative strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $arm:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($arm))),+
        ])
    };
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::uniform(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Expands property functions into plain `#[test]`s that loop over
/// deterministically generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@cfg ($cfg) $($rest)*);
    };
    (@cfg ($cfg:expr)
     $($(#[$meta:meta])*
       fn $name:ident($($pat:pat_param in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng = $crate::test_runner::TestRng::deterministic();
                for __case in 0..__cfg.cases {
                    let _ = __case;
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    $body
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@cfg ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn pair() -> impl Strategy<Value = (bool, String)> {
        prop_oneof![
            any::<bool>().prop_map(|b| (b, "fixed".to_string())),
            "[a-z]{1,4}".prop_map(|s| (true, s)),
        ]
    }

    #[test]
    fn patterns_respect_classes_and_counts() {
        let mut rng = TestRng::deterministic();
        for _ in 0..200 {
            let s = crate::string::generate_from_pattern("[a-z][a-z0-9]{0,8}", &mut rng);
            assert!((1..=9).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().next().unwrap().is_ascii_lowercase());
            assert!(s
                .chars()
                .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit()));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic();
        for _ in 0..200 {
            let v = Strategy::generate(&(-5i32..7), &mut rng);
            assert!((-5..7).contains(&v));
            let u = Strategy::generate(&(0u8..38), &mut rng);
            assert!(u < 38);
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::deterministic();
        let mut b = TestRng::deterministic();
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn generated_vecs_respect_size(v in crate::collection::vec(any::<u8>(), 1..12)) {
            prop_assert!((1..=11).contains(&v.len()));
        }

        #[test]
        fn oneof_arms_all_fire(
            (flag, s) in pair(),
            pick in crate::sample::select(vec![0usize, 5, 10]),
        ) {
            prop_assert!(s == "fixed" || flag);
            prop_assert!([0, 5, 10].contains(&pick));
        }
    }
}
