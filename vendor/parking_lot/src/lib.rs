//! Offline stand-in for [`parking_lot`](https://crates.io/crates/parking_lot).
//!
//! The build environment has no access to crates.io, so the workspace vendors
//! the tiny slice of the parking_lot API it actually uses: a [`Mutex`] whose
//! `lock()` returns a guard directly (no poisoning) and a matching [`RwLock`].
//! Both delegate to `std::sync`; a poisoned std lock (a thread panicked while
//! holding it) is surfaced by taking the inner data anyway, mirroring
//! parking_lot's behavior of never poisoning.

use std::fmt;
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock that never poisons.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until it is available.
    ///
    /// Unlike `std::sync::Mutex`, the guard is returned directly: panics in
    /// other threads never poison the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Attempts to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(guard),
            Err(std::sync::TryLockError::Poisoned(poisoned)) => Some(poisoned.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Returns a mutable reference to the protected value (requires `&mut`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_tuple("Mutex").field(&&*guard).finish(),
            None => f.write_str("Mutex(<locked>)"),
        }
    }
}

/// A reader–writer lock that never poisons.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a new lock protecting `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_tuple("RwLock").field(&&*guard).finish(),
            Err(_) => f.write_str("RwLock(<locked>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trips() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_allows_concurrent_readers() {
        let l = RwLock::new(5);
        let a = l.read();
        let b = l.read();
        assert_eq!(*a + *b, 10);
    }

    #[test]
    fn panicked_holder_does_not_poison() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _guard = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 0);
    }
}
