//! Offline stand-in for [`serde_derive`](https://crates.io/crates/serde_derive).
//!
//! Generates `serde::Serialize` / `serde::Deserialize` impls for the item
//! shapes this workspace actually contains: non-generic named structs, tuple
//! structs, and enums with unit / tuple / struct variants, none carrying
//! `#[serde(...)]` attributes. The item is parsed directly from the raw
//! `proc_macro::TokenStream` (no `syn`/`quote` — those are unavailable
//! offline) and the generated impl is emitted as source text.
//!
//! The representation matches real serde's externally-tagged default:
//! named struct → map, newtype struct/variant → inner value, tuple shapes →
//! sequence, unit variant → variant-name string, data-carrying variant →
//! single-entry map keyed by the variant name.

use proc_macro::{Delimiter, TokenStream, TokenTree};
use std::fmt::Write;
use std::iter::Peekable;

/// Derives `serde::Serialize` for a non-generic struct or enum.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("generated Serialize impl must parse")
}

/// Derives `serde::Deserialize` for a non-generic struct or enum.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Item model + parsing
// ---------------------------------------------------------------------------

struct Item {
    name: String,
    kind: ItemKind,
}

enum ItemKind {
    UnitStruct,
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

fn parse_item(input: TokenStream) -> Item {
    let mut iter = input.into_iter().peekable();
    let keyword = loop {
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute (doc comment etc.): skip the bracket group.
                iter.next();
            }
            Some(TokenTree::Ident(id)) => {
                let s = id.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
                // `pub`, `pub(crate)` etc. — visibility groups fall through
                // to the catch-all below.
            }
            Some(_) => {}
            None => panic!("derive input has no struct/enum keyword"),
        }
    };
    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("generic types are not supported by the vendored serde_derive");
    }
    let kind = if keyword == "struct" {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::NamedStruct(parse_named_fields(g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::UnitStruct,
            other => panic!("unsupported struct body: {other:?}"),
        }
    } else {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(g.stream()))
            }
            other => panic!("expected enum body, found {other:?}"),
        }
    };
    Item { name, kind }
}

/// Field names of a `{ ... }` body; types are skipped angle-bracket-aware so
/// commas inside `BTreeMap<K, V>` don't split fields.
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("expected field name, found {other:?}"),
            None => break,
        };
        match iter.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{name}`, found {other:?}"),
        }
        fields.push(name);
        skip_type_until_comma(&mut iter);
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut iter = stream.into_iter().peekable();
    let mut fields = 0;
    loop {
        skip_attrs_and_vis(&mut iter);
        if iter.peek().is_none() {
            break;
        }
        fields += 1;
        skip_type_until_comma(&mut iter);
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut variants = Vec::new();
    let mut iter = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut iter);
        let name = match iter.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            Some(other) => panic!("expected variant name, found {other:?}"),
            None => break,
        };
        let shape = match iter.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                iter.next();
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                iter.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        if matches!(iter.peek(), Some(TokenTree::Punct(p)) if p.as_char() == ',') {
            iter.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}

fn skip_attrs_and_vis(iter: &mut Peekable<proc_macro::token_stream::IntoIter>) {
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the `[...]` group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if matches!(
                    iter.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    iter.next(); // `(crate)` / `(super)`
                }
            }
            _ => break,
        }
    }
}

/// Consumes one type, stopping after the next top-level `,` (or at the end).
/// Tracks `<`/`>` depth so generic-argument commas are not field separators.
fn skip_type_until_comma(iter: &mut Peekable<proc_macro::token_stream::IntoIter>) {
    let mut angle_depth = 0i32;
    for tt in iter.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth -= 1,
                ',' if angle_depth == 0 => break,
                _ => {}
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

fn str_content(text: &str) -> String {
    format!("::serde::Content::Str({text:?}.to_string())")
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::UnitStruct => "::serde::Content::Null".to_string(),
        ItemKind::NamedStruct(fields) => gen_named_map(fields, "&self."),
        ItemKind::TupleStruct(1) => "::serde::Serialize::to_content(&self.0)".to_string(),
        ItemKind::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_content(&self.{i})"))
                .collect();
            format!("::serde::Content::Seq(vec![{}])", items.join(", "))
        }
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                let tag = str_content(vname);
                match &v.shape {
                    Shape::Unit => {
                        let _ = writeln!(arms, "{name}::{vname} => {tag},");
                    }
                    Shape::Tuple(1) => {
                        let _ = writeln!(
                            arms,
                            "{name}::{vname}(f0) => ::serde::Content::Map(vec![({tag}, \
                             ::serde::Serialize::to_content(f0))]),"
                        );
                    }
                    Shape::Tuple(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binders
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_content({b})"))
                            .collect();
                        let _ = writeln!(
                            arms,
                            "{name}::{vname}({}) => ::serde::Content::Map(vec![({tag}, \
                             ::serde::Content::Seq(vec![{}]))]),",
                            binders.join(", "),
                            items.join(", ")
                        );
                    }
                    Shape::Named(fields) => {
                        let inner = gen_named_map(fields, "");
                        let _ = writeln!(
                            arms,
                            "{name}::{vname} {{ {} }} => ::serde::Content::Map(vec![({tag}, \
                             {inner})]),",
                            fields.join(", ")
                        );
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_content(&self) -> ::serde::Content {{\n{body}\n}}\n}}\n"
    )
}

/// `Content::Map(vec![("f", to_content(<prefix>f)), ...])`.
fn gen_named_map(fields: &[String], prefix: &str) -> String {
    let entries: Vec<String> = fields
        .iter()
        .map(|f| {
            format!(
                "({}, ::serde::Serialize::to_content({prefix}{f}))",
                str_content(f)
            )
        })
        .collect();
    format!("::serde::Content::Map(vec![{}])", entries.join(", "))
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::UnitStruct => format!(
            "match c {{ ::serde::Content::Null => Ok({name}), other => \
             Err(format!(\"expected null for {name}, found {{other:?}}\")) }}"
        ),
        ItemKind::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de_field(m, {f:?})?"))
                .collect();
            format!(
                "let m = ::serde::de_map(c, {name:?})?;\nOk({name} {{ {} }})",
                inits.join(", ")
            )
        }
        ItemKind::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_content(c)?))")
        }
        ItemKind::TupleStruct(n) => {
            let inits: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_content(&s[{i}])?"))
                .collect();
            format!(
                "let s = ::serde::de_seq(c, {n}, {name:?})?;\nOk({name}({}))",
                inits.join(", ")
            )
        }
        ItemKind::Enum(variants) => gen_enum_deserialize(name, variants),
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_content(c: &::serde::Content) -> Result<Self, String> {{\n{body}\n}}\n}}\n"
    )
}

fn gen_enum_deserialize(name: &str, variants: &[Variant]) -> String {
    let mut unit_arms = String::new();
    let mut data_arms = String::new();
    for v in variants {
        let vname = &v.name;
        match &v.shape {
            Shape::Unit => {
                let _ = writeln!(unit_arms, "{vname:?} => Ok({name}::{vname}),");
            }
            Shape::Tuple(1) => {
                let _ = writeln!(
                    data_arms,
                    "{vname:?} => Ok({name}::{vname}(::serde::Deserialize::from_content(v)?)),"
                );
            }
            Shape::Tuple(n) => {
                let inits: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_content(&s[{i}])?"))
                    .collect();
                let _ = writeln!(
                    data_arms,
                    "{vname:?} => {{ let s = ::serde::de_seq(v, {n}, \"{name}::{vname}\")?; \
                     Ok({name}::{vname}({})) }},",
                    inits.join(", ")
                );
            }
            Shape::Named(fields) => {
                let inits: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{f}: ::serde::de_field(m, {f:?})?"))
                    .collect();
                let _ = writeln!(
                    data_arms,
                    "{vname:?} => {{ let m = ::serde::de_map(v, \"{name}::{vname}\")?; \
                     Ok({name}::{vname} {{ {} }}) }},",
                    inits.join(", ")
                );
            }
        }
    }
    let map_arm = if data_arms.is_empty() {
        format!(
            "::serde::Content::Map(_) => \
             Err(\"enum {name} has no data-carrying variants\".to_string()),\n"
        )
    } else {
        format!(
            "::serde::Content::Map(entries) if entries.len() == 1 => {{\n\
             let (k, v) = &entries[0];\n\
             let k = match k {{\n\
             ::serde::Content::Str(s) => s.as_str(),\n\
             other => return Err(format!(\"non-string variant key {{other:?}} for {name}\")),\n\
             }};\n\
             match k {{\n{data_arms}\
             other => Err(format!(\"unknown variant `{{other}}` for {name}\")),\n}}\n}}\n"
        )
    };
    format!(
        "match c {{\n\
         ::serde::Content::Str(s) => match s.as_str() {{\n{unit_arms}\
         other => Err(format!(\"unknown unit variant `{{other}}` for {name}\")),\n}},\n\
         {map_arm}\
         other => Err(format!(\"expected variant for {name}, found {{other:?}}\")),\n}}"
    )
}
