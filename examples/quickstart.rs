//! Quickstart: deploy the simulated Spark–Hive data plane, cross-test a few
//! inputs, and inspect the discrepancies the oracles uncover.
//!
//! Run with `cargo run --example quickstart`.

use csi::core::value::{DataType, Value};
use csi::cross_test::{
    generator::{TestInput, Validity},
    Campaign,
};

fn main() {
    // Hand-pick three revealing inputs (the full catalogue has 422; see
    // `cargo run -p csi-bench --bin section8`).
    let inputs = vec![
        TestInput {
            id: 0,
            column_type: DataType::Byte,
            value: Value::Byte(5),
            validity: Validity::Valid,
            label: "a TINYINT value".into(),
            expected_back: None,
        },
        TestInput {
            id: 1,
            column_type: DataType::Decimal(10, 2),
            value: Value::Decimal(csi::core::value::Decimal::parse("1.5").unwrap()),
            validity: Validity::Valid,
            label: "a valid decimal with runtime scale 1".into(),
            expected_back: None,
        },
        TestInput {
            id: 2,
            column_type: DataType::Boolean,
            value: Value::Str("t".into()),
            validity: Validity::Invalid,
            label: "Hive's lenient boolean spelling".into(),
            expected_back: None,
        },
    ];

    println!("cross-testing 3 inputs through all 8 interface plans x 3 formats...\n");
    let outcome = Campaign::new(&inputs).run();
    print!("{}", outcome.report.render());

    println!("\nevidence for the first discrepancy:");
    if let Some(d) = outcome.report.discrepancies.first() {
        for f in d.evidence.iter().take(3) {
            println!("  [{}] input {}: {}", f.oracle, f.input_id, f.detail);
        }
    }

    println!(
        "\nEach of these corresponds to a real issue ({}), found by the same\n\
         write-then-read differential testing the paper applies in Section 8.",
        outcome.report.issue_keys().join(", ")
    );

    // The same space, coverage-guided: novel boundary-crossing signatures
    // admit inputs to a mutating corpus, and every discrepancy is shrunk
    // to a 1-row x 1-column reproducer.
    println!("\nexploring the same inputs coverage-guided (seed 42, budget 96)...\n");
    let explored = Campaign::new(&inputs).seed(42).explore(96).run();
    print!("{}", explored.render());
}
