//! Management-plane CSI failures end to end: FLINK-19141's inconsistent
//! scheduler configuration (Figure 3), SPARK-16901's silent configuration
//! override made visible by the provenance-tracking config plane, and
//! FLINK-887's monitoring-triggered kill.
//!
//! Run with `cargo run --example config_coherence`.

use csi::core::config::ConfigMap;
use csi::flink::jobmanager::{launch_jobmanager, JobManagerSpec, MemoryModel, SizingPolicy};
use csi::flink::yarn_driver::{capacity_scheduler, check_allocation_consistency, fair_scheduler};
use csi::spark::SparkConfig;
use csi::yarn::config::default_yarn_config;
use csi::yarn::{Resource, ResourceManager};

fn main() {
    println!("== FLINK-19141 (Figure 3): same keys, different schedulers ==");
    let yarn_conf = default_yarn_config();
    let ask = Resource::new(1536, 1);
    println!(
        "  CapacityScheduler: {:?}",
        check_allocation_consistency(ask, &yarn_conf, &capacity_scheduler())
    );
    match check_allocation_consistency(ask, &yarn_conf, &fair_scheduler()) {
        Err(e) => println!("  FairScheduler:     {e}"),
        Ok(r) => println!("  FairScheduler:     {r}"),
    }

    println!("\n== SPARK-16901: the silent override, made traceable ==");
    let mut hive_site = ConfigMap::new("hive");
    hive_site.set("hive.exec.scratchdir", "/tmp/hive", "hive-site.xml");
    hive_site.set(
        "spark.sql.session.timeZone",
        "America/Los_Angeles",
        "hive-site.xml",
    );
    let spark = SparkConfig::new();
    let report = spark.overlay_onto_hive_site(&mut hive_site);
    println!(
        "  keys silently overridden by Spark: {:?}",
        report.overridden
    );
    println!("  provenance trail of the victim key:");
    for line in hive_site.trace("spark.sql.session.timeZone").lines() {
        println!("    {line}");
    }

    println!("== FLINK-887: YARN's pmem monitor kills the JobManager ==");
    let mut rm = ResourceManager::with_nodes(2, Resource::new(16384, 16));
    let app = rm.register_application("flink-session");
    let memory = MemoryModel {
        heap_mb: 2048,
        off_heap_mb: 256,
    };
    for policy in [SizingPolicy::HeapOnly, SizingPolicy::ProcessSizeWithCutoff] {
        let spec = JobManagerSpec {
            memory,
            policy,
            vcores: 1,
        };
        println!(
            "  sizing {:?}: container ask = {}",
            policy,
            spec.container_request()
        );
        match launch_jobmanager(&mut rm, app, &spec).expect("launch") {
            csi::flink::LaunchOutcome::Running(id) => {
                println!("    -> running in container {id:?}");
            }
            csi::flink::LaunchOutcome::KilledByPmemMonitor { reason, .. } => {
                println!("    -> KILLED: {reason}");
            }
        }
    }
}
