//! The key-value corner of the data plane: an HBase region on HDFS, the
//! Hive storage handler on top, and the two control-plane seams
//! (HBASE-537 safe mode, HBASE-16621 stale location caches).
//!
//! Run with `cargo run --example kv_store`.

use csi::core::diag::DiagSink;
use csi::core::value::Value;
use csi::hbase::cluster::{ClusterState, HBaseClient, RetryPolicy, ServerId};
use csi::hbase::{HBaseError, Region};
use csi::hdfs::{DataNodeId, MiniHdfs};
use csi::hive::hbase_handler::HBaseBackedTable;
use csi::hive::metastore::ColumnDef;
use csi::hive::HiveType;

fn main() {
    println!("== HBASE-537: startup races HDFS safe mode ==");
    let mut fs = MiniHdfs::new();
    match Region::open("events", &mut fs) {
        Err(HBaseError::NameNodeNotReady) => {
            println!(
                "  shipped startup: fatal — {}",
                HBaseError::NameNodeNotReady
            )
        }
        other => println!("  unexpected: {other:?}"),
    }
    let region = Region::open_with_retry("events", &mut fs, 5, |fs| {
        fs.register_datanode(DataNodeId(0));
    })
    .expect("retrying startup succeeds once datanodes register");
    println!(
        "  fixed startup: region {:?} open after retry\n",
        region.name()
    );

    println!("== Hive rows as key-value tuples (Finding 5's safe abstraction) ==");
    let sink = DiagSink::new();
    let h = sink.handle("minihive");
    let columns = vec![
        ColumnDef {
            name: "user_id".into(),
            hive_type: HiveType::Int,
        },
        ColumnDef {
            name: "city".into(),
            hive_type: HiveType::Str,
        },
    ];
    let mut table = HBaseBackedTable::open("users", columns, &mut fs).expect("open");
    table
        .insert(&[Value::Int(7), Value::Str("Rome".into())], &mut fs, &h)
        .expect("insert");
    table.flush(&mut fs).expect("flush");
    println!("  get('7') -> {:?}", table.get("7"));
    println!("  (flat render-to-bytes mapping: no schemas to fold, no scales to\n   validate — the abstraction with zero data-plane CSI failures)\n");

    println!("== HBASE-16621: the stale location cache ==");
    let mut cluster = ClusterState::new();
    cluster.assign("users,0", ServerId(1));
    let mut client = HBaseClient::new();
    client
        .route(&cluster, "users,0", RetryPolicy::TrustCache)
        .expect("first route");
    cluster.assign("users,0", ServerId(2)); // The balancer moves the region.
    match client.route(&cluster, "users,0", RetryPolicy::TrustCache) {
        Err(e) => println!("  shipped client: {e}"),
        Ok(s) => println!("  unexpected: {s:?}"),
    }
    let healed = client
        .route(&cluster, "users,0", RetryPolicy::RefreshAndRetry)
        .expect("refresh heals");
    println!("  fixed client: refreshed to server {healed:?}");
}
