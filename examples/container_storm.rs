//! The FLINK-12342 container storm (Figure 1), swept across YARN allocation
//! latencies to expose the crossover: the storm only ignites once
//! allocating a batch takes longer than Flink's heartbeat interval.
//!
//! Run with `cargo run --example container_storm`.

use csi::flink::yarn_driver::{run_driver, DriverMode, DriverRun};

fn main() {
    println!("FLINK-12342: Flink requests C=200 containers, 500 ms heartbeat.\n");
    println!(
        "{:<28} {:>12} {:>12} {:>12}",
        "alloc latency/container", "requested", "max pending", "finished at"
    );
    for alloc_service_ms in [1, 2, 5, 10, 25, 50, 100, 200] {
        let stats = run_driver(DriverRun {
            mode: DriverMode::BuggySync,
            target: 200,
            interval_ms: 500,
            alloc_service_ms,
            start_latency_ms: 5,
            deadline_ms: 60_000,
        });
        println!(
            "{:>20} ms     {:>12} {:>12} {:>12}",
            alloc_service_ms,
            stats.total_requested,
            stats.max_pending,
            stats
                .completed_at
                .map(|t| format!("{t} ms"))
                .unwrap_or_else(|| "never".into()),
        );
    }
    println!(
        "\nThe crossover sits where latency x batch exceeds the 500 ms interval:\n\
         below it the implicit synchrony assumption holds and exactly 200\n\
         requests are sent; above it every heartbeat re-requests the pending\n\
         count and the ask queue explodes (the paper's '4000+ requested').\n"
    );

    println!("The three fixes of Figure 5, at 100 ms/container:");
    for (label, mode) in [
        ("shipped synchronous loop", DriverMode::BuggySync),
        ("workaround #1: longer interval", DriverMode::LongerInterval),
        (
            "workaround #2: eager request removal",
            DriverMode::EagerRemove,
        ),
        ("resolution #3: NMClientAsync", DriverMode::AsyncClient),
    ] {
        let stats = run_driver(DriverRun {
            mode,
            alloc_service_ms: 100,
            deadline_ms: 60_000,
            ..DriverRun::default()
        });
        println!(
            "  {label:<40} requested={:<7} max_pending={:<7} started={}",
            stats.total_requested, stats.max_pending, stats.started
        );
    }
}
