//! Regenerates the full failure study: every table and all 13 findings.
//!
//! Run with `cargo run --example study_report`.

use csi::study::{analyze, findings, render, Dataset};

fn main() {
    let ds = Dataset::load();
    print!("{}", render::table1(&ds));
    print!("{}", render::table2(&ds));
    print!("{}", render::table3(&ds));
    print!("{}", render::table5(&ds));
    print!("{}", render::table6(&ds));
    print!("{}", render::table7(&ds));
    print!("{}", render::table8(&ds));
    print!("{}", render::table9(&ds));

    println!("\nFindings:");
    for f in findings::all_findings(&ds) {
        println!(
            "  {:>2}. [{}] {}",
            f.number,
            if f.holds { "HOLDS" } else { "FAILS" },
            f.statement
        );
        println!("      {}", f.evidence);
    }
    println!("\n{}", findings::cbs_comparison());
    let loc = analyze::fix_locations(&ds);
    println!(
        "connector concentration: {} of {} fixed cases patched dedicated connector modules",
        loc.in_connectors, loc.fixed
    );
    println!(
        "paper-named rows: {} of {} (the rest are reconstructed; see DESIGN.md)",
        ds.named_cases().count(),
        ds.cases.len()
    );
}
