#!/usr/bin/env bash
# CI gate: lint clean, build clean, full test suite, and the
# serial/parallel determinism suite (the parallel campaign executor must
# reproduce the serial DiscrepancyReport byte-for-byte).
set -euo pipefail
cd "$(dirname "$0")"

echo "==> clippy (deny warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> release build"
cargo build --release --workspace

echo "==> tests"
cargo test -q --workspace

echo "==> determinism (serial vs parallel campaign)"
cargo test -q -p csi-test --test determinism

echo "==> fault matrix (injection determinism + taxonomy coverage)"
cargo test -q -p csi-test --test fault_matrix

echo "==> boundary trace summary (per-channel crossing counts)"
cargo run -q --release -p csi-bench --bin trace_summary

echo "==> online detector vs offline oracle (recall 1.0, serial == sharded)"
cargo run -q --release -p csi-bench --bin detector_report

echo "==> golden campaign report"
cargo test -q -p csi-test --test golden_report

echo "CI OK"
