#!/usr/bin/env bash
# Staged CI gate. Each stage is individually invocable so failures
# attribute to a stage instead of one monolithic log:
#
#   ./ci.sh lint          # cargo fmt --check + clippy -D warnings
#   ./ci.sh build         # release build of the whole workspace
#   ./ci.sh test          # full test suite
#   ./ci.sh determinism   # serial-vs-sharded byte-identity suites
#   ./ci.sh reports       # report bins + BENCH_*.json trajectory schema check
#   ./ci.sh golden        # golden campaign report drift check
#   ./ci.sh explore       # coverage-guided explore smoke (small budget)
#   ./ci.sh corpus        # corpus synthesis/inference tests + corpus-seeded explore smoke, run twice
#   ./ci.sh bench-smoke   # columnar serde + cluster-scale substrate smokes
#   ./ci.sh serve         # csi-serve daemon tests + multi-tenant load smoke
#   ./ci.sh all           # everything above, in order (the default)
#
# The usage string, `all`, and the dispatch below are all derived from the
# single STAGES list, so a new stage cannot be invocable yet silently
# missing from `all` (the drift `bench-smoke` once had).
#
# Everything runs offline against the vendored dependency stubs.
set -euo pipefail
cd "$(dirname "$0")"

# The one stage list. A stage named `foo-bar` is implemented by a
# function `stage_foo_bar`.
STAGES=(lint build test determinism reports golden explore corpus bench-smoke serve)

stage_lint() {
  echo "==> fmt (check only)"
  cargo fmt --all --check
  echo "==> clippy (deny warnings)"
  cargo clippy --workspace --all-targets -- -D warnings
}

stage_build() {
  echo "==> release build"
  cargo build --release --workspace
}

stage_test() {
  echo "==> tests"
  cargo test -q --workspace
}

stage_determinism() {
  echo "==> determinism (serial vs parallel campaign)"
  cargo test -q -p csi-test --test determinism
  echo "==> fault matrix (injection determinism + taxonomy coverage)"
  cargo test -q -p csi-test --test fault_matrix
  echo "==> boundary traces (side-effect-free, serial == sharded)"
  cargo test -q -p csi-test --test trace
}

stage_reports() {
  echo "==> boundary trace summary (per-channel crossing counts)"
  cargo run -q --release -p csi-bench --bin trace_summary
  echo "==> online detector vs offline oracle (recall 1.0, serial == sharded)"
  cargo run -q --release -p csi-bench --bin detector_report
  echo "==> perf-trajectory schema check (BENCH_*.json)"
  cargo run -q --release -p csi-bench --bin trajectory_check
}

stage_golden() {
  echo "==> golden campaign report"
  cargo test -q -p csi-test --test golden_report
}

stage_explore() {
  echo "==> coverage-guided explore smoke (asserts novel signatures beyond the seed grid)"
  cargo run -q --release -p csi-bench --bin explore -- 42 400 4
  echo "==> k-fault compound smoke (asserts a shrunk multi-fault cross-job cluster, serial == sharded)"
  cargo run -q --release -p csi-bench --bin kfault_explore -- 42 96 4
}

stage_corpus() {
  echo "==> corpus synthesis + schema-inference round-trip tests"
  cargo test -q -p csi-test corpus
  echo "==> corpus-seeded explore smoke, run twice with byte-compared summaries (flakiness guard)"
  local first second
  first="$(cargo run -q --release -p csi-bench --bin corpus_explore -- 42 160 4)"
  second="$(cargo run -q --release -p csi-bench --bin corpus_explore -- 42 160 4)"
  if [ "$first" != "$second" ]; then
    echo "corpus explore smoke is not byte-deterministic across back-to-back runs:" >&2
    diff <(printf '%s\n' "$first") <(printf '%s\n' "$second") >&2 || true
    exit 1
  fi
  echo "    two runs byte-identical"
}

stage_bench_smoke() {
  echo "==> columnar serde smoke (byte-identity + committed speedup floors at 256 rows)"
  cargo run -q --release -p csi-bench --bin serde_batch -- --smoke
  echo "==> cluster-scale substrate smoke (interning/vacuum/slab invariants + sim event-rate floor)"
  cargo run -q --release -p csi-bench --bin cluster_scale -- --smoke
}

stage_serve() {
  echo "==> csi-serve daemon (protocol, scheduler, tenant, end-to-end determinism)"
  cargo test -q -p csi-serve
  echo "==> multi-tenant load smoke (daemon on an ephemeral port, concurrent tenants, byte-identity)"
  cargo run -q --release -p csi-bench --bin load_serve -- --smoke
}

stage_all() {
  local s
  for s in "${STAGES[@]}"; do
    "stage_${s//-/_}"
  done
}

usage() {
  local IFS='|'
  echo "usage: $0 [${STAGES[*]}|all]" >&2
}

stage="${1:-all}"
if [ "$stage" = "all" ]; then
  stage_all
else
  known=0
  for s in "${STAGES[@]}"; do
    [ "$stage" = "$s" ] && known=1
  done
  if [ "$known" = 1 ]; then
    "stage_${stage//-/_}"
  else
    usage
    exit 2
  fi
fi

echo "CI OK (${stage})"
