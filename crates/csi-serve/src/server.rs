//! The `csi-serve` daemon: campaigns as a service over TCP.
//!
//! [`CsiServer::start`] binds a [`TcpListener`] and spins up the three
//! thread groups of the daemon:
//!
//! - an **acceptor** that takes connections and hands each to a
//!   detached reader thread;
//! - **readers** that parse newline-delimited [`CampaignRequest`]s,
//!   police tenant names and specs, journal the submission in the
//!   [`TenantRegistry`], and push admitted jobs into the
//!   [`FairScheduler`] — answering [`Frame::Accepted`] or
//!   [`Frame::Rejected`] immediately, per line;
//! - **workers** that pull jobs fairly across tenants and run each as a
//!   [`Campaign`] drawing warm deployments from a shared
//!   [`DeploymentPool`], streaming every online detection back as a
//!   [`Frame::Detection`] the moment the detector records it, then
//!   finishing with one [`Frame::Report`].
//!
//! Backpressure is admission-time and explicit: when the global queue or
//! a tenant's slice of it is full, the request is refused with the
//! observed depths rather than buffered without bound. Campaign output
//! is byte-identical to an in-process run of the same spec — pooling
//! changes wall time only, taps only observe, and per-campaign state
//! lives in the campaign's own deployment, not in the daemon.

use crate::protocol::{valid_tenant_name, CampaignRequest, Frame, RejectReason};
use crate::sched::{Admission, FairScheduler};
use crate::tenant::TenantRegistry;
use csi_core::detect::DetectionTap;
use csi_test::exec::CrossTestConfig;
use csi_test::{Campaign, CampaignSpec, DeploymentPool, PoolStats};
use parking_lot::Mutex;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Tuning knobs of one daemon instance.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Campaign worker threads (the concurrency of the service).
    pub workers: usize,
    /// Deployments pre-built into the pool before the listener opens.
    pub warm: usize,
    /// Global admission cap: queued campaigns across all tenants.
    pub max_queue: usize,
    /// Per-tenant admission cap: queued campaigns for any one tenant.
    pub per_tenant_queue: usize,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 4,
            warm: 2,
            max_queue: 64,
            per_tenant_queue: 8,
        }
    }
}

/// One admitted campaign, queued for a worker.
struct Job {
    tenant: String,
    /// Journal sequence of this submission in the tenant's namespace.
    seq: u64,
    spec: CampaignSpec,
    /// The submitting connection's write half, shared with its reader.
    writer: Arc<Mutex<TcpStream>>,
}

/// A running `csi-serve` daemon. Dropping it shuts it down gracefully:
/// admission closes, queued campaigns drain, workers join.
pub struct CsiServer {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    scheduler: Arc<FairScheduler<Job>>,
    pool: Arc<DeploymentPool>,
    registry: Arc<TenantRegistry>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

/// Writes one frame as one line, best-effort: a vanished client is the
/// client's problem, not the campaign's.
fn send(writer: &Mutex<TcpStream>, frame: &Frame) {
    let line = serde_json::to_string(frame).expect("frames serialize");
    let mut stream = writer.lock();
    let _ = stream.write_all(line.as_bytes());
    let _ = stream.write_all(b"\n");
}

impl CsiServer {
    /// Binds an ephemeral port on localhost, warms the deployment pool,
    /// and starts the acceptor and worker threads.
    pub fn start(config: &ServeConfig) -> io::Result<CsiServer> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let pool = Arc::new(DeploymentPool::new());
        // Default campaigns trace boundaries, so warm the shelf that
        // default and detection campaigns both draw from.
        pool.warm(&CrossTestConfig::default(), config.warm);
        let registry = Arc::new(TenantRegistry::new());
        let scheduler = Arc::new(FairScheduler::new(
            config.max_queue,
            config.per_tenant_queue,
        ));
        let shutdown = Arc::new(AtomicBool::new(false));

        let workers = (0..config.workers.max(1))
            .map(|_| {
                let scheduler = scheduler.clone();
                let pool = pool.clone();
                let registry = registry.clone();
                std::thread::spawn(move || {
                    while let Some((_, job)) = scheduler.next() {
                        run_job(&pool, &registry, job);
                    }
                })
            })
            .collect();

        let acceptor = {
            let scheduler = scheduler.clone();
            let registry = registry.clone();
            let shutdown = shutdown.clone();
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { continue };
                    let scheduler = scheduler.clone();
                    let registry = registry.clone();
                    // Readers are detached: they end when their client
                    // hangs up, and hold no state the daemon must join.
                    std::thread::spawn(move || serve_connection(stream, &scheduler, &registry));
                }
            })
        };

        Ok(CsiServer {
            addr,
            shutdown,
            scheduler,
            pool,
            registry,
            acceptor: Some(acceptor),
            workers,
        })
    }

    /// The bound address clients connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Campaigns queued (admitted, not yet started) right now.
    pub fn queue_depth(&self) -> usize {
        self.scheduler.depth()
    }

    /// Construction/reuse counters of the shared deployment pool.
    pub fn pool_stats(&self) -> PoolStats {
        self.pool.stats()
    }

    /// The per-tenant control-plane registry.
    pub fn registry(&self) -> &TenantRegistry {
        &self.registry
    }

    /// Graceful shutdown: closes admission, unblocks the acceptor,
    /// drains queued campaigns, and joins every daemon thread.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        self.scheduler.close();
        // Wake the acceptor out of `incoming()` with one self-connect.
        let _ = TcpStream::connect(self.addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for CsiServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The reader loop of one connection: one request per line, one
/// admission verdict per request, demultiplexed by tenant on the way
/// back out.
fn serve_connection(stream: TcpStream, scheduler: &FairScheduler<Job>, registry: &TenantRegistry) {
    let Ok(write_half) = stream.try_clone() else {
        return;
    };
    let writer = Arc::new(Mutex::new(write_half));
    for line in BufReader::new(stream).lines() {
        let Ok(line) = line else { break };
        if line.trim().is_empty() {
            continue;
        }
        let request: CampaignRequest = match serde_json::from_str(&line) {
            Ok(request) => request,
            Err(e) => {
                send(
                    &writer,
                    &Frame::Rejected {
                        tenant: String::new(),
                        reason: RejectReason::Malformed(e.to_string()),
                    },
                );
                continue;
            }
        };
        let verdict = admit(request, scheduler, registry, &writer);
        send(&writer, &verdict);
    }
}

/// Runs a request through the admission pipeline — tenant-name policy,
/// spec validation, namespace registration, scheduler caps — returning
/// the frame to answer with.
fn admit(
    request: CampaignRequest,
    scheduler: &FairScheduler<Job>,
    registry: &TenantRegistry,
    writer: &Arc<Mutex<TcpStream>>,
) -> Frame {
    let tenant = request.tenant;
    let reject = |reason| Frame::Rejected {
        tenant: tenant.clone(),
        reason,
    };
    if !valid_tenant_name(&tenant) {
        return reject(RejectReason::BadTenantName(tenant.clone()));
    }
    if let Err(e) = request.spec.validate() {
        return reject(RejectReason::InvalidSpec(e));
    }
    let spec_json = serde_json::to_string(&request.spec).expect("specs serialize");
    let seq = match registry.register(&tenant, &spec_json) {
        Ok(seq) => seq,
        Err(e) => return reject(RejectReason::Internal(e)),
    };
    let job = Job {
        tenant: tenant.clone(),
        seq,
        spec: request.spec,
        writer: writer.clone(),
    };
    match scheduler.submit(&tenant, job) {
        Ok(queue_depth) => Frame::Accepted {
            tenant,
            queue_depth,
        },
        Err(Admission::QueueFull { depth, limit }) => {
            reject(RejectReason::QueueFull { depth, limit })
        }
        Err(Admission::TenantBacklog { depth, limit }) => {
            reject(RejectReason::TenantBacklog { depth, limit })
        }
        Err(Admission::Closed) => reject(RejectReason::ShuttingDown),
    }
}

/// Runs one admitted campaign on a worker thread: detections stream out
/// through the tap as they happen, the report closes the request, and
/// the registry records what was answered.
fn run_job(pool: &Arc<DeploymentPool>, registry: &TenantRegistry, job: Job) {
    let started = Instant::now();
    let streamed = Arc::new(AtomicUsize::new(0));
    let tap = {
        let writer = job.writer.clone();
        let tenant = job.tenant.clone();
        let streamed = streamed.clone();
        DetectionTap::new(move |detection| {
            streamed.fetch_add(1, Ordering::SeqCst);
            send(
                &writer,
                &Frame::Detection {
                    tenant: tenant.clone(),
                    detection: detection.clone(),
                },
            );
        })
    };
    let campaign = Campaign::from_spec(job.spec)
        .expect("spec validated at admission")
        .pool(pool.clone())
        .detection_tap(tap);
    match catch_unwind(AssertUnwindSafe(move || campaign.run())) {
        Ok(outcome) => {
            let report_json = serde_json::to_string(&outcome.report).expect("reports serialize");
            let _ = registry.record_report(&job.tenant, job.seq, &report_json);
            send(
                &job.writer,
                &Frame::Report {
                    tenant: job.tenant,
                    campaign_micros: u64::try_from(started.elapsed().as_micros())
                        .unwrap_or(u64::MAX),
                    detections: streamed.load(Ordering::SeqCst),
                    report_json,
                    render: outcome.render(),
                },
            );
        }
        Err(panic) => {
            let message = panic
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| panic.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "campaign panicked".to_string());
            send(
                &job.writer,
                &Frame::Rejected {
                    tenant: job.tenant,
                    reason: RejectReason::Internal(message),
                },
            );
        }
    }
}
