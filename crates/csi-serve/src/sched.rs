//! Per-tenant fair scheduling with queue-depth admission control.
//!
//! [`FairScheduler`] holds one FIFO queue per tenant plus a round-robin
//! ring over the tenants that currently have queued work. Workers call
//! [`FairScheduler::next`], which blocks until work exists and then pops
//! one job from the tenant at the front of the ring, rotating the ring —
//! so a tenant that submits a thousand campaigns and a tenant that
//! submits one alternate on the workers instead of queuing behind each
//! other.
//!
//! Admission is decided at [`FairScheduler::submit`] time against two
//! caps: a global queue depth (backpressure: the daemon refuses work it
//! cannot start soon) and a per-tenant depth (fairness: one tenant
//! cannot occupy the whole global queue). Both refusals are typed
//! [`Admission`] values the server forwards verbatim as
//! [`Rejected`](crate::protocol::Frame::Rejected) frames.
//!
//! The scheduler is deliberately generic over the job payload and built
//! on [`std::sync::Condvar`] (the vendored `parking_lot` stand-in has no
//! condvar), so it is testable without sockets or threads.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Condvar, Mutex};

/// Why [`FairScheduler::submit`] refused a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Admission {
    /// The global queue is at capacity.
    QueueFull {
        /// Queued jobs across all tenants at rejection time.
        depth: usize,
        /// The configured global cap.
        limit: usize,
    },
    /// The tenant's own queue is at capacity.
    TenantBacklog {
        /// The tenant's queued jobs at rejection time.
        depth: usize,
        /// The configured per-tenant cap.
        limit: usize,
    },
    /// The scheduler was closed; no new work is accepted.
    Closed,
}

/// The mutex-guarded core: per-tenant queues plus the service ring.
struct State<T> {
    /// FIFO queue per tenant. Entries stay present (possibly empty)
    /// until the scheduler drops, so tenant order is stable.
    queues: BTreeMap<String, VecDeque<T>>,
    /// Round-robin ring over tenants with at least one queued job.
    ring: VecDeque<String>,
    /// Total queued jobs across all tenants.
    depth: usize,
    /// Set by [`FairScheduler::close`]; drains, then wakes all waiters.
    closed: bool,
}

/// A blocking, per-tenant fair job queue with admission control.
pub struct FairScheduler<T> {
    state: Mutex<State<T>>,
    available: Condvar,
    max_queue: usize,
    per_tenant_queue: usize,
}

impl<T> FairScheduler<T> {
    /// A scheduler admitting at most `max_queue` queued jobs in total and
    /// `per_tenant_queue` per tenant. Caps are clamped to at least 1 —
    /// a scheduler that can admit nothing is a typo, not a policy.
    pub fn new(max_queue: usize, per_tenant_queue: usize) -> FairScheduler<T> {
        FairScheduler {
            state: Mutex::new(State {
                queues: BTreeMap::new(),
                ring: VecDeque::new(),
                depth: 0,
                closed: false,
            }),
            available: Condvar::new(),
            max_queue: max_queue.max(1),
            per_tenant_queue: per_tenant_queue.max(1),
        }
    }

    /// Enqueues one job for `tenant`, returning the global queue depth
    /// right after the push, or the typed refusal.
    pub fn submit(&self, tenant: &str, job: T) -> Result<usize, Admission> {
        let mut s = self.state.lock().expect("scheduler lock");
        if s.closed {
            return Err(Admission::Closed);
        }
        if s.depth >= self.max_queue {
            return Err(Admission::QueueFull {
                depth: s.depth,
                limit: self.max_queue,
            });
        }
        let tenant_depth = s.queues.get(tenant).map_or(0, VecDeque::len);
        if tenant_depth >= self.per_tenant_queue {
            return Err(Admission::TenantBacklog {
                depth: tenant_depth,
                limit: self.per_tenant_queue,
            });
        }
        if tenant_depth == 0 {
            s.ring.push_back(tenant.to_string());
        }
        s.queues
            .entry(tenant.to_string())
            .or_default()
            .push_back(job);
        s.depth += 1;
        let depth = s.depth;
        drop(s);
        self.available.notify_one();
        Ok(depth)
    }

    /// Blocks until a job is available, then pops one from the tenant at
    /// the front of the service ring (rotating the ring). Returns `None`
    /// once the scheduler is closed *and* drained.
    pub fn next(&self) -> Option<(String, T)> {
        let mut s = self.state.lock().expect("scheduler lock");
        loop {
            if let Some(tenant) = s.ring.pop_front() {
                let queue = s.queues.get_mut(&tenant).expect("ring tenant has a queue");
                let job = queue.pop_front().expect("ring tenant has a job");
                if !queue.is_empty() {
                    s.ring.push_back(tenant.clone());
                }
                s.depth -= 1;
                return Some((tenant, job));
            }
            if s.closed {
                return None;
            }
            s = self.available.wait(s).expect("scheduler lock");
        }
    }

    /// Total queued jobs right now.
    pub fn depth(&self) -> usize {
        self.state.lock().expect("scheduler lock").depth
    }

    /// Stops admission and wakes every blocked [`FairScheduler::next`]
    /// caller; already-queued jobs still drain.
    pub fn close(&self) {
        self.state.lock().expect("scheduler lock").closed = true;
        self.available.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn service_order_alternates_across_tenants() {
        let sched = FairScheduler::new(16, 16);
        for i in 0..3 {
            sched.submit("heavy", format!("h{i}")).expect("admitted");
        }
        sched.submit("light", "l0".to_string()).expect("admitted");
        let order: Vec<String> = std::iter::from_fn(|| {
            sched.close();
            sched.next().map(|(t, j)| format!("{t}:{j}"))
        })
        .collect();
        // `light` is served after one `heavy` job, not after all three.
        assert_eq!(order, ["heavy:h0", "light:l0", "heavy:h1", "heavy:h2"]);
    }

    #[test]
    fn global_and_per_tenant_caps_reject_with_depths() {
        let sched = FairScheduler::new(3, 2);
        sched.submit("a", 1).expect("admitted");
        sched.submit("a", 2).expect("admitted");
        assert_eq!(
            sched.submit("a", 3).expect_err("per-tenant cap"),
            Admission::TenantBacklog { depth: 2, limit: 2 }
        );
        sched.submit("b", 4).expect("admitted");
        assert_eq!(
            sched.submit("c", 5).expect_err("global cap"),
            Admission::QueueFull { depth: 3, limit: 3 }
        );
        assert_eq!(sched.depth(), 3);
    }

    #[test]
    fn close_drains_then_stops() {
        let sched = FairScheduler::new(4, 4);
        sched.submit("a", 1).expect("admitted");
        sched.close();
        assert_eq!(sched.submit("a", 2).expect_err("closed"), Admission::Closed);
        assert_eq!(sched.next(), Some(("a".to_string(), 1)));
        assert_eq!(sched.next(), None);
    }

    #[test]
    fn blocked_workers_wake_on_submit() {
        use std::sync::Arc;
        let sched = Arc::new(FairScheduler::new(4, 4));
        let worker = {
            let sched = sched.clone();
            std::thread::spawn(move || sched.next())
        };
        std::thread::sleep(std::time::Duration::from_millis(20));
        sched.submit("a", 7).expect("admitted");
        assert_eq!(worker.join().expect("worker"), Some(("a".to_string(), 7)));
    }
}
