//! `csi-serve` — campaign-as-a-service for the CSI cross-testing tool.
//!
//! The in-process [`Campaign`](csi_test::Campaign) builder runs one
//! campaign for one caller. This crate turns the same API surface into a
//! long-running multi-tenant daemon: a [`CsiServer`] listens on TCP,
//! speaks newline-delimited JSON ([`protocol`]), keeps a pool of warm
//! deployments, and runs concurrent campaigns on a worker pool scheduled
//! fairly across tenants ([`sched`]), each tenant confined to its own
//! metastore database and HDFS subtree on the shared control plane
//! ([`tenant`]).
//!
//! The request body is the serializable
//! [`CampaignSpec`](csi_test::CampaignSpec) — the very struct the
//! builder wraps — so the wire surface and the in-process surface cannot
//! drift, and a served campaign's report is byte-identical to running
//! the same spec locally. Online detections stream back as they are
//! recorded, before the final report, via
//! [`DetectionTap`](csi_core::detect::DetectionTap).

pub mod client;
pub mod protocol;
pub mod sched;
pub mod server;
pub mod tenant;

pub use client::{run_specs, ServeClient, TenantOutcome};
pub use protocol::{valid_tenant_name, CampaignRequest, Frame, RejectReason, MAX_TENANT_LEN};
pub use sched::{Admission, FairScheduler};
pub use server::{CsiServer, ServeConfig};
pub use tenant::{fnv1a, TenantRegistry};
