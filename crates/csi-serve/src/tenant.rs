//! Per-tenant namespaces on a shared control-plane substrate.
//!
//! The daemon keeps one [`Metastore`] and one [`MiniHdfs`] as its
//! control plane, shared by every tenant but partitioned by name:
//!
//! - tenant `t` owns metastore database `tenant_t` and nothing else;
//! - tenant `t` owns the HDFS subtree `/tenants/t` and nothing else.
//!
//! [`TenantRegistry::register`] carves both out on first contact and
//! journals each submitted spec under the subtree;
//! [`TenantRegistry::record_report`] writes the finished report and its
//! FNV-1a digest next to it. [`TenantRegistry::evict`] tears the whole
//! namespace down (tables dropped, subtree deleted, blocks vacuumed), so
//! a departed tenant leaves no residue for the next one to observe —
//! the isolation half of the multi-tenant story, with the scheduling
//! half in [`crate::sched`].
//!
//! Campaign *execution* state never lives here: each campaign runs in
//! its own pooled [`Deployment`](csi_test::exec) with a private
//! metastore and filesystem. The registry is strictly the durable
//! per-tenant record of what was asked and what was answered.

use minihdfs::{HdfsPath, MiniHdfs};
use minihive::metastore::Metastore;
use parking_lot::Mutex;

/// FNV-1a 64-bit, the digest used for report fingerprints.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The shared control-plane substrate, partitioned per tenant.
pub struct TenantRegistry {
    metastore: Mutex<Metastore>,
    fs: Mutex<MiniHdfs>,
}

impl Default for TenantRegistry {
    fn default() -> TenantRegistry {
        TenantRegistry::new()
    }
}

impl TenantRegistry {
    /// An empty registry: fresh metastore, fresh filesystem with a bare
    /// `/tenants` root. The filesystem gets a small datanode set so it
    /// is out of safe mode and writable from the start.
    pub fn new() -> TenantRegistry {
        let mut fs = MiniHdfs::with_datanodes(3);
        fs.mkdirs(&HdfsPath::parse("/tenants").expect("static path"))
            .expect("mkdirs /tenants");
        TenantRegistry {
            metastore: Mutex::new(Metastore::new()),
            fs: Mutex::new(fs),
        }
    }

    /// The metastore database owned by `tenant`.
    pub fn database(tenant: &str) -> String {
        format!("tenant_{tenant}")
    }

    /// The HDFS subtree owned by `tenant`.
    pub fn subtree(tenant: &str) -> HdfsPath {
        HdfsPath::parse("/tenants")
            .expect("static path")
            .join(tenant)
    }

    /// Ensures the tenant's namespace exists and journals one submitted
    /// spec (as JSON) under it, returning the journal sequence number of
    /// this submission. Registration is idempotent: the namespace is
    /// created on first contact and reused afterwards.
    pub fn register(&self, tenant: &str, spec_json: &str) -> Result<u64, String> {
        self.metastore
            .lock()
            .create_database(&TenantRegistry::database(tenant));
        let subtree = TenantRegistry::subtree(tenant);
        let mut fs = self.fs.lock();
        fs.mkdirs(&subtree).map_err(|e| e.to_string())?;
        let seq = fs
            .list_status(&subtree)
            .map_err(|e| e.to_string())?
            .iter()
            .filter(|s| {
                s.path
                    .name()
                    .is_some_and(|n| n.starts_with("spec-") && n.ends_with(".json"))
            })
            .count() as u64;
        fs.create(
            &subtree.join(&format!("spec-{seq:06}.json")),
            spec_json.as_bytes(),
        )
        .map_err(|e| e.to_string())?;
        Ok(seq)
    }

    /// Writes a finished report (and its digest) for submission `seq`
    /// into the tenant's subtree.
    pub fn record_report(&self, tenant: &str, seq: u64, report_json: &str) -> Result<(), String> {
        let subtree = TenantRegistry::subtree(tenant);
        let mut fs = self.fs.lock();
        fs.create(
            &subtree.join(&format!("report-{seq:06}.json")),
            report_json.as_bytes(),
        )
        .map_err(|e| e.to_string())?;
        fs.create(
            &subtree.join(&format!("report-{seq:06}.digest")),
            format!("{:016x}", fnv1a(report_json.as_bytes())).as_bytes(),
        )
        .map_err(|e| e.to_string())?;
        Ok(())
    }

    /// The recorded digest of submission `seq`, if a report was written.
    pub fn digest(&self, tenant: &str, seq: u64) -> Option<String> {
        let path = TenantRegistry::subtree(tenant).join(&format!("report-{seq:06}.digest"));
        let bytes = self.fs.lock().read(&path).ok()?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    /// Tenants with a live namespace, in name order.
    pub fn tenants(&self) -> Vec<String> {
        self.fs
            .lock()
            .list_status(&HdfsPath::parse("/tenants").expect("static path"))
            .map(|entries| {
                entries
                    .iter()
                    .filter(|s| s.is_dir)
                    .filter_map(|s| s.path.name().map(str::to_string))
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Journaled submissions for `tenant` (spec files in its subtree).
    pub fn submissions(&self, tenant: &str) -> usize {
        self.fs
            .lock()
            .list_status(&TenantRegistry::subtree(tenant))
            .map(|entries| {
                entries
                    .iter()
                    .filter(|s| s.path.name().is_some_and(|n| n.starts_with("spec-")))
                    .count()
            })
            .unwrap_or(0)
    }

    /// Tears down the tenant's namespace: every table in its database
    /// dropped, its subtree deleted recursively, freed blocks vacuumed.
    pub fn evict(&self, tenant: &str) -> Result<(), String> {
        let db = TenantRegistry::database(tenant);
        let mut metastore = self.metastore.lock();
        let mut fs = self.fs.lock();
        let tables: Vec<String> = metastore
            .list_tables(&db)
            .map(|names| names.into_iter().map(str::to_string).collect())
            .unwrap_or_default();
        for table in tables {
            metastore
                .drop_table(&db, &table, false, &mut fs)
                .map_err(|e| e.to_string())?;
        }
        drop(metastore);
        let subtree = TenantRegistry::subtree(tenant);
        if fs.exists(&subtree) {
            fs.delete(&subtree, true).map_err(|e| e.to_string())?;
        }
        fs.vacuum();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn namespaces_are_carved_per_tenant_and_isolated() {
        let registry = TenantRegistry::new();
        registry
            .register("alpha", "{\"spec\":1}")
            .expect("register");
        registry.register("beta", "{\"spec\":2}").expect("register");
        registry
            .register("alpha", "{\"spec\":3}")
            .expect("register");
        assert_eq!(registry.tenants(), ["alpha", "beta"]);
        assert_eq!(registry.submissions("alpha"), 2);
        assert_eq!(registry.submissions("beta"), 1);
        assert_eq!(registry.submissions("nobody"), 0);
    }

    #[test]
    fn reports_record_a_stable_digest_per_submission() {
        let registry = TenantRegistry::new();
        let seq = registry.register("alpha", "{}").expect("register");
        registry
            .record_report("alpha", seq, "{\"report\":true}")
            .expect("record");
        let digest = registry.digest("alpha", seq).expect("digest written");
        assert_eq!(
            digest,
            format!("{:016x}", fnv1a(b"{\"report\":true}")),
            "digest is the FNV-1a of the report bytes"
        );
        assert_eq!(registry.digest("alpha", seq + 1), None);
        assert_eq!(registry.digest("beta", seq), None);
    }

    #[test]
    fn eviction_leaves_no_residue() {
        let registry = TenantRegistry::new();
        let seq = registry.register("alpha", "{}").expect("register");
        registry.record_report("alpha", seq, "{}").expect("record");
        registry.register("beta", "{}").expect("register");
        registry.evict("alpha").expect("evict");
        assert_eq!(registry.tenants(), ["beta"]);
        assert_eq!(registry.submissions("alpha"), 0);
        assert_eq!(registry.digest("alpha", seq), None);
        // Re-registration starts a fresh journal at sequence zero.
        assert_eq!(registry.register("alpha", "{}").expect("register"), 0);
    }
}
