//! The newline-delimited JSON wire protocol of the `csi-serve` daemon.
//!
//! A connection is a full-duplex byte stream. The client writes one
//! [`CampaignRequest`] per line; the server answers with a stream of
//! [`Frame`] lines. Frames for different tenants interleave freely on a
//! shared connection — every frame carries its tenant name, so a client
//! demultiplexes by tenant, not by position.
//!
//! Per accepted request the server emits, in order:
//!
//! 1. one [`Frame::Accepted`] (admission granted, with the queue depth
//!    observed at admission time);
//! 2. zero or more [`Frame::Detection`] lines, each forwarding one online
//!    [`Detection`] the moment the campaign's detector records it — long
//!    before the final report exists;
//! 3. exactly one [`Frame::Report`] with the finished campaign.
//!
//! A request that fails admission gets exactly one [`Frame::Rejected`]
//! carrying a typed [`RejectReason`] and nothing else. The campaign body
//! of a request is a plain [`CampaignSpec`] — the same serializable spec
//! the in-process [`Campaign`](csi_test::Campaign) builder wraps — so any
//! spec that runs locally runs over the wire, byte-identically.

use csi_core::detect::Detection;
use csi_test::{CampaignSpec, SpecError};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One campaign submission: which tenant is asking, and for what.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CampaignRequest {
    /// The submitting tenant. Names are lowercase `[a-z0-9_-]` and at
    /// most [`MAX_TENANT_LEN`] bytes; anything else is rejected with
    /// [`RejectReason::BadTenantName`] before touching any state.
    pub tenant: String,
    /// The campaign to run, exactly as the in-process builder would.
    pub spec: CampaignSpec,
}

/// Upper bound on tenant-name length, keeping names usable as metastore
/// database names and HDFS path components.
pub const MAX_TENANT_LEN: usize = 64;

/// Checks a tenant name against the `[a-z0-9_-]{1,64}` rule shared by the
/// metastore namespace and the HDFS subtree layout.
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= MAX_TENANT_LEN
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-')
}

/// A typed reason the daemon refused a request without running it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum RejectReason {
    /// The request line was not valid `CampaignRequest` JSON.
    Malformed(String),
    /// The tenant name failed [`valid_tenant_name`].
    BadTenantName(String),
    /// The spec failed [`CampaignSpec::validate`] — the same typed error
    /// an in-process [`Campaign::from_spec`](csi_test::Campaign::from_spec)
    /// caller would see.
    InvalidSpec(SpecError),
    /// The global queue is at capacity; retry after reports drain.
    QueueFull {
        /// Queued campaigns at rejection time.
        depth: usize,
        /// The configured global cap.
        limit: usize,
    },
    /// This tenant already has its fair share of queued campaigns;
    /// admission is per-tenant so one tenant cannot starve the rest.
    TenantBacklog {
        /// This tenant's queued campaigns at rejection time.
        depth: usize,
        /// The configured per-tenant cap.
        limit: usize,
    },
    /// The daemon is shutting down and accepts no new work.
    ShuttingDown,
    /// The campaign itself failed after admission (worker panic); the
    /// string carries the panic payload when one could be extracted.
    Internal(String),
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::Malformed(e) => write!(f, "malformed request: {e}"),
            RejectReason::BadTenantName(name) => {
                write!(f, "bad tenant name {name:?}: want [a-z0-9_-]{{1,64}}")
            }
            RejectReason::InvalidSpec(e) => write!(f, "invalid campaign spec: {e}"),
            RejectReason::QueueFull { depth, limit } => {
                write!(f, "queue full: {depth} campaigns queued (limit {limit})")
            }
            RejectReason::TenantBacklog { depth, limit } => {
                write!(
                    f,
                    "tenant backlog: {depth} campaigns queued for this tenant (limit {limit})"
                )
            }
            RejectReason::ShuttingDown => write!(f, "server is shutting down"),
            RejectReason::Internal(e) => write!(f, "campaign failed: {e}"),
        }
    }
}

/// One server-to-client line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Frame {
    /// The request passed admission and is queued.
    Accepted {
        /// The tenant the frame belongs to.
        tenant: String,
        /// Global queue depth right after this campaign was enqueued.
        queue_depth: usize,
    },
    /// The request was refused; no further frames follow for it.
    Rejected {
        /// The tenant the frame belongs to (empty when the request was
        /// too malformed to name one).
        tenant: String,
        /// Why the request was refused.
        reason: RejectReason,
    },
    /// One online detection, streamed the moment the running campaign's
    /// detector records it.
    Detection {
        /// The tenant the frame belongs to.
        tenant: String,
        /// The detection, exactly as the final report will aggregate it.
        detection: Detection,
    },
    /// The finished campaign; the terminal frame of an accepted request.
    Report {
        /// The tenant the frame belongs to.
        tenant: String,
        /// Wall time of the campaign run, microseconds.
        campaign_micros: u64,
        /// How many [`Frame::Detection`] lines preceded this frame.
        detections: usize,
        /// The [`DiscrepancyReport`](csi_core::report::DiscrepancyReport)
        /// as a JSON document. Carried as a string because the report
        /// type is serialize-only; byte-comparing this field against an
        /// in-process run of the same spec is the determinism contract.
        report_json: String,
        /// The human-readable rendering of the full outcome.
        render: String,
    },
}

impl Frame {
    /// The tenant this frame belongs to.
    pub fn tenant(&self) -> &str {
        match self {
            Frame::Accepted { tenant, .. }
            | Frame::Rejected { tenant, .. }
            | Frame::Detection { tenant, .. }
            | Frame::Report { tenant, .. } => tenant,
        }
    }

    /// Whether this frame ends its request (a report or a rejection).
    pub fn is_terminal(&self) -> bool {
        matches!(self, Frame::Rejected { .. } | Frame::Report { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip_through_json_lines() {
        let frames = vec![
            Frame::Accepted {
                tenant: "t0".into(),
                queue_depth: 3,
            },
            Frame::Rejected {
                tenant: "t1".into(),
                reason: RejectReason::QueueFull {
                    depth: 64,
                    limit: 64,
                },
            },
            Frame::Report {
                tenant: "t2".into(),
                campaign_micros: 1234,
                detections: 0,
                report_json: "{}".into(),
                render: "report".into(),
            },
        ];
        for frame in frames {
            let line = serde_json::to_string(&frame).expect("frame serializes");
            assert!(!line.contains('\n'), "frames must fit one line: {line}");
            let back: Frame = serde_json::from_str(&line).expect("frame deserializes");
            assert_eq!(back, frame);
            assert_eq!(
                back.is_terminal(),
                matches!(back, Frame::Rejected { .. } | Frame::Report { .. })
            );
        }
    }

    #[test]
    fn requests_round_trip_and_tenant_names_are_policed() {
        let request = CampaignRequest {
            tenant: "tenant-07_a".into(),
            spec: CampaignSpec::default(),
        };
        let line = serde_json::to_string(&request).expect("request serializes");
        let back: CampaignRequest = serde_json::from_str(&line).expect("request deserializes");
        assert_eq!(back, request);
        assert!(valid_tenant_name(&request.tenant));
        for bad in ["", "Tenant", "a b", "a/b", "a.b", &"x".repeat(65)] {
            assert!(!valid_tenant_name(bad), "{bad:?} should be rejected");
        }
    }

    #[test]
    fn reject_reasons_render_and_round_trip() {
        let reasons = vec![
            RejectReason::Malformed("expected value".into()),
            RejectReason::BadTenantName("A!".into()),
            RejectReason::InvalidSpec(SpecError::BadChunkSize),
            RejectReason::TenantBacklog { depth: 4, limit: 4 },
            RejectReason::ShuttingDown,
            RejectReason::Internal("panic".into()),
        ];
        for reason in reasons {
            assert!(!reason.to_string().is_empty());
            let line = serde_json::to_string(&reason).expect("reason serializes");
            let back: RejectReason = serde_json::from_str(&line).expect("reason deserializes");
            assert_eq!(back, reason);
        }
    }
}
