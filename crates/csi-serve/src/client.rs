//! A blocking client for the `csi-serve` wire protocol.
//!
//! [`ServeClient`] wraps one TCP connection: submit any number of
//! [`CampaignRequest`]s, then read [`Frame`]s back — raw, one at a time,
//! via [`ServeClient::read_frame`], or demultiplexed per tenant via
//! [`ServeClient::collect`]. The one-call convenience for tests and
//! benchmarks is [`run_specs`]: one connection, one campaign per tenant,
//! every outcome gathered.

use crate::protocol::{CampaignRequest, Frame, RejectReason};
use csi_core::detect::Detection;
use csi_test::CampaignSpec;
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

/// Everything the server said about one tenant's campaign.
#[derive(Debug, Clone, Default)]
pub struct TenantOutcome {
    /// The tenant the outcome belongs to.
    pub tenant: String,
    /// Global queue depth reported at admission, when accepted.
    pub queue_depth: Option<usize>,
    /// Detections in arrival order — all received before `report_json`
    /// was, since the report frame is terminal.
    pub detections: Vec<Detection>,
    /// The refusal, when the request was rejected.
    pub rejected: Option<RejectReason>,
    /// Campaign wall time reported by the server, microseconds.
    pub campaign_micros: Option<u64>,
    /// The final report as JSON, when the campaign finished.
    pub report_json: Option<String>,
    /// The human-readable rendering of the outcome.
    pub render: Option<String>,
}

/// One connection to a `csi-serve` daemon.
pub struct ServeClient {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl ServeClient {
    /// Connects to a daemon.
    pub fn connect(addr: SocketAddr) -> io::Result<ServeClient> {
        let writer = TcpStream::connect(addr)?;
        let reader = BufReader::new(writer.try_clone()?);
        Ok(ServeClient { writer, reader })
    }

    /// Submits one campaign for `tenant`. Frames for it arrive on this
    /// same connection, tagged with the tenant name.
    pub fn submit(&mut self, tenant: &str, spec: &CampaignSpec) -> io::Result<()> {
        let request = CampaignRequest {
            tenant: tenant.to_string(),
            spec: spec.clone(),
        };
        let line = serde_json::to_string(&request)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        self.writer.write_all(line.as_bytes())?;
        self.writer.write_all(b"\n")
    }

    /// Reads the next frame, whatever tenant it belongs to.
    pub fn read_frame(&mut self) -> io::Result<Frame> {
        let mut line = String::new();
        if self.reader.read_line(&mut line)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        serde_json::from_str(&line)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }

    /// Reads frames until `terminals` requests have finished (report or
    /// rejection), folding everything into per-tenant outcomes. Assumes
    /// at most one in-flight campaign per tenant on this connection —
    /// submit under distinct tenant names (or use [`ServeClient::read_frame`])
    /// for anything fancier. Outcomes come back in tenant-name order.
    pub fn collect(&mut self, terminals: usize) -> io::Result<Vec<TenantOutcome>> {
        let mut outcomes: BTreeMap<String, TenantOutcome> = BTreeMap::new();
        let mut finished = 0;
        while finished < terminals {
            let frame = self.read_frame()?;
            let entry = outcomes
                .entry(frame.tenant().to_string())
                .or_insert_with(|| TenantOutcome {
                    tenant: frame.tenant().to_string(),
                    ..TenantOutcome::default()
                });
            if frame.is_terminal() {
                finished += 1;
            }
            match frame {
                Frame::Accepted { queue_depth, .. } => entry.queue_depth = Some(queue_depth),
                Frame::Rejected { reason, .. } => entry.rejected = Some(reason),
                Frame::Detection { detection, .. } => entry.detections.push(detection),
                Frame::Report {
                    campaign_micros,
                    report_json,
                    render,
                    ..
                } => {
                    entry.campaign_micros = Some(campaign_micros);
                    entry.report_json = Some(report_json);
                    entry.render = Some(render);
                }
            }
        }
        Ok(outcomes.into_values().collect())
    }
}

/// One connection, one campaign per tenant: submits every request, then
/// collects until each has its terminal frame.
pub fn run_specs(
    addr: SocketAddr,
    requests: &[(String, CampaignSpec)],
) -> io::Result<Vec<TenantOutcome>> {
    let mut client = ServeClient::connect(addr)?;
    for (tenant, spec) in requests {
        client.submit(tenant, spec)?;
    }
    client.collect(requests.len())
}
