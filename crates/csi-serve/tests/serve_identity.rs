//! Property: for any valid spec, the report a tenant receives from the
//! daemon is byte-identical to a batch [`Campaign`] run of the same
//! spec — the served path adds transport, scheduling, pooling, and
//! tapping, none of which may perturb a single byte of output.

use csi_serve::{run_specs, CsiServer, ServeConfig};
use csi_test::{Campaign, CampaignSpec, InputSelection};
use minihive::metastore::StorageFormat;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    #[test]
    fn served_report_is_byte_identical_to_batch(
        prefix in 1usize..5,
        shards in 1usize..4,
        seed in any::<u64>(),
        detect in any::<bool>(),
    ) {
        let spec = CampaignSpec {
            inputs: InputSelection::CataloguePrefix(prefix),
            formats: vec![StorageFormat::Orc, StorageFormat::Avro],
            shards,
            chunk_size: 2,
            seed,
            detect,
            ..CampaignSpec::default()
        };
        let mut server = CsiServer::start(&ServeConfig::default()).expect("server starts");
        let outcomes = run_specs(
            server.addr(),
            &[("prop-tenant".to_string(), spec.clone())],
        )
        .expect("outcomes");
        server.shutdown();
        prop_assert_eq!(outcomes.len(), 1);
        prop_assert_eq!(&outcomes[0].rejected, &None);
        let wire = outcomes[0].report_json.clone().expect("report arrived");

        let batch = Campaign::from_spec(spec).expect("valid spec").run();
        let local = serde_json::to_string(&batch.report).expect("reports serialize");
        prop_assert_eq!(wire, local);
    }
}
