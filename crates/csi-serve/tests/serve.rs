//! End-to-end tests of the `csi-serve` daemon over real TCP: concurrent
//! multi-tenant campaigns byte-identical to batch runs, streamed
//! detections arriving before the report, typed wire rejections, and
//! per-tenant control-plane state.

use csi_serve::{
    run_specs, CsiServer, Frame, RejectReason, ServeClient, ServeConfig, TenantOutcome,
};
use csi_test::inject::small_fault_catalogue;
use csi_test::plan::Experiment;
use csi_test::{Campaign, CampaignSpec, InputSelection, SpecError};
use minihive::metastore::StorageFormat;

/// The server-side determinism contract: the report a tenant receives
/// over the wire, byte-for-byte.
fn batch_report_json(spec: &CampaignSpec) -> String {
    let outcome = Campaign::from_spec(spec.clone()).expect("valid spec").run();
    serde_json::to_string(&outcome.report).expect("reports serialize")
}

/// A small campaign spec, varied per tenant index.
fn tenant_spec(i: usize) -> CampaignSpec {
    CampaignSpec {
        inputs: InputSelection::CataloguePrefix(1 + i % 3),
        formats: vec![StorageFormat::Orc, StorageFormat::Parquet],
        shards: 1 + i % 2,
        chunk_size: 2,
        detect: i.is_multiple_of(2),
        seed: 42 + i as u64,
        ..CampaignSpec::default()
    }
}

#[test]
fn concurrent_tenants_get_byte_identical_reports() {
    let mut server = CsiServer::start(&ServeConfig {
        workers: 4,
        warm: 2,
        ..ServeConfig::default()
    })
    .expect("server starts");
    let addr = server.addr();

    // Eight tenants across two concurrent connections, four each.
    let requests: Vec<(String, CampaignSpec)> = (0..8)
        .map(|i| (format!("tenant-{i}"), tenant_spec(i)))
        .collect();
    let (left, right) = requests.split_at(4);
    let handles: Vec<_> = [left.to_vec(), right.to_vec()]
        .into_iter()
        .map(|batch| std::thread::spawn(move || run_specs(addr, &batch).expect("outcomes")))
        .collect();
    let outcomes: Vec<TenantOutcome> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();

    assert_eq!(outcomes.len(), 8);
    for outcome in &outcomes {
        assert_eq!(outcome.rejected, None, "tenant {}", outcome.tenant);
        let i: usize = outcome.tenant["tenant-".len()..].parse().expect("index");
        let wire = outcome.report_json.as_ref().expect("report arrived");
        assert_eq!(
            *wire,
            batch_report_json(&tenant_spec(i)),
            "wire report for {} differs from the batch run",
            outcome.tenant
        );
        assert!(outcome.render.as_ref().is_some_and(|r| !r.is_empty()));
    }

    // Every tenant got its own control-plane namespace.
    let mut tenants = server.registry().tenants();
    tenants.sort();
    assert_eq!(
        tenants,
        (0..8).map(|i| format!("tenant-{i}")).collect::<Vec<_>>()
    );
    // Warm deployments were actually reused across campaigns.
    assert!(
        server.pool_stats().reused > 0,
        "no deployment reuse across 8 campaigns: {:?}",
        server.pool_stats()
    );
    server.shutdown();
}

#[test]
fn corpus_specs_run_over_the_wire_byte_identically_to_batch() {
    // A tenant references a corpus *shape* over the wire — both ends
    // synthesize the identical inputs, so the daemon's report matches a
    // local batch run byte-for-byte, corpus coverage included.
    let mut server = CsiServer::start(&ServeConfig::default()).expect("server starts");
    let spec = CampaignSpec {
        inputs: InputSelection::Corpus {
            shape: csi_test::CorpusShape {
                columns: 6,
                rows: 12,
                ..csi_test::CorpusShape::default()
            },
            seed: 9,
        },
        explore_budget: Some(48),
        formats: vec![StorageFormat::Orc],
        ..CampaignSpec::default()
    };
    let outcomes =
        run_specs(server.addr(), &[("corpus-tenant".into(), spec.clone())]).expect("outcomes");
    assert_eq!(outcomes.len(), 1);
    assert_eq!(outcomes[0].rejected, None);
    let wire = outcomes[0].report_json.as_ref().expect("report arrived");
    assert_eq!(*wire, batch_report_json(&spec));
    // The render the tenant got names the corpus contribution.
    assert!(
        outcomes[0]
            .render
            .as_ref()
            .is_some_and(|r| r.contains("novel from corpus")),
        "wire render lost the corpus coverage line"
    );

    // A shape the synthesizer rejects is a typed wire rejection.
    let bad = CampaignSpec {
        inputs: InputSelection::Corpus {
            shape: csi_test::CorpusShape {
                rows: 0,
                ..csi_test::CorpusShape::default()
            },
            seed: 1,
        },
        ..CampaignSpec::default()
    };
    let mut client = ServeClient::connect(server.addr()).expect("connect");
    client.submit("corpus-bad", &bad).expect("submit");
    match client.read_frame().expect("frame") {
        Frame::Rejected {
            reason: RejectReason::InvalidSpec(SpecError::BadCorpusShape { reason }),
            ..
        } => assert!(reason.contains("rows"), "{reason}"),
        other => panic!("expected BadCorpusShape rejection, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn detections_stream_before_the_final_report() {
    let mut server = CsiServer::start(&ServeConfig::default()).expect("server starts");
    // A matrix campaign over a small armed catalogue reliably detects.
    let spec = CampaignSpec {
        inputs: InputSelection::Inline(Vec::new()),
        matrix_seed: Some(5),
        faults: Some(small_fault_catalogue(5)),
        experiments: vec![Experiment::ALL[0]],
        formats: vec![StorageFormat::Orc],
        detect: true,
        ..CampaignSpec::default()
    };

    let mut client = ServeClient::connect(server.addr()).expect("connect");
    client.submit("streamer", &spec).expect("submit");
    let mut detections_before_report = 0;
    let report = loop {
        match client.read_frame().expect("frame") {
            Frame::Accepted { tenant, .. } => assert_eq!(tenant, "streamer"),
            Frame::Detection { detection, .. } => {
                detections_before_report += 1;
                assert!(!detection.scenario.is_empty());
            }
            Frame::Report { detections, .. } => break detections,
            Frame::Rejected { reason, .. } => panic!("rejected: {reason}"),
        }
    };
    assert!(
        detections_before_report > 0,
        "no detection frames arrived before the report"
    );
    assert_eq!(
        detections_before_report, report,
        "report's detection count disagrees with the streamed frames"
    );
    server.shutdown();
}

#[test]
fn invalid_requests_are_rejected_with_typed_reasons() {
    let mut server = CsiServer::start(&ServeConfig::default()).expect("server starts");
    let mut client = ServeClient::connect(server.addr()).expect("connect");

    // An invalid spec carries the same typed error as Campaign::from_spec.
    let bad_spec = CampaignSpec {
        shards: csi_test::MAX_SHARDS + 1,
        ..CampaignSpec::default()
    };
    client.submit("tenant-a", &bad_spec).expect("submit");
    let frame = client.read_frame().expect("frame");
    assert_eq!(
        frame,
        Frame::Rejected {
            tenant: "tenant-a".into(),
            reason: RejectReason::InvalidSpec(SpecError::BadShards {
                shards: csi_test::MAX_SHARDS + 1,
                max: csi_test::MAX_SHARDS,
            }),
        }
    );

    // A bad tenant name never reaches the scheduler.
    client
        .submit("Tenant A", &CampaignSpec::default())
        .expect("submit");
    match client.read_frame().expect("frame") {
        Frame::Rejected {
            reason: RejectReason::BadTenantName(name),
            ..
        } => assert_eq!(name, "Tenant A"),
        other => panic!("expected BadTenantName, got {other:?}"),
    }

    // A line that is not a request at all is answered, not dropped.
    use std::io::Write as _;
    let mut raw = std::net::TcpStream::connect(server.addr()).expect("connect");
    raw.write_all(b"not json\n").expect("write");
    use std::io::{BufRead as _, BufReader};
    let mut line = String::new();
    BufReader::new(raw.try_clone().expect("clone"))
        .read_line(&mut line)
        .expect("read");
    let frame: Frame = serde_json::from_str(&line).expect("frame parses");
    match frame {
        Frame::Rejected {
            tenant,
            reason: RejectReason::Malformed(_),
        } => assert_eq!(tenant, ""),
        other => panic!("expected Malformed, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn backlogged_tenants_hit_admission_control() {
    // One worker, tiny per-tenant slice: occupy the worker with a slow
    // campaign, then flood one tenant past its cap.
    let mut server = CsiServer::start(&ServeConfig {
        workers: 1,
        warm: 0,
        max_queue: 16,
        per_tenant_queue: 2,
    })
    .expect("server starts");
    let mut client = ServeClient::connect(server.addr()).expect("connect");

    let slow = CampaignSpec {
        inputs: InputSelection::CataloguePrefix(128),
        detect: true,
        ..CampaignSpec::default()
    };
    client.submit("blocker", &slow).expect("submit");
    match client.read_frame().expect("frame") {
        Frame::Accepted { tenant, .. } => assert_eq!(tenant, "blocker"),
        other => panic!("expected Accepted, got {other:?}"),
    }
    // Give the single worker a moment to pick the blocker up.
    std::thread::sleep(std::time::Duration::from_millis(50));

    let quick = CampaignSpec {
        inputs: InputSelection::CataloguePrefix(1),
        ..CampaignSpec::default()
    };
    let mut accepted = 0;
    let mut backlogged = 0;
    let mut terminals = 0;
    for _ in 0..6 {
        client.submit("flood", &quick).expect("submit");
        // The admission verdict for `flood` can interleave with frames
        // from campaigns already running; demux by tenant.
        loop {
            let frame = client.read_frame().expect("frame");
            if frame.is_terminal() {
                terminals += 1;
            }
            match frame {
                Frame::Accepted { tenant, .. } if tenant == "flood" => {
                    accepted += 1;
                    break;
                }
                Frame::Rejected {
                    tenant,
                    reason: RejectReason::TenantBacklog { limit, .. },
                } if tenant == "flood" => {
                    assert_eq!(limit, 2);
                    backlogged += 1;
                    terminals -= 1; // admission verdicts are not campaign ends
                    break;
                }
                Frame::Detection { .. } | Frame::Report { .. } => {}
                other => panic!("unexpected frame during flood: {other:?}"),
            }
        }
    }
    assert_eq!(
        accepted, 2,
        "exactly the per-tenant slice should be admitted while the worker is busy"
    );
    assert_eq!(backlogged, 4);

    // Everything admitted still completes once the worker frees up:
    // one report for the blocker plus one per admitted flood campaign.
    while terminals < 1 + accepted {
        if let Frame::Report { .. } = client.read_frame().expect("frame") {
            terminals += 1;
        }
    }
    server.shutdown();
}
