//! Region assignment and the stale-location-cache discrepancy
//! (HBASE-16621).
//!
//! Clients cache region→server locations to avoid a master round-trip per
//! request. When a region moves while a cached entry is live, the client's
//! next request lands on a server that no longer serves the region —
//! "asynchrony-induced stale states due to concurrent events" (Table 8).
//! Neither side is buggy: the cache is a documented optimization, the move
//! is a documented operation; the composition needs the retry protocol the
//! shipped code lacked.

use std::collections::BTreeMap;
use std::fmt;

/// A region server identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId(pub u32);

/// The error a server returns for a region it does not serve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotServingRegion {
    /// The region asked for.
    pub region: String,
    /// The server that was asked.
    pub asked: ServerId,
}

impl fmt::Display for NotServingRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NotServingRegionException: {} is not served by server {}",
            self.region, self.asked.0
        )
    }
}

impl std::error::Error for NotServingRegion {}

/// The master's authoritative region assignment.
#[derive(Debug, Default)]
pub struct ClusterState {
    assignment: BTreeMap<String, ServerId>,
    moves: u64,
}

impl ClusterState {
    /// Creates an empty cluster.
    pub fn new() -> ClusterState {
        ClusterState::default()
    }

    /// Assigns (or moves) a region to a server.
    pub fn assign(&mut self, region: &str, server: ServerId) {
        if self.assignment.insert(region.to_string(), server).is_some() {
            self.moves += 1;
        }
    }

    /// Authoritative lookup (a master round-trip).
    pub fn locate(&self, region: &str) -> Option<ServerId> {
        self.assignment.get(region).copied()
    }

    /// Whether `server` currently serves `region`.
    pub fn serves(&self, region: &str, server: ServerId) -> bool {
        self.locate(region) == Some(server)
    }

    /// Region moves performed so far.
    pub fn moves(&self) -> u64 {
        self.moves
    }
}

/// Client retry behavior on `NotServingRegionException`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryPolicy {
    /// Shipped: trust the cache; surface the error (HBASE-16621).
    TrustCache,
    /// Fixed: invalidate the cache entry and retry via the master.
    RefreshAndRetry,
}

/// A location-caching client.
#[derive(Debug, Default)]
pub struct HBaseClient {
    cache: BTreeMap<String, ServerId>,
    master_lookups: u64,
}

impl HBaseClient {
    /// Creates a client with an empty cache.
    pub fn new() -> HBaseClient {
        HBaseClient::default()
    }

    /// Routes one request for `region`, returning the server that actually
    /// handled it.
    pub fn route(
        &mut self,
        cluster: &ClusterState,
        region: &str,
        policy: RetryPolicy,
    ) -> Result<ServerId, NotServingRegion> {
        let cached = match self.cache.get(region) {
            Some(s) => *s,
            None => {
                self.master_lookups += 1;
                let s = cluster.locate(region).ok_or(NotServingRegion {
                    region: region.to_string(),
                    asked: ServerId(u32::MAX),
                })?;
                self.cache.insert(region.to_string(), s);
                s
            }
        };
        if cluster.serves(region, cached) {
            return Ok(cached);
        }
        // The cached location is stale.
        match policy {
            RetryPolicy::TrustCache => Err(NotServingRegion {
                region: region.to_string(),
                asked: cached,
            }),
            RetryPolicy::RefreshAndRetry => {
                self.cache.remove(region);
                self.master_lookups += 1;
                let fresh = cluster.locate(region).ok_or(NotServingRegion {
                    region: region.to_string(),
                    asked: cached,
                })?;
                self.cache.insert(region.to_string(), fresh);
                Ok(fresh)
            }
        }
    }

    /// Master round-trips performed (the cost the cache amortizes).
    pub fn master_lookups(&self) -> u64 {
        self.master_lookups
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cache_amortizes_master_lookups() {
        let mut cluster = ClusterState::new();
        cluster.assign("t,region-0", ServerId(1));
        let mut client = HBaseClient::new();
        for _ in 0..10 {
            let s = client
                .route(&cluster, "t,region-0", RetryPolicy::TrustCache)
                .unwrap();
            assert_eq!(s, ServerId(1));
        }
        assert_eq!(client.master_lookups(), 1);
    }

    #[test]
    fn hbase_16621_stale_cache_fails_under_shipped_policy() {
        let mut cluster = ClusterState::new();
        cluster.assign("t,region-0", ServerId(1));
        let mut client = HBaseClient::new();
        client
            .route(&cluster, "t,region-0", RetryPolicy::TrustCache)
            .unwrap();
        // The region moves concurrently.
        cluster.assign("t,region-0", ServerId(2));
        assert_eq!(cluster.moves(), 1);
        let err = client
            .route(&cluster, "t,region-0", RetryPolicy::TrustCache)
            .unwrap_err();
        assert_eq!(err.asked, ServerId(1));
        assert!(err.to_string().contains("NotServingRegionException"));
    }

    #[test]
    fn refresh_and_retry_heals_the_stale_cache() {
        let mut cluster = ClusterState::new();
        cluster.assign("t,region-0", ServerId(1));
        let mut client = HBaseClient::new();
        client
            .route(&cluster, "t,region-0", RetryPolicy::RefreshAndRetry)
            .unwrap();
        cluster.assign("t,region-0", ServerId(2));
        let s = client
            .route(&cluster, "t,region-0", RetryPolicy::RefreshAndRetry)
            .unwrap();
        assert_eq!(s, ServerId(2));
        // The refreshed entry is cached again.
        let s = client
            .route(&cluster, "t,region-0", RetryPolicy::TrustCache)
            .unwrap();
        assert_eq!(s, ServerId(2));
        assert_eq!(client.master_lookups(), 2);
    }

    #[test]
    fn unknown_regions_error_cleanly() {
        let cluster = ClusterState::new();
        let mut client = HBaseClient::new();
        assert!(client
            .route(&cluster, "nope", RetryPolicy::RefreshAndRetry)
            .is_err());
    }
}
