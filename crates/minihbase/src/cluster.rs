//! Region assignment and the stale-location-cache discrepancy
//! (HBASE-16621).
//!
//! Clients cache region→server locations to avoid a master round-trip per
//! request. When a region moves while a cached entry is live, the client's
//! next request lands on a server that no longer serves the region —
//! "asynchrony-induced stale states due to concurrent events" (Table 8).
//! Neither side is buggy: the cache is a documented optimization, the move
//! is a documented operation; the composition needs the retry protocol the
//! shipped code lacked.

use csi_core::boundary::{BoundaryCall, CrossingContext};
use csi_core::error::{ErrorKind, InteractionError};
use csi_core::fault::{Channel, FaultKind, FaultPoint, InjectedFault};
use std::collections::BTreeMap;
use std::fmt;

/// A region server identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServerId(pub u32);

/// The error a server returns for a region it does not serve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotServingRegion {
    /// The region asked for.
    pub region: String,
    /// The server that was asked.
    pub asked: ServerId,
}

impl fmt::Display for NotServingRegion {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "NotServingRegionException: {} is not served by server {}",
            self.region, self.asked.0
        )
    }
}

impl std::error::Error for NotServingRegion {}

/// The master's authoritative region assignment.
#[derive(Debug, Default)]
pub struct ClusterState {
    assignment: BTreeMap<String, ServerId>,
    moves: u64,
}

impl ClusterState {
    /// Creates an empty cluster.
    pub fn new() -> ClusterState {
        ClusterState::default()
    }

    /// Assigns (or moves) a region to a server.
    pub fn assign(&mut self, region: &str, server: ServerId) {
        if self.assignment.insert(region.to_string(), server).is_some() {
            self.moves += 1;
        }
    }

    /// Authoritative lookup (a master round-trip).
    pub fn locate(&self, region: &str) -> Option<ServerId> {
        self.assignment.get(region).copied()
    }

    /// Whether `server` currently serves `region`.
    pub fn serves(&self, region: &str, server: ServerId) -> bool {
        self.locate(region) == Some(server)
    }

    /// Region moves performed so far.
    pub fn moves(&self) -> u64 {
        self.moves
    }
}

/// A failed key-value request, as the routing client surfaces it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RequestError {
    /// The region server (or master) serving the request is down.
    RegionServerDown {
        /// The operation that hit the dead server.
        op: String,
    },
    /// The request timed out after `ms` of (virtual) time.
    RpcTimeout {
        /// The operation that timed out.
        op: String,
        /// Simulated elapsed time before the timeout fired.
        ms: u64,
    },
    /// The request landed on a server that does not serve the region.
    NotServing(NotServingRegion),
}

impl RequestError {
    /// Stable error code.
    pub fn code(&self) -> &'static str {
        match self {
            RequestError::RegionServerDown { .. } => "REGION_SERVER_DOWN",
            RequestError::RpcTimeout { .. } => "HBASE_RPC_TIMEOUT",
            RequestError::NotServing(_) => "NOT_SERVING_REGION",
        }
    }
}

impl fmt::Display for RequestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RequestError::RegionServerDown { op } => {
                write!(f, "region server unavailable during {op}")
            }
            RequestError::RpcTimeout { op, ms } => write!(f, "{op} timed out after {ms}ms"),
            RequestError::NotServing(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for RequestError {}

impl From<RequestError> for InteractionError {
    fn from(e: RequestError) -> InteractionError {
        let kind = match &e {
            RequestError::RegionServerDown { .. } => ErrorKind::Unavailable,
            RequestError::RpcTimeout { .. } => ErrorKind::Timeout,
            RequestError::NotServing(_) => ErrorKind::Rejected,
        };
        InteractionError::new("minihbase", kind, e.code(), e.to_string())
    }
}

impl FaultPoint for RequestError {
    const CHANNEL: Channel = Channel::HBase;

    fn materialize(fault: &InjectedFault) -> RequestError {
        match fault.kind {
            FaultKind::Unavailable => RequestError::RegionServerDown {
                op: fault.op.clone(),
            },
            FaultKind::Timeout { ms } | FaultKind::Latency { ms } => RequestError::RpcTimeout {
                op: fault.op.clone(),
                ms,
            },
            // A corrupted location response is not an error the client
            // sees: the lookup *succeeds* with a stale/wrong server, the
            // HBASE-16621 shape. `route_with` handles it in-band; this
            // arm only exists for completeness.
            FaultKind::CorruptPayload => RequestError::NotServing(NotServingRegion {
                region: fault.op.clone(),
                asked: ServerId(u32::MAX),
            }),
        }
    }
}

/// Client retry behavior on `NotServingRegionException`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RetryPolicy {
    /// Shipped: trust the cache; surface the error (HBASE-16621).
    TrustCache,
    /// Fixed: invalidate the cache entry and retry via the master.
    RefreshAndRetry,
}

/// A location-caching client.
#[derive(Debug, Default)]
pub struct HBaseClient {
    cache: BTreeMap<String, ServerId>,
    master_lookups: u64,
}

impl HBaseClient {
    /// Creates a client with an empty cache.
    pub fn new() -> HBaseClient {
        HBaseClient::default()
    }

    /// Routes one request for `region`, returning the server that actually
    /// handled it.
    pub fn route(
        &mut self,
        cluster: &ClusterState,
        region: &str,
        policy: RetryPolicy,
    ) -> Result<ServerId, NotServingRegion> {
        match self.route_with(cluster, region, policy, None) {
            Ok(s) => Ok(s),
            Err(RequestError::NotServing(e)) => Err(e),
            // Without a crossing context no fault can be injected.
            Err(_) => unreachable!("injected fault without a crossing context"),
        }
    }

    /// One master round-trip, crossed through the HBase boundary: an
    /// injected [`FaultKind::CorruptPayload`] on `locate` *succeeds* but
    /// returns a wrong (stale) server — corruption of a location response
    /// is invisible until the request lands (HBASE-16621's shape).
    fn master_lookup(
        &mut self,
        cluster: &ClusterState,
        region: &str,
        asked: ServerId,
        ctx: Option<&CrossingContext>,
    ) -> Result<ServerId, RequestError> {
        self.master_lookups += 1;
        let injected = ctx.and_then(|c| {
            c.intercept(BoundaryCall::new(Channel::HBase, "locate").with_payload(region))
        });
        if let Some(fault) = &injected {
            if fault.kind != FaultKind::CorruptPayload {
                return Err(RequestError::materialize(fault));
            }
        }
        let fresh = cluster.locate(region).ok_or_else(|| {
            RequestError::NotServing(NotServingRegion {
                region: region.to_string(),
                asked,
            })
        })?;
        Ok(match injected {
            // Deterministically wrong server: flip the low bit.
            Some(_) => ServerId(fresh.0 ^ 1),
            None => fresh,
        })
    }

    /// Routes one request for `region` through the instrumented boundary:
    /// the request itself crosses as `route`, every master round-trip as
    /// `locate`, so the trace shows exactly which lookups the retry policy
    /// paid for.
    pub fn route_with(
        &mut self,
        cluster: &ClusterState,
        region: &str,
        policy: RetryPolicy,
        ctx: Option<&CrossingContext>,
    ) -> Result<ServerId, RequestError> {
        if let Some(c) = ctx {
            c.cross::<RequestError>(
                BoundaryCall::new(Channel::HBase, "route").with_payload(region),
            )?;
        }
        let cached = match self.cache.get(region) {
            Some(s) => *s,
            None => {
                let s = self.master_lookup(cluster, region, ServerId(u32::MAX), ctx)?;
                self.cache.insert(region.to_string(), s);
                s
            }
        };
        if cluster.serves(region, cached) {
            return Ok(cached);
        }
        // The cached location is stale (or was poisoned in flight).
        match policy {
            RetryPolicy::TrustCache => Err(RequestError::NotServing(NotServingRegion {
                region: region.to_string(),
                asked: cached,
            })),
            RetryPolicy::RefreshAndRetry => {
                self.cache.remove(region);
                let fresh = self.master_lookup(cluster, region, cached, ctx)?;
                self.cache.insert(region.to_string(), fresh);
                if cluster.serves(region, fresh) {
                    Ok(fresh)
                } else {
                    Err(RequestError::NotServing(NotServingRegion {
                        region: region.to_string(),
                        asked: fresh,
                    }))
                }
            }
        }
    }

    /// Master round-trips performed (the cost the cache amortizes).
    pub fn master_lookups(&self) -> u64 {
        self.master_lookups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csi_core::fault::{FaultSpec, Trigger};

    #[test]
    fn cache_amortizes_master_lookups() {
        let mut cluster = ClusterState::new();
        cluster.assign("t,region-0", ServerId(1));
        let mut client = HBaseClient::new();
        for _ in 0..10 {
            let s = client
                .route(&cluster, "t,region-0", RetryPolicy::TrustCache)
                .unwrap();
            assert_eq!(s, ServerId(1));
        }
        assert_eq!(client.master_lookups(), 1);
    }

    #[test]
    fn hbase_16621_stale_cache_fails_under_shipped_policy() {
        let mut cluster = ClusterState::new();
        cluster.assign("t,region-0", ServerId(1));
        let mut client = HBaseClient::new();
        client
            .route(&cluster, "t,region-0", RetryPolicy::TrustCache)
            .unwrap();
        // The region moves concurrently.
        cluster.assign("t,region-0", ServerId(2));
        assert_eq!(cluster.moves(), 1);
        let err = client
            .route(&cluster, "t,region-0", RetryPolicy::TrustCache)
            .unwrap_err();
        assert_eq!(err.asked, ServerId(1));
        assert!(err.to_string().contains("NotServingRegionException"));
    }

    #[test]
    fn refresh_and_retry_heals_the_stale_cache() {
        let mut cluster = ClusterState::new();
        cluster.assign("t,region-0", ServerId(1));
        let mut client = HBaseClient::new();
        client
            .route(&cluster, "t,region-0", RetryPolicy::RefreshAndRetry)
            .unwrap();
        cluster.assign("t,region-0", ServerId(2));
        let s = client
            .route(&cluster, "t,region-0", RetryPolicy::RefreshAndRetry)
            .unwrap();
        assert_eq!(s, ServerId(2));
        // The refreshed entry is cached again.
        let s = client
            .route(&cluster, "t,region-0", RetryPolicy::TrustCache)
            .unwrap();
        assert_eq!(s, ServerId(2));
        assert_eq!(client.master_lookups(), 2);
    }

    fn stale_locate_ctx(trigger: Trigger) -> CrossingContext {
        let ctx = CrossingContext::new();
        ctx.arm(FaultSpec {
            id: "hbase-stale-locate".into(),
            channel: Channel::HBase,
            op: "locate".into(),
            kind: FaultKind::CorruptPayload,
            trigger,
        });
        ctx
    }

    #[test]
    fn unavailable_route_propagates_with_context() {
        let mut cluster = ClusterState::new();
        cluster.assign("t,region-0", ServerId(1));
        let mut client = HBaseClient::new();
        let ctx = CrossingContext::new();
        ctx.arm(FaultSpec {
            id: "hbase-unavail-route".into(),
            channel: Channel::HBase,
            op: "route".into(),
            kind: FaultKind::Unavailable,
            trigger: Trigger::Always,
        });
        let err = client
            .route_with(&cluster, "t,region-0", RetryPolicy::TrustCache, Some(&ctx))
            .unwrap_err();
        assert_eq!(err.code(), "REGION_SERVER_DOWN");
        let surfaced: InteractionError = err.into();
        assert_eq!(surfaced.kind, ErrorKind::Unavailable);
        assert_eq!(ctx.trace().len(), 1);
    }

    #[test]
    fn poisoned_locate_fails_trust_cache_but_heals_refresh_retry() {
        let mut cluster = ClusterState::new();
        cluster.assign("t,region-0", ServerId(2));
        // Shipped policy: the poisoned location is trusted and the
        // request surfaces NotServingRegionException.
        let mut client = HBaseClient::new();
        let ctx = stale_locate_ctx(Trigger::OnCall(0));
        let err = client
            .route_with(&cluster, "t,region-0", RetryPolicy::TrustCache, Some(&ctx))
            .unwrap_err();
        assert_eq!(err.code(), "NOT_SERVING_REGION");
        // Fixed policy: the retry lookup is clean and the request heals.
        let mut client = HBaseClient::new();
        let ctx = stale_locate_ctx(Trigger::OnCall(0));
        let served = client
            .route_with(
                &cluster,
                "t,region-0",
                RetryPolicy::RefreshAndRetry,
                Some(&ctx),
            )
            .unwrap();
        assert_eq!(served, ServerId(2));
        assert_eq!(client.master_lookups(), 2);
        // The trace shows the route plus both lookups.
        let trace = ctx.trace();
        assert_eq!(trace.channel_counts()["hbase"], 3);
    }

    #[test]
    fn unknown_regions_error_cleanly() {
        let cluster = ClusterState::new();
        let mut client = HBaseClient::new();
        assert!(client
            .route(&cluster, "nope", RetryPolicy::RefreshAndRetry)
            .is_err());
    }
}
