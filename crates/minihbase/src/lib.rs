//! `minihbase` — a key-value store substrate modeled on Apache HBase.
//!
//! A log-structured store built *on top of `minihdfs`*, the way HBase is
//! built on HDFS: every mutation is appended to a write-ahead log in the
//! DFS, buffered in a memstore, flushed to immutable HFiles, and compacted.
//! Region opening replays the WAL.
//!
//! Two studied control-plane CSI failures live at this crate's seams:
//!
//! - **HBASE-537**: the region server "wrongly assumed HDFS NameNode
//!   readiness when it was in safe mode" — [`Region::open`][region::Region::open] fails
//!   when the namenode is in safe mode, and the shipped caller treats that
//!   as fatal instead of retrying;
//! - **HBASE-16621**: asynchrony-induced stale state — a client caching
//!   region locations keeps serving from its cache after the region moved
//!   ([`cluster`]), getting `NotServingRegionException` until it refreshes.
//!
//! Notably, Table 5 of the paper reports **zero** data-plane CSI failures
//! on key-value tuples — the simple data abstraction is the safe one — and
//! this substrate honors that: its data path has no discrepancy mechanics
//! at all.

pub mod cluster;
pub mod region;

pub use cluster::{
    ClusterState, HBaseClient, NotServingRegion, RequestError, RetryPolicy, ServerId,
};
pub use region::{HBaseError, Region};
