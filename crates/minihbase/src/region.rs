//! The region: WAL, memstore, HFiles, flush, compaction, and recovery.

use bytes::Bytes;
use minihdfs::{HdfsError, HdfsPath, MiniHdfs};
use std::collections::BTreeMap;
use std::fmt;

/// Errors raised by region operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HBaseError {
    /// The underlying DFS refused an operation.
    Storage(HdfsError),
    /// The namenode is in safe mode: the region cannot open (HBASE-537).
    NameNodeNotReady,
    /// A stored file is corrupt.
    Corrupt(String),
}

impl fmt::Display for HBaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HBaseError::Storage(e) => write!(f, "DFS error: {e}"),
            HBaseError::NameNodeNotReady => {
                write!(f, "cannot open region: HDFS NameNode is in safe mode")
            }
            HBaseError::Corrupt(m) => write!(f, "corrupt store file: {m}"),
        }
    }
}

impl std::error::Error for HBaseError {}

impl From<HdfsError> for HBaseError {
    fn from(e: HdfsError) -> HBaseError {
        HBaseError::Storage(e)
    }
}

/// A cell key: row then column qualifier.
type CellKey = (Vec<u8>, Vec<u8>);

/// A versioned cell value: logical timestamp plus the payload
/// (`None` = tombstone).
type CellVersion = (u64, Option<Bytes>);

/// One region of a table: the unit of serving and recovery.
///
/// # Examples
///
/// ```
/// use minihbase::Region;
/// use minihdfs::MiniHdfs;
///
/// let mut fs = MiniHdfs::with_datanodes(3);
/// let mut region = Region::open("t1", &mut fs).unwrap();
/// region.put(b"row1", b"cf:a", b"hello", &mut fs).unwrap();
/// assert_eq!(region.get(b"row1", b"cf:a").as_deref(), Some(b"hello".as_ref()));
/// ```
#[derive(Debug)]
pub struct Region {
    name: String,
    memstore: BTreeMap<CellKey, CellVersion>,
    /// Read view of flushed data, merged at flush/compact/open time.
    store: BTreeMap<CellKey, CellVersion>,
    hfiles: Vec<HdfsPath>,
    next_ts: u64,
    wal_entries: u64,
}

impl Region {
    fn base_dir(name: &str) -> HdfsPath {
        HdfsPath::parse("/hbase/data")
            .expect("static path")
            .join(name)
    }

    fn wal_path(name: &str) -> HdfsPath {
        Self::base_dir(name).join("wal")
    }

    /// Opens (or creates) a region, replaying its WAL.
    ///
    /// Fails with [`HBaseError::NameNodeNotReady`] while the namenode is in
    /// safe mode — the condition HBASE-537's shipped startup did not
    /// anticipate.
    pub fn open(name: &str, fs: &mut MiniHdfs) -> Result<Region, HBaseError> {
        if fs.in_safe_mode() {
            return Err(HBaseError::NameNodeNotReady);
        }
        let dir = Self::base_dir(name);
        fs.mkdirs(&dir)?;
        let mut region = Region {
            name: name.to_string(),
            memstore: BTreeMap::new(),
            store: BTreeMap::new(),
            hfiles: Vec::new(),
            next_ts: 1,
            wal_entries: 0,
        };
        // Load flushed store files (oldest first; newer versions win).
        let mut files: Vec<HdfsPath> = fs
            .list_status(&dir)?
            .into_iter()
            .filter(|s| !s.is_dir && s.path.name().is_some_and(|n| n.starts_with("hfile-")))
            .map(|s| s.path)
            .collect();
        files.sort();
        for f in &files {
            let bytes = fs.read(f)?;
            for (key, version) in decode_cells(&bytes)? {
                let ts = version.0;
                region.next_ts = region.next_ts.max(ts + 1);
                region.store.insert(key, version);
            }
        }
        region.hfiles = files;
        // Replay the WAL into the memstore.
        let wal = Self::wal_path(name);
        if fs.exists(&wal) {
            let bytes = fs.read(&wal)?;
            for (key, version) in decode_cells(&bytes)? {
                region.wal_entries += 1;
                region.next_ts = region.next_ts.max(version.0 + 1);
                region.memstore.insert(key, version);
            }
        } else {
            fs.create(&wal, b"")?;
        }
        Ok(region)
    }

    /// Opens a region, retrying while the namenode reports safe mode —
    /// the HBASE-537 fix. `advance` is called between attempts (in tests
    /// it registers datanodes / advances the virtual clock).
    pub fn open_with_retry(
        name: &str,
        fs: &mut MiniHdfs,
        attempts: usize,
        mut advance: impl FnMut(&mut MiniHdfs),
    ) -> Result<Region, HBaseError> {
        let mut last = HBaseError::NameNodeNotReady;
        for _ in 0..attempts.max(1) {
            match Region::open(name, fs) {
                Ok(r) => return Ok(r),
                Err(HBaseError::NameNodeNotReady) => {
                    last = HBaseError::NameNodeNotReady;
                    advance(fs);
                }
                Err(other) => return Err(other),
            }
        }
        Err(last)
    }

    /// The region name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Writes a cell: WAL append first, then memstore.
    pub fn put(
        &mut self,
        row: &[u8],
        column: &[u8],
        value: &[u8],
        fs: &mut MiniHdfs,
    ) -> Result<(), HBaseError> {
        self.log_and_buffer(row, column, Some(Bytes::copy_from_slice(value)), fs)
    }

    /// Deletes a cell (a tombstone, removed at compaction).
    pub fn delete(
        &mut self,
        row: &[u8],
        column: &[u8],
        fs: &mut MiniHdfs,
    ) -> Result<(), HBaseError> {
        self.log_and_buffer(row, column, None, fs)
    }

    fn log_and_buffer(
        &mut self,
        row: &[u8],
        column: &[u8],
        value: Option<Bytes>,
        fs: &mut MiniHdfs,
    ) -> Result<(), HBaseError> {
        let ts = self.next_ts;
        self.next_ts += 1;
        let key = (row.to_vec(), column.to_vec());
        let entry = encode_cell(&key, &(ts, value.clone()));
        fs.append(&Self::wal_path(&self.name), &entry)?;
        self.wal_entries += 1;
        self.memstore.insert(key, (ts, value));
        Ok(())
    }

    /// Reads the latest version of a cell (memstore over store files).
    pub fn get(&self, row: &[u8], column: &[u8]) -> Option<Bytes> {
        let key = (row.to_vec(), column.to_vec());
        let mem = self.memstore.get(&key);
        let stored = self.store.get(&key);
        let newest = match (mem, stored) {
            (Some(m), Some(s)) => {
                if m.0 >= s.0 {
                    m
                } else {
                    s
                }
            }
            (Some(m), None) => m,
            (None, Some(s)) => s,
            (None, None) => return None,
        };
        newest.1.clone()
    }

    /// Scans all live cells of a row, in column order.
    pub fn scan_row(&self, row: &[u8]) -> Vec<(Vec<u8>, Bytes)> {
        let mut merged: BTreeMap<Vec<u8>, CellVersion> = BTreeMap::new();
        for ((r, c), v) in self.store.iter().chain(self.memstore.iter()) {
            if r == row {
                match merged.get(c) {
                    Some(existing) if existing.0 >= v.0 => {}
                    _ => {
                        merged.insert(c.clone(), v.clone());
                    }
                }
            }
        }
        merged
            .into_iter()
            .filter_map(|(c, (_, v))| v.map(|bytes| (c, bytes)))
            .collect()
    }

    /// Flushes the memstore to a new immutable HFile and truncates the WAL.
    pub fn flush(&mut self, fs: &mut MiniHdfs) -> Result<(), HBaseError> {
        if self.memstore.is_empty() {
            return Ok(());
        }
        let cells: Vec<(CellKey, CellVersion)> = self
            .memstore
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        let path = Self::base_dir(&self.name).join(&format!("hfile-{:08}", self.hfiles.len()));
        fs.create(&path, &encode_cells(&cells))?;
        self.hfiles.push(path);
        for (k, v) in cells {
            match self.store.get(&k) {
                Some(existing) if existing.0 >= v.0 => {}
                _ => {
                    self.store.insert(k, v);
                }
            }
        }
        self.memstore.clear();
        // WAL entries are now durable in the HFile: start a fresh log.
        let wal = Self::wal_path(&self.name);
        fs.delete(&wal, false)?;
        fs.create(&wal, b"")?;
        self.wal_entries = 0;
        Ok(())
    }

    /// Major compaction: merges every HFile into one, dropping shadowed
    /// versions and tombstones.
    pub fn compact(&mut self, fs: &mut MiniHdfs) -> Result<(), HBaseError> {
        let live: Vec<(CellKey, CellVersion)> = self
            .store
            .iter()
            .filter(|(_, (_, v))| v.is_some())
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        for f in &self.hfiles {
            fs.delete(f, false)?;
        }
        self.hfiles.clear();
        self.store = live.iter().cloned().collect();
        if !live.is_empty() {
            let path = Self::base_dir(&self.name).join("hfile-00000000");
            fs.create(&path, &encode_cells(&live))?;
            self.hfiles.push(path);
        }
        Ok(())
    }

    /// WAL entries buffered since the last flush (recovery cost).
    pub fn wal_entries(&self) -> u64 {
        self.wal_entries
    }

    /// Number of store files (compaction pressure).
    pub fn hfile_count(&self) -> usize {
        self.hfiles.len()
    }
}

fn encode_cell(key: &CellKey, version: &CellVersion) -> Vec<u8> {
    let mut out = Vec::new();
    let put = |out: &mut Vec<u8>, bytes: &[u8]| {
        out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        out.extend_from_slice(bytes);
    };
    put(&mut out, &key.0);
    put(&mut out, &key.1);
    out.extend_from_slice(&version.0.to_le_bytes());
    match &version.1 {
        Some(v) => {
            out.push(1);
            put(&mut out, v);
        }
        None => out.push(0),
    }
    out
}

fn encode_cells(cells: &[(CellKey, CellVersion)]) -> Vec<u8> {
    let mut out = Vec::new();
    for (k, v) in cells {
        out.extend_from_slice(&encode_cell(k, v));
    }
    out
}

fn decode_cells(mut data: &[u8]) -> Result<Vec<(CellKey, CellVersion)>, HBaseError> {
    fn take<'a>(data: &mut &'a [u8], n: usize) -> Result<&'a [u8], HBaseError> {
        if data.len() < n {
            return Err(HBaseError::Corrupt("truncated cell".into()));
        }
        let (head, tail) = data.split_at(n);
        *data = tail;
        Ok(head)
    }
    fn take_len(data: &mut &[u8]) -> Result<Vec<u8>, HBaseError> {
        let raw = take(data, 4)?;
        let n = u32::from_le_bytes(raw.try_into().expect("4 bytes")) as usize;
        Ok(take(data, n)?.to_vec())
    }
    let mut out = Vec::new();
    while !data.is_empty() {
        let row = take_len(&mut data)?;
        let col = take_len(&mut data)?;
        let ts = u64::from_le_bytes(take(&mut data, 8)?.try_into().expect("8 bytes"));
        let tag = take(&mut data, 1)?[0];
        let value = match tag {
            0 => None,
            1 => Some(Bytes::from(take_len(&mut data)?)),
            other => return Err(HBaseError::Corrupt(format!("bad value tag {other}"))),
        };
        out.push(((row, col), (ts, value)));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fs() -> MiniHdfs {
        MiniHdfs::with_datanodes(3)
    }

    #[test]
    fn put_get_delete_round_trip() {
        let mut fs = fs();
        let mut r = Region::open("t", &mut fs).unwrap();
        r.put(b"row1", b"cf:a", b"v1", &mut fs).unwrap();
        r.put(b"row1", b"cf:b", b"v2", &mut fs).unwrap();
        assert_eq!(r.get(b"row1", b"cf:a").as_deref(), Some(b"v1".as_ref()));
        // Latest version wins.
        r.put(b"row1", b"cf:a", b"v1b", &mut fs).unwrap();
        assert_eq!(r.get(b"row1", b"cf:a").as_deref(), Some(b"v1b".as_ref()));
        // Deletes hide the cell.
        r.delete(b"row1", b"cf:a", &mut fs).unwrap();
        assert_eq!(r.get(b"row1", b"cf:a"), None);
        assert_eq!(r.get(b"row2", b"cf:a"), None);
    }

    #[test]
    fn scan_row_merges_memstore_and_store() {
        let mut fs = fs();
        let mut r = Region::open("t", &mut fs).unwrap();
        r.put(b"r", b"a", b"1", &mut fs).unwrap();
        r.flush(&mut fs).unwrap();
        r.put(b"r", b"b", b"2", &mut fs).unwrap();
        r.put(b"r", b"a", b"1b", &mut fs).unwrap(); // Shadows the flushed cell.
        r.delete(b"r", b"b", &mut fs).unwrap();
        let cells = r.scan_row(b"r");
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].0, b"a");
        assert_eq!(&cells[0].1[..], b"1b");
    }

    #[test]
    fn wal_replay_recovers_unflushed_writes() {
        let mut fs = fs();
        {
            let mut r = Region::open("t", &mut fs).unwrap();
            r.put(b"r", b"a", b"durable", &mut fs).unwrap();
            // The region server "crashes" here: no flush.
        }
        let recovered = Region::open("t", &mut fs).unwrap();
        assert_eq!(
            recovered.get(b"r", b"a").as_deref(),
            Some(b"durable".as_ref())
        );
        assert_eq!(recovered.wal_entries(), 1);
    }

    #[test]
    fn flush_persists_and_truncates_the_wal() {
        let mut fs = fs();
        let mut r = Region::open("t", &mut fs).unwrap();
        r.put(b"r", b"a", b"x", &mut fs).unwrap();
        r.flush(&mut fs).unwrap();
        assert_eq!(r.wal_entries(), 0);
        assert_eq!(r.hfile_count(), 1);
        // Reopen: data comes from the HFile, not the WAL.
        let reopened = Region::open("t", &mut fs).unwrap();
        assert_eq!(reopened.get(b"r", b"a").as_deref(), Some(b"x".as_ref()));
        assert_eq!(reopened.wal_entries(), 0);
    }

    #[test]
    fn compaction_collapses_hfiles_and_drops_tombstones() {
        let mut fs = fs();
        let mut r = Region::open("t", &mut fs).unwrap();
        for i in 0..3u8 {
            r.put(b"r", b"a", &[i], &mut fs).unwrap();
            r.put(b"gone", b"x", &[i], &mut fs).unwrap();
            r.flush(&mut fs).unwrap();
        }
        r.delete(b"gone", b"x", &mut fs).unwrap();
        r.flush(&mut fs).unwrap();
        assert_eq!(r.hfile_count(), 4);
        r.compact(&mut fs).unwrap();
        assert_eq!(r.hfile_count(), 1);
        assert_eq!(r.get(b"r", b"a").as_deref(), Some([2u8].as_ref()));
        assert_eq!(r.get(b"gone", b"x"), None);
        // Reopen after compaction: state intact.
        let reopened = Region::open("t", &mut fs).unwrap();
        assert_eq!(reopened.get(b"r", b"a").as_deref(), Some([2u8].as_ref()));
        assert_eq!(reopened.get(b"gone", b"x"), None);
    }

    #[test]
    fn hbase_537_safe_mode_blocks_open_and_retry_fixes_it() {
        let mut fs = MiniHdfs::new(); // No datanodes yet: safe mode.
        assert!(matches!(
            Region::open("t", &mut fs),
            Err(HBaseError::NameNodeNotReady)
        ));
        // The fixed startup retries while the cluster comes up.
        let mut registered = false;
        let r = Region::open_with_retry("t", &mut fs, 3, |fs| {
            if !registered {
                fs.register_datanode(minihdfs::DataNodeId(0));
                registered = true;
            }
        })
        .unwrap();
        assert_eq!(r.name(), "t");
        // Exhausted retries surface the readiness error.
        let mut fs2 = MiniHdfs::new();
        assert!(matches!(
            Region::open_with_retry("t", &mut fs2, 2, |_| {}),
            Err(HBaseError::NameNodeNotReady)
        ));
    }

    #[test]
    fn corrupt_store_files_fail_cleanly() {
        assert!(matches!(
            decode_cells(&[1, 2, 3]),
            Err(HBaseError::Corrupt(_))
        ));
        let cell = encode_cell(&(b"r".to_vec(), b"c".to_vec()), &(1, None));
        assert!(decode_cells(&cell).is_ok());
        assert!(decode_cells(&cell[..cell.len() - 1]).is_err());
    }
}
