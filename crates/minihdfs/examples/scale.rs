//! Baseline timing harness: create a dirs×files namespace, then time
//! listings of one directory. Run as `scale <dirs> <files_per_dir> <lists>`.

use minihdfs::{HdfsPath, MiniHdfs};
use std::time::Instant;

fn main() {
    let mut args = std::env::args().skip(1);
    let dirs: usize = args.next().unwrap().parse().unwrap();
    let files: usize = args.next().unwrap().parse().unwrap();
    let lists: usize = args.next().unwrap().parse().unwrap();

    let mut fs = MiniHdfs::with_datanodes(3);
    let t = Instant::now();
    for d in 0..dirs {
        let dir = HdfsPath::parse(&format!("/warehouse/db{d}")).unwrap();
        fs.mkdirs(&dir).unwrap();
        for f in 0..files {
            let p = HdfsPath::parse(&format!("/warehouse/db{d}/part-{f:05}.orc")).unwrap();
            fs.create(&p, b"x").unwrap();
        }
    }
    let create_us = t.elapsed().as_micros();

    let probe = HdfsPath::parse("/warehouse/db0").unwrap();
    let t = Instant::now();
    let mut total = 0usize;
    for _ in 0..lists {
        total += fs.list_status(&probe).unwrap().len();
    }
    let list_us = t.elapsed().as_micros();

    let t = Instant::now();
    let from = HdfsPath::parse("/warehouse/db0").unwrap();
    let to = HdfsPath::parse("/warehouse/db-renamed").unwrap();
    fs.rename(&from, &to).unwrap();
    let rename_us = t.elapsed().as_micros();

    println!(
        "files={} create_us={create_us} list_us_total={list_us} lists={lists} \
         listed={total} rename_dir_us={rename_us}",
        dirs * files
    );
}
