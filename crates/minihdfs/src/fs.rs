//! The minihdfs namenode and datanode fleet.
//!
//! The namespace is stored production-style: an interned-name tree (a
//! [`NameTable`] u32 symbol table, a parent-pointer inode arena with a
//! LIFO free list, per-directory child maps keyed by symbol) instead of
//! the seed's flat `BTreeMap<Vec<String>, INode>`. Path resolution,
//! create, rename, and delete are O(depth) with zero per-operation
//! `Vec<String>` clones; directory quota checks read subtree aggregates
//! maintained along parent chains instead of scanning the whole map;
//! block lists are copy-on-write (`Arc`) so status/clone-heavy callers
//! never duplicate them.
//!
//! Determinism invariant: nothing observable (statuses, listings, errors,
//! traces) may depend on symbol values or arena slot numbers — only on
//! resolved name strings and caller-supplied paths. [`MiniHdfs::vacuum`]
//! relies on this to rebuild the interner and arena in canonical
//! namespace order, making the internal layout a pure function of the
//! live namespace regardless of operation history.

use crate::error::HdfsError;
use crate::name::{NameTable, Sym};
use crate::path::HdfsPath;
use crate::token::{DelegationToken, TokenCheck, TokenId, TokenRegistry};
use bytes::Bytes;
use csi_core::boundary::{BoundaryCall, CrossingContext};
use csi_core::fault::{Channel, FaultKind, FaultPoint, InjectionRegistry};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Identifier of a simulated datanode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DataNodeId(pub u32);

/// Where a file's bytes physically live, from the cluster's point of view.
///
/// Cloud storage systems extend POSIX with such properties; FLINK-13758 is a
/// CSI failure where the upstream had to treat local and remote files
/// differently and did not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Locality {
    /// Stored on datanodes of this cluster.
    Local,
    /// Stored in a remote tier (e.g. archival or cloud storage).
    Remote,
}

/// Custom (non-POSIX) file properties exposed by the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileProperties {
    /// Whether the file content is transparently compressed.
    ///
    /// For compressed files the namenode reports a length of `-1`
    /// (SPARK-27239, Figure 2): the real length is only known after
    /// decompression, and `-1` is the store's documented sentinel.
    pub compressed: bool,
    /// Whether the file is encrypted at rest.
    pub encrypted: bool,
    /// Physical locality.
    pub locality: Locality,
}

impl Default for FileProperties {
    fn default() -> FileProperties {
        FileProperties {
            compressed: false,
            encrypted: false,
            locality: Locality::Local,
        }
    }
}

/// Status record returned by [`MiniHdfs::get_file_status`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileStatus {
    /// Absolute path.
    pub path: HdfsPath,
    /// Whether the node is a directory.
    pub is_dir: bool,
    /// Reported length in bytes.
    ///
    /// **Careful**: this is `-1` for compressed files — a valid value per
    /// this store's specification, and the undefined-value discrepancy
    /// behind SPARK-27239. Use [`MiniHdfs::stored_length`] for the physical
    /// length.
    pub len: i64,
    /// Replication factor of the file (0 for directories).
    pub replication: u32,
    /// Modification time (namenode clock, ms).
    pub modification_time: u64,
    /// Owner name.
    pub owner: String,
    /// POSIX-style permission bits.
    pub permissions: u16,
    /// Custom properties.
    pub properties: FileProperties,
}

/// One block of a file and its replica locations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockInfo {
    /// Block id, unique within the namenode.
    pub id: u64,
    /// Bytes in this block.
    pub len: u64,
    /// Datanodes currently holding a replica.
    pub replicas: Vec<DataNodeId>,
}

#[derive(Debug, Clone)]
struct Quota {
    max_namespace: Option<u64>,
    max_space: Option<u64>,
}

/// Arena inode. `Dir` carries subtree aggregates — the number of strict
/// descendants and the file bytes strictly under it — kept current along
/// parent chains on every insert/delete/append/rename so quota checks are
/// O(depth) reads instead of namespace scans.
#[derive(Debug, Clone)]
enum INode {
    Dir {
        children: BTreeMap<Sym, u32>,
        quota: Option<Quota>,
        mtime: u64,
        subtree_nodes: u64,
        subtree_bytes: u64,
    },
    File {
        data: Bytes,
        props: FileProperties,
        replication: u32,
        blocks: Arc<Vec<BlockInfo>>,
        mtime: u64,
        owner: Sym,
        permissions: u16,
    },
    /// Freed slot, linked into the LIFO free list (`next` = arena index,
    /// [`NIL`] terminates the list).
    Free { next: u32 },
}

#[derive(Debug, Clone)]
struct Entry {
    name: Sym,
    parent: u32,
    node: INode,
}

/// Arena index of the root directory.
const ROOT: u32 = 0;
/// Free-list terminator.
const NIL: u32 = u32::MAX;

/// The in-memory HDFS cluster: one namenode plus registered datanodes.
///
/// Time does not advance on its own; callers (or the discrete-event
/// simulator) drive the clock via [`MiniHdfs::advance_clock`], which keeps
/// token-expiry scenarios deterministic.
#[derive(Debug)]
pub struct MiniHdfs {
    names: NameTable,
    arena: Vec<Entry>,
    free_head: u32,
    datanodes: BTreeMap<DataNodeId, bool>, // true = live
    tokens: TokenRegistry,
    clock_ms: u64,
    safe_mode: bool,
    min_live_datanodes: usize,
    block_size: u64,
    default_replication: u32,
    next_block_id: u64,
    crossing: Option<CrossingContext>,
}

impl Default for MiniHdfs {
    fn default() -> MiniHdfs {
        MiniHdfs::new()
    }
}

impl MiniHdfs {
    /// Creates a cluster with no datanodes, in safe mode.
    pub fn new() -> MiniHdfs {
        let mut names = NameTable::new();
        let root_name = names.intern("");
        MiniHdfs {
            names,
            arena: vec![Entry {
                name: root_name,
                parent: ROOT,
                node: INode::Dir {
                    children: BTreeMap::new(),
                    quota: None,
                    mtime: 0,
                    subtree_nodes: 0,
                    subtree_bytes: 0,
                },
            }],
            free_head: NIL,
            datanodes: BTreeMap::new(),
            tokens: TokenRegistry::default(),
            clock_ms: 0,
            safe_mode: true,
            min_live_datanodes: 1,
            block_size: 128,
            default_replication: 3,
            next_block_id: 0,
            crossing: None,
        }
    }

    /// Attaches a fault-injection registry by wrapping it in a tracing
    /// [`CrossingContext`]; the public file-operation entry points route
    /// through it.
    pub fn set_injection(&mut self, registry: InjectionRegistry) {
        self.set_crossing(CrossingContext::with_registry(registry));
    }

    /// Attaches the deployment's crossing context; every file-operation
    /// entry point crosses the [`Channel::Hdfs`] boundary through it.
    pub fn set_crossing(&mut self, crossing: CrossingContext) {
        self.crossing = Some(crossing);
    }

    /// The file-operation boundary crossing at the entry of `op`.
    fn cross(&self, op: &str, path: &HdfsPath) -> Result<(), HdfsError> {
        match &self.crossing {
            Some(ctx) => {
                ctx.cross(BoundaryCall::new(Channel::Hdfs, op).with_payload(&path.to_string()))
            }
            None => Ok(()),
        }
    }

    /// Creates a ready-to-use cluster with `n` datanodes, out of safe mode.
    pub fn with_datanodes(n: u32) -> MiniHdfs {
        let mut fs = MiniHdfs::new();
        for i in 0..n {
            fs.register_datanode(DataNodeId(i));
        }
        fs
    }

    /// Current namenode clock (ms).
    pub fn now(&self) -> u64 {
        self.clock_ms
    }

    /// Advances the namenode clock.
    pub fn advance_clock(&mut self, ms: u64) {
        self.clock_ms += ms;
    }

    /// Registers (or revives) a datanode; may leave safe mode.
    pub fn register_datanode(&mut self, id: DataNodeId) {
        self.datanodes.insert(id, true);
        if self.live_datanodes() >= self.min_live_datanodes {
            self.safe_mode = false;
        }
    }

    /// Marks a datanode dead; its replicas become unavailable.
    pub fn kill_datanode(&mut self, id: DataNodeId) {
        if let Some(live) = self.datanodes.get_mut(&id) {
            *live = false;
        }
        for entry in &mut self.arena {
            if let INode::File { blocks, .. } = &mut entry.node {
                // Copy-on-write: only clone a block list that actually
                // holds a replica on the dead node.
                if blocks.iter().any(|b| b.replicas.contains(&id)) {
                    for b in Arc::make_mut(blocks) {
                        b.replicas.retain(|r| *r != id);
                    }
                }
            }
        }
    }

    /// Number of live datanodes.
    pub fn live_datanodes(&self) -> usize {
        self.datanodes.values().filter(|l| **l).count()
    }

    /// Whether the namenode is in safe mode.
    pub fn in_safe_mode(&self) -> bool {
        self.safe_mode
    }

    /// Manually toggles safe mode (like `hdfs dfsadmin -safemode`).
    pub fn set_safe_mode(&mut self, on: bool) {
        self.safe_mode = on;
    }

    fn check_mutable(&self) -> Result<(), HdfsError> {
        if self.safe_mode {
            Err(HdfsError::SafeMode)
        } else {
            Ok(())
        }
    }

    /// Resolves a path to its arena id: O(depth) symbol-table lookups, no
    /// allocation. `None` if any component is missing or crosses a file.
    fn resolve(&self, path: &HdfsPath) -> Option<u32> {
        let mut id = ROOT;
        for comp in path.components() {
            let sym = self.names.lookup(comp)?;
            match &self.arena[id as usize].node {
                INode::Dir { children, .. } => id = *children.get(&sym)?,
                _ => return None,
            }
        }
        Some(id)
    }

    /// Ancestor arena ids of `id`, shallowest (root) first, excluding `id`.
    fn ancestors_root_first(&self, id: u32) -> Vec<u32> {
        let mut chain = Vec::new();
        let mut cur = id;
        while cur != ROOT {
            cur = self.arena[cur as usize].parent;
            chain.push(cur);
        }
        chain.reverse();
        chain
    }

    /// Takes a slot from the free list, or grows the arena.
    fn alloc(&mut self, entry: Entry) -> u32 {
        if self.free_head != NIL {
            let id = self.free_head;
            match self.arena[id as usize].node {
                INode::Free { next } => self.free_head = next,
                _ => unreachable!("free list points at a live inode"),
            }
            self.arena[id as usize] = entry;
            id
        } else {
            let id = u32::try_from(self.arena.len()).expect("inode arena overflow");
            self.arena.push(entry);
            id
        }
    }

    /// Adds to the subtree aggregates of `id` and every ancestor.
    fn add_aggregates(&mut self, mut id: u32, nodes: u64, bytes: u64) {
        loop {
            if let INode::Dir {
                subtree_nodes,
                subtree_bytes,
                ..
            } = &mut self.arena[id as usize].node
            {
                *subtree_nodes += nodes;
                *subtree_bytes += bytes;
            }
            if id == ROOT {
                break;
            }
            id = self.arena[id as usize].parent;
        }
    }

    /// Subtracts from the subtree aggregates of `id` and every ancestor.
    fn sub_aggregates(&mut self, mut id: u32, nodes: u64, bytes: u64) {
        loop {
            if let INode::Dir {
                subtree_nodes,
                subtree_bytes,
                ..
            } = &mut self.arena[id as usize].node
            {
                *subtree_nodes -= nodes;
                *subtree_bytes -= bytes;
            }
            if id == ROOT {
                break;
            }
            id = self.arena[id as usize].parent;
        }
    }

    /// Size of the subtree rooted at `id`: (inodes including `id`, file
    /// bytes). O(1) via the maintained aggregates.
    fn subtree_weight(&self, id: u32) -> (u64, u64) {
        match &self.arena[id as usize].node {
            INode::Dir {
                subtree_nodes,
                subtree_bytes,
                ..
            } => (1 + subtree_nodes, *subtree_bytes),
            INode::File { data, .. } => (1, data.len() as u64),
            INode::Free { .. } => unreachable!("weight of freed inode"),
        }
    }

    /// Links `child` under `parent` as `sym` and credits the aggregates.
    fn attach(&mut self, parent: u32, sym: Sym, child: u32, nodes: u64, bytes: u64) {
        match &mut self.arena[parent as usize].node {
            INode::Dir { children, .. } => {
                children.insert(sym, child);
            }
            _ => unreachable!("attach target is a directory"),
        }
        self.arena[child as usize].parent = parent;
        self.arena[child as usize].name = sym;
        self.add_aggregates(parent, nodes, bytes);
    }

    /// Unlinks `child` from its parent and debits the aggregates; returns
    /// the subtree weight that was removed.
    fn detach(&mut self, child: u32) -> (u64, u64) {
        let parent = self.arena[child as usize].parent;
        let sym = self.arena[child as usize].name;
        let (nodes, bytes) = self.subtree_weight(child);
        match &mut self.arena[parent as usize].node {
            INode::Dir { children, .. } => {
                children.remove(&sym);
            }
            _ => unreachable!("detach parent is a directory"),
        }
        self.sub_aggregates(parent, nodes, bytes);
        (nodes, bytes)
    }

    /// Returns a detached subtree's slots to the free list.
    fn free_subtree(&mut self, id: u32) {
        let mut stack = vec![id];
        while let Some(cur) = stack.pop() {
            if let INode::Dir { children, .. } = &self.arena[cur as usize].node {
                stack.extend(children.values().copied());
            }
            self.arena[cur as usize].node = INode::Free {
                next: self.free_head,
            };
            self.free_head = cur;
        }
    }

    /// Creates a directory and any missing ancestors.
    pub fn mkdirs(&mut self, path: &HdfsPath) -> Result<(), HdfsError> {
        self.cross("mkdirs", path)?;
        self.check_mutable()?;
        let comps = path.components();
        // `chain[d]` is the arena id of the prefix of length `d`.
        let mut chain = vec![ROOT];
        for depth in 0..comps.len() {
            let here = *chain.last().expect("chain starts at root");
            let child = self.names.lookup(&comps[depth]).and_then(|sym| {
                match &self.arena[here as usize].node {
                    INode::Dir { children, .. } => children.get(&sym).copied(),
                    _ => None,
                }
            });
            match child {
                Some(c) => match self.arena[c as usize].node {
                    INode::Dir { .. } => chain.push(c),
                    _ => return Err(HdfsError::NotADirectory(partial(&comps[..=depth]))),
                },
                None => {
                    self.check_namespace_quota(&chain, comps)?;
                    let now = self.clock_ms;
                    let sym = self.names.intern(&comps[depth]);
                    let id = self.alloc(Entry {
                        name: sym,
                        parent: here,
                        node: INode::Dir {
                            children: BTreeMap::new(),
                            quota: None,
                            mtime: now,
                            subtree_nodes: 0,
                            subtree_bytes: 0,
                        },
                    });
                    self.attach(here, sym, id, 1, 0);
                    chain.push(id);
                }
            }
        }
        Ok(())
    }

    /// Writes a whole file with default properties, creating parents.
    pub fn create(&mut self, path: &HdfsPath, data: &[u8]) -> Result<(), HdfsError> {
        self.create_with(path, data, FileProperties::default(), "hdfs", 0o644)
    }

    /// Writes a compressed file: content stored as-is, but the status
    /// reports length `-1`.
    pub fn create_compressed(&mut self, path: &HdfsPath, data: &[u8]) -> Result<(), HdfsError> {
        self.create_with(
            path,
            data,
            FileProperties {
                compressed: true,
                ..FileProperties::default()
            },
            "hdfs",
            0o644,
        )
    }

    /// Writes a whole file with explicit properties, owner, and permissions.
    pub fn create_with(
        &mut self,
        path: &HdfsPath,
        data: &[u8],
        props: FileProperties,
        owner: &str,
        permissions: u16,
    ) -> Result<(), HdfsError> {
        self.cross("create", path)?;
        self.check_mutable()?;
        if path.is_root() {
            return Err(HdfsError::IsADirectory(path.clone()));
        }
        if let Some(existing) = self.resolve(path) {
            return Err(match self.arena[existing as usize].node {
                INode::Dir { .. } => HdfsError::IsADirectory(path.clone()),
                _ => HdfsError::AlreadyExists(path.clone()),
            });
        }
        if self.live_datanodes() == 0 {
            return Err(HdfsError::InsufficientReplication {
                wanted: self.default_replication,
                live: 0,
            });
        }
        let parent_path = path.parent().expect("non-root path has a parent");
        self.mkdirs(&parent_path)?;
        let parent = self
            .resolve(&parent_path)
            .expect("mkdirs created the parent");
        let mut chain = self.ancestors_root_first(parent);
        chain.push(parent);
        let comps = path.components();
        self.check_namespace_quota(&chain, comps)?;
        self.check_space_quota(&chain, comps, data.len() as u64)?;
        let blocks = self.allocate_blocks(data.len() as u64);
        let now = self.clock_ms;
        let sym = self
            .names
            .intern(path.name().expect("non-root path has a name"));
        let owner_sym = self.names.intern(owner);
        let bytes = data.len() as u64;
        let id = self.alloc(Entry {
            name: sym,
            parent,
            node: INode::File {
                data: Bytes::copy_from_slice(data),
                props,
                replication: self.default_replication,
                blocks: Arc::new(blocks),
                mtime: now,
                owner: owner_sym,
                permissions,
            },
        });
        self.attach(parent, sym, id, 1, bytes);
        Ok(())
    }

    fn allocate_blocks(&mut self, len: u64) -> Vec<BlockInfo> {
        let live: Vec<DataNodeId> = self
            .datanodes
            .iter()
            .filter(|(_, l)| **l)
            .map(|(id, _)| *id)
            .collect();
        let mut blocks = Vec::new();
        let mut remaining = len;
        let mut cursor = 0usize;
        loop {
            let this_len = remaining.min(self.block_size);
            let id = self.next_block_id;
            self.next_block_id += 1;
            // Round-robin placement across live datanodes, up to the
            // replication factor.
            let mut replicas = Vec::new();
            for k in 0..(self.default_replication as usize).min(live.len()) {
                replicas.push(live[(cursor + k) % live.len()]);
            }
            cursor += 1;
            blocks.push(BlockInfo {
                id,
                len: this_len,
                replicas,
            });
            if remaining <= self.block_size {
                break;
            }
            remaining -= self.block_size;
        }
        blocks
    }

    /// Appends bytes to an existing file, extending its block layout.
    pub fn append(&mut self, path: &HdfsPath, data: &[u8]) -> Result<(), HdfsError> {
        self.check_mutable()?;
        let id = match self.resolve(path) {
            None => return Err(HdfsError::FileNotFound(path.clone())),
            Some(id) => id,
        };
        if matches!(self.arena[id as usize].node, INode::Dir { .. }) {
            return Err(HdfsError::IsADirectory(path.clone()));
        }
        let chain = self.ancestors_root_first(id);
        self.check_space_quota(&chain, path.components(), data.len() as u64)?;
        let new_blocks = self.allocate_blocks(data.len() as u64);
        let now = self.clock_ms;
        let parent = self.arena[id as usize].parent;
        let INode::File {
            data: existing,
            blocks,
            mtime,
            ..
        } = &mut self.arena[id as usize].node
        else {
            unreachable!("checked above");
        };
        let mut combined = existing.to_vec();
        combined.extend_from_slice(data);
        *existing = Bytes::from(combined);
        let blocks = Arc::make_mut(blocks);
        // Drop a trailing empty block left by an empty create.
        if blocks.len() == 1 && blocks[0].len == 0 && !data.is_empty() {
            blocks.clear();
        }
        blocks.extend(new_blocks);
        *mtime = now;
        self.add_aggregates(parent, 0, data.len() as u64);
        Ok(())
    }

    /// Re-replicates under-replicated blocks onto live datanodes that do
    /// not yet hold them; returns the number of new replicas placed.
    pub fn replicate_under_replicated(&mut self) -> usize {
        let live: Vec<DataNodeId> = self
            .datanodes
            .iter()
            .filter(|(_, l)| **l)
            .map(|(id, _)| *id)
            .collect();
        let mut placed = 0;
        for entry in &mut self.arena {
            if let INode::File {
                blocks,
                replication,
                ..
            } = &mut entry.node
            {
                let target = (*replication as usize).min(live.len());
                // Copy-on-write: leave healthy files' block lists shared.
                if blocks.iter().any(|b| b.replicas.len() < target) {
                    for b in Arc::make_mut(blocks) {
                        for candidate in &live {
                            if b.replicas.len() >= target {
                                break;
                            }
                            if !b.replicas.contains(candidate) {
                                b.replicas.push(*candidate);
                                placed += 1;
                            }
                        }
                    }
                }
            }
        }
        placed
    }

    /// Reads a whole file.
    ///
    /// Under an injected [`FaultKind::CorruptPayload`] the read *succeeds*
    /// but delivers deterministically garbled bytes — corruption on the
    /// wire is invisible to the namenode, so it is the caller's
    /// deserializer that has to notice.
    pub fn read(&self, path: &HdfsPath) -> Result<Bytes, HdfsError> {
        if let Some(ctx) = &self.crossing {
            let call = BoundaryCall::new(Channel::Hdfs, "read").with_payload(&path.to_string());
            if let Some(fault) = ctx.intercept(call) {
                if fault.kind == FaultKind::CorruptPayload {
                    let clean = self.read_inode(path)?;
                    return Ok(garble(&clean));
                }
                return Err(HdfsError::materialize(&fault));
            }
        }
        self.read_inode(path)
    }

    fn read_inode(&self, path: &HdfsPath) -> Result<Bytes, HdfsError> {
        match self.resolve(path) {
            None => Err(HdfsError::FileNotFound(path.clone())),
            Some(id) => match &self.arena[id as usize].node {
                INode::Dir { .. } => Err(HdfsError::IsADirectory(path.clone())),
                INode::File { data, .. } => Ok(data.clone()),
                INode::Free { .. } => unreachable!("resolved id is live"),
            },
        }
    }

    /// Reads a whole file, verifying a delegation token first.
    pub fn read_with_token(&self, path: &HdfsPath, token: TokenId) -> Result<Bytes, HdfsError> {
        match self.tokens.check(token, self.clock_ms) {
            TokenCheck::Valid => self.read(path),
            TokenCheck::Expired { expired_at } => Err(HdfsError::TokenInvalid {
                reason: format!(
                    "token expired at t={expired_at}ms (now t={}ms)",
                    self.clock_ms
                ),
            }),
            TokenCheck::Unknown => Err(HdfsError::TokenInvalid {
                reason: "unknown or cancelled token".to_string(),
            }),
        }
    }

    /// Renders the status of a live inode, under the given absolute path.
    fn status_of(&self, id: u32, path: HdfsPath) -> FileStatus {
        match &self.arena[id as usize].node {
            INode::Dir { mtime, .. } => FileStatus {
                path,
                is_dir: true,
                len: 0,
                replication: 0,
                modification_time: *mtime,
                owner: "hdfs".to_string(),
                permissions: 0o755,
                properties: FileProperties::default(),
            },
            INode::File {
                data,
                props,
                replication,
                mtime,
                owner,
                permissions,
                ..
            } => FileStatus {
                path,
                is_dir: false,
                // The documented sentinel: compressed files report -1.
                len: if props.compressed {
                    -1
                } else {
                    data.len() as i64
                },
                replication: *replication,
                modification_time: *mtime,
                owner: self.names.resolve(*owner).to_string(),
                permissions: *permissions,
                properties: *props,
            },
            INode::Free { .. } => unreachable!("status of freed inode"),
        }
    }

    /// Returns the status of a path.
    pub fn get_file_status(&self, path: &HdfsPath) -> Result<FileStatus, HdfsError> {
        match self.resolve(path) {
            None => Err(HdfsError::FileNotFound(path.clone())),
            Some(id) => Ok(self.status_of(id, path.without_authority())),
        }
    }

    /// The physical stored length, regardless of compression — the custom
    /// API an informed upstream must use instead of [`FileStatus::len`].
    pub fn stored_length(&self, path: &HdfsPath) -> Result<u64, HdfsError> {
        match self.resolve(path) {
            None => Err(HdfsError::FileNotFound(path.clone())),
            Some(id) => match &self.arena[id as usize].node {
                INode::Dir { .. } => Err(HdfsError::IsADirectory(path.clone())),
                INode::File { data, .. } => Ok(data.len() as u64),
                INode::Free { .. } => unreachable!("resolved id is live"),
            },
        }
    }

    /// Lists the immediate children of a directory.
    pub fn list_status(&self, path: &HdfsPath) -> Result<Vec<FileStatus>, HdfsError> {
        self.cross("list_status", path)?;
        let id = match self.resolve(path) {
            None => return Err(HdfsError::FileNotFound(path.clone())),
            Some(id) => id,
        };
        let children = match &self.arena[id as usize].node {
            INode::File { .. } => return Err(HdfsError::NotADirectory(path.clone())),
            INode::Dir { children, .. } => children,
            INode::Free { .. } => unreachable!("resolved id is live"),
        };
        // Child maps iterate in intern order; listings are sorted by name,
        // so symbol values stay unobservable.
        let mut kids: Vec<(&str, u32)> = children
            .iter()
            .map(|(sym, child)| (self.names.resolve(*sym), *child))
            .collect();
        kids.sort_unstable_by_key(|(name, _)| *name);
        let base = path.without_authority();
        Ok(kids
            .into_iter()
            .map(|(name, child)| self.status_of(child, base.join(name)))
            .collect())
    }

    /// Whether a path exists.
    pub fn exists(&self, path: &HdfsPath) -> bool {
        self.resolve(path).is_some()
    }

    /// Renames a file or directory (and its subtree): O(depth) pointer
    /// surgery, no per-node rewrites.
    ///
    /// Renaming a path *into its own subtree* is rejected with
    /// [`HdfsError::InvalidPath`] (the seed's flat-map prefix rewrite
    /// silently corrupted the namespace on that input).
    pub fn rename(&mut self, from: &HdfsPath, to: &HdfsPath) -> Result<(), HdfsError> {
        self.check_mutable()?;
        let from_id = match self.resolve(from) {
            None => return Err(HdfsError::FileNotFound(from.clone())),
            Some(id) => id,
        };
        if self.resolve(to).is_some() {
            return Err(HdfsError::AlreadyExists(to.clone()));
        }
        let from_comps = from.components();
        let to_comps = to.components();
        if to_comps.len() > from_comps.len() && to_comps[..from_comps.len()] == from_comps[..] {
            return Err(HdfsError::InvalidPath(format!(
                "cannot rename {from} into its own subtree {to}"
            )));
        }
        if let Some(parent) = to.parent() {
            self.mkdirs(&parent)?;
        }
        let to_parent_path = to.parent().expect("root target already exists");
        let to_parent = self
            .resolve(&to_parent_path)
            .expect("mkdirs created the target parent");
        let (nodes, bytes) = self.detach(from_id);
        let sym = self.names.intern(to.name().expect("non-root target"));
        self.attach(to_parent, sym, from_id, nodes, bytes);
        Ok(())
    }

    /// Deletes a path; directories require `recursive` unless empty.
    pub fn delete(&mut self, path: &HdfsPath, recursive: bool) -> Result<(), HdfsError> {
        self.cross("delete", path)?;
        self.check_mutable()?;
        let id = match self.resolve(path) {
            None => return Err(HdfsError::FileNotFound(path.clone())),
            Some(id) => id,
        };
        match &self.arena[id as usize].node {
            INode::File { .. } => {
                self.detach(id);
                self.free_subtree(id);
                return Ok(());
            }
            INode::Dir { children, .. } => {
                if !children.is_empty() && !recursive {
                    return Err(HdfsError::DirectoryNotEmpty(path.clone()));
                }
            }
            INode::Free { .. } => unreachable!("resolved id is live"),
        }
        if id == ROOT {
            // Deleting `/` empties the namespace but keeps the root inode.
            let kids: Vec<u32> = match &self.arena[ROOT as usize].node {
                INode::Dir { children, .. } => children.values().copied().collect(),
                _ => unreachable!("root is a directory"),
            };
            for k in kids {
                self.detach(k);
                self.free_subtree(k);
            }
            return Ok(());
        }
        self.detach(id);
        self.free_subtree(id);
        Ok(())
    }

    /// Sets a namespace/space quota on a directory.
    pub fn set_quota(
        &mut self,
        dir: &HdfsPath,
        max_namespace: Option<u64>,
        max_space: Option<u64>,
    ) -> Result<(), HdfsError> {
        let id = match self.resolve(dir) {
            None => return Err(HdfsError::FileNotFound(dir.clone())),
            Some(id) => id,
        };
        match &mut self.arena[id as usize].node {
            INode::File { .. } => Err(HdfsError::NotADirectory(dir.clone())),
            INode::Dir { quota, .. } => {
                *quota = Some(Quota {
                    max_namespace,
                    max_space,
                });
                Ok(())
            }
            INode::Free { .. } => unreachable!("resolved id is live"),
        }
    }

    /// Checks every ancestor's namespace quota before adding one inode.
    /// `chain[d]` must be the arena id of `comps[..d]`; aggregates make
    /// each check O(1), the walk O(depth).
    fn check_namespace_quota(&self, chain: &[u32], comps: &[String]) -> Result<(), HdfsError> {
        for (depth, &anc) in chain.iter().enumerate() {
            if let INode::Dir {
                quota:
                    Some(Quota {
                        max_namespace: Some(max),
                        ..
                    }),
                subtree_nodes,
                ..
            } = &self.arena[anc as usize].node
            {
                if *subtree_nodes + 1 > *max {
                    return Err(HdfsError::QuotaExceeded {
                        dir: partial(&comps[..depth]),
                        detail: format!("namespace quota {max} reached"),
                    });
                }
            }
        }
        Ok(())
    }

    /// Checks every ancestor's space quota before adding `add_bytes`.
    fn check_space_quota(
        &self,
        chain: &[u32],
        comps: &[String],
        add_bytes: u64,
    ) -> Result<(), HdfsError> {
        for (depth, &anc) in chain.iter().enumerate() {
            if let INode::Dir {
                quota:
                    Some(Quota {
                        max_space: Some(max),
                        ..
                    }),
                subtree_bytes,
                ..
            } = &self.arena[anc as usize].node
            {
                if *subtree_bytes + add_bytes > *max {
                    return Err(HdfsError::QuotaExceeded {
                        dir: partial(&comps[..depth]),
                        detail: format!("space quota {max} bytes would be exceeded"),
                    });
                }
            }
        }
        Ok(())
    }

    /// Block layout of a file.
    pub fn blocks(&self, path: &HdfsPath) -> Result<Vec<BlockInfo>, HdfsError> {
        match self.resolve(path) {
            None => Err(HdfsError::FileNotFound(path.clone())),
            Some(id) => match &self.arena[id as usize].node {
                INode::Dir { .. } => Err(HdfsError::IsADirectory(path.clone())),
                INode::File { blocks, .. } => Ok((**blocks).clone()),
                INode::Free { .. } => unreachable!("resolved id is live"),
            },
        }
    }

    /// Number of blocks whose live replica count is below the achievable
    /// target (the replication factor, capped by live datanodes).
    pub fn under_replicated_blocks(&self) -> usize {
        let live = self.live_datanodes() as u32;
        self.arena
            .iter()
            .filter_map(|entry| match &entry.node {
                INode::File {
                    blocks,
                    replication,
                    ..
                } => {
                    let target = (*replication).min(live);
                    Some(
                        blocks
                            .iter()
                            .filter(|b| (b.replicas.len() as u32) < target)
                            .count(),
                    )
                }
                _ => None,
            })
            .sum()
    }

    /// Number of live inodes, excluding the root directory.
    pub fn inode_count(&self) -> u64 {
        match &self.arena[ROOT as usize].node {
            INode::Dir { subtree_nodes, .. } => *subtree_nodes,
            _ => unreachable!("root is a directory"),
        }
    }

    /// Number of distinct name strings currently interned (grows
    /// monotonically until [`MiniHdfs::vacuum`]).
    pub fn interned_names(&self) -> usize {
        self.names.len()
    }

    /// Restores the namenode to the state of a freshly constructed
    /// cluster with the same datanode fleet size: empty namespace, clock
    /// at zero, safe mode off (datanodes re-registered), block-id and
    /// token counters rewound, quotas gone — while keeping the attached
    /// crossing context.
    ///
    /// This is stronger than [`vacuum`](MiniHdfs::vacuum): where vacuum
    /// canonicalizes the *live* namespace, `reset` erases all of it. A
    /// deployment pool recycling a namenode across campaigns uses this so
    /// a pooled instance is indistinguishable — byte for byte, including
    /// block ids appearing in diagnostics — from one built by
    /// [`MiniHdfs::with_datanodes`].
    pub fn reset(&mut self) {
        let crossing = self.crossing.take();
        *self = MiniHdfs::with_datanodes(self.datanodes.len() as u32);
        self.crossing = crossing;
    }

    /// Rebuilds the name table and inode arena from the live namespace in
    /// canonical order (pre-order DFS, children name-sorted), dropping
    /// freed slots and names only deleted inodes referenced.
    ///
    /// After a vacuum the internal layout is a pure function of the live
    /// namespace — two instances holding the same files converge to
    /// identical interner and arena state regardless of the operation
    /// history that produced them. Deployment pools rely on this when
    /// recycling an instance across experiments picked up in
    /// work-stealing (hence nondeterministic) order. The datanode fleet,
    /// delegation tokens, clock, and `next_block_id` are untouched:
    /// vacuuming never changes any observable behavior.
    pub fn vacuum(&mut self) {
        let mut names = NameTable::new();
        let root_name = names.intern("");
        let mut arena: Vec<Entry> = Vec::with_capacity(1 + self.inode_count() as usize);
        let root_node = match &self.arena[ROOT as usize].node {
            INode::Dir {
                quota,
                mtime,
                subtree_nodes,
                subtree_bytes,
                ..
            } => INode::Dir {
                children: BTreeMap::new(),
                quota: quota.clone(),
                mtime: *mtime,
                subtree_nodes: *subtree_nodes,
                subtree_bytes: *subtree_bytes,
            },
            _ => unreachable!("root is a directory"),
        };
        arena.push(Entry {
            name: root_name,
            parent: ROOT,
            node: root_node,
        });
        // (old id, new parent id), popped in name order per directory.
        let mut stack: Vec<(u32, u32)> = Vec::new();
        self.push_children_sorted(ROOT, ROOT, &mut stack);
        while let Some((old, new_parent)) = stack.pop() {
            let entry = &self.arena[old as usize];
            let sym = names.intern(self.names.resolve(entry.name));
            let node = match &entry.node {
                INode::Dir {
                    quota,
                    mtime,
                    subtree_nodes,
                    subtree_bytes,
                    ..
                } => INode::Dir {
                    children: BTreeMap::new(),
                    quota: quota.clone(),
                    mtime: *mtime,
                    subtree_nodes: *subtree_nodes,
                    subtree_bytes: *subtree_bytes,
                },
                INode::File {
                    data,
                    props,
                    replication,
                    blocks,
                    mtime,
                    owner,
                    permissions,
                } => INode::File {
                    data: data.clone(),
                    props: *props,
                    replication: *replication,
                    blocks: blocks.clone(),
                    mtime: *mtime,
                    owner: names.intern(self.names.resolve(*owner)),
                    permissions: *permissions,
                },
                INode::Free { .. } => unreachable!("free slot reachable from root"),
            };
            let new_id = u32::try_from(arena.len()).expect("inode arena overflow");
            arena.push(Entry {
                name: sym,
                parent: new_parent,
                node,
            });
            match &mut arena[new_parent as usize].node {
                INode::Dir { children, .. } => {
                    children.insert(sym, new_id);
                }
                _ => unreachable!("parent is a directory"),
            }
            self.push_children_sorted(old, new_id, &mut stack);
        }
        self.names = names;
        self.arena = arena;
        self.free_head = NIL;
    }

    /// Pushes `old`'s children onto the DFS stack in reverse name order
    /// (so they pop name-sorted), tagged with their new parent id.
    fn push_children_sorted(&self, old: u32, new_parent: u32, stack: &mut Vec<(u32, u32)>) {
        if let INode::Dir { children, .. } = &self.arena[old as usize].node {
            let mut kids: Vec<(&str, u32)> = children
                .iter()
                .map(|(sym, child)| (self.names.resolve(*sym), *child))
                .collect();
            kids.sort_unstable_by_key(|(name, _)| *name);
            for (_, child) in kids.into_iter().rev() {
                stack.push((child, new_parent));
            }
        }
    }

    /// Issues a delegation token for `owner`.
    pub fn issue_token(
        &mut self,
        owner: &str,
        renew_interval_ms: u64,
        max_lifetime_ms: u64,
    ) -> DelegationToken {
        self.tokens
            .issue(owner, self.clock_ms, renew_interval_ms, max_lifetime_ms)
    }

    /// Renews a delegation token; returns the new expiry.
    pub fn renew_token(&mut self, id: TokenId, renew_interval_ms: u64) -> Option<u64> {
        self.tokens.renew(id, self.clock_ms, renew_interval_ms)
    }

    /// Cancels a delegation token.
    pub fn cancel_token(&mut self, id: TokenId) -> bool {
        self.tokens.cancel(id)
    }
}

fn partial(components: &[String]) -> HdfsPath {
    let mut p = HdfsPath::root();
    for c in components {
        p = p.join(c);
    }
    p
}

/// Deterministically corrupts a payload: truncate to half and flip bits.
fn garble(data: &Bytes) -> Bytes {
    let garbled: Vec<u8> = data[..data.len() / 2].iter().map(|b| b ^ 0xA5).collect();
    Bytes::from(garbled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> HdfsPath {
        HdfsPath::parse(s).unwrap()
    }

    #[test]
    fn starts_in_safe_mode_until_datanodes_register() {
        let mut fs = MiniHdfs::new();
        assert!(fs.in_safe_mode());
        assert_eq!(fs.create(&p("/a"), b"x"), Err(HdfsError::SafeMode));
        fs.register_datanode(DataNodeId(0));
        assert!(!fs.in_safe_mode());
        assert!(fs.create(&p("/a"), b"x").is_ok());
    }

    #[test]
    fn create_read_round_trip() {
        let mut fs = MiniHdfs::with_datanodes(3);
        fs.create(&p("/data/file.txt"), b"hello world").unwrap();
        assert_eq!(
            fs.read(&p("/data/file.txt")).unwrap().as_ref(),
            b"hello world"
        );
        let st = fs.get_file_status(&p("/data/file.txt")).unwrap();
        assert_eq!(st.len, 11);
        assert!(!st.is_dir);
        // Parents are created implicitly.
        assert!(fs.get_file_status(&p("/data")).unwrap().is_dir);
    }

    #[test]
    fn compressed_files_report_minus_one_length() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.create_compressed(&p("/logs/app.gz"), b"compressed payload")
            .unwrap();
        let st = fs.get_file_status(&p("/logs/app.gz")).unwrap();
        assert_eq!(st.len, -1);
        assert!(st.properties.compressed);
        // The custom API reveals the physical length.
        assert_eq!(fs.stored_length(&p("/logs/app.gz")).unwrap(), 18);
        // And the content is still readable.
        assert_eq!(
            fs.read(&p("/logs/app.gz")).unwrap().as_ref(),
            b"compressed payload"
        );
    }

    #[test]
    fn create_rejects_duplicates_and_dirs() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.create(&p("/a/b"), b"1").unwrap();
        assert!(matches!(
            fs.create(&p("/a/b"), b"2"),
            Err(HdfsError::AlreadyExists(_))
        ));
        assert!(matches!(
            fs.create(&p("/a"), b"3"),
            Err(HdfsError::IsADirectory(_))
        ));
        assert!(matches!(
            fs.mkdirs(&p("/a/b/c")),
            Err(HdfsError::NotADirectory(_))
        ));
    }

    #[test]
    fn list_status_returns_children_only() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.create(&p("/d/x"), b"1").unwrap();
        fs.create(&p("/d/y"), b"22").unwrap();
        fs.create(&p("/d/sub/z"), b"333").unwrap();
        let names: Vec<String> = fs
            .list_status(&p("/d"))
            .unwrap()
            .iter()
            .map(|s| s.path.name().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["sub", "x", "y"]);
    }

    #[test]
    fn rename_moves_subtrees() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.create(&p("/src/a/b"), b"1").unwrap();
        fs.rename(&p("/src"), &p("/dst")).unwrap();
        assert!(!fs.exists(&p("/src/a/b")));
        assert_eq!(fs.read(&p("/dst/a/b")).unwrap().as_ref(), b"1");
        assert!(matches!(
            fs.rename(&p("/nope"), &p("/x")),
            Err(HdfsError::FileNotFound(_))
        ));
    }

    #[test]
    fn rename_into_own_subtree_is_rejected() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.create(&p("/src/a/b"), b"1").unwrap();
        assert!(matches!(
            fs.rename(&p("/src"), &p("/src/inner")),
            Err(HdfsError::InvalidPath(_))
        ));
        // The namespace is untouched by the refused rename.
        assert_eq!(fs.read(&p("/src/a/b")).unwrap().as_ref(), b"1");
        assert!(!fs.exists(&p("/src/inner")));
        // Renaming onto itself is still the pre-existing AlreadyExists.
        assert!(matches!(
            fs.rename(&p("/src"), &p("/src")),
            Err(HdfsError::AlreadyExists(_))
        ));
    }

    #[test]
    fn delete_requires_recursive_for_nonempty_dirs() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.create(&p("/d/x"), b"1").unwrap();
        assert!(matches!(
            fs.delete(&p("/d"), false),
            Err(HdfsError::DirectoryNotEmpty(_))
        ));
        fs.delete(&p("/d"), true).unwrap();
        assert!(!fs.exists(&p("/d")));
        assert!(!fs.exists(&p("/d/x")));
    }

    #[test]
    fn namespace_quota_is_enforced() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.mkdirs(&p("/q")).unwrap();
        fs.set_quota(&p("/q"), Some(2), None).unwrap();
        fs.create(&p("/q/a"), b"1").unwrap();
        fs.create(&p("/q/b"), b"2").unwrap();
        assert!(matches!(
            fs.create(&p("/q/c"), b"3"),
            Err(HdfsError::QuotaExceeded { .. })
        ));
    }

    #[test]
    fn space_quota_is_enforced() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.mkdirs(&p("/q")).unwrap();
        fs.set_quota(&p("/q"), None, Some(10)).unwrap();
        fs.create(&p("/q/a"), b"12345").unwrap();
        assert!(matches!(
            fs.create(&p("/q/b"), b"123456"),
            Err(HdfsError::QuotaExceeded { .. })
        ));
        fs.create(&p("/q/b"), b"12345").unwrap();
    }

    #[test]
    fn quota_accounting_survives_rename_and_delete() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.mkdirs(&p("/q")).unwrap();
        fs.set_quota(&p("/q"), None, Some(10)).unwrap();
        fs.create(&p("/tmp/big"), b"123456789").unwrap();
        // The seed never quota-checked rename itself; the moved bytes are
        // only charged against subsequent writes.
        fs.rename(&p("/tmp/big"), &p("/q/big")).unwrap();
        assert!(matches!(
            fs.create(&p("/q/more"), b"xx"),
            Err(HdfsError::QuotaExceeded { .. })
        ));
        fs.delete(&p("/q/big"), false).unwrap();
        fs.create(&p("/q/more"), b"xx").unwrap();
    }

    #[test]
    fn blocks_split_by_block_size_and_replicate() {
        let mut fs = MiniHdfs::with_datanodes(3);
        let data = vec![7u8; 300];
        fs.create(&p("/big"), &data).unwrap();
        let blocks = fs.blocks(&p("/big")).unwrap();
        assert_eq!(blocks.len(), 3); // 128 + 128 + 44.
        assert_eq!(blocks[0].len, 128);
        assert_eq!(blocks[2].len, 44);
        for b in &blocks {
            assert_eq!(b.replicas.len(), 3);
        }
    }

    #[test]
    fn killing_a_datanode_loses_replicas() {
        let mut fs = MiniHdfs::with_datanodes(2);
        fs.create(&p("/f"), b"data").unwrap();
        fs.kill_datanode(DataNodeId(0));
        let blocks = fs.blocks(&p("/f")).unwrap();
        assert!(blocks.iter().all(|b| !b.replicas.contains(&DataNodeId(0))));
        assert_eq!(fs.live_datanodes(), 1);
    }

    #[test]
    fn empty_file_has_one_empty_block() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.create(&p("/empty"), b"").unwrap();
        let blocks = fs.blocks(&p("/empty")).unwrap();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].len, 0);
        assert_eq!(fs.get_file_status(&p("/empty")).unwrap().len, 0);
    }

    #[test]
    fn append_extends_content_and_blocks() {
        let mut fs = MiniHdfs::with_datanodes(3);
        fs.create(&p("/log"), b"first ").unwrap();
        fs.append(&p("/log"), b"second").unwrap();
        assert_eq!(fs.read(&p("/log")).unwrap().as_ref(), b"first second");
        assert_eq!(fs.get_file_status(&p("/log")).unwrap().len, 12);
        // Appending to a missing file or a directory fails cleanly.
        assert!(matches!(
            fs.append(&p("/nope"), b"x"),
            Err(HdfsError::FileNotFound(_))
        ));
        fs.mkdirs(&p("/dir")).unwrap();
        assert!(matches!(
            fs.append(&p("/dir"), b"x"),
            Err(HdfsError::IsADirectory(_))
        ));
        // Appending past a block boundary allocates more blocks.
        let big = vec![1u8; 200];
        fs.append(&p("/log"), &big).unwrap();
        assert!(fs.blocks(&p("/log")).unwrap().len() >= 2);
    }

    #[test]
    fn append_respects_space_quota() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.mkdirs(&p("/q")).unwrap();
        fs.set_quota(&p("/q"), None, Some(10)).unwrap();
        fs.create(&p("/q/f"), b"12345").unwrap();
        assert!(fs.append(&p("/q/f"), b"12345").is_ok());
        assert!(matches!(
            fs.append(&p("/q/f"), b"x"),
            Err(HdfsError::QuotaExceeded { .. })
        ));
    }

    #[test]
    fn re_replication_heals_lost_replicas() {
        // Four nodes: replicas land on three of them; killing one leaves
        // the block under-replicated even though three nodes are live.
        let mut fs = MiniHdfs::with_datanodes(4);
        fs.create(&p("/f"), b"replicated data").unwrap();
        assert_eq!(fs.under_replicated_blocks(), 0);
        fs.kill_datanode(DataNodeId(1));
        assert!(fs.under_replicated_blocks() > 0);
        // A new node joins and the namenode re-replicates.
        fs.register_datanode(DataNodeId(9));
        let placed = fs.replicate_under_replicated();
        assert!(placed > 0);
        assert_eq!(fs.under_replicated_blocks(), 0);
        // Idempotent once healthy.
        assert_eq!(fs.replicate_under_replicated(), 0);
    }

    #[test]
    fn token_gated_read_honors_expiry() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.create(&p("/secure"), b"secret").unwrap();
        let token = fs.issue_token("spark", 1000, 5000);
        assert!(fs.read_with_token(&p("/secure"), token.id).is_ok());
        fs.advance_clock(1500);
        assert!(matches!(
            fs.read_with_token(&p("/secure"), token.id),
            Err(HdfsError::TokenInvalid { .. })
        ));
        // Renewal restores access (YARN-2790's intended flow).
        fs.renew_token(token.id, 1000).unwrap();
        assert!(fs.read_with_token(&p("/secure"), token.id).is_ok());
        fs.cancel_token(token.id);
        assert!(fs.read_with_token(&p("/secure"), token.id).is_err());
    }

    #[test]
    fn uri_and_plain_paths_address_the_same_file() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.create(&p("hdfs://nn:9000/x/y"), b"1").unwrap();
        assert_eq!(fs.read(&p("/x/y")).unwrap().as_ref(), b"1");
    }

    /// Full observable snapshot of a subtree: statuses, listings, content.
    fn snapshot(fs: &MiniHdfs, dir: &HdfsPath) -> Vec<(String, FileStatus, Option<Vec<u8>>)> {
        let mut out = Vec::new();
        let mut stack = vec![dir.clone()];
        while let Some(d) = stack.pop() {
            for st in fs.list_status(&d).unwrap() {
                let content = if st.is_dir {
                    stack.push(st.path.clone());
                    None
                } else {
                    Some(fs.read(&st.path).unwrap().to_vec())
                };
                out.push((st.path.to_string(), st.clone(), content));
            }
        }
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }

    #[test]
    fn vacuum_preserves_namespace_and_compacts_interner() {
        let mut fs = MiniHdfs::with_datanodes(3);
        for i in 0..20 {
            fs.create(&p(&format!("/warehouse/t{i}/part-{i}.orc")), b"rows")
                .unwrap();
        }
        fs.mkdirs(&p("/q")).unwrap();
        fs.set_quota(&p("/q"), Some(5), Some(100)).unwrap();
        fs.create(&p("/q/kept"), b"abc").unwrap();
        for i in 0..15 {
            fs.delete(&p(&format!("/warehouse/t{i}")), true).unwrap();
        }
        let before = snapshot(&fs, &HdfsPath::root());
        let names_before = fs.interned_names();
        let inodes = fs.inode_count();
        fs.vacuum();
        assert_eq!(snapshot(&fs, &HdfsPath::root()), before);
        assert_eq!(fs.inode_count(), inodes);
        // Names referenced only by deleted inodes are gone.
        assert!(fs.interned_names() < names_before);
        // Quotas survive: /q (max 5 names, 1 used) still enforces.
        fs.create(&p("/q/a"), b"1").unwrap();
        fs.create(&p("/q/b"), b"2").unwrap();
        fs.create(&p("/q/c"), b"3").unwrap();
        fs.create(&p("/q/d"), b"4").unwrap();
        assert!(matches!(
            fs.create(&p("/q/e"), b"5"),
            Err(HdfsError::QuotaExceeded { .. })
        ));
        // Vacuum is idempotent.
        fs.vacuum();
        let again = snapshot(&fs, &HdfsPath::root());
        fs.vacuum();
        assert_eq!(snapshot(&fs, &HdfsPath::root()), again);
    }

    #[test]
    fn vacuum_state_is_history_independent() {
        // Two different operation histories that converge to the same live
        // namespace must converge to the same internal layout after vacuum.
        let mut a = MiniHdfs::with_datanodes(1);
        a.create(&p("/x/one"), b"1").unwrap();
        a.create(&p("/y/two"), b"2").unwrap();
        let mut b = MiniHdfs::with_datanodes(1);
        b.create(&p("/zebra/tmp"), b"t").unwrap();
        b.create(&p("/y/two"), b"2").unwrap();
        b.delete(&p("/zebra"), true).unwrap();
        b.create(&p("/x/one"), b"1").unwrap();
        a.vacuum();
        b.vacuum();
        assert_eq!(a.interned_names(), b.interned_names());
        assert_eq!(a.inode_count(), b.inode_count());
        assert_eq!(
            snapshot(&a, &HdfsPath::root()),
            snapshot(&b, &HdfsPath::root())
        );
    }

    #[test]
    fn freed_inode_slots_are_reused() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.create(&p("/a"), b"1").unwrap();
        let count = fs.inode_count();
        for _ in 0..100 {
            fs.create(&p("/tmp/scratch"), b"x").unwrap();
            fs.delete(&p("/tmp"), true).unwrap();
        }
        assert_eq!(fs.inode_count(), count);
        // The arena recycles slots rather than growing per churn cycle:
        // 1 live file + root + at most the churn pair.
        assert!(fs.arena.len() <= 4);
    }
}
