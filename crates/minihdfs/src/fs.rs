//! The minihdfs namenode and datanode fleet.

use crate::error::HdfsError;
use crate::path::HdfsPath;
use crate::token::{DelegationToken, TokenCheck, TokenId, TokenRegistry};
use bytes::Bytes;
use csi_core::boundary::{BoundaryCall, CrossingContext};
use csi_core::fault::{Channel, FaultKind, FaultPoint, InjectionRegistry};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Identifier of a simulated datanode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DataNodeId(pub u32);

/// Where a file's bytes physically live, from the cluster's point of view.
///
/// Cloud storage systems extend POSIX with such properties; FLINK-13758 is a
/// CSI failure where the upstream had to treat local and remote files
/// differently and did not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Locality {
    /// Stored on datanodes of this cluster.
    Local,
    /// Stored in a remote tier (e.g. archival or cloud storage).
    Remote,
}

/// Custom (non-POSIX) file properties exposed by the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileProperties {
    /// Whether the file content is transparently compressed.
    ///
    /// For compressed files the namenode reports a length of `-1`
    /// (SPARK-27239, Figure 2): the real length is only known after
    /// decompression, and `-1` is the store's documented sentinel.
    pub compressed: bool,
    /// Whether the file is encrypted at rest.
    pub encrypted: bool,
    /// Physical locality.
    pub locality: Locality,
}

impl Default for FileProperties {
    fn default() -> FileProperties {
        FileProperties {
            compressed: false,
            encrypted: false,
            locality: Locality::Local,
        }
    }
}

/// Status record returned by [`MiniHdfs::get_file_status`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileStatus {
    /// Absolute path.
    pub path: HdfsPath,
    /// Whether the node is a directory.
    pub is_dir: bool,
    /// Reported length in bytes.
    ///
    /// **Careful**: this is `-1` for compressed files — a valid value per
    /// this store's specification, and the undefined-value discrepancy
    /// behind SPARK-27239. Use [`MiniHdfs::stored_length`] for the physical
    /// length.
    pub len: i64,
    /// Replication factor of the file (0 for directories).
    pub replication: u32,
    /// Modification time (namenode clock, ms).
    pub modification_time: u64,
    /// Owner name.
    pub owner: String,
    /// POSIX-style permission bits.
    pub permissions: u16,
    /// Custom properties.
    pub properties: FileProperties,
}

/// One block of a file and its replica locations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BlockInfo {
    /// Block id, unique within the namenode.
    pub id: u64,
    /// Bytes in this block.
    pub len: u64,
    /// Datanodes currently holding a replica.
    pub replicas: Vec<DataNodeId>,
}

#[derive(Debug, Clone)]
struct Quota {
    max_namespace: Option<u64>,
    max_space: Option<u64>,
}

#[derive(Debug, Clone)]
enum INode {
    Dir {
        quota: Option<Quota>,
        mtime: u64,
    },
    File {
        data: Bytes,
        props: FileProperties,
        replication: u32,
        blocks: Vec<BlockInfo>,
        mtime: u64,
        owner: String,
        permissions: u16,
    },
}

/// The in-memory HDFS cluster: one namenode plus registered datanodes.
///
/// Time does not advance on its own; callers (or the discrete-event
/// simulator) drive the clock via [`MiniHdfs::advance_clock`], which keeps
/// token-expiry scenarios deterministic.
#[derive(Debug)]
pub struct MiniHdfs {
    nodes: BTreeMap<Vec<String>, INode>,
    datanodes: BTreeMap<DataNodeId, bool>, // true = live
    tokens: TokenRegistry,
    clock_ms: u64,
    safe_mode: bool,
    min_live_datanodes: usize,
    block_size: u64,
    default_replication: u32,
    next_block_id: u64,
    crossing: Option<CrossingContext>,
}

impl Default for MiniHdfs {
    fn default() -> MiniHdfs {
        MiniHdfs::new()
    }
}

impl MiniHdfs {
    /// Creates a cluster with no datanodes, in safe mode.
    pub fn new() -> MiniHdfs {
        let mut nodes = BTreeMap::new();
        nodes.insert(
            Vec::new(),
            INode::Dir {
                quota: None,
                mtime: 0,
            },
        );
        MiniHdfs {
            nodes,
            datanodes: BTreeMap::new(),
            tokens: TokenRegistry::default(),
            clock_ms: 0,
            safe_mode: true,
            min_live_datanodes: 1,
            block_size: 128,
            default_replication: 3,
            next_block_id: 0,
            crossing: None,
        }
    }

    /// Attaches a fault-injection registry by wrapping it in a tracing
    /// [`CrossingContext`]; the public file-operation entry points route
    /// through it.
    pub fn set_injection(&mut self, registry: InjectionRegistry) {
        self.set_crossing(CrossingContext::with_registry(registry));
    }

    /// Attaches the deployment's crossing context; every file-operation
    /// entry point crosses the [`Channel::Hdfs`] boundary through it.
    pub fn set_crossing(&mut self, crossing: CrossingContext) {
        self.crossing = Some(crossing);
    }

    /// The file-operation boundary crossing at the entry of `op`.
    fn cross(&self, op: &str, path: &HdfsPath) -> Result<(), HdfsError> {
        match &self.crossing {
            Some(ctx) => {
                ctx.cross(BoundaryCall::new(Channel::Hdfs, op).with_payload(&path.to_string()))
            }
            None => Ok(()),
        }
    }

    /// Creates a ready-to-use cluster with `n` datanodes, out of safe mode.
    pub fn with_datanodes(n: u32) -> MiniHdfs {
        let mut fs = MiniHdfs::new();
        for i in 0..n {
            fs.register_datanode(DataNodeId(i));
        }
        fs
    }

    /// Current namenode clock (ms).
    pub fn now(&self) -> u64 {
        self.clock_ms
    }

    /// Advances the namenode clock.
    pub fn advance_clock(&mut self, ms: u64) {
        self.clock_ms += ms;
    }

    /// Registers (or revives) a datanode; may leave safe mode.
    pub fn register_datanode(&mut self, id: DataNodeId) {
        self.datanodes.insert(id, true);
        if self.live_datanodes() >= self.min_live_datanodes {
            self.safe_mode = false;
        }
    }

    /// Marks a datanode dead; its replicas become unavailable.
    pub fn kill_datanode(&mut self, id: DataNodeId) {
        if let Some(live) = self.datanodes.get_mut(&id) {
            *live = false;
        }
        for node in self.nodes.values_mut() {
            if let INode::File { blocks, .. } = node {
                for b in blocks {
                    b.replicas.retain(|r| *r != id);
                }
            }
        }
    }

    /// Number of live datanodes.
    pub fn live_datanodes(&self) -> usize {
        self.datanodes.values().filter(|l| **l).count()
    }

    /// Whether the namenode is in safe mode.
    pub fn in_safe_mode(&self) -> bool {
        self.safe_mode
    }

    /// Manually toggles safe mode (like `hdfs dfsadmin -safemode`).
    pub fn set_safe_mode(&mut self, on: bool) {
        self.safe_mode = on;
    }

    fn check_mutable(&self) -> Result<(), HdfsError> {
        if self.safe_mode {
            Err(HdfsError::SafeMode)
        } else {
            Ok(())
        }
    }

    fn key(path: &HdfsPath) -> Vec<String> {
        path.without_authority().components().to_vec()
    }

    /// Creates a directory and any missing ancestors.
    pub fn mkdirs(&mut self, path: &HdfsPath) -> Result<(), HdfsError> {
        self.cross("mkdirs", path)?;
        self.check_mutable()?;
        let comps = Self::key(path);
        for depth in 1..=comps.len() {
            let prefix = comps[..depth].to_vec();
            match self.nodes.get(&prefix) {
                Some(INode::Dir { .. }) => {}
                Some(INode::File { .. }) => {
                    return Err(HdfsError::NotADirectory(partial(&prefix)));
                }
                None => {
                    self.check_namespace_quota(&prefix)?;
                    self.nodes.insert(
                        prefix,
                        INode::Dir {
                            quota: None,
                            mtime: self.clock_ms,
                        },
                    );
                }
            }
        }
        Ok(())
    }

    /// Writes a whole file with default properties, creating parents.
    pub fn create(&mut self, path: &HdfsPath, data: &[u8]) -> Result<(), HdfsError> {
        self.create_with(path, data, FileProperties::default(), "hdfs", 0o644)
    }

    /// Writes a compressed file: content stored as-is, but the status
    /// reports length `-1`.
    pub fn create_compressed(&mut self, path: &HdfsPath, data: &[u8]) -> Result<(), HdfsError> {
        self.create_with(
            path,
            data,
            FileProperties {
                compressed: true,
                ..FileProperties::default()
            },
            "hdfs",
            0o644,
        )
    }

    /// Writes a whole file with explicit properties, owner, and permissions.
    pub fn create_with(
        &mut self,
        path: &HdfsPath,
        data: &[u8],
        props: FileProperties,
        owner: &str,
        permissions: u16,
    ) -> Result<(), HdfsError> {
        self.cross("create", path)?;
        self.check_mutable()?;
        if path.is_root() {
            return Err(HdfsError::IsADirectory(path.clone()));
        }
        let comps = Self::key(path);
        if let Some(existing) = self.nodes.get(&comps) {
            match existing {
                INode::Dir { .. } => return Err(HdfsError::IsADirectory(path.clone())),
                INode::File { .. } => return Err(HdfsError::AlreadyExists(path.clone())),
            }
        }
        if self.live_datanodes() == 0 {
            return Err(HdfsError::InsufficientReplication {
                wanted: self.default_replication,
                live: 0,
            });
        }
        if let Some(parent) = path.parent() {
            self.mkdirs(&parent)?;
        }
        self.check_namespace_quota(&comps)?;
        self.check_space_quota(&comps, data.len() as u64)?;
        let blocks = self.allocate_blocks(data.len() as u64);
        self.nodes.insert(
            comps,
            INode::File {
                data: Bytes::copy_from_slice(data),
                props,
                replication: self.default_replication,
                blocks,
                mtime: self.clock_ms,
                owner: owner.to_string(),
                permissions,
            },
        );
        Ok(())
    }

    fn allocate_blocks(&mut self, len: u64) -> Vec<BlockInfo> {
        let live: Vec<DataNodeId> = self
            .datanodes
            .iter()
            .filter(|(_, l)| **l)
            .map(|(id, _)| *id)
            .collect();
        let mut blocks = Vec::new();
        let mut remaining = len;
        let mut cursor = 0usize;
        loop {
            let this_len = remaining.min(self.block_size);
            let id = self.next_block_id;
            self.next_block_id += 1;
            // Round-robin placement across live datanodes, up to the
            // replication factor.
            let mut replicas = Vec::new();
            for k in 0..(self.default_replication as usize).min(live.len()) {
                replicas.push(live[(cursor + k) % live.len()]);
            }
            cursor += 1;
            blocks.push(BlockInfo {
                id,
                len: this_len,
                replicas,
            });
            if remaining <= self.block_size {
                break;
            }
            remaining -= self.block_size;
        }
        blocks
    }

    /// Appends bytes to an existing file, extending its block layout.
    pub fn append(&mut self, path: &HdfsPath, data: &[u8]) -> Result<(), HdfsError> {
        self.check_mutable()?;
        let comps = Self::key(path);
        match self.nodes.get(&comps) {
            None => return Err(HdfsError::FileNotFound(path.clone())),
            Some(INode::Dir { .. }) => return Err(HdfsError::IsADirectory(path.clone())),
            Some(INode::File { .. }) => {}
        }
        self.check_space_quota(&comps, data.len() as u64)?;
        let new_blocks = self.allocate_blocks(data.len() as u64);
        let now = self.clock_ms;
        let Some(INode::File {
            data: existing,
            blocks,
            mtime,
            ..
        }) = self.nodes.get_mut(&comps)
        else {
            unreachable!("checked above");
        };
        let mut combined = existing.to_vec();
        combined.extend_from_slice(data);
        *existing = Bytes::from(combined);
        // Drop a trailing empty block left by an empty create.
        if blocks.len() == 1 && blocks[0].len == 0 && !data.is_empty() {
            blocks.clear();
        }
        blocks.extend(new_blocks);
        *mtime = now;
        Ok(())
    }

    /// Re-replicates under-replicated blocks onto live datanodes that do
    /// not yet hold them; returns the number of new replicas placed.
    pub fn replicate_under_replicated(&mut self) -> usize {
        let live: Vec<DataNodeId> = self
            .datanodes
            .iter()
            .filter(|(_, l)| **l)
            .map(|(id, _)| *id)
            .collect();
        let mut placed = 0;
        for node in self.nodes.values_mut() {
            if let INode::File {
                blocks,
                replication,
                ..
            } = node
            {
                for b in blocks {
                    let target = (*replication as usize).min(live.len());
                    for candidate in &live {
                        if b.replicas.len() >= target {
                            break;
                        }
                        if !b.replicas.contains(candidate) {
                            b.replicas.push(*candidate);
                            placed += 1;
                        }
                    }
                }
            }
        }
        placed
    }

    /// Reads a whole file.
    ///
    /// Under an injected [`FaultKind::CorruptPayload`] the read *succeeds*
    /// but delivers deterministically garbled bytes — corruption on the
    /// wire is invisible to the namenode, so it is the caller's
    /// deserializer that has to notice.
    pub fn read(&self, path: &HdfsPath) -> Result<Bytes, HdfsError> {
        if let Some(ctx) = &self.crossing {
            let call = BoundaryCall::new(Channel::Hdfs, "read").with_payload(&path.to_string());
            if let Some(fault) = ctx.intercept(call) {
                if fault.kind == FaultKind::CorruptPayload {
                    let clean = self.read_inode(path)?;
                    return Ok(garble(&clean));
                }
                return Err(HdfsError::materialize(&fault));
            }
        }
        self.read_inode(path)
    }

    fn read_inode(&self, path: &HdfsPath) -> Result<Bytes, HdfsError> {
        match self.nodes.get(&Self::key(path)) {
            None => Err(HdfsError::FileNotFound(path.clone())),
            Some(INode::Dir { .. }) => Err(HdfsError::IsADirectory(path.clone())),
            Some(INode::File { data, .. }) => Ok(data.clone()),
        }
    }

    /// Reads a whole file, verifying a delegation token first.
    pub fn read_with_token(&self, path: &HdfsPath, token: TokenId) -> Result<Bytes, HdfsError> {
        match self.tokens.check(token, self.clock_ms) {
            TokenCheck::Valid => self.read(path),
            TokenCheck::Expired { expired_at } => Err(HdfsError::TokenInvalid {
                reason: format!(
                    "token expired at t={expired_at}ms (now t={}ms)",
                    self.clock_ms
                ),
            }),
            TokenCheck::Unknown => Err(HdfsError::TokenInvalid {
                reason: "unknown or cancelled token".to_string(),
            }),
        }
    }

    /// Returns the status of a path.
    pub fn get_file_status(&self, path: &HdfsPath) -> Result<FileStatus, HdfsError> {
        match self.nodes.get(&Self::key(path)) {
            None => Err(HdfsError::FileNotFound(path.clone())),
            Some(INode::Dir { mtime, .. }) => Ok(FileStatus {
                path: path.without_authority(),
                is_dir: true,
                len: 0,
                replication: 0,
                modification_time: *mtime,
                owner: "hdfs".to_string(),
                permissions: 0o755,
                properties: FileProperties::default(),
            }),
            Some(INode::File {
                data,
                props,
                replication,
                mtime,
                owner,
                permissions,
                ..
            }) => Ok(FileStatus {
                path: path.without_authority(),
                is_dir: false,
                // The documented sentinel: compressed files report -1.
                len: if props.compressed {
                    -1
                } else {
                    data.len() as i64
                },
                replication: *replication,
                modification_time: *mtime,
                owner: owner.clone(),
                permissions: *permissions,
                properties: *props,
            }),
        }
    }

    /// The physical stored length, regardless of compression — the custom
    /// API an informed upstream must use instead of [`FileStatus::len`].
    pub fn stored_length(&self, path: &HdfsPath) -> Result<u64, HdfsError> {
        match self.nodes.get(&Self::key(path)) {
            None => Err(HdfsError::FileNotFound(path.clone())),
            Some(INode::Dir { .. }) => Err(HdfsError::IsADirectory(path.clone())),
            Some(INode::File { data, .. }) => Ok(data.len() as u64),
        }
    }

    /// Lists the immediate children of a directory.
    pub fn list_status(&self, path: &HdfsPath) -> Result<Vec<FileStatus>, HdfsError> {
        self.cross("list_status", path)?;
        let comps = Self::key(path);
        match self.nodes.get(&comps) {
            None => return Err(HdfsError::FileNotFound(path.clone())),
            Some(INode::File { .. }) => return Err(HdfsError::NotADirectory(path.clone())),
            Some(INode::Dir { .. }) => {}
        }
        let mut out = Vec::new();
        for key in self.nodes.keys() {
            if key.len() == comps.len() + 1 && key[..comps.len()] == comps[..] {
                out.push(self.get_file_status(&partial(key))?);
            }
        }
        Ok(out)
    }

    /// Whether a path exists.
    pub fn exists(&self, path: &HdfsPath) -> bool {
        self.nodes.contains_key(&Self::key(path))
    }

    /// Renames a file or directory (and its subtree).
    pub fn rename(&mut self, from: &HdfsPath, to: &HdfsPath) -> Result<(), HdfsError> {
        self.check_mutable()?;
        let from_key = Self::key(from);
        let to_key = Self::key(to);
        if !self.nodes.contains_key(&from_key) {
            return Err(HdfsError::FileNotFound(from.clone()));
        }
        if self.nodes.contains_key(&to_key) {
            return Err(HdfsError::AlreadyExists(to.clone()));
        }
        if let Some(parent) = to.parent() {
            self.mkdirs(&parent)?;
        }
        let moved: Vec<(Vec<String>, INode)> = self
            .nodes
            .iter()
            .filter(|(k, _)| k.len() >= from_key.len() && k[..from_key.len()] == from_key[..])
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect();
        for (k, _) in &moved {
            self.nodes.remove(k);
        }
        for (k, v) in moved {
            let mut new_key = to_key.clone();
            new_key.extend_from_slice(&k[from_key.len()..]);
            self.nodes.insert(new_key, v);
        }
        Ok(())
    }

    /// Deletes a path; directories require `recursive` unless empty.
    pub fn delete(&mut self, path: &HdfsPath, recursive: bool) -> Result<(), HdfsError> {
        self.cross("delete", path)?;
        self.check_mutable()?;
        let comps = Self::key(path);
        match self.nodes.get(&comps) {
            None => return Err(HdfsError::FileNotFound(path.clone())),
            Some(INode::File { .. }) => {
                self.nodes.remove(&comps);
                return Ok(());
            }
            Some(INode::Dir { .. }) => {}
        }
        let children: Vec<Vec<String>> = self
            .nodes
            .keys()
            .filter(|k| k.len() > comps.len() && k[..comps.len()] == comps[..])
            .cloned()
            .collect();
        if !children.is_empty() && !recursive {
            return Err(HdfsError::DirectoryNotEmpty(path.clone()));
        }
        for k in children {
            self.nodes.remove(&k);
        }
        if !comps.is_empty() {
            self.nodes.remove(&comps);
        }
        Ok(())
    }

    /// Sets a namespace/space quota on a directory.
    pub fn set_quota(
        &mut self,
        dir: &HdfsPath,
        max_namespace: Option<u64>,
        max_space: Option<u64>,
    ) -> Result<(), HdfsError> {
        match self.nodes.get_mut(&Self::key(dir)) {
            None => Err(HdfsError::FileNotFound(dir.clone())),
            Some(INode::File { .. }) => Err(HdfsError::NotADirectory(dir.clone())),
            Some(INode::Dir { quota, .. }) => {
                *quota = Some(Quota {
                    max_namespace,
                    max_space,
                });
                Ok(())
            }
        }
    }

    fn check_namespace_quota(&self, new_key: &[String]) -> Result<(), HdfsError> {
        for depth in 0..new_key.len() {
            let prefix = &new_key[..depth];
            if let Some(INode::Dir {
                quota:
                    Some(Quota {
                        max_namespace: Some(max),
                        ..
                    }),
                ..
            }) = self.nodes.get(prefix)
            {
                let count = self
                    .nodes
                    .keys()
                    .filter(|k| k.len() > prefix.len() && k[..prefix.len()] == prefix[..])
                    .count() as u64;
                if count + 1 > *max {
                    return Err(HdfsError::QuotaExceeded {
                        dir: partial(prefix),
                        detail: format!("namespace quota {max} reached"),
                    });
                }
            }
        }
        Ok(())
    }

    fn check_space_quota(&self, new_key: &[String], add_bytes: u64) -> Result<(), HdfsError> {
        for depth in 0..new_key.len() {
            let prefix = &new_key[..depth];
            if let Some(INode::Dir {
                quota:
                    Some(Quota {
                        max_space: Some(max),
                        ..
                    }),
                ..
            }) = self.nodes.get(prefix)
            {
                let used: u64 = self
                    .nodes
                    .iter()
                    .filter(|(k, _)| k.len() > prefix.len() && k[..prefix.len()] == prefix[..])
                    .map(|(_, v)| match v {
                        INode::File { data, .. } => data.len() as u64,
                        INode::Dir { .. } => 0,
                    })
                    .sum();
                if used + add_bytes > *max {
                    return Err(HdfsError::QuotaExceeded {
                        dir: partial(prefix),
                        detail: format!("space quota {max} bytes would be exceeded"),
                    });
                }
            }
        }
        Ok(())
    }

    /// Block layout of a file.
    pub fn blocks(&self, path: &HdfsPath) -> Result<Vec<BlockInfo>, HdfsError> {
        match self.nodes.get(&Self::key(path)) {
            None => Err(HdfsError::FileNotFound(path.clone())),
            Some(INode::Dir { .. }) => Err(HdfsError::IsADirectory(path.clone())),
            Some(INode::File { blocks, .. }) => Ok(blocks.clone()),
        }
    }

    /// Number of blocks whose live replica count is below the achievable
    /// target (the replication factor, capped by live datanodes).
    pub fn under_replicated_blocks(&self) -> usize {
        let live = self.live_datanodes() as u32;
        self.nodes
            .values()
            .filter_map(|n| match n {
                INode::File {
                    blocks,
                    replication,
                    ..
                } => {
                    let target = (*replication).min(live);
                    Some(
                        blocks
                            .iter()
                            .filter(|b| (b.replicas.len() as u32) < target)
                            .count(),
                    )
                }
                INode::Dir { .. } => None,
            })
            .sum()
    }

    /// Issues a delegation token for `owner`.
    pub fn issue_token(
        &mut self,
        owner: &str,
        renew_interval_ms: u64,
        max_lifetime_ms: u64,
    ) -> DelegationToken {
        self.tokens
            .issue(owner, self.clock_ms, renew_interval_ms, max_lifetime_ms)
    }

    /// Renews a delegation token; returns the new expiry.
    pub fn renew_token(&mut self, id: TokenId, renew_interval_ms: u64) -> Option<u64> {
        self.tokens.renew(id, self.clock_ms, renew_interval_ms)
    }

    /// Cancels a delegation token.
    pub fn cancel_token(&mut self, id: TokenId) -> bool {
        self.tokens.cancel(id)
    }
}

fn partial(components: &[String]) -> HdfsPath {
    let mut p = HdfsPath::root();
    for c in components {
        p = p.join(c);
    }
    p
}

/// Deterministically corrupts a payload: truncate to half and flip bits.
fn garble(data: &Bytes) -> Bytes {
    let garbled: Vec<u8> = data[..data.len() / 2].iter().map(|b| b ^ 0xA5).collect();
    Bytes::from(garbled)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> HdfsPath {
        HdfsPath::parse(s).unwrap()
    }

    #[test]
    fn starts_in_safe_mode_until_datanodes_register() {
        let mut fs = MiniHdfs::new();
        assert!(fs.in_safe_mode());
        assert_eq!(fs.create(&p("/a"), b"x"), Err(HdfsError::SafeMode));
        fs.register_datanode(DataNodeId(0));
        assert!(!fs.in_safe_mode());
        assert!(fs.create(&p("/a"), b"x").is_ok());
    }

    #[test]
    fn create_read_round_trip() {
        let mut fs = MiniHdfs::with_datanodes(3);
        fs.create(&p("/data/file.txt"), b"hello world").unwrap();
        assert_eq!(
            fs.read(&p("/data/file.txt")).unwrap().as_ref(),
            b"hello world"
        );
        let st = fs.get_file_status(&p("/data/file.txt")).unwrap();
        assert_eq!(st.len, 11);
        assert!(!st.is_dir);
        // Parents are created implicitly.
        assert!(fs.get_file_status(&p("/data")).unwrap().is_dir);
    }

    #[test]
    fn compressed_files_report_minus_one_length() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.create_compressed(&p("/logs/app.gz"), b"compressed payload")
            .unwrap();
        let st = fs.get_file_status(&p("/logs/app.gz")).unwrap();
        assert_eq!(st.len, -1);
        assert!(st.properties.compressed);
        // The custom API reveals the physical length.
        assert_eq!(fs.stored_length(&p("/logs/app.gz")).unwrap(), 18);
        // And the content is still readable.
        assert_eq!(
            fs.read(&p("/logs/app.gz")).unwrap().as_ref(),
            b"compressed payload"
        );
    }

    #[test]
    fn create_rejects_duplicates_and_dirs() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.create(&p("/a/b"), b"1").unwrap();
        assert!(matches!(
            fs.create(&p("/a/b"), b"2"),
            Err(HdfsError::AlreadyExists(_))
        ));
        assert!(matches!(
            fs.create(&p("/a"), b"3"),
            Err(HdfsError::IsADirectory(_))
        ));
        assert!(matches!(
            fs.mkdirs(&p("/a/b/c")),
            Err(HdfsError::NotADirectory(_))
        ));
    }

    #[test]
    fn list_status_returns_children_only() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.create(&p("/d/x"), b"1").unwrap();
        fs.create(&p("/d/y"), b"22").unwrap();
        fs.create(&p("/d/sub/z"), b"333").unwrap();
        let names: Vec<String> = fs
            .list_status(&p("/d"))
            .unwrap()
            .iter()
            .map(|s| s.path.name().unwrap().to_string())
            .collect();
        assert_eq!(names, vec!["sub", "x", "y"]);
    }

    #[test]
    fn rename_moves_subtrees() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.create(&p("/src/a/b"), b"1").unwrap();
        fs.rename(&p("/src"), &p("/dst")).unwrap();
        assert!(!fs.exists(&p("/src/a/b")));
        assert_eq!(fs.read(&p("/dst/a/b")).unwrap().as_ref(), b"1");
        assert!(matches!(
            fs.rename(&p("/nope"), &p("/x")),
            Err(HdfsError::FileNotFound(_))
        ));
    }

    #[test]
    fn delete_requires_recursive_for_nonempty_dirs() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.create(&p("/d/x"), b"1").unwrap();
        assert!(matches!(
            fs.delete(&p("/d"), false),
            Err(HdfsError::DirectoryNotEmpty(_))
        ));
        fs.delete(&p("/d"), true).unwrap();
        assert!(!fs.exists(&p("/d")));
        assert!(!fs.exists(&p("/d/x")));
    }

    #[test]
    fn namespace_quota_is_enforced() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.mkdirs(&p("/q")).unwrap();
        fs.set_quota(&p("/q"), Some(2), None).unwrap();
        fs.create(&p("/q/a"), b"1").unwrap();
        fs.create(&p("/q/b"), b"2").unwrap();
        assert!(matches!(
            fs.create(&p("/q/c"), b"3"),
            Err(HdfsError::QuotaExceeded { .. })
        ));
    }

    #[test]
    fn space_quota_is_enforced() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.mkdirs(&p("/q")).unwrap();
        fs.set_quota(&p("/q"), None, Some(10)).unwrap();
        fs.create(&p("/q/a"), b"12345").unwrap();
        assert!(matches!(
            fs.create(&p("/q/b"), b"123456"),
            Err(HdfsError::QuotaExceeded { .. })
        ));
        fs.create(&p("/q/b"), b"12345").unwrap();
    }

    #[test]
    fn blocks_split_by_block_size_and_replicate() {
        let mut fs = MiniHdfs::with_datanodes(3);
        let data = vec![7u8; 300];
        fs.create(&p("/big"), &data).unwrap();
        let blocks = fs.blocks(&p("/big")).unwrap();
        assert_eq!(blocks.len(), 3); // 128 + 128 + 44.
        assert_eq!(blocks[0].len, 128);
        assert_eq!(blocks[2].len, 44);
        for b in &blocks {
            assert_eq!(b.replicas.len(), 3);
        }
    }

    #[test]
    fn killing_a_datanode_loses_replicas() {
        let mut fs = MiniHdfs::with_datanodes(2);
        fs.create(&p("/f"), b"data").unwrap();
        fs.kill_datanode(DataNodeId(0));
        let blocks = fs.blocks(&p("/f")).unwrap();
        assert!(blocks.iter().all(|b| !b.replicas.contains(&DataNodeId(0))));
        assert_eq!(fs.live_datanodes(), 1);
    }

    #[test]
    fn empty_file_has_one_empty_block() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.create(&p("/empty"), b"").unwrap();
        let blocks = fs.blocks(&p("/empty")).unwrap();
        assert_eq!(blocks.len(), 1);
        assert_eq!(blocks[0].len, 0);
        assert_eq!(fs.get_file_status(&p("/empty")).unwrap().len, 0);
    }

    #[test]
    fn append_extends_content_and_blocks() {
        let mut fs = MiniHdfs::with_datanodes(3);
        fs.create(&p("/log"), b"first ").unwrap();
        fs.append(&p("/log"), b"second").unwrap();
        assert_eq!(fs.read(&p("/log")).unwrap().as_ref(), b"first second");
        assert_eq!(fs.get_file_status(&p("/log")).unwrap().len, 12);
        // Appending to a missing file or a directory fails cleanly.
        assert!(matches!(
            fs.append(&p("/nope"), b"x"),
            Err(HdfsError::FileNotFound(_))
        ));
        fs.mkdirs(&p("/dir")).unwrap();
        assert!(matches!(
            fs.append(&p("/dir"), b"x"),
            Err(HdfsError::IsADirectory(_))
        ));
        // Appending past a block boundary allocates more blocks.
        let big = vec![1u8; 200];
        fs.append(&p("/log"), &big).unwrap();
        assert!(fs.blocks(&p("/log")).unwrap().len() >= 2);
    }

    #[test]
    fn append_respects_space_quota() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.mkdirs(&p("/q")).unwrap();
        fs.set_quota(&p("/q"), None, Some(10)).unwrap();
        fs.create(&p("/q/f"), b"12345").unwrap();
        assert!(fs.append(&p("/q/f"), b"12345").is_ok());
        assert!(matches!(
            fs.append(&p("/q/f"), b"x"),
            Err(HdfsError::QuotaExceeded { .. })
        ));
    }

    #[test]
    fn re_replication_heals_lost_replicas() {
        // Four nodes: replicas land on three of them; killing one leaves
        // the block under-replicated even though three nodes are live.
        let mut fs = MiniHdfs::with_datanodes(4);
        fs.create(&p("/f"), b"replicated data").unwrap();
        assert_eq!(fs.under_replicated_blocks(), 0);
        fs.kill_datanode(DataNodeId(1));
        assert!(fs.under_replicated_blocks() > 0);
        // A new node joins and the namenode re-replicates.
        fs.register_datanode(DataNodeId(9));
        let placed = fs.replicate_under_replicated();
        assert!(placed > 0);
        assert_eq!(fs.under_replicated_blocks(), 0);
        // Idempotent once healthy.
        assert_eq!(fs.replicate_under_replicated(), 0);
    }

    #[test]
    fn token_gated_read_honors_expiry() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.create(&p("/secure"), b"secret").unwrap();
        let token = fs.issue_token("spark", 1000, 5000);
        assert!(fs.read_with_token(&p("/secure"), token.id).is_ok());
        fs.advance_clock(1500);
        assert!(matches!(
            fs.read_with_token(&p("/secure"), token.id),
            Err(HdfsError::TokenInvalid { .. })
        ));
        // Renewal restores access (YARN-2790's intended flow).
        fs.renew_token(token.id, 1000).unwrap();
        assert!(fs.read_with_token(&p("/secure"), token.id).is_ok());
        fs.cancel_token(token.id);
        assert!(fs.read_with_token(&p("/secure"), token.id).is_err());
    }

    #[test]
    fn uri_and_plain_paths_address_the_same_file() {
        let mut fs = MiniHdfs::with_datanodes(1);
        fs.create(&p("hdfs://nn:9000/x/y"), b"1").unwrap();
        assert_eq!(fs.read(&p("/x/y")).unwrap().as_ref(), b"1");
    }
}
