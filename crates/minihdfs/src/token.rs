//! Delegation tokens with expiry on the namenode clock.
//!
//! YARN-2790 (discussed under Finding 12) is a CSI failure in which YARN
//! renews an HDFS delegation token far from the point of use, so the token
//! expires before the downstream operation consumes it. This module gives
//! the namenode real token lifecycle semantics — issue, renew (bounded by a
//! max lifetime), cancel, verify — so that upstreams exhibit exactly that
//! failure when they schedule renewal poorly.

use serde::{Deserialize, Serialize};

/// Opaque token identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct TokenId(pub u64);

/// A delegation token as returned to clients.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DelegationToken {
    /// Identifier.
    pub id: TokenId,
    /// Owner the token authenticates.
    pub owner: String,
    /// Expiry instant (namenode clock, ms).
    pub expires_at: u64,
    /// Hard upper bound for renewals (namenode clock, ms).
    pub max_lifetime_at: u64,
}

impl DelegationToken {
    /// Whether the token is expired at `now`.
    pub fn is_expired(&self, now: u64) -> bool {
        now >= self.expires_at
    }
}

/// Server-side token registry.
///
/// Tokens live in a hashed index keyed by raw id, so issue, renewal,
/// cancellation, and verification are O(1) at any fleet size. The map is
/// **lookup-only**: no code path iterates it (hash iteration order is
/// nondeterministic), and anything order-sensitive — such as
/// [`TokenRegistry::expired`] — sorts by `(expires_at, id)` before
/// returning.
#[derive(Debug, Default, Clone)]
pub struct TokenRegistry {
    next_id: u64,
    tokens: std::collections::HashMap<u64, DelegationToken>,
}

/// Outcome of a token verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenCheck {
    /// The token is valid.
    Valid,
    /// The token has expired.
    Expired {
        /// When it expired.
        expired_at: u64,
    },
    /// The token was cancelled or never issued.
    Unknown,
}

impl TokenRegistry {
    /// Issues a token valid for `renew_interval_ms` and renewable up to
    /// `max_lifetime_ms` from `now`.
    pub fn issue(
        &mut self,
        owner: &str,
        now: u64,
        renew_interval_ms: u64,
        max_lifetime_ms: u64,
    ) -> DelegationToken {
        self.next_id += 1;
        let token = DelegationToken {
            id: TokenId(self.next_id),
            owner: owner.to_string(),
            expires_at: now + renew_interval_ms.min(max_lifetime_ms),
            max_lifetime_at: now + max_lifetime_ms,
        };
        self.tokens.insert(token.id.0, token.clone());
        token
    }

    /// Renews a token; extends expiry by `renew_interval_ms` capped by the
    /// max lifetime. Returns the new expiry, or `None` if the token is
    /// unknown or already past its max lifetime.
    pub fn renew(&mut self, id: TokenId, now: u64, renew_interval_ms: u64) -> Option<u64> {
        let token = self.tokens.get_mut(&id.0)?;
        if now >= token.max_lifetime_at {
            return None;
        }
        token.expires_at = (now + renew_interval_ms).min(token.max_lifetime_at);
        Some(token.expires_at)
    }

    /// Cancels a token.
    pub fn cancel(&mut self, id: TokenId) -> bool {
        self.tokens.remove(&id.0).is_some()
    }

    /// Verifies a token at `now`.
    pub fn check(&self, id: TokenId, now: u64) -> TokenCheck {
        match self.tokens.get(&id.0) {
            None => TokenCheck::Unknown,
            Some(t) if t.is_expired(now) => TokenCheck::Expired {
                expired_at: t.expires_at,
            },
            Some(_) => TokenCheck::Valid,
        }
    }

    /// A snapshot of a token's current server-side state.
    pub fn get(&self, id: TokenId) -> Option<&DelegationToken> {
        self.tokens.get(&id.0)
    }

    /// Number of live (issued, uncancelled) tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether no tokens are outstanding.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// All tokens expired at `now`, in deterministic clock order: sorted
    /// by `(expires_at, id)` so ties on the expiry instant break by issue
    /// order, never by hash-map iteration order.
    pub fn expired(&self, now: u64) -> Vec<DelegationToken> {
        let mut out: Vec<DelegationToken> = self
            .tokens
            .values()
            .filter(|t| t.is_expired(now))
            .cloned()
            .collect();
        out.sort_by_key(|t| (t.expires_at, t.id.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_and_verify() {
        let mut reg = TokenRegistry::default();
        let t = reg.issue("spark", 1000, 500, 10_000);
        assert_eq!(t.expires_at, 1500);
        assert_eq!(reg.check(t.id, 1400), TokenCheck::Valid);
        assert_eq!(
            reg.check(t.id, 1500),
            TokenCheck::Expired { expired_at: 1500 }
        );
        assert_eq!(reg.check(TokenId(999), 0), TokenCheck::Unknown);
    }

    #[test]
    fn renewal_extends_up_to_max_lifetime() {
        let mut reg = TokenRegistry::default();
        let t = reg.issue("yarn", 0, 100, 250);
        assert_eq!(reg.renew(t.id, 90, 100), Some(190));
        // Renewal near the cap clamps to max lifetime.
        assert_eq!(reg.renew(t.id, 180, 100), Some(250));
        // Past max lifetime, renewal fails.
        assert_eq!(reg.renew(t.id, 250, 100), None);
    }

    #[test]
    fn an_expired_token_can_still_be_renewed_before_max_lifetime() {
        // This matches HDFS semantics: expiry gates *use*, max lifetime
        // gates *renewal*.
        let mut reg = TokenRegistry::default();
        let t = reg.issue("yarn", 0, 100, 1000);
        assert_eq!(
            reg.check(t.id, 500),
            TokenCheck::Expired { expired_at: 100 }
        );
        assert_eq!(reg.renew(t.id, 500, 100), Some(600));
        assert_eq!(reg.check(t.id, 550), TokenCheck::Valid);
    }

    #[test]
    fn cancel_removes_token() {
        let mut reg = TokenRegistry::default();
        let t = reg.issue("hive", 0, 100, 100);
        assert!(reg.cancel(t.id));
        assert!(!reg.cancel(t.id));
        assert_eq!(reg.check(t.id, 10), TokenCheck::Unknown);
    }

    #[test]
    fn issue_clamps_first_expiry_to_max_lifetime() {
        let mut reg = TokenRegistry::default();
        let t = reg.issue("x", 0, 1000, 300);
        assert_eq!(t.expires_at, 300);
    }

    #[test]
    fn expiry_order_is_deterministic_clock_order() {
        // Regression for the hashed-index refactor: tokens must still
        // expire in clock order, with ties broken by issue order — never
        // by hash-map iteration order.
        let build = || {
            let mut reg = TokenRegistry::default();
            for (now, interval) in [(0, 300), (0, 100), (50, 50), (0, 100), (10, 500)] {
                reg.issue("owner", now, interval, 10_000);
            }
            reg
        };
        let reg = build();
        assert_eq!(reg.len(), 5);
        let order: Vec<(u64, u64)> = reg
            .expired(1_000)
            .iter()
            .map(|t| (t.expires_at, t.id.0))
            .collect();
        // expires_at: id1=300, id2=100, id3=100, id4=100, id5=510.
        assert_eq!(
            order,
            vec![(100, 2), (100, 3), (100, 4), (300, 1), (510, 5)]
        );
        // Identical across independently built registries and clones.
        assert_eq!(build().expired(1_000), reg.expired(1_000));
        assert_eq!(reg.clone().expired(1_000), reg.expired(1_000));
        // A mid-list clock only reveals the prefix, in the same order.
        let partial: Vec<u64> = reg.expired(200).iter().map(|t| t.id.0).collect();
        assert_eq!(partial, vec![2, 3, 4]);
        // Unexpired registries report nothing.
        assert!(reg.expired(0).is_empty());
    }
}
