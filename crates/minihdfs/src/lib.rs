//! `minihdfs` — an in-memory distributed file system substrate.
//!
//! A faithful miniature of HDFS as seen by upstream systems (Spark, Hive,
//! Flink, HBase, YARN): a namenode namespace with directories and files,
//! block-based storage with replication across simulated datanodes, safe
//! mode, delegation tokens, directory quotas, and — crucially for the CSI
//! study — **custom, non-POSIX file properties**.
//!
//! The custom properties reproduce the discrepancy mechanics from the paper:
//!
//! - compressed files report a *length of `-1`* through [`FileStatus::len`],
//!   the undefined value behind SPARK-27239 (Figure 2);
//! - files carry a locality flag (local vs. remote storage), the property
//!   behind FLINK-13758;
//! - delegation tokens expire on the (manually advanced) namenode clock,
//!   the mechanic behind YARN-2790;
//! - the namenode starts in *safe mode*, the state behind HBASE-537.
//!
//! Every behavior here is correct per HDFS's own specification; failures
//! arise only when an upstream makes a discrepant assumption.

pub mod error;
pub mod fs;
pub mod name;
pub mod path;
pub mod token;

pub use error::HdfsError;
pub use fs::{DataNodeId, FileProperties, FileStatus, Locality, MiniHdfs};
pub use path::HdfsPath;
pub use token::{DelegationToken, TokenId};
