//! Name interning for the namenode's namespace.
//!
//! A production namenode holds millions of inodes whose names repeat
//! heavily (`part-00001.orc`, `warehouse`, owner strings). The seed's
//! `BTreeMap<Vec<String>, INode>` namespace stored each occurrence as its
//! own `String`, costing an allocation per component per operation. The
//! namespace now interns every distinct name once through the shared
//! substrate symbol table, [`csi_core::intern::NameTable`], and resolves
//! paths on copyable u32 [`Sym`] handles with zero per-op string clones.
//!
//! Nothing observable may ever be derived from symbol *values* (only from
//! the resolved strings), which is what lets [`crate::MiniHdfs::vacuum`]
//! rebuild the table in canonical namespace order without changing any
//! output.

pub use csi_core::intern::{NameTable, Sym};
