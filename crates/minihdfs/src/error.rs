//! Errors raised by the minihdfs namenode and datanodes.

use crate::path::HdfsPath;
use csi_core::fault::{Channel, FaultKind, FaultPoint, InjectedFault};
use csi_core::{ErrorKind, InteractionError};
use std::fmt;

/// Error type of all minihdfs operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HdfsError {
    /// The path does not exist.
    FileNotFound(HdfsPath),
    /// Create without overwrite on an existing path.
    AlreadyExists(HdfsPath),
    /// A path component is a file, not a directory.
    NotADirectory(HdfsPath),
    /// The operation needs a file but the path is a directory.
    IsADirectory(HdfsPath),
    /// The path string is malformed.
    InvalidPath(String),
    /// The namenode is in safe mode; mutations are refused.
    SafeMode,
    /// The presented delegation token is expired or unknown.
    TokenInvalid {
        /// Why the token was refused.
        reason: String,
    },
    /// A directory namespace or space quota was exceeded.
    QuotaExceeded {
        /// The directory whose quota tripped.
        dir: HdfsPath,
        /// Human-readable quota description.
        detail: String,
    },
    /// Not enough live datanodes to satisfy the replication factor.
    InsufficientReplication {
        /// Requested replication.
        wanted: u32,
        /// Live datanodes available.
        live: usize,
    },
    /// The caller lacks permission.
    PermissionDenied {
        /// The path.
        path: HdfsPath,
        /// The user that was refused.
        user: String,
    },
    /// Attempt to delete a non-empty directory without `recursive`.
    DirectoryNotEmpty(HdfsPath),
    /// A namenode or datanode RPC exceeded its deadline.
    RpcTimeout {
        /// The operation that timed out.
        op: String,
        /// The deadline, in milliseconds.
        ms: u64,
    },
    /// A block failed its checksum verification on read or write.
    ChecksumError {
        /// The operation during which the checksum failed.
        op: String,
    },
}

impl fmt::Display for HdfsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdfsError::FileNotFound(p) => write!(f, "no such file or directory: {p}"),
            HdfsError::AlreadyExists(p) => write!(f, "path already exists: {p}"),
            HdfsError::NotADirectory(p) => write!(f, "not a directory: {p}"),
            HdfsError::IsADirectory(p) => write!(f, "is a directory: {p}"),
            HdfsError::InvalidPath(s) => write!(f, "invalid path: {s:?}"),
            HdfsError::SafeMode => write!(f, "namenode is in safe mode"),
            HdfsError::TokenInvalid { reason } => write!(f, "delegation token invalid: {reason}"),
            HdfsError::QuotaExceeded { dir, detail } => {
                write!(f, "quota exceeded on {dir}: {detail}")
            }
            HdfsError::InsufficientReplication { wanted, live } => write!(
                f,
                "cannot place {wanted} replicas with only {live} live datanodes"
            ),
            HdfsError::PermissionDenied { path, user } => {
                write!(f, "permission denied for user {user} on {path}")
            }
            HdfsError::DirectoryNotEmpty(p) => write!(f, "directory not empty: {p}"),
            HdfsError::RpcTimeout { op, ms } => {
                write!(f, "SocketTimeoutException: {op} timed out after {ms}ms")
            }
            HdfsError::ChecksumError { op } => {
                write!(f, "ChecksumException: checksum error during {op}")
            }
        }
    }
}

impl std::error::Error for HdfsError {}

impl HdfsError {
    /// Stable machine-readable code for interaction-boundary reporting.
    pub fn code(&self) -> &'static str {
        match self {
            HdfsError::FileNotFound(_) => "FILE_NOT_FOUND",
            HdfsError::AlreadyExists(_) => "ALREADY_EXISTS",
            HdfsError::NotADirectory(_) => "NOT_A_DIRECTORY",
            HdfsError::IsADirectory(_) => "IS_A_DIRECTORY",
            HdfsError::InvalidPath(_) => "INVALID_PATH",
            HdfsError::SafeMode => "SAFE_MODE",
            HdfsError::TokenInvalid { .. } => "TOKEN_INVALID",
            HdfsError::QuotaExceeded { .. } => "QUOTA_EXCEEDED",
            HdfsError::InsufficientReplication { .. } => "INSUFFICIENT_REPLICATION",
            HdfsError::PermissionDenied { .. } => "PERMISSION_DENIED",
            HdfsError::DirectoryNotEmpty(_) => "DIRECTORY_NOT_EMPTY",
            HdfsError::RpcTimeout { .. } => "RPC_TIMEOUT",
            HdfsError::ChecksumError { .. } => "CHECKSUM_ERROR",
        }
    }
}

impl From<HdfsError> for InteractionError {
    fn from(e: HdfsError) -> InteractionError {
        let kind = match &e {
            HdfsError::SafeMode => ErrorKind::Unavailable,
            HdfsError::TokenInvalid { .. } | HdfsError::PermissionDenied { .. } => {
                ErrorKind::Rejected
            }
            HdfsError::InsufficientReplication { .. } => ErrorKind::Unavailable,
            HdfsError::RpcTimeout { .. } => ErrorKind::Timeout,
            HdfsError::ChecksumError { .. } => ErrorKind::Crash,
            _ => ErrorKind::Rejected,
        };
        InteractionError::new("minihdfs", kind, e.code(), e.to_string())
    }
}

impl FaultPoint for HdfsError {
    const CHANNEL: Channel = Channel::Hdfs;

    fn materialize(fault: &InjectedFault) -> HdfsError {
        match fault.kind {
            FaultKind::Unavailable => HdfsError::SafeMode,
            FaultKind::Timeout { ms } | FaultKind::Latency { ms } => HdfsError::RpcTimeout {
                op: fault.op.clone(),
                ms,
            },
            FaultKind::CorruptPayload => HdfsError::ChecksumError {
                op: fault.op.clone(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_distinct_for_key_variants() {
        let p = HdfsPath::parse("/a").unwrap();
        let errors = [
            HdfsError::FileNotFound(p.clone()),
            HdfsError::SafeMode,
            HdfsError::TokenInvalid {
                reason: "expired".into(),
            },
            HdfsError::QuotaExceeded {
                dir: p,
                detail: "x".into(),
            },
        ];
        let codes: Vec<&str> = errors.iter().map(|e| e.code()).collect();
        let mut dedup = codes.clone();
        dedup.dedup();
        assert_eq!(codes, dedup);
    }

    #[test]
    fn safe_mode_maps_to_unavailable() {
        let ie: InteractionError = HdfsError::SafeMode.into();
        assert_eq!(ie.kind, ErrorKind::Unavailable);
        assert_eq!(ie.system, "minihdfs");
    }
}
