//! HDFS path and URI handling.
//!
//! Table 5 of the paper attributes 8 of 18 file-abstraction CSI failures to
//! *addressing*: heterogeneous file-path and URI conventions between
//! upstream and downstream systems. This module implements the downstream
//! (HDFS) convention precisely: paths are absolute, `/`-separated, with an
//! optional `hdfs://authority` prefix. Relative paths, empty components, and
//! other schemes are rejected — upstreams that assume laxer conventions
//! experience exactly the addressing discrepancies the study describes.

use crate::error::HdfsError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A validated, normalized HDFS path.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct HdfsPath {
    authority: Option<String>,
    components: Vec<String>,
}

impl HdfsPath {
    /// Parses a path like `/user/hive/warehouse` or
    /// `hdfs://nn:9000/user/hive/warehouse`.
    ///
    /// Rejects relative paths, empty components (`//`), `.`/`..` traversal,
    /// and non-`hdfs` schemes.
    pub fn parse(raw: &str) -> Result<HdfsPath, HdfsError> {
        let (authority, rest) = if let Some(after) = raw.strip_prefix("hdfs://") {
            match after.find('/') {
                Some(idx) => {
                    let (auth, path) = after.split_at(idx);
                    if auth.is_empty() {
                        return Err(HdfsError::InvalidPath(raw.to_string()));
                    }
                    (Some(auth.to_string()), path)
                }
                None => return Err(HdfsError::InvalidPath(raw.to_string())),
            }
        } else if raw.contains("://") {
            // file://, s3a://, viewfs:// ... are not this filesystem.
            return Err(HdfsError::InvalidPath(raw.to_string()));
        } else {
            (None, raw)
        };
        if !rest.starts_with('/') {
            return Err(HdfsError::InvalidPath(raw.to_string()));
        }
        let mut components = Vec::new();
        for part in rest.split('/') {
            if part.is_empty() {
                continue; // Leading slash and a single trailing slash.
            }
            if part == "." || part == ".." || part.contains(':') {
                return Err(HdfsError::InvalidPath(raw.to_string()));
            }
            components.push(part.to_string());
        }
        // `//` in the middle produced consecutive empties which we silently
        // skipped above; HDFS rejects them, so re-check the raw string.
        if rest.contains("//") {
            return Err(HdfsError::InvalidPath(raw.to_string()));
        }
        Ok(HdfsPath {
            authority,
            components,
        })
    }

    /// The root path `/`.
    pub fn root() -> HdfsPath {
        HdfsPath {
            authority: None,
            components: Vec::new(),
        }
    }

    /// The authority (`host:port`) if the path was written as a full URI.
    pub fn authority(&self) -> Option<&str> {
        self.authority.as_deref()
    }

    /// The path components.
    pub fn components(&self) -> &[String] {
        &self.components
    }

    /// Whether this is the root.
    pub fn is_root(&self) -> bool {
        self.components.is_empty()
    }

    /// Final component, if any.
    pub fn name(&self) -> Option<&str> {
        self.components.last().map(String::as_str)
    }

    /// The parent path; `None` for the root.
    pub fn parent(&self) -> Option<HdfsPath> {
        if self.is_root() {
            return None;
        }
        Some(HdfsPath {
            authority: self.authority.clone(),
            components: self.components[..self.components.len() - 1].to_vec(),
        })
    }

    /// Appends a child component.
    ///
    /// # Panics
    ///
    /// Panics if `child` contains `/`; join single components only.
    pub fn join(&self, child: &str) -> HdfsPath {
        assert!(
            !child.contains('/') && !child.is_empty(),
            "join takes a single non-empty component"
        );
        let mut components = self.components.clone();
        components.push(child.to_string());
        HdfsPath {
            authority: self.authority.clone(),
            components,
        }
    }

    /// Whether `self` is `other` or a descendant of `other` (ignoring
    /// authority).
    pub fn starts_with(&self, other: &HdfsPath) -> bool {
        self.components.len() >= other.components.len()
            && self.components[..other.components.len()] == other.components[..]
    }

    /// The same path without its authority, as stored in the namespace.
    pub fn without_authority(&self) -> HdfsPath {
        HdfsPath {
            authority: None,
            components: self.components.clone(),
        }
    }
}

impl fmt::Display for HdfsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(a) = &self.authority {
            write!(f, "hdfs://{a}")?;
        }
        if self.components.is_empty() {
            return write!(f, "/");
        }
        for c in &self.components {
            write!(f, "/{c}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_plain_and_uri_paths() {
        let p = HdfsPath::parse("/user/hive/warehouse").unwrap();
        assert_eq!(p.components().len(), 3);
        assert_eq!(p.authority(), None);
        assert_eq!(p.to_string(), "/user/hive/warehouse");

        let q = HdfsPath::parse("hdfs://nn:9000/data/x").unwrap();
        assert_eq!(q.authority(), Some("nn:9000"));
        assert_eq!(q.to_string(), "hdfs://nn:9000/data/x");
        assert_eq!(q.without_authority().to_string(), "/data/x");
    }

    #[test]
    fn rejects_bad_paths() {
        for raw in [
            "relative/path",
            "",
            "hdfs://",
            "hdfs://nn:9000", // No path part.
            "s3a://bucket/x",
            "/a//b",
            "/a/./b",
            "/a/../b",
        ] {
            assert!(HdfsPath::parse(raw).is_err(), "{raw:?} should be invalid");
        }
    }

    #[test]
    fn trailing_slash_is_tolerated() {
        let p = HdfsPath::parse("/a/b/").unwrap();
        assert_eq!(p.to_string(), "/a/b");
    }

    #[test]
    fn parent_and_join_round_trip() {
        let p = HdfsPath::parse("/a/b/c").unwrap();
        let parent = p.parent().unwrap();
        assert_eq!(parent.to_string(), "/a/b");
        assert_eq!(parent.join("c"), p);
        assert_eq!(HdfsPath::root().parent(), None);
        assert_eq!(p.name(), Some("c"));
    }

    #[test]
    fn starts_with_checks_prefix() {
        let base = HdfsPath::parse("/a/b").unwrap();
        let deep = HdfsPath::parse("/a/b/c/d").unwrap();
        let other = HdfsPath::parse("/a/bx").unwrap();
        assert!(deep.starts_with(&base));
        assert!(base.starts_with(&base));
        assert!(!other.starts_with(&base));
        assert!(!base.starts_with(&deep));
    }

    #[test]
    #[should_panic(expected = "single non-empty component")]
    fn join_rejects_slashes() {
        HdfsPath::root().join("a/b");
    }
}
