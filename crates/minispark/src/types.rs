//! Spark's type handling: case-sensitive schemas and the store-assignment
//! cast engine.
//!
//! Spark schemas preserve identifier case and are stored alongside Hive
//! tables in the `spark.sql.sources.schema` table property; when the
//! property is absent Spark falls back to the (case-insensitive) Hive
//! schema with a "not case preserving" warning — exactly the behavior
//! described in Section 8.2.
//!
//! The cast engine implements the three `spark.sql.storeAssignmentPolicy`
//! modes. ANSI (the default) *raises* where Hive coerces; LEGACY silently
//! writes NULL or truncates. The asymmetry between these policies and
//! Hive's lenient rules is the engine of the inconsistent-error
//! discrepancies (D05, D08, D09, D12).

use crate::config::StoreAssignmentPolicy;
use crate::error::SparkError;
use csi_core::value::{
    format_date, format_timestamp, parse_date, parse_timestamp, DataType, Decimal, StructField,
    Value,
};

/// Spark's supported DATE/TIMESTAMP range (0001-01-01), days since epoch.
pub const MIN_DATE_DAYS: i32 = -719_162;
/// Spark's supported DATE/TIMESTAMP range (9999-12-31), days since epoch.
pub const MAX_DATE_DAYS: i32 = 2_932_896;

/// Options threaded through a store assignment.
#[derive(Debug, Clone, Copy)]
pub struct CastOptions {
    /// The active policy.
    pub policy: StoreAssignmentPolicy,
    /// `spark.sql.legacy.charVarcharAsString`.
    pub char_varchar_as_string: bool,
    /// Whether out-of-range dates are rejected (ANSI always checks; the
    /// DataFrame legacy path checks only when
    /// `spark.sql.dataframe.dateRangeCheck` is on).
    pub date_range_check: bool,
}

/// Casts a value for storage into a column of the target type.
///
/// Under ANSI, unrepresentable values raise a [`SparkError::Cast`]. Under
/// LEGACY they become NULL **silently** (no diagnostic — Spark's legacy
/// writer does not log per-value coercions, which is what makes the
/// error-handling oracle flag it). Under STRICT only exact type matches
/// pass.
pub fn store_assign(
    value: &Value,
    target: &DataType,
    opts: CastOptions,
) -> Result<Value, SparkError> {
    if value.is_null() {
        return Ok(Value::Null);
    }
    match opts.policy {
        StoreAssignmentPolicy::Strict => {
            let natural = value.natural_type();
            if natural.as_ref() == Some(target) {
                Ok(value.clone())
            } else {
                Err(SparkError::cast(
                    "STRICT_STORE_ASSIGNMENT",
                    format!(
                        "cannot write {} into {} under STRICT policy",
                        value.signature(),
                        target
                    ),
                ))
            }
        }
        StoreAssignmentPolicy::Ansi => ansi_cast(value, target, opts),
        StoreAssignmentPolicy::Legacy => Ok(legacy_cast(value, target, opts)),
    }
}

fn integral_of(value: &Value) -> Option<i128> {
    match value {
        Value::Byte(v) => Some(*v as i128),
        Value::Short(v) => Some(*v as i128),
        Value::Int(v) => Some(*v as i128),
        Value::Long(v) => Some(*v as i128),
        Value::Boolean(b) => Some(*b as i128),
        Value::Float(f) if f.is_finite() => Some(f.trunc() as i128),
        Value::Double(f) if f.is_finite() => Some(f.trunc() as i128),
        Value::Decimal(d) => d.rescale(d.precision, 0).ok().map(|x| x.unscaled),
        _ => None,
    }
}

fn float_of(value: &Value) -> Option<f64> {
    match value {
        Value::Float(f) => Some(*f as f64),
        Value::Double(f) => Some(*f),
        Value::Byte(v) => Some(*v as f64),
        Value::Short(v) => Some(*v as f64),
        Value::Int(v) => Some(*v as f64),
        Value::Long(v) => Some(*v as f64),
        Value::Decimal(d) => Some(d.to_f64()),
        _ => None,
    }
}

/// Renders a value as Spark casts it to STRING.
pub fn render(value: &Value) -> String {
    match value {
        Value::Null => "null".to_string(),
        Value::Boolean(b) => b.to_string(),
        Value::Byte(v) => v.to_string(),
        Value::Short(v) => v.to_string(),
        Value::Int(v) => v.to_string(),
        Value::Long(v) => v.to_string(),
        Value::Float(v) => format!("{v}"),
        Value::Double(v) => format!("{v}"),
        Value::Decimal(d) => d.to_string(),
        Value::Str(s) => s.clone(),
        Value::Binary(b) => b.iter().map(|x| format!("{x:02x}")).collect(),
        Value::Date(d) => format_date(*d),
        Value::Timestamp(us) => format_timestamp(*us),
        Value::Interval { months, micros } => format!("{months} months {micros} us"),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(render).collect();
            format!("[{}]", inner.join(","))
        }
        Value::Map(pairs) => {
            let inner: Vec<String> = pairs
                .iter()
                .map(|(k, v)| format!("{}:{}", render(k), render(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
        Value::Struct(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(n, v)| format!("{n}:{}", render(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

fn ansi_cast(value: &Value, target: &DataType, opts: CastOptions) -> Result<Value, SparkError> {
    let overflow = |what: String| {
        Err(SparkError::cast(
            "CAST_OVERFLOW",
            format!("{what} due to overflow; use try_cast or set storeAssignmentPolicy=LEGACY"),
        ))
    };
    let invalid = |what: String| {
        Err(SparkError::cast(
            "CAST_INVALID_INPUT",
            format!("{what}; the ANSI cast does not accept this input"),
        ))
    };
    match target {
        DataType::Boolean => match value {
            Value::Boolean(b) => Ok(Value::Boolean(*b)),
            // ANSI string-to-boolean accepts only the canonical spellings
            // (the upstream half of D12).
            Value::Str(s) => match s.to_ascii_lowercase().as_str() {
                "true" => Ok(Value::Boolean(true)),
                "false" => Ok(Value::Boolean(false)),
                _ => invalid(format!("cannot cast {s:?} to BOOLEAN")),
            },
            v => invalid(format!("cannot cast {} to BOOLEAN", v.signature())),
        },
        DataType::Byte | DataType::Short | DataType::Int | DataType::Long => {
            let (min, max): (i128, i128) = match target {
                DataType::Byte => (i8::MIN as i128, i8::MAX as i128),
                DataType::Short => (i16::MIN as i128, i16::MAX as i128),
                DataType::Int => (i32::MIN as i128, i32::MAX as i128),
                _ => (i64::MIN as i128, i64::MAX as i128),
            };
            let raw = match value {
                // ANSI does NOT trim whitespace (the upstream half of D09).
                Value::Str(s) => match s.parse::<i128>() {
                    Ok(v) => v,
                    Err(_) => {
                        return invalid(format!("cannot cast {s:?} to {target}"));
                    }
                },
                v => match integral_of(v) {
                    Some(x) => x,
                    None => return invalid(format!("cannot cast {} to {target}", v.signature())),
                },
            };
            if !(min..=max).contains(&raw) {
                return overflow(format!("value {raw} cannot be stored in {target}"));
            }
            Ok(match target {
                DataType::Byte => Value::Byte(raw as i8),
                DataType::Short => Value::Short(raw as i16),
                DataType::Int => Value::Int(raw as i32),
                _ => Value::Long(raw as i64),
            })
        }
        DataType::Float | DataType::Double => {
            let raw = match value {
                Value::Str(s) => match s.parse::<f64>() {
                    Ok(v) => v,
                    Err(_) => return invalid(format!("cannot cast {s:?} to {target}")),
                },
                v => match float_of(v) {
                    Some(x) => x,
                    None => return invalid(format!("cannot cast {} to {target}", v.signature())),
                },
            };
            Ok(if *target == DataType::Float {
                Value::Float(raw as f32)
            } else {
                Value::Double(raw)
            })
        }
        DataType::Decimal(p, s) => {
            let d = match value {
                Value::Decimal(d) => *d,
                Value::Byte(v) => Decimal::new(*v as i128, 3, 0).expect("fits"),
                Value::Short(v) => Decimal::new(*v as i128, 5, 0).expect("fits"),
                Value::Int(v) => Decimal::new(*v as i128, 10, 0).expect("fits"),
                Value::Long(v) => Decimal::new(*v as i128, 19, 0).expect("fits"),
                Value::Str(text) => match Decimal::parse(text) {
                    Ok(d) => d,
                    Err(_) => return invalid(format!("cannot cast {text:?} to DECIMAL({p},{s})")),
                },
                v => return invalid(format!("cannot cast {} to DECIMAL({p},{s})", v.signature())),
            };
            // ANSI rescales exactly; any loss of digits is an overflow
            // (the upstream half of D05).
            match d.rescale(*p, *s) {
                Ok(out) => Ok(Value::Decimal(out)),
                Err(_) => overflow(format!("{d} cannot be represented as Decimal({p},{s})")),
            }
        }
        DataType::String => Ok(Value::Str(render(value))),
        DataType::Char(n) => {
            if opts.char_varchar_as_string {
                return Ok(Value::Str(render(value)));
            }
            let s = render(value);
            let len = s.chars().count();
            if len > *n as usize {
                return Err(SparkError::cast(
                    "EXCEEDS_CHAR_VARCHAR_LENGTH",
                    format!("input string of length {len} exceeds char({n}) type"),
                ));
            }
            let mut padded = s;
            padded.extend(std::iter::repeat_n(' ', *n as usize - len));
            Ok(Value::Str(padded))
        }
        DataType::Varchar(n) => {
            if opts.char_varchar_as_string {
                return Ok(Value::Str(render(value)));
            }
            let s = render(value);
            let len = s.chars().count();
            if len > *n as usize {
                // The upstream half of D08: Hive truncates, Spark raises.
                return Err(SparkError::cast(
                    "EXCEEDS_CHAR_VARCHAR_LENGTH",
                    format!("input string of length {len} exceeds varchar({n}) type"),
                ));
            }
            Ok(Value::Str(s))
        }
        DataType::Binary => match value {
            Value::Binary(b) => Ok(Value::Binary(b.clone())),
            Value::Str(s) => Ok(Value::Binary(s.clone().into_bytes())),
            v => invalid(format!("cannot cast {} to BINARY", v.signature())),
        },
        DataType::Date => {
            let days = match value {
                Value::Date(d) => *d,
                Value::Timestamp(us) => us.div_euclid(86_400_000_000) as i32,
                Value::Str(s) => match parse_date(s) {
                    Some(d) => d,
                    None => return invalid(format!("cannot cast {s:?} to DATE")),
                },
                v => return invalid(format!("cannot cast {} to DATE", v.signature())),
            };
            if !(MIN_DATE_DAYS..=MAX_DATE_DAYS).contains(&days) {
                return Err(SparkError::cast(
                    "DATE_OUT_OF_RANGE",
                    format!(
                        "date {} is outside 0001-01-01..9999-12-31",
                        format_date(days)
                    ),
                ));
            }
            Ok(Value::Date(days))
        }
        DataType::Timestamp => {
            let us = match value {
                Value::Timestamp(us) => *us,
                Value::Date(d) => *d as i64 * 86_400_000_000,
                Value::Str(s) => match parse_timestamp(s) {
                    Some(us) => us,
                    None => return invalid(format!("cannot cast {s:?} to TIMESTAMP")),
                },
                v => return invalid(format!("cannot cast {} to TIMESTAMP", v.signature())),
            };
            let min = MIN_DATE_DAYS as i64 * 86_400_000_000;
            let max = (MAX_DATE_DAYS as i64 + 1) * 86_400_000_000 - 1;
            if !(min..=max).contains(&us) {
                return Err(SparkError::cast(
                    "TIMESTAMP_OUT_OF_RANGE",
                    format!(
                        "timestamp {} is outside the supported range",
                        format_timestamp(us)
                    ),
                ));
            }
            Ok(Value::Timestamp(us))
        }
        DataType::Interval => match value {
            Value::Interval { .. } => Ok(value.clone()),
            v => invalid(format!("cannot cast {} to INTERVAL", v.signature())),
        },
        DataType::Array(et) => match value {
            Value::Array(items) => Ok(Value::Array(
                items
                    .iter()
                    .map(|v| store_assign(v, et, opts))
                    .collect::<Result<Vec<_>, _>>()?,
            )),
            v => invalid(format!("cannot cast {} to {target}", v.signature())),
        },
        DataType::Map(kt, vt) => match value {
            Value::Map(pairs) => Ok(Value::Map(
                pairs
                    .iter()
                    .map(|(k, v)| Ok((store_assign(k, kt, opts)?, store_assign(v, vt, opts)?)))
                    .collect::<Result<Vec<_>, SparkError>>()?,
            )),
            v => invalid(format!("cannot cast {} to {target}", v.signature())),
        },
        DataType::Struct(fields) => match value {
            Value::Struct(values) if values.len() == fields.len() => Ok(Value::Struct(
                fields
                    .iter()
                    .zip(values)
                    .map(|(f, (_, v))| {
                        // Spark keeps its own case-preserved field names.
                        Ok((f.name.clone(), store_assign(v, &f.data_type, opts)?))
                    })
                    .collect::<Result<Vec<_>, SparkError>>()?,
            )),
            v => invalid(format!("cannot cast {} to {target}", v.signature())),
        },
    }
}

/// The LEGACY path: Hive-compatible casts that silently write NULL where
/// ANSI would raise. Crucially, there is **no diagnostic feedback**.
fn legacy_cast(value: &Value, target: &DataType, opts: CastOptions) -> Value {
    match target {
        DataType::Boolean => match value {
            Value::Boolean(b) => Value::Boolean(*b),
            Value::Str(s) => match s.trim().to_ascii_lowercase().as_str() {
                "true" | "t" | "yes" | "y" | "1" => Value::Boolean(true),
                "false" | "f" | "no" | "n" | "0" => Value::Boolean(false),
                _ => Value::Null,
            },
            Value::Byte(v) => Value::Boolean(*v != 0),
            Value::Int(v) => Value::Boolean(*v != 0),
            _ => Value::Null,
        },
        DataType::Byte | DataType::Short | DataType::Int | DataType::Long => {
            let (min, max): (i128, i128) = match target {
                DataType::Byte => (i8::MIN as i128, i8::MAX as i128),
                DataType::Short => (i16::MIN as i128, i16::MAX as i128),
                DataType::Int => (i32::MIN as i128, i32::MAX as i128),
                _ => (i64::MIN as i128, i64::MAX as i128),
            };
            let raw = match value {
                // Legacy trims whitespace (resolving D09 under the custom
                // configuration).
                Value::Str(s) => s.trim().parse::<i128>().ok(),
                v => integral_of(v),
            };
            match raw {
                Some(v) if (min..=max).contains(&v) => match target {
                    DataType::Byte => Value::Byte(v as i8),
                    DataType::Short => Value::Short(v as i16),
                    DataType::Int => Value::Int(v as i32),
                    _ => Value::Long(v as i64),
                },
                _ => Value::Null,
            }
        }
        DataType::Float | DataType::Double => {
            let raw = match value {
                Value::Str(s) => s.trim().parse::<f64>().ok(),
                v => float_of(v),
            };
            match raw {
                Some(f) if *target == DataType::Float => Value::Float(f as f32),
                Some(f) => Value::Double(f),
                None => Value::Null,
            }
        }
        DataType::Decimal(p, s) => {
            let d = match value {
                Value::Decimal(d) => Some(*d),
                Value::Byte(v) => Decimal::new(*v as i128, 3, 0).ok(),
                Value::Short(v) => Decimal::new(*v as i128, 5, 0).ok(),
                Value::Int(v) => Decimal::new(*v as i128, 10, 0).ok(),
                Value::Long(v) => Decimal::new(*v as i128, 19, 0).ok(),
                Value::Str(text) => Decimal::parse(text.trim()).ok(),
                _ => None,
            };
            match d {
                // Legacy keeps the *runtime* scale as long as it fits the
                // declaration — the writer-side half of D02. Values with
                // too much precision "evaluate to NULL" (SPARK-40439).
                Some(d) if d.scale <= *s && d.digit_count() <= *p as u32 => Value::Decimal(d),
                _ => Value::Null,
            }
        }
        DataType::String => Value::Str(render(value)),
        DataType::Char(n) => {
            if opts.char_varchar_as_string {
                return Value::Str(render(value));
            }
            let mut s: String = render(value).chars().take(*n as usize).collect();
            let pad = *n as usize - s.chars().count();
            s.extend(std::iter::repeat_n(' ', pad));
            Value::Str(s)
        }
        DataType::Varchar(n) => {
            if opts.char_varchar_as_string {
                return Value::Str(render(value));
            }
            // Silent truncation.
            Value::Str(render(value).chars().take(*n as usize).collect())
        }
        DataType::Binary => match value {
            Value::Binary(b) => Value::Binary(b.clone()),
            Value::Str(s) => Value::Binary(s.clone().into_bytes()),
            _ => Value::Null,
        },
        DataType::Date => {
            let days = match value {
                Value::Date(d) => Some(*d),
                Value::Timestamp(us) => Some(us.div_euclid(86_400_000_000) as i32),
                Value::Str(s) => parse_date(s.trim()),
                _ => None,
            };
            match days {
                Some(d) if !opts.date_range_check => Value::Date(d),
                Some(d) if (MIN_DATE_DAYS..=MAX_DATE_DAYS).contains(&d) => Value::Date(d),
                _ => Value::Null,
            }
        }
        DataType::Timestamp => {
            let us = match value {
                Value::Timestamp(us) => Some(*us),
                Value::Date(d) => Some(*d as i64 * 86_400_000_000),
                Value::Str(s) => parse_timestamp(s.trim()),
                _ => None,
            };
            match us {
                Some(v) => Value::Timestamp(v),
                None => Value::Null,
            }
        }
        DataType::Interval => match value {
            Value::Interval { .. } => value.clone(),
            _ => Value::Null,
        },
        DataType::Array(et) => match value {
            Value::Array(items) => {
                Value::Array(items.iter().map(|v| legacy_cast(v, et, opts)).collect())
            }
            _ => Value::Null,
        },
        DataType::Map(kt, vt) => match value {
            Value::Map(pairs) => Value::Map(
                pairs
                    .iter()
                    .map(|(k, v)| (legacy_cast(k, kt, opts), legacy_cast(v, vt, opts)))
                    .collect(),
            ),
            _ => Value::Null,
        },
        DataType::Struct(fields) => match value {
            Value::Struct(values) if values.len() == fields.len() => Value::Struct(
                fields
                    .iter()
                    .zip(values)
                    .map(|(f, (_, v))| (f.name.clone(), legacy_cast(v, &f.data_type, opts)))
                    .collect(),
            ),
            _ => Value::Null,
        },
    }
}

/// Whether a value contains a DATE or TIMESTAMP outside the documented
/// 0001-01-01..9999-12-31 range.
///
/// The `spark.sql.dataframe.dateRangeCheck` path logs a warning before
/// coercing such values to NULL, which is what makes the fix visible to
/// the error-handling oracle (closing D15).
pub fn has_out_of_range_datetime(value: &Value) -> bool {
    match value {
        Value::Date(d) => !(MIN_DATE_DAYS..=MAX_DATE_DAYS).contains(d),
        Value::Timestamp(us) => {
            let min = MIN_DATE_DAYS as i64 * 86_400_000_000;
            let max = (MAX_DATE_DAYS as i64 + 1) * 86_400_000_000 - 1;
            !(min..=max).contains(us)
        }
        Value::Array(items) => items.iter().any(has_out_of_range_datetime),
        Value::Map(pairs) => pairs
            .iter()
            .any(|(k, v)| has_out_of_range_datetime(k) || has_out_of_range_datetime(v)),
        Value::Struct(fields) => fields.iter().any(|(_, v)| has_out_of_range_datetime(v)),
        _ => false,
    }
}

/// Serializes a case-preserved schema into the `spark.sql.sources.schema`
/// table property.
pub fn schema_to_property(fields: &[StructField]) -> String {
    serde_json::to_string(fields).expect("schema serializes")
}

/// Parses the `spark.sql.sources.schema` property back into a schema.
pub fn schema_from_property(raw: &str) -> Option<Vec<StructField>> {
    serde_json::from_str(raw).ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    const ANSI: CastOptions = CastOptions {
        policy: StoreAssignmentPolicy::Ansi,
        char_varchar_as_string: false,
        date_range_check: true,
    };
    const LEGACY: CastOptions = CastOptions {
        policy: StoreAssignmentPolicy::Legacy,
        char_varchar_as_string: false,
        date_range_check: false,
    };

    #[test]
    fn ansi_overflow_raises_legacy_nulls() {
        let v = Value::Int(300);
        let err = store_assign(&v, &DataType::Byte, ANSI).unwrap_err();
        assert_eq!(err.code(), "CAST_OVERFLOW");
        assert_eq!(
            store_assign(&v, &DataType::Byte, LEGACY).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn ansi_does_not_trim_strings_legacy_does() {
        let v = Value::Str(" 42 ".into());
        let err = store_assign(&v, &DataType::Int, ANSI).unwrap_err();
        assert_eq!(err.code(), "CAST_INVALID_INPUT");
        assert_eq!(
            store_assign(&v, &DataType::Int, LEGACY).unwrap(),
            Value::Int(42)
        );
    }

    #[test]
    fn boolean_strictness_differs_by_policy() {
        let t = Value::Str("t".into());
        assert!(store_assign(&t, &DataType::Boolean, ANSI).is_err());
        assert_eq!(
            store_assign(&t, &DataType::Boolean, LEGACY).unwrap(),
            Value::Boolean(true)
        );
        assert_eq!(
            store_assign(&Value::Str("TRUE".into()), &DataType::Boolean, ANSI).unwrap(),
            Value::Boolean(true)
        );
    }

    #[test]
    fn decimal_ansi_rescales_legacy_keeps_runtime_scale() {
        let d = Value::Decimal(Decimal::parse("1.5").unwrap());
        let target = DataType::Decimal(10, 2);
        let out = store_assign(&d, &target, ANSI).unwrap();
        assert_eq!(out, Value::Decimal(Decimal::new(150, 10, 2).unwrap()));
        // Legacy keeps scale 1 — valid, but physically different.
        let out = store_assign(&d, &target, LEGACY).unwrap();
        assert_eq!(out, Value::Decimal(Decimal::parse("1.5").unwrap()));
    }

    #[test]
    fn decimal_excess_precision_raises_ansi_nulls_legacy() {
        let d = Value::Decimal(Decimal::parse("123.456").unwrap());
        let target = DataType::Decimal(10, 2);
        let err = store_assign(&d, &target, ANSI).unwrap_err();
        assert_eq!(err.code(), "CAST_OVERFLOW");
        // Legacy: too much precision "evaluates to NULL" (SPARK-40439).
        assert_eq!(store_assign(&d, &target, LEGACY).unwrap(), Value::Null);
        // A decimal exceeding the precision goes to NULL under legacy.
        let big = Value::Decimal(Decimal::parse("123456789012.3").unwrap());
        assert_eq!(store_assign(&big, &target, LEGACY).unwrap(), Value::Null);
    }

    #[test]
    fn varchar_overflow_raises_ansi_truncates_legacy() {
        let v = Value::Str("abcdefghij".into());
        let target = DataType::Varchar(8);
        let err = store_assign(&v, &target, ANSI).unwrap_err();
        assert_eq!(err.code(), "EXCEEDS_CHAR_VARCHAR_LENGTH");
        assert_eq!(
            store_assign(&v, &target, LEGACY).unwrap(),
            Value::Str("abcdefgh".into())
        );
        // charVarcharAsString disables both behaviors.
        let relaxed = CastOptions {
            char_varchar_as_string: true,
            ..ANSI
        };
        assert_eq!(store_assign(&v, &target, relaxed).unwrap(), v);
    }

    #[test]
    fn char_pads_under_both_policies() {
        let v = Value::Str("abc".into());
        for opts in [ANSI, LEGACY] {
            assert_eq!(
                store_assign(&v, &DataType::Char(8), opts).unwrap(),
                Value::Str("abc     ".into())
            );
        }
    }

    #[test]
    fn date_range_checked_only_when_asked() {
        let too_far = Value::Date(MAX_DATE_DAYS + 10);
        let err = store_assign(&too_far, &DataType::Date, ANSI).unwrap_err();
        assert_eq!(err.code(), "DATE_OUT_OF_RANGE");
        // The DataFrame legacy path accepts it silently (D15).
        assert_eq!(
            store_assign(&too_far, &DataType::Date, LEGACY).unwrap(),
            too_far
        );
        let strict_legacy = CastOptions {
            date_range_check: true,
            ..LEGACY
        };
        assert_eq!(
            store_assign(&too_far, &DataType::Date, strict_legacy).unwrap(),
            Value::Null
        );
    }

    #[test]
    fn strict_only_accepts_exact_types() {
        let opts = CastOptions {
            policy: StoreAssignmentPolicy::Strict,
            char_varchar_as_string: false,
            date_range_check: true,
        };
        assert!(store_assign(&Value::Int(5), &DataType::Int, opts).is_ok());
        assert!(store_assign(&Value::Int(5), &DataType::Long, opts).is_err());
    }

    #[test]
    fn struct_keeps_case_preserved_field_names() {
        let target = DataType::Struct(vec![StructField::new("Inner", DataType::Int)]);
        let v = Value::Struct(vec![("whatever".into(), Value::Int(1))]);
        let out = store_assign(&v, &target, ANSI).unwrap();
        assert_eq!(out, Value::Struct(vec![("Inner".into(), Value::Int(1))]));
    }

    #[test]
    fn nested_ansi_errors_propagate() {
        let target = DataType::Array(Box::new(DataType::Byte));
        let v = Value::Array(vec![Value::Int(5), Value::Int(300)]);
        assert!(store_assign(&v, &target, ANSI).is_err());
        let out = store_assign(&v, &target, LEGACY).unwrap();
        assert_eq!(out, Value::Array(vec![Value::Byte(5), Value::Null]));
    }

    #[test]
    fn schema_property_round_trips() {
        let fields = vec![
            StructField::new("CamelCol", DataType::Byte),
            StructField::new(
                "m",
                DataType::Map(Box::new(DataType::Int), Box::new(DataType::String)),
            ),
        ];
        let raw = schema_to_property(&fields);
        let back = schema_from_property(&raw).unwrap();
        assert_eq!(back, fields);
        assert_eq!(schema_from_property("not json"), None);
    }
}
