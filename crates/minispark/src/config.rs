//! Spark's configuration plane.
//!
//! SparkSQL alone exposes hundreds of parameters (Section 8.2 notes 350+);
//! this module implements the ones that govern the studied discrepancies,
//! plus the merge behaviors of the management-plane failures: Spark builds
//! its effective configuration by layering `spark-defaults.conf`, the
//! Hadoop configuration, and `hive-site.xml` — and the layering can
//! silently override or drop values (SPARK-16901, SPARK-10181).

use csi_core::config::{ConfigMap, MergePolicy, MergeReport};

/// `spark.sql.storeAssignmentPolicy` — how INSERT values are cast to column
/// types: `ANSI` (raise on overflow; the default), `LEGACY` (Hive-style
/// silent NULL/truncation), or `STRICT`.
pub const STORE_ASSIGNMENT_POLICY: &str = "spark.sql.storeAssignmentPolicy";
/// `spark.sql.legacy.charVarcharAsString` — treat CHAR/VARCHAR as plain
/// STRING (no padding, no length checks).
pub const CHAR_VARCHAR_AS_STRING: &str = "spark.sql.legacy.charVarcharAsString";
/// `spark.sql.legacy.intervalAsString` — store INTERVAL columns in Hive
/// tables as STRING instead of failing (resolves D10/D11).
pub const INTERVAL_AS_STRING: &str = "spark.sql.legacy.intervalAsString";
/// `spark.sql.dataframe.dateRangeCheck` — make the DataFrame writer validate
/// dates against the supported 0001..9999 range (resolves D15).
pub const DATAFRAME_DATE_RANGE_CHECK: &str = "spark.sql.dataframe.dateRangeCheck";
/// `spark.sql.hive.caseSensitiveInferenceMode` — infer and save a
/// case-preserving schema; only effective for ORC and Parquet tables.
pub const CASE_SENSITIVE_INFERENCE: &str = "spark.sql.hive.caseSensitiveInferenceMode";
/// `spark.sql.parquet.datetimeRebaseModeInRead` — honor Julian-calendar
/// markers in Parquet files (`CORRECTED` ignores them; `LEGACY` honors).
pub const PARQUET_REBASE_MODE: &str = "spark.sql.parquet.datetimeRebaseModeInRead";
/// `spark.yarn.keytab` — Kerberos keytab forwarded to Hive (SPARK-10181).
pub const YARN_KEYTAB: &str = "spark.yarn.keytab";
/// `spark.yarn.principal` — Kerberos principal forwarded to Hive.
pub const YARN_PRINCIPAL: &str = "spark.yarn.principal";
/// `spark.executor.memory` (MB).
pub const EXECUTOR_MEMORY_MB: &str = "spark.executor.memory";
/// `spark.executor.memoryOverhead` (MB; default `max(384, 0.10 * memory)`).
pub const EXECUTOR_MEMORY_OVERHEAD_MB: &str = "spark.executor.memoryOverhead";
/// `spark.executor.cores`.
pub const EXECUTOR_CORES: &str = "spark.executor.cores";

/// Store-assignment policy values.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreAssignmentPolicy {
    /// Raise on overflow / invalid input (the default since Spark 3).
    Ansi,
    /// Hive-style silent coercion to NULL.
    Legacy,
    /// Only exact type matches.
    Strict,
}

/// Spark's effective configuration.
#[derive(Debug, Clone)]
pub struct SparkConfig {
    map: ConfigMap,
}

impl Default for SparkConfig {
    fn default() -> SparkConfig {
        SparkConfig::new()
    }
}

impl SparkConfig {
    /// Builds the default configuration (`spark-defaults.conf`).
    pub fn new() -> SparkConfig {
        let mut map = ConfigMap::new("spark");
        let src = "spark-defaults.conf";
        map.set(STORE_ASSIGNMENT_POLICY, "ANSI", src);
        map.set(CHAR_VARCHAR_AS_STRING, "false", src);
        map.set(INTERVAL_AS_STRING, "false", src);
        map.set(DATAFRAME_DATE_RANGE_CHECK, "false", src);
        map.set(CASE_SENSITIVE_INFERENCE, "INFER_AND_SAVE", src);
        map.set(PARQUET_REBASE_MODE, "CORRECTED", src);
        map.set(EXECUTOR_MEMORY_MB, "1024", src);
        map.set(EXECUTOR_CORES, "1", src);
        // A sampling of the wider surface, for realism.
        map.set("spark.sql.shuffle.partitions", "200", src);
        map.set("spark.sql.session.timeZone", "UTC", src);
        map.set("spark.sql.sources.default", "parquet", src);
        map.set(
            "spark.serializer",
            "org.apache.spark.serializer.KryoSerializer",
            src,
        );
        map.set("spark.dynamicAllocation.enabled", "false", src);
        SparkConfig { map }
    }

    /// Raw access to the underlying provenance-tracked map.
    pub fn map(&self) -> &ConfigMap {
        &self.map
    }

    /// Sets a key from user code (`SparkSession.conf.set`).
    pub fn set(&mut self, key: &str, value: &str) {
        self.map.set(key, value, "session");
    }

    /// Reads a key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.map.get(key)
    }

    /// The effective store-assignment policy; unknown values fall back to
    /// ANSI.
    pub fn store_assignment_policy(&self) -> StoreAssignmentPolicy {
        match self
            .map
            .get(STORE_ASSIGNMENT_POLICY)
            .map(str::to_ascii_uppercase)
            .as_deref()
        {
            Some("LEGACY") => StoreAssignmentPolicy::Legacy,
            Some("STRICT") => StoreAssignmentPolicy::Strict,
            _ => StoreAssignmentPolicy::Ansi,
        }
    }

    fn flag(&self, key: &str) -> bool {
        matches!(self.map.get_bool(key), Some(Ok(true)))
    }

    /// Whether CHAR/VARCHAR are treated as plain STRING.
    pub fn char_varchar_as_string(&self) -> bool {
        self.flag(CHAR_VARCHAR_AS_STRING)
    }

    /// Whether INTERVAL columns are stored as STRING in Hive tables.
    pub fn interval_as_string(&self) -> bool {
        self.flag(INTERVAL_AS_STRING)
    }

    /// Whether the DataFrame writer validates date ranges.
    pub fn dataframe_date_range_check(&self) -> bool {
        self.flag(DATAFRAME_DATE_RANGE_CHECK)
    }

    /// Whether Parquet reads honor Julian-calendar markers.
    pub fn parquet_rebase_legacy(&self) -> bool {
        self.map
            .get(PARQUET_REBASE_MODE)
            .map(str::to_ascii_uppercase)
            .as_deref()
            == Some("LEGACY")
    }

    /// Whether Spark saves a case-preserving schema for a storage format.
    ///
    /// Per the configuration's documentation, inference "only works with
    /// ORC and Parquet, but not Avro" — the internal-configuration-exposure
    /// problem of Section 8.2.
    pub fn case_preserving_schema_for(&self, format: &str) -> bool {
        let mode = self
            .map
            .get(CASE_SENSITIVE_INFERENCE)
            .map(str::to_ascii_uppercase);
        if mode.as_deref() == Some("NEVER_INFER") {
            return false;
        }
        matches!(format.to_ascii_uppercase().as_str(), "ORC" | "PARQUET")
    }

    /// Merges a Hadoop configuration into Spark's: Spark-side values win
    /// and the incoming values are recorded as ignored.
    pub fn merge_hadoop(&mut self, hadoop: &ConfigMap) -> MergeReport {
        self.map
            .merge(hadoop, MergePolicy::OursWin, "merge hadoop-conf")
    }

    /// Merges `hive-site.xml` the way SPARK-16901 did: **Spark's values
    /// overwrite Hive's silently**, even for Hive-owned keys. The merge
    /// report (and the config provenance) records every override, which is
    /// how the study's traceability implication would surface the bug.
    pub fn overlay_onto_hive_site(&self, hive_site: &mut ConfigMap) -> MergeReport {
        hive_site.merge(
            &self.map,
            MergePolicy::TheirsWin,
            "spark overlay (SPARK-16901)",
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_select_ansi_policy() {
        let c = SparkConfig::new();
        assert_eq!(c.store_assignment_policy(), StoreAssignmentPolicy::Ansi);
        assert!(!c.char_varchar_as_string());
        assert!(!c.interval_as_string());
        assert!(!c.parquet_rebase_legacy());
    }

    #[test]
    fn policy_switches_via_config() {
        let mut c = SparkConfig::new();
        c.set(STORE_ASSIGNMENT_POLICY, "legacy");
        assert_eq!(c.store_assignment_policy(), StoreAssignmentPolicy::Legacy);
        c.set(STORE_ASSIGNMENT_POLICY, "STRICT");
        assert_eq!(c.store_assignment_policy(), StoreAssignmentPolicy::Strict);
        c.set(STORE_ASSIGNMENT_POLICY, "garbage");
        assert_eq!(c.store_assignment_policy(), StoreAssignmentPolicy::Ansi);
    }

    #[test]
    fn case_preserving_schema_excludes_avro() {
        let c = SparkConfig::new();
        assert!(c.case_preserving_schema_for("orc"));
        assert!(c.case_preserving_schema_for("PARQUET"));
        assert!(!c.case_preserving_schema_for("AVRO"));
        let mut c2 = SparkConfig::new();
        c2.set(CASE_SENSITIVE_INFERENCE, "NEVER_INFER");
        assert!(!c2.case_preserving_schema_for("orc"));
    }

    #[test]
    fn hive_site_overlay_records_silent_overrides() {
        let mut hive_site = ConfigMap::new("hive");
        hive_site.set("hive.exec.dynamic.partition", "true", "hive-site.xml");
        hive_site.set("spark.sql.session.timeZone", "PST", "hive-site.xml");
        let spark = SparkConfig::new();
        let report = spark.overlay_onto_hive_site(&mut hive_site);
        // Spark silently overwrote Hive's timezone choice.
        assert_eq!(report.overridden, vec!["spark.sql.session.timeZone"]);
        assert_eq!(hive_site.get("spark.sql.session.timeZone"), Some("UTC"));
        // The provenance trail records what happened.
        assert!(hive_site
            .trace("spark.sql.session.timeZone")
            .contains("OVERRIDDEN"));
    }

    #[test]
    fn hadoop_merge_keeps_spark_values() {
        let mut spark = SparkConfig::new();
        let mut hadoop = ConfigMap::new("hadoop");
        hadoop.set("spark.executor.memory", "4096", "core-site.xml");
        hadoop.set("fs.defaultFS", "hdfs://nn:9000", "core-site.xml");
        let report = spark.merge_hadoop(&hadoop);
        assert_eq!(spark.get(EXECUTOR_MEMORY_MB), Some("1024"));
        assert_eq!(report.ignored, vec!["spark.executor.memory"]);
        assert_eq!(spark.get("fs.defaultFS"), Some("hdfs://nn:9000"));
    }
}
