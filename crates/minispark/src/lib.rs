//! `minispark` — a compute-engine substrate modeled on Apache Spark.
//!
//! Provides the upstream half of the cross-system study: a session with a
//! Spark-style configuration plane, a case-*sensitive* Catalyst-like type
//! system, two data-plane interfaces (SparkSQL and DataFrame), its own
//! ORC/Parquet/Avro serializers with Spark-specific read optimizations, and
//! connectors to `minihive`, `minihdfs`, `minikafka`, and `miniyarn`.
//!
//! The connectors carry the upstream halves of the studied discrepancies:
//! the HDFS connector asserts non-negative file lengths (SPARK-27239), the
//! Kafka connector assumes contiguous offsets (SPARK-19361), the Hive
//! writer widens BYTE/SHORT and folds identifier case (HIVE-26533), and the
//! Avro serializer lacks the INT-to-BYTE narrowing path (SPARK-39075).

pub mod config;
pub mod connectors;
pub mod dataframe;
pub mod error;
pub mod serde_layer;
pub mod session;
pub mod sparksql;
pub mod types;

pub use config::SparkConfig;
pub use dataframe::DataFrameApi;
pub use error::SparkError;
pub use session::SparkSession;
pub use sparksql::{SparkSql, SqlResult};
