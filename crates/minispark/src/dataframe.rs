//! The DataFrame interface.
//!
//! Programmatic writer/reader whose row encoder follows Spark's **legacy**
//! coercion path regardless of `spark.sql.storeAssignmentPolicy`: values
//! that cannot be represented become NULL **silently** (SPARK-40439's
//! "evaluate to NULL by DataFrame"), out-of-range dates pass through unless
//! `spark.sql.dataframe.dateRangeCheck` is set (SPARK-40630 / D15), and
//! CHAR values come back with trailing blanks trimmed (the D13 half that
//! differs from SparkSQL's padded reads).

use crate::config::StoreAssignmentPolicy;
use crate::error::SparkError;
use crate::session::{DdlPath, SparkSession};
use crate::types::{store_assign, CastOptions};
use csi_core::column::{ColumnValues, ValueColumn};
use csi_core::value::{DataType, StructField, Value};
use minihive::metastore::StorageFormat;

/// The DataFrame writer/reader over a session.
pub struct DataFrameApi<'a> {
    session: &'a SparkSession,
}

impl<'a> DataFrameApi<'a> {
    /// Wraps a session.
    pub fn new(session: &'a SparkSession) -> DataFrameApi<'a> {
        DataFrameApi { session }
    }

    fn cast_options(&self) -> CastOptions {
        CastOptions {
            policy: StoreAssignmentPolicy::Legacy,
            char_varchar_as_string: self.session.config.char_varchar_as_string(),
            date_range_check: self.session.config.dataframe_date_range_check(),
        }
    }

    /// `df.write.format(fmt).saveAsTable(name)` — creates the table.
    pub fn create_table(
        &self,
        name: &str,
        schema: &[StructField],
        format: StorageFormat,
    ) -> Result<(), SparkError> {
        self.session
            .create_hive_table(name, schema, format, DdlPath::DataFrame, false)
    }

    /// `df.write.insertInto(name)` — appends rows.
    pub fn insert_into(&self, name: &str, rows: &[Vec<Value>]) -> Result<(), SparkError> {
        let def = self.session.table_def(name)?;
        let schema = self.session.resolve_schema(&def);
        let opts = self.cast_options();
        let mut cast_rows = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != schema.len() {
                return Err(SparkError::Arity {
                    expected: schema.len(),
                    got: row.len(),
                });
            }
            let mut out = Vec::with_capacity(row.len());
            for (v, field) in row.iter().zip(&schema) {
                if opts.date_range_check && crate::types::has_out_of_range_datetime(v) {
                    self.session.diag().warn(
                        "DATE_RANGE_COERCED",
                        format!(
                            "value for column {} is outside 0001-01-01..9999-12-31, writing NULL",
                            field.name
                        ),
                    );
                }
                out.push(store_assign(v, &field.data_type, opts)?);
            }
            cast_rows.push(out);
        }
        self.session.write_rows(&def, &schema, &cast_rows)
    }

    /// `df.write.insertInto(name)` over column buffers — the bulk
    /// counterpart of [`DataFrameApi::insert_into`]. Columns whose buffer
    /// already inhabits the target type skip the per-cell cast entirely;
    /// anything else (decimals, CHAR/VARCHAR, type-skewed or out-of-range
    /// buffers) replays the row path's `store_assign` per cell.
    pub fn insert_columns(&self, name: &str, cols: &[ValueColumn]) -> Result<(), SparkError> {
        let def = self.session.table_def(name)?;
        let schema = self.session.resolve_schema(&def);
        if cols.len() != schema.len() {
            return Err(SparkError::Arity {
                expected: schema.len(),
                got: cols.len(),
            });
        }
        let opts = self.cast_options();
        let mut cast_cols = Vec::with_capacity(cols.len());
        for (field, col) in schema.iter().zip(cols) {
            if column_passes_through(&field.data_type, col, opts) {
                cast_cols.push(col.clone());
                continue;
            }
            let mut out = ValueColumn::with_capacity(&field.data_type, col.len());
            for i in 0..col.len() {
                let v = col.get(i);
                if opts.date_range_check && crate::types::has_out_of_range_datetime(&v) {
                    self.session.diag().warn(
                        "DATE_RANGE_COERCED",
                        format!(
                            "value for column {} is outside 0001-01-01..9999-12-31, writing NULL",
                            field.name
                        ),
                    );
                }
                out.push(&store_assign(&v, &field.data_type, opts)?);
            }
            cast_cols.push(out);
        }
        self.session.write_columns(&def, &schema, &cast_cols)
    }

    /// `spark.table(name).collect()` over column buffers — the bulk
    /// counterpart of [`DataFrameApi::read_table`].
    pub fn read_table_columns(
        &self,
        name: &str,
    ) -> Result<(Vec<StructField>, Vec<ValueColumn>), SparkError> {
        let def = self.session.table_def(name)?;
        let schema = self.session.resolve_schema(&def);
        let mut cols = self.session.read_columns(&def, &schema)?;
        if !self.session.config.char_varchar_as_string() {
            // The DataFrame reader trims CHAR padding (D13's upstream half).
            for (field, col) in schema.iter().zip(cols.iter_mut()) {
                trim_char_column(&field.data_type, col);
            }
        }
        Ok((schema, cols))
    }

    /// `spark.table(name).collect()` — reads all rows.
    pub fn read_table(
        &self,
        name: &str,
    ) -> Result<(Vec<StructField>, Vec<Vec<Value>>), SparkError> {
        let def = self.session.table_def(name)?;
        let schema = self.session.resolve_schema(&def);
        let mut rows = self.session.read_rows(&def, &schema)?;
        if !self.session.config.char_varchar_as_string() {
            // The DataFrame reader trims CHAR padding (D13's upstream half).
            for row in &mut rows {
                for (field, v) in schema.iter().zip(row.iter_mut()) {
                    trim_char(&field.data_type, v);
                }
            }
        }
        Ok((schema, rows))
    }
}

/// Whether a whole column buffer survives `store_assign` under the Legacy
/// policy byte-for-byte, so the per-cell replay can be skipped.
///
/// Only (target, lane) pairs proven identity in `legacy_cast` qualify:
/// exact-variant integrals and booleans, doubles, strings into STRING,
/// binary, intervals, and dates/timestamps when the range check is off
/// (the check both warns and, for dates, NULLs — both need the row replay).
/// FLOAT is excluded: the row path round-trips f32 through f64, which can
/// quiet signalling NaN payloads, and pass-through must not diverge from it.
fn column_passes_through(ty: &DataType, col: &ValueColumn, opts: CastOptions) -> bool {
    match (ty, col.values()) {
        (DataType::Boolean, ColumnValues::Boolean(_))
        | (DataType::Byte, ColumnValues::Byte(_))
        | (DataType::Short, ColumnValues::Short(_))
        | (DataType::Int, ColumnValues::Int(_))
        | (DataType::Long, ColumnValues::Long(_))
        | (DataType::Double, ColumnValues::Double(_))
        | (DataType::String, ColumnValues::Str { .. })
        | (DataType::Binary, ColumnValues::Binary { .. })
        | (DataType::Interval, ColumnValues::Interval { .. }) => true,
        (DataType::Date, ColumnValues::Date(_))
        | (DataType::Timestamp, ColumnValues::Timestamp(_)) => !opts.date_range_check,
        _ => false,
    }
}

/// Columnar counterpart of [`trim_char`]: drops trailing blanks from CHAR
/// string buffers in place, recursing into `Mixed` lanes for nested types.
fn trim_char_column(ty: &DataType, col: &mut ValueColumn) {
    match (ty, col.values_mut()) {
        (DataType::Char(_), ColumnValues::Str { offsets, bytes }) => {
            let mut out_bytes = Vec::with_capacity(bytes.len());
            let mut end = 0usize;
            for w in offsets.iter_mut() {
                let cell = &bytes[end..*w];
                end = *w;
                let trimmed = cell.len() - cell.iter().rev().take_while(|b| **b == b' ').count();
                out_bytes.extend_from_slice(&cell[..trimmed]);
                *w = out_bytes.len();
            }
            *bytes = out_bytes;
        }
        (_, ColumnValues::Mixed(values)) => {
            for v in values {
                trim_char(ty, v);
            }
        }
        _ => {}
    }
}

fn trim_char(ty: &DataType, value: &mut Value) {
    match (ty, value) {
        (DataType::Char(_), Value::Str(s)) => {
            while s.ends_with(' ') {
                s.pop();
            }
        }
        (DataType::Array(et), Value::Array(items)) => {
            for item in items {
                trim_char(et, item);
            }
        }
        (DataType::Map(kt, vt), Value::Map(pairs)) => {
            for (k, v) in pairs {
                trim_char(kt, k);
                trim_char(vt, v);
            }
        }
        (DataType::Struct(fields), Value::Struct(values)) => {
            for (f, (_, v)) in fields.iter().zip(values) {
                trim_char(&f.data_type, v);
            }
        }
        _ => {}
    }
}

impl SparkSession {
    /// Shorthand for the DataFrame API on this session.
    pub fn dataframe(&self) -> DataFrameApi<'_> {
        DataFrameApi::new(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csi_core::diag::DiagSink;
    use csi_core::value::Decimal;
    use minihdfs::MiniHdfs;
    use minihive::metastore::Metastore;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn session() -> (SparkSession, DiagSink) {
        let sink = DiagSink::new();
        let s = SparkSession::connect(
            Arc::new(Mutex::new(Metastore::new())),
            Arc::new(Mutex::new(MiniHdfs::with_datanodes(3))),
            sink.handle("minispark"),
        );
        (s, sink)
    }

    #[test]
    fn dataframe_round_trip() {
        let (s, _) = session();
        let df = s.dataframe();
        let schema = vec![StructField::new("a", DataType::Int)];
        df.create_table("t", &schema, StorageFormat::Orc).unwrap();
        df.insert_into("t", &[vec![Value::Int(7)]]).unwrap();
        let (_, rows) = df.read_table("t").unwrap();
        assert_eq!(rows, vec![vec![Value::Int(7)]]);
    }

    #[test]
    fn overflow_becomes_silent_null() {
        let (s, sink) = session();
        let df = s.dataframe();
        let schema = vec![StructField::new("d", DataType::Decimal(10, 2))];
        df.create_table("t", &schema, StorageFormat::Orc).unwrap();
        sink.drain();
        df.insert_into(
            "t",
            &[vec![Value::Decimal(
                Decimal::parse("123456789012.3").unwrap(),
            )]],
        )
        .unwrap();
        let (_, rows) = df.read_table("t").unwrap();
        assert_eq!(rows[0][0], Value::Null);
        // Silently: no diagnostics were emitted.
        assert!(sink.drain().is_empty());
    }

    #[test]
    fn out_of_range_date_passes_through_by_default() {
        let (s, _) = session();
        let df = s.dataframe();
        let schema = vec![StructField::new("d", DataType::Date)];
        df.create_table("t", &schema, StorageFormat::Orc).unwrap();
        let far = Value::Date(crate::types::MAX_DATE_DAYS + 100);
        df.insert_into("t", &[vec![far.clone()]]).unwrap();
        let (_, rows) = df.read_table("t").unwrap();
        assert_eq!(rows[0][0], far); // D15: inserted and read back.
    }

    #[test]
    fn date_range_check_config_closes_the_hole() {
        let (mut s, _) = session();
        s.config
            .set(crate::config::DATAFRAME_DATE_RANGE_CHECK, "true");
        let df = s.dataframe();
        let schema = vec![StructField::new("d", DataType::Date)];
        df.create_table("t", &schema, StorageFormat::Orc).unwrap();
        let far = Value::Date(crate::types::MAX_DATE_DAYS + 100);
        df.insert_into("t", &[vec![far]]).unwrap();
        let (_, rows) = df.read_table("t").unwrap();
        assert_eq!(rows[0][0], Value::Null);
    }

    #[test]
    fn char_reads_are_trimmed() {
        let (s, _) = session();
        let df = s.dataframe();
        let schema = vec![StructField::new("c", DataType::Char(6))];
        df.create_table("t", &schema, StorageFormat::Orc).unwrap();
        df.insert_into("t", &[vec![Value::Str("ab".into())]])
            .unwrap();
        let (_, rows) = df.read_table("t").unwrap();
        assert_eq!(rows[0][0], Value::Str("ab".into()));
        // SparkSQL reading the same table returns the padded form.
        let r = s.sql("SELECT * FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Str("ab    ".into()));
    }

    #[test]
    fn interval_columns_become_strings() {
        let (s, _) = session();
        let df = s.dataframe();
        let schema = vec![StructField::new("i", DataType::Interval)];
        df.create_table("t", &schema, StorageFormat::Orc).unwrap();
        df.insert_into(
            "t",
            &[vec![Value::Interval {
                months: 3,
                micros: 0,
            }]],
        )
        .unwrap();
        let (resolved, rows) = df.read_table("t").unwrap();
        assert_eq!(resolved[0].data_type, DataType::String);
        assert_eq!(rows[0][0], Value::Str("3 months 0 us".into()));
    }

    #[test]
    fn column_insert_matches_row_insert() {
        let (s, _) = session();
        let df = s.dataframe();
        let schema = vec![
            StructField::new("c", DataType::Char(4)),
            StructField::new("n", DataType::Long),
            StructField::new("d", DataType::Decimal(10, 2)),
        ];
        df.create_table("rows", &schema, StorageFormat::Parquet)
            .unwrap();
        df.create_table("cols", &schema, StorageFormat::Parquet)
            .unwrap();
        let rows = vec![
            vec![
                Value::Str("ab".into()),
                Value::Long(7),
                Value::Decimal(Decimal::parse("1.25").unwrap()),
            ],
            vec![Value::Null, Value::Long(-1), Value::Null],
        ];
        df.insert_into("rows", &rows).unwrap();
        let cols: Vec<ValueColumn> = schema
            .iter()
            .enumerate()
            .map(|(i, f)| {
                let cells: Vec<Value> = rows.iter().map(|r| r[i].clone()).collect();
                ValueColumn::from_values(&f.data_type, &cells)
            })
            .collect();
        df.insert_columns("cols", &cols).unwrap();
        let (_, row_read) = df.read_table("rows").unwrap();
        let (_, col_read) = df.read_table_columns("cols").unwrap();
        for (i, col) in col_read.iter().enumerate() {
            let transposed: Vec<Value> = row_read.iter().map(|r| r[i].clone()).collect();
            assert_eq!(col.to_values(), transposed, "column {i}");
        }
    }

    #[test]
    fn byte_via_avro_cannot_be_read_back() {
        // SPARK-39075 (D01) through the public API.
        let (s, _) = session();
        let df = s.dataframe();
        let schema = vec![StructField::new("b", DataType::Byte)];
        df.create_table("t", &schema, StorageFormat::Avro).unwrap();
        df.insert_into("t", &[vec![Value::Byte(5)]]).unwrap();
        let err = df.read_table("t").unwrap_err();
        assert_eq!(err.code(), "INCOMPATIBLE_SCHEMA");
    }
}
