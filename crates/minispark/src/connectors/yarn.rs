//! Spark's YARN connector: executor resource calculation and cluster
//! metrics access.
//!
//! Carries two studied discrepancies:
//!
//! - **SPARK-2604**: Spark validated `spark.executor.memory` against
//!   YARN's maximum allocation *without* the memory overhead it actually
//!   requests, so an "accepted" configuration produced container asks that
//!   YARN rejected. Shipped and fixed validators are provided.
//! - **YARN-9724**: Spark assumed `getYarnClusterMetrics` is available in
//!   every deployment mode; in federation mode the call fails.

use crate::config::{SparkConfig, EXECUTOR_CORES, EXECUTOR_MEMORY_MB, EXECUTOR_MEMORY_OVERHEAD_MB};
use crate::error::SparkError;
use csi_core::boundary::{BoundaryCall, CrossingContext};
use csi_core::fault::Channel;
use csi_core::plane::{Plane, SystemId};
use miniyarn::{Resource, ResourceManager};

/// Minimum executor memory overhead, MB (Spark's documented constant).
pub const MIN_OVERHEAD_MB: u64 = 384;

/// The memory overhead Spark adds to each executor container.
pub fn executor_overhead_mb(config: &SparkConfig) -> u64 {
    if let Some(Ok(v)) = config.map().get_i64(EXECUTOR_MEMORY_OVERHEAD_MB) {
        return v.max(0) as u64;
    }
    let mem = executor_memory_mb(config);
    MIN_OVERHEAD_MB.max(mem / 10)
}

/// `spark.executor.memory`, MB.
pub fn executor_memory_mb(config: &SparkConfig) -> u64 {
    match config.map().get_i64(EXECUTOR_MEMORY_MB) {
        Some(Ok(v)) if v > 0 => v as u64,
        _ => 1024,
    }
}

/// The container resource Spark actually requests for one executor:
/// memory + overhead.
pub fn executor_container_request(config: &SparkConfig) -> Resource {
    let cores = match config.map().get_i64(EXECUTOR_CORES) {
        Some(Ok(v)) if v > 0 => v as u32,
        _ => 1,
    };
    Resource::new(
        executor_memory_mb(config) + executor_overhead_mb(config),
        cores,
    )
}

/// Validation mode for executor sizing (SPARK-2604).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SizingCheck {
    /// Validate the raw executor memory only (shipped, inconsistent with
    /// what is actually requested).
    Shipped,
    /// Validate memory + overhead, the amount actually requested (fixed).
    Fixed,
}

/// Validates an executor configuration against the cluster's maximum
/// allocation the way `Client.verifyClusterResources` does.
pub fn validate_executor_sizing(
    config: &SparkConfig,
    max_allocation: Resource,
    check: SizingCheck,
) -> Result<(), SparkError> {
    let checked_mb = match check {
        SizingCheck::Shipped => executor_memory_mb(config),
        SizingCheck::Fixed => executor_memory_mb(config) + executor_overhead_mb(config),
    };
    if checked_mb > max_allocation.memory_mb {
        return Err(SparkError::analysis(
            "EXECUTOR_MEMORY_EXCEEDS_MAX",
            format!(
                "Required executor memory ({checked_mb} MB) is above the max threshold \
                 ({} MB) of this cluster",
                max_allocation.memory_mb
            ),
        ));
    }
    Ok(())
}

/// Fetches cluster metrics, as `Client.getYarnClusterMetrics` does —
/// assuming the API exists in the deployed mode (YARN-9724). Spark's
/// management-plane crossing is recorded in `ctx` (the RM's own boundary,
/// when wired, traces the serving side); callers without a trace pass
/// [`CrossingContext::disabled`].
pub fn cluster_metrics(
    rm: &ResourceManager,
    ctx: &CrossingContext,
) -> Result<miniyarn::ClusterMetrics, SparkError> {
    ctx.record(
        BoundaryCall::new(Channel::Yarn, "cluster_metrics")
            .from_upstream(SystemId::Spark)
            .with_plane(Plane::Management)
            .with_payload("cluster"),
    );
    rm.get_cluster_metrics().map_err(|e| SparkError::Connector {
        code: "YARN_METRICS",
        message: e.to_string(),
    })
}

/// How a Spark job actually ended, from the driver's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobOutcome {
    /// All stages completed.
    Succeeded,
    /// The driver observed a failure.
    Failed,
    /// The driver exited without reporting anything (the SPARK-10851 R
    /// runner shape: no exception, just a silent exit).
    ExitedSilently,
}

/// The final status the ApplicationMaster registers with YARN.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FinalStatus {
    /// Reported SUCCEEDED.
    Succeeded,
    /// Reported FAILED.
    Failed,
    /// Reported UNDEFINED (YARN's default when nothing was registered).
    Undefined,
}

/// Final-status reporting behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StatusReporting {
    /// The shipped paths of SPARK-3627 / SPARK-10851: failed jobs register
    /// SUCCEEDED, silent exits register nothing.
    Shipped,
    /// The fix: the registered status reflects the observed outcome, and a
    /// silent exit is treated as a failure.
    Fixed,
}

/// The status the AM registers for a given outcome — the management-plane
/// observability discrepancy of Section 6.2.2.
///
/// Under [`StatusReporting::Shipped`], YARN's view of a failed job is
/// *success* — every downstream consumer of the monitoring signal (alerts,
/// retry policies, workflow engines) is silently misled.
pub fn register_final_status(outcome: JobOutcome, mode: StatusReporting) -> FinalStatus {
    match (mode, outcome) {
        (StatusReporting::Shipped, JobOutcome::Succeeded) => FinalStatus::Succeeded,
        // SPARK-3627: "Spark reports success for failed YARN jobs".
        (StatusReporting::Shipped, JobOutcome::Failed) => FinalStatus::Succeeded,
        // SPARK-10851: nothing is thrown, nothing is registered.
        (StatusReporting::Shipped, JobOutcome::ExitedSilently) => FinalStatus::Undefined,
        (StatusReporting::Fixed, JobOutcome::Succeeded) => FinalStatus::Succeeded,
        (StatusReporting::Fixed, JobOutcome::Failed | JobOutcome::ExitedSilently) => {
            FinalStatus::Failed
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use miniyarn::rm::RmMode;

    #[test]
    fn overhead_is_max_of_floor_and_ten_percent() {
        let mut c = SparkConfig::new();
        c.set(EXECUTOR_MEMORY_MB, "1024");
        assert_eq!(executor_overhead_mb(&c), 384);
        c.set(EXECUTOR_MEMORY_MB, "8192");
        assert_eq!(executor_overhead_mb(&c), 819);
        c.set(EXECUTOR_MEMORY_OVERHEAD_MB, "512");
        assert_eq!(executor_overhead_mb(&c), 512);
    }

    #[test]
    fn shipped_check_accepts_what_yarn_rejects() {
        // SPARK-2604: executor memory 8000 MB fits the 8192 MB maximum,
        // but the actual ask (8000 + 800) does not.
        let mut c = SparkConfig::new();
        c.set(EXECUTOR_MEMORY_MB, "8000");
        let max = Resource::new(8192, 8);
        validate_executor_sizing(&c, max, SizingCheck::Shipped).unwrap();
        let ask = executor_container_request(&c);
        assert!(!ask.fits_in(&max)); // YARN will reject the real request.
                                     // The fixed validator catches it up front.
        assert!(validate_executor_sizing(&c, max, SizingCheck::Fixed).is_err());
    }

    #[test]
    fn shipped_status_reporting_misleads_yarn() {
        // SPARK-3627: failure registers as success.
        assert_eq!(
            register_final_status(JobOutcome::Failed, StatusReporting::Shipped),
            FinalStatus::Succeeded
        );
        // SPARK-10851: a silent exit registers nothing.
        assert_eq!(
            register_final_status(JobOutcome::ExitedSilently, StatusReporting::Shipped),
            FinalStatus::Undefined
        );
    }

    #[test]
    fn fixed_status_reporting_is_faithful() {
        for (outcome, want) in [
            (JobOutcome::Succeeded, FinalStatus::Succeeded),
            (JobOutcome::Failed, FinalStatus::Failed),
            (JobOutcome::ExitedSilently, FinalStatus::Failed),
        ] {
            assert_eq!(register_final_status(outcome, StatusReporting::Fixed), want);
        }
    }

    #[test]
    fn metrics_fail_in_federation_mode() {
        let off = CrossingContext::disabled();
        let rm = ResourceManager::new(miniyarn::config::default_yarn_config(), RmMode::Federation);
        let err = cluster_metrics(&rm, &off).unwrap_err();
        assert_eq!(err.code(), "YARN_METRICS");
        let rm = ResourceManager::with_nodes(1, Resource::new(4096, 4));
        assert!(cluster_metrics(&rm, &off).is_ok());
    }
}
