//! Spark's Kafka source connector.
//!
//! Carries the SPARK-19361 discrepancy: Spark's offset-range planner
//! "assumes Kafka offsets always increment by 1, which is not always true"
//! — log compaction and transaction markers leave gaps. The shipped reader
//! validates contiguity and fails on the first gap; the fixed reader
//! tolerates gaps and reports how many records were actually delivered.

use crate::error::SparkError;
use csi_core::boundary::{BoundaryCall, CrossingContext};
use csi_core::fault::Channel;
use minikafka::{ConsumerRecord, MiniKafka, Offset, PartitionId};

/// Offset-contiguity handling mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OffsetModel {
    /// Assume offsets increment by one (the shipped behavior).
    AssumeContiguous,
    /// Tolerate gaps from compaction and transactions (the fix).
    TolerateGaps,
}

/// The planned range `[from, until)` a micro-batch should consume.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OffsetRange {
    /// Inclusive start offset.
    pub from: Offset,
    /// Exclusive end offset.
    pub until: Offset,
}

impl OffsetRange {
    /// The record count Spark's planner *expects* from this range — valid
    /// only under the contiguity assumption.
    pub fn expected_count(&self) -> i64 {
        self.until - self.from
    }
}

/// Plans the next micro-batch range from the committed position to the
/// current log end, recording the planner's crossing in `ctx`. Callers
/// without a trace pass [`CrossingContext::disabled`].
pub fn plan_range(
    broker: &MiniKafka,
    topic: &str,
    partition: PartitionId,
    from: Offset,
    ctx: &CrossingContext,
) -> Result<OffsetRange, SparkError> {
    ctx.record(
        BoundaryCall::new(Channel::Kafka, "plan_range")
            .with_payload(&format!("{topic}/p{}", partition.0)),
    );
    let until = broker
        .log_end_offset(topic, partition)
        .map_err(|e| SparkError::Connector {
            code: "KAFKA",
            message: e.to_string(),
        })?;
    Ok(OffsetRange { from, until })
}

/// Consumes a planned range.
///
/// Under [`OffsetModel::AssumeContiguous`], any offset gap raises the
/// SPARK-19361 assertion ("Got wrong record ... even after seeking to
/// offset"); under [`OffsetModel::TolerateGaps`] the batch simply contains
/// fewer records than `expected_count`.
pub fn consume_range(
    broker: &MiniKafka,
    topic: &str,
    partition: PartitionId,
    range: OffsetRange,
    model: OffsetModel,
    ctx: &CrossingContext,
) -> Result<Vec<ConsumerRecord>, SparkError> {
    ctx.record(
        BoundaryCall::new(Channel::Kafka, "consume_range")
            .with_payload(&format!("{topic}/p{}", partition.0)),
    );
    let batch = broker
        .fetch(topic, partition, range.from, usize::MAX)
        .map_err(|e| SparkError::Connector {
            code: "KAFKA",
            message: e.to_string(),
        })?;
    let records: Vec<ConsumerRecord> = batch
        .records
        .into_iter()
        .filter(|r| r.offset < range.until)
        .collect();
    if model == OffsetModel::AssumeContiguous {
        let mut expected = range.from;
        for r in &records {
            if r.offset != expected {
                return Err(SparkError::Assertion {
                    message: format!(
                        "Got wrong record for {topic}-{} even after seeking to offset {expected}: \
                         found offset {}",
                        partition.0, r.offset
                    ),
                });
            }
            expected += 1;
        }
        if expected != range.until {
            return Err(SparkError::Assertion {
                message: format!(
                    "Expected {} records in range [{}, {}) but got {}",
                    range.expected_count(),
                    range.from,
                    range.until,
                    records.len()
                ),
            });
        }
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;

    const P0: PartitionId = PartitionId(0);

    fn off() -> CrossingContext {
        CrossingContext::disabled()
    }

    fn broker_with_gap() -> MiniKafka {
        let mut k = MiniKafka::new();
        k.create_topic("t", 1);
        k.produce("t", P0, Some(b"a"), Some(b"1"), 0).unwrap(); // 0
        k.produce("t", P0, Some(b"a"), Some(b"2"), 0).unwrap(); // 1
        k.produce("t", P0, Some(b"b"), Some(b"3"), 0).unwrap(); // 2
        k.compact("t", P0).unwrap(); // Offset 0 disappears.
        k
    }

    #[test]
    fn contiguous_log_consumes_cleanly() {
        let mut k = MiniKafka::new();
        k.create_topic("t", 1);
        for i in 0..5u8 {
            k.produce("t", P0, None, Some(&[i]), 0).unwrap();
        }
        let range = plan_range(&k, "t", P0, 0, &off()).unwrap();
        assert_eq!(range.expected_count(), 5);
        let records =
            consume_range(&k, "t", P0, range, OffsetModel::AssumeContiguous, &off()).unwrap();
        assert_eq!(records.len(), 5);
    }

    #[test]
    fn compacted_log_crashes_shipped_connector() {
        // SPARK-19361.
        let k = broker_with_gap();
        let range = plan_range(&k, "t", P0, 0, &off()).unwrap();
        let err =
            consume_range(&k, "t", P0, range, OffsetModel::AssumeContiguous, &off()).unwrap_err();
        assert!(err.to_string().contains("Got wrong record"), "{err}");
    }

    #[test]
    fn fixed_connector_tolerates_gaps() {
        let k = broker_with_gap();
        let range = plan_range(&k, "t", P0, 0, &off()).unwrap();
        let records = consume_range(&k, "t", P0, range, OffsetModel::TolerateGaps, &off()).unwrap();
        // Two survivors: offsets 1 and 2.
        let offsets: Vec<Offset> = records.iter().map(|r| r.offset).collect();
        assert_eq!(offsets, vec![1, 2]);
        assert!(records.len() as i64 != range.expected_count());
    }

    #[test]
    fn transactional_markers_also_break_the_assumption() {
        let mut k = MiniKafka::new();
        k.create_topic("t", 1);
        let txn = k.begin_transaction("t").unwrap();
        k.send_transactional(txn, P0, None, Some(b"x"), 0).unwrap();
        k.commit_transaction(txn).unwrap(); // Marker at offset 1.
        k.produce("t", P0, None, Some(b"y"), 0).unwrap(); // Offset 2.
        let range = plan_range(&k, "t", P0, 0, &off()).unwrap();
        assert!(consume_range(&k, "t", P0, range, OffsetModel::AssumeContiguous, &off()).is_err());
        let fixed = consume_range(&k, "t", P0, range, OffsetModel::TolerateGaps, &off()).unwrap();
        assert_eq!(fixed.len(), 2);
    }
}
