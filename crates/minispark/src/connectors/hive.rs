//! Spark's Hive client connector: configuration forwarding.
//!
//! Carries the SPARK-10181 discrepancy: Spark's Hive client "ignored
//! Kerberos configuration (keytab and principal)" — security settings set
//! on the Spark side were silently absent from the Hive client it built.
//! Both the shipped and fixed forwarding paths are provided, and the
//! provenance-tracked [`ConfigMap`] makes the silent drop observable.

use crate::config::{SparkConfig, YARN_KEYTAB, YARN_PRINCIPAL};
use csi_core::boundary::{BoundaryCall, CrossingContext};
use csi_core::config::ConfigMap;
use csi_core::fault::Channel;
use csi_core::plane::{Plane, SystemId};

/// Which forwarding behavior to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForwardingMode {
    /// Forward only `hive.*` keys; Kerberos settings are dropped
    /// (the shipped SPARK-10181 behavior).
    Shipped,
    /// Also translate the Spark-side Kerberos settings into the Hive
    /// client configuration (the fix).
    Fixed,
}

/// Builds the configuration Spark hands to its embedded Hive client,
/// recording the forwarding as a management-plane boundary crossing: the
/// trace notes whether the built client can authenticate, making the
/// SPARK-10181 silent drop visible in the same causal sequence as the
/// data-plane crossings around it. Callers without a trace pass
/// [`CrossingContext::disabled`].
pub fn build_hive_client_config(
    spark: &SparkConfig,
    mode: ForwardingMode,
    ctx: &CrossingContext,
) -> ConfigMap {
    let out = forward_config(spark, mode);
    let label = match mode {
        ForwardingMode::Shipped => "mode=shipped",
        ForwardingMode::Fixed => "mode=fixed",
    };
    let kerberized = spark.get(YARN_KEYTAB).is_some() || spark.get(YARN_PRINCIPAL).is_some();
    let auth = match (kerberized, can_authenticate(&out)) {
        (false, _) => "kerberos=unconfigured",
        (true, true) => "kerberos=translated",
        // The SPARK-10181 shape: configured upstream, absent downstream.
        (true, false) => "kerberos=silently-dropped",
    };
    ctx.note(
        BoundaryCall::new(Channel::Metastore, "forward_config")
            .from_upstream(SystemId::Spark)
            .with_plane(Plane::Management)
            .with_payload("hive-client"),
        &format!("{label} {auth}"),
    );
    out
}

fn forward_config(spark: &SparkConfig, mode: ForwardingMode) -> ConfigMap {
    let mut out = ConfigMap::new("hive-client");
    for (k, v) in spark.map().iter() {
        if k.starts_with("hive.") {
            out.set(k, v, "spark->hive forwarding");
        }
    }
    if mode == ForwardingMode::Fixed {
        if let Some(keytab) = spark.get(YARN_KEYTAB) {
            out.set(
                "hive.metastore.kerberos.keytab.file",
                keytab,
                "SPARK-10181 fix",
            );
        }
        if let Some(principal) = spark.get(YARN_PRINCIPAL) {
            out.set(
                "hive.metastore.kerberos.principal",
                principal,
                "SPARK-10181 fix",
            );
        }
    }
    out
}

/// Whether a Hive client configuration can authenticate to a Kerberized
/// metastore.
pub fn can_authenticate(hive_client: &ConfigMap) -> bool {
    hive_client
        .get("hive.metastore.kerberos.keytab.file")
        .is_some()
        && hive_client
            .get("hive.metastore.kerberos.principal")
            .is_some()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kerberized_spark() -> SparkConfig {
        let mut c = SparkConfig::new();
        c.set(YARN_KEYTAB, "/etc/security/spark.keytab");
        c.set(YARN_PRINCIPAL, "spark/host@REALM");
        c.set("hive.metastore.uris", "thrift://ms:9083");
        c
    }

    #[test]
    fn shipped_forwarding_silently_drops_kerberos() {
        // SPARK-10181: the user configured Kerberos, the client cannot
        // authenticate, and nothing was logged.
        let spark = kerberized_spark();
        let client = build_hive_client_config(
            &spark,
            ForwardingMode::Shipped,
            &CrossingContext::disabled(),
        );
        assert_eq!(client.get("hive.metastore.uris"), Some("thrift://ms:9083"));
        assert!(!can_authenticate(&client));
    }

    #[test]
    fn fixed_forwarding_translates_the_settings() {
        let spark = kerberized_spark();
        let client =
            build_hive_client_config(&spark, ForwardingMode::Fixed, &CrossingContext::disabled());
        assert!(can_authenticate(&client));
        assert_eq!(
            client.get("hive.metastore.kerberos.principal"),
            Some("spark/host@REALM")
        );
    }

    #[test]
    fn unkerberized_spark_is_unaffected_by_mode() {
        let spark = SparkConfig::new();
        for mode in [ForwardingMode::Shipped, ForwardingMode::Fixed] {
            let client = build_hive_client_config(&spark, mode, &CrossingContext::disabled());
            assert!(!can_authenticate(&client));
        }
    }
}
