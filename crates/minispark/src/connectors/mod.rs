//! Spark's connector modules.
//!
//! Finding 13: 86% of upstream-side CSI fixes land in dedicated connector
//! modules — "connector code contributes to less than 5% of the entire
//! codebase, but is the target of fixing more than half of the studied CSI
//! issues". This module tree mirrors that structure: one connector per
//! downstream system, each carrying both the *shipped* (discrepant)
//! behavior and the *fixed* variant, so the benches can compare them.

pub mod hdfs;
pub mod hive;
pub mod kafka;
pub mod yarn;
