//! Spark's HDFS connector (`InputFileBlockHolder` and friends).
//!
//! Carries the SPARK-27239 discrepancy of Figures 2 and 4: Spark asserts
//! that a valid file's length is non-negative, while the store reports `-1`
//! for compressed files — a *documented sentinel* on the HDFS side, an
//! *undefined value* from Spark's perspective.

use crate::error::SparkError;
use bytes::Bytes;
use csi_core::boundary::{BoundaryCall, CrossingContext};
use csi_core::fault::Channel;
use minihdfs::{HdfsPath, MiniHdfs};

/// Whether the connector runs the shipped (pre-fix) length check or the
/// fixed one (Figure 4: accept `-1` as valid).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LengthCheck {
    /// `require(length >= 0)` — the shipped behavior.
    Shipped,
    /// `require(length >= -1)` — the SPARK-27239 fix.
    Fixed,
}

/// Reads a file the way a Spark task does: fetch the status, validate the
/// block holder invariants, then read the bytes. The connector-level
/// crossing is recorded in `ctx` — the filesystem's own `read` still
/// crosses through the boundary the deployment wired into it; this extra
/// record marks the task-side entry so the trace shows *Spark's* view of
/// the interaction too. Callers without a trace pass
/// [`CrossingContext::disabled`].
pub fn read_file(
    fs: &MiniHdfs,
    path: &HdfsPath,
    check: LengthCheck,
    ctx: &CrossingContext,
) -> Result<Bytes, SparkError> {
    ctx.record(BoundaryCall::new(Channel::Hdfs, "task_read").with_payload(&path.to_string()));
    let status = fs
        .get_file_status(path)
        .map_err(|e| SparkError::Connector {
            code: "HDFS",
            message: e.to_string(),
        })?;
    let min = match check {
        LengthCheck::Shipped => 0,
        LengthCheck::Fixed => -1,
    };
    if status.len < min {
        // The exact failure of Figure 2: the job dies on an assertion.
        return Err(SparkError::Assertion {
            message: format!(
                "length ({}) cannot be {}",
                status.len,
                if min == 0 {
                    "negative"
                } else {
                    "smaller than -1"
                }
            ),
        });
    }
    fs.read(path).map_err(|e| SparkError::Connector {
        code: "HDFS",
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn off() -> CrossingContext {
        CrossingContext::disabled()
    }

    fn fs_with_files() -> (MiniHdfs, HdfsPath, HdfsPath) {
        let mut fs = MiniHdfs::with_datanodes(1);
        let plain = HdfsPath::parse("/data/plain.txt").unwrap();
        let gz = HdfsPath::parse("/data/logs.gz").unwrap();
        fs.create(&plain, b"plain data").unwrap();
        fs.create_compressed(&gz, b"compressed data").unwrap();
        (fs, plain, gz)
    }

    #[test]
    fn plain_files_read_under_both_checks() {
        let (fs, plain, _) = fs_with_files();
        for check in [LengthCheck::Shipped, LengthCheck::Fixed] {
            assert_eq!(
                read_file(&fs, &plain, check, &off()).unwrap().as_ref(),
                b"plain data"
            );
        }
    }

    #[test]
    fn compressed_file_crashes_shipped_spark() {
        // SPARK-27239 / Figure 2.
        let (fs, _, gz) = fs_with_files();
        let err = read_file(&fs, &gz, LengthCheck::Shipped, &off()).unwrap_err();
        assert!(err.to_string().contains("length (-1) cannot be negative"));
    }

    #[test]
    fn fix_accepts_the_sentinel() {
        // Figure 4.
        let (fs, _, gz) = fs_with_files();
        assert_eq!(
            read_file(&fs, &gz, LengthCheck::Fixed, &off())
                .unwrap()
                .as_ref(),
            b"compressed data"
        );
    }

    #[test]
    fn missing_files_are_clean_connector_errors() {
        let (fs, _, _) = fs_with_files();
        let nope = HdfsPath::parse("/nope").unwrap();
        let err = read_file(&fs, &nope, LengthCheck::Fixed, &off()).unwrap_err();
        assert_eq!(err.code(), "HDFS");
    }
}
