//! The SparkSession: shared catalog access and table I/O.
//!
//! A session talks to the same metastore and warehouse filesystem as
//! `minihive`, through Spark's own connector stack. Schema resolution
//! follows Spark's real behavior: tables created through the DataFrame
//! writer carry a case-preserving copy of the schema in the
//! `spark.sql.sources.schema` table property (for ORC and Parquet — the
//! inference mode "only works with ORC and Parquet, but not Avro"); when
//! the property is absent Spark **falls back to the Hive schema** and logs
//! the "not case preserving" warning quoted in Section 8.2.

use crate::config::SparkConfig;
use crate::error::SparkError;
use crate::serde_layer;
use crate::types::{schema_from_property, schema_to_property};
use csi_core::column::ValueColumn;
use csi_core::diag::DiagHandle;
use csi_core::value::{DataType, StructField, Value};
use minihive::hiveql::SharedMetastore;
use minihive::metastore::{SharedFs, StorageFormat, TableDef};
use minihive::HiveType;

/// Table property under which Spark stores its case-preserving schema.
pub const SPARK_SCHEMA_PROPERTY: &str = "spark.sql.sources.schema";

/// Which interface created a table (their DDL conversions differ).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DdlPath {
    /// `CREATE TABLE` through SparkSQL's Hive DDL layer.
    SparkSql,
    /// `DataFrame.saveAsTable`.
    DataFrame,
}

/// A Spark session bound to a shared metastore and warehouse.
///
/// # Examples
///
/// ```
/// use csi_core::diag::DiagSink;
/// use minihdfs::MiniHdfs;
/// use minihive::metastore::Metastore;
/// use minispark::SparkSession;
/// use parking_lot::Mutex;
/// use std::sync::Arc;
///
/// let sink = DiagSink::new();
/// let spark = SparkSession::connect(
///     Arc::new(Mutex::new(Metastore::new())),
///     Arc::new(Mutex::new(MiniHdfs::with_datanodes(3))),
///     sink.handle("minispark"),
/// );
/// spark.sql("CREATE TABLE t (a INT)").unwrap();
/// spark.sql("INSERT INTO t VALUES (41), (42)").unwrap();
/// let r = spark.sql("SELECT a FROM t WHERE a >= 42").unwrap();
/// assert_eq!(r.rows.len(), 1);
/// ```
#[derive(Clone)]
pub struct SparkSession {
    /// The session configuration.
    pub config: SparkConfig,
    metastore: SharedMetastore,
    fs: SharedFs,
    diag: DiagHandle,
}

impl SparkSession {
    /// Connects a session to an existing metastore and warehouse.
    pub fn connect(metastore: SharedMetastore, fs: SharedFs, diag: DiagHandle) -> SparkSession {
        SparkSession {
            config: SparkConfig::new(),
            metastore,
            fs,
            diag,
        }
    }

    /// The diagnostics handle.
    pub fn diag(&self) -> &DiagHandle {
        &self.diag
    }

    /// The shared metastore.
    pub fn metastore(&self) -> &SharedMetastore {
        &self.metastore
    }

    /// Looks up a table definition.
    pub fn table_def(&self, name: &str) -> Result<TableDef, SparkError> {
        Ok(self.metastore.lock().get_table("default", name)?.clone())
    }

    /// Creates a Hive-catalog table from a Spark schema.
    ///
    /// The SparkSQL DDL path widens BYTE/SHORT to INT in the Hive schema
    /// and stores no case-preserving property (HIVE-26533 / SPARK-40409 /
    /// D03); the DataFrame path maps types faithfully and saves the
    /// property where the inference mode supports the format.
    pub fn create_hive_table(
        &self,
        name: &str,
        schema: &[StructField],
        format: StorageFormat,
        path: DdlPath,
        if_not_exists: bool,
    ) -> Result<(), SparkError> {
        let mut hive_columns = Vec::with_capacity(schema.len());
        let mut folded_case = false;
        let mut stored_schema: Vec<StructField> = Vec::with_capacity(schema.len());
        for f in schema {
            let (hive_source_type, stored_type) = self.map_for_ddl(&f.data_type, path)?;
            let hive_type = HiveType::from_data_type(&hive_source_type)?;
            if f.name != f.name.to_ascii_lowercase() {
                folded_case = true;
            }
            hive_columns.push((f.name.clone(), hive_type));
            stored_schema.push(StructField {
                name: f.name.clone(),
                data_type: stored_type,
                nullable: f.nullable,
            });
        }
        let save_property =
            path == DdlPath::DataFrame && self.config.case_preserving_schema_for(format.name());
        if !save_property && (folded_case || schema.iter().any(has_mixed_case_struct)) {
            self.diag.warn(
                "NOT_CASE_PRESERVING",
                format!(
                    "The table schema of {name} is not case preserving; \
                     falling back to the (lowercase) Hive metastore schema on reads"
                ),
            );
        }
        {
            let mut ms = self.metastore.lock();
            let def = ms
                .create_table("default", name, hive_columns, format, if_not_exists)?
                .clone();
            if save_property {
                ms.set_table_property(
                    "default",
                    name,
                    SPARK_SCHEMA_PROPERTY,
                    &schema_to_property(&stored_schema),
                )?;
            }
            self.fs
                .lock()
                .mkdirs(&def.location)
                .map_err(|e| SparkError::Connector {
                    code: "HDFS",
                    message: e.to_string(),
                })?;
        }
        Ok(())
    }

    /// How a Spark type appears in (hive-DDL type, spark-stored type) form.
    fn map_for_ddl(
        &self,
        ty: &DataType,
        path: DdlPath,
    ) -> Result<(DataType, DataType), SparkError> {
        Ok(match ty {
            // SparkSQL's Hive DDL layer widens small integers (D03).
            DataType::Byte | DataType::Short if path == DdlPath::SparkSql => {
                (DataType::Int, DataType::Int)
            }
            DataType::Interval => {
                if self.config.interval_as_string() || path == DdlPath::DataFrame {
                    // Stored as STRING; the schema remembers STRING too.
                    (DataType::String, DataType::String)
                } else {
                    return Err(SparkError::UnsupportedHiveType {
                        ty: "interval".to_string(),
                    });
                }
            }
            other => (other.clone(), other.clone()),
        })
    }

    /// Resolves the schema Spark uses for a table: the case-preserving
    /// property when present, otherwise the Hive schema (with the
    /// documented warning).
    pub fn resolve_schema(&self, def: &TableDef) -> Vec<StructField> {
        if let Some(raw) = def.properties.get(SPARK_SCHEMA_PROPERTY) {
            if let Some(fields) = schema_from_property(raw) {
                return fields;
            }
        }
        self.diag.warn(
            "NOT_CASE_PRESERVING",
            format!(
                "Reading table {} using the Hive metastore schema, \
                 which is not case preserving",
                def.name
            ),
        );
        def.columns
            .iter()
            .map(|c| StructField::new(c.name.clone(), c.hive_type.to_data_type()))
            .collect()
    }

    /// Appends already-cast rows to a table through Spark's serializers.
    pub fn write_rows(
        &self,
        def: &TableDef,
        schema: &[StructField],
        rows: &[Vec<Value>],
    ) -> Result<(), SparkError> {
        let bytes = serde_layer::write_file(def.format, schema, rows, &self.config)?;
        let part = self.metastore.lock().next_part_path(def);
        self.fs
            .lock()
            .create(&part, &bytes)
            .map_err(|e| SparkError::Connector {
                code: "HDFS",
                message: e.to_string(),
            })
    }

    /// Appends already-cast column buffers to a table through Spark's
    /// serializers — the bulk counterpart of [`SparkSession::write_rows`],
    /// with no per-cell enum traffic on flat columns.
    pub fn write_columns(
        &self,
        def: &TableDef,
        schema: &[StructField],
        cols: &[ValueColumn],
    ) -> Result<(), SparkError> {
        let bytes = serde_layer::write_columns(def.format, schema, cols, &self.config)?;
        let part = self.metastore.lock().next_part_path(def);
        self.fs
            .lock()
            .create(&part, &bytes)
            .map_err(|e| SparkError::Connector {
                code: "HDFS",
                message: e.to_string(),
            })
    }

    /// Reads all rows of a table as column buffers — the bulk counterpart
    /// of [`SparkSession::read_rows`]. Multiple data files concatenate
    /// column-wise in path order.
    pub fn read_columns(
        &self,
        def: &TableDef,
        schema: &[StructField],
    ) -> Result<Vec<ValueColumn>, SparkError> {
        let fs = self.fs.lock();
        let files = self
            .metastore
            .lock()
            .table_data_files(def, &fs)
            .map_err(SparkError::from)?;
        let mut out: Option<Vec<ValueColumn>> = None;
        for path in files {
            let bytes = fs.read(&path).map_err(|e| SparkError::Connector {
                code: "HDFS",
                message: e.to_string(),
            })?;
            let cols = serde_layer::read_columns(def.format, schema, &bytes, &self.config)?;
            match &mut out {
                None => out = Some(cols),
                Some(acc) => {
                    for (a, c) in acc.iter_mut().zip(&cols) {
                        a.extend_from(c);
                    }
                }
            }
        }
        Ok(out.unwrap_or_else(|| {
            schema
                .iter()
                .map(|f| ValueColumn::for_type(&f.data_type))
                .collect()
        }))
    }

    /// Reads all rows of a table through Spark's deserializers.
    pub fn read_rows(
        &self,
        def: &TableDef,
        schema: &[StructField],
    ) -> Result<Vec<Vec<Value>>, SparkError> {
        let fs = self.fs.lock();
        let files = self
            .metastore
            .lock()
            .table_data_files(def, &fs)
            .map_err(SparkError::from)?;
        let mut rows = Vec::new();
        for path in files {
            let bytes = fs.read(&path).map_err(|e| SparkError::Connector {
                code: "HDFS",
                message: e.to_string(),
            })?;
            rows.extend(serde_layer::read_file(
                def.format,
                schema,
                &bytes,
                &self.config,
            )?);
        }
        Ok(rows)
    }

    /// Drops a table.
    pub fn drop_table(&self, name: &str, if_exists: bool) -> Result<(), SparkError> {
        let mut fs = self.fs.lock();
        self.metastore
            .lock()
            .drop_table("default", name, if_exists, &mut fs)
            .map_err(SparkError::from)
    }
}

fn has_mixed_case_struct(field: &StructField) -> bool {
    fn ty_has(ty: &DataType) -> bool {
        match ty {
            DataType::Struct(fields) => fields
                .iter()
                .any(|f| f.name != f.name.to_ascii_lowercase() || ty_has(&f.data_type)),
            DataType::Array(e) => ty_has(e),
            DataType::Map(k, v) => ty_has(k) || ty_has(v),
            _ => false,
        }
    }
    ty_has(&field.data_type)
}

#[cfg(test)]
mod tests {
    use super::*;
    use csi_core::diag::DiagSink;
    use minihdfs::MiniHdfs;
    use minihive::metastore::Metastore;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn session() -> (SparkSession, DiagSink) {
        let sink = DiagSink::new();
        let s = SparkSession::connect(
            Arc::new(Mutex::new(Metastore::new())),
            Arc::new(Mutex::new(MiniHdfs::with_datanodes(3))),
            sink.handle("minispark"),
        );
        (s, sink)
    }

    #[test]
    fn sparksql_ddl_widens_small_ints_and_warns_on_case() {
        let (s, sink) = session();
        let schema = vec![StructField::new("CamelCol", DataType::Byte)];
        s.create_hive_table("t", &schema, StorageFormat::Orc, DdlPath::SparkSql, false)
            .unwrap();
        assert!(sink.drain().iter().any(|d| d.code == "NOT_CASE_PRESERVING"));
        let def = s.table_def("t").unwrap();
        assert_eq!(def.columns[0].name, "camelcol");
        assert_eq!(def.columns[0].hive_type, HiveType::Int); // Widened.
        assert!(!def.properties.contains_key(SPARK_SCHEMA_PROPERTY));
    }

    #[test]
    fn dataframe_ddl_preserves_types_and_saves_property_for_orc() {
        let (s, _) = session();
        let schema = vec![StructField::new("CamelCol", DataType::Byte)];
        s.create_hive_table("t", &schema, StorageFormat::Orc, DdlPath::DataFrame, false)
            .unwrap();
        let def = s.table_def("t").unwrap();
        assert_eq!(def.columns[0].hive_type, HiveType::TinyInt);
        assert!(def.properties.contains_key(SPARK_SCHEMA_PROPERTY));
        let resolved = s.resolve_schema(&def);
        assert_eq!(resolved[0].name, "CamelCol"); // Case survives.
        assert_eq!(resolved[0].data_type, DataType::Byte);
    }

    #[test]
    fn dataframe_avro_tables_get_no_property() {
        let (s, sink) = session();
        let schema = vec![StructField::new("CamelCol", DataType::Byte)];
        s.create_hive_table("t", &schema, StorageFormat::Avro, DdlPath::DataFrame, false)
            .unwrap();
        let def = s.table_def("t").unwrap();
        assert!(!def.properties.contains_key(SPARK_SCHEMA_PROPERTY));
        sink.drain();
        let resolved = s.resolve_schema(&def);
        // Fallback to the lowercase Hive schema, with the warning.
        assert_eq!(resolved[0].name, "camelcol");
        assert!(sink.drain().iter().any(|d| d.code == "NOT_CASE_PRESERVING"));
    }

    #[test]
    fn interval_rejected_by_sparksql_unless_configured() {
        let (mut s, _) = session();
        let schema = vec![StructField::new("i", DataType::Interval)];
        let err = s
            .create_hive_table("t", &schema, StorageFormat::Orc, DdlPath::SparkSql, false)
            .unwrap_err();
        assert_eq!(err.code(), "UNSUPPORTED_HIVE_TYPE");
        s.config.set(crate::config::INTERVAL_AS_STRING, "true");
        s.create_hive_table("t", &schema, StorageFormat::Orc, DdlPath::SparkSql, false)
            .unwrap();
        let def = s.table_def("t").unwrap();
        assert_eq!(def.columns[0].hive_type, HiveType::Str);
    }

    #[test]
    fn write_read_round_trip_via_spark_serde() {
        let (s, _) = session();
        let schema = vec![StructField::new("a", DataType::Int)];
        s.create_hive_table("t", &schema, StorageFormat::Orc, DdlPath::DataFrame, false)
            .unwrap();
        let def = s.table_def("t").unwrap();
        let resolved = s.resolve_schema(&def);
        s.write_rows(&def, &resolved, &[vec![Value::Int(1)], vec![Value::Int(2)]])
            .unwrap();
        let rows = s.read_rows(&def, &resolved).unwrap();
        assert_eq!(rows, vec![vec![Value::Int(1)], vec![Value::Int(2)]]);
        s.drop_table("t", false).unwrap();
        assert!(s.table_def("t").is_err());
    }
}
