//! The SparkSQL interface.
//!
//! Executes the shared SQL grammar under Spark's semantics: literals type
//! per Spark's rules (a dotted numeric literal is a DECIMAL, unlike Hive's
//! DOUBLE), INSERT values go through the configured store-assignment policy
//! (ANSI by default — *raising* where Hive coerces), and CHAR columns come
//! back blank-padded.

use crate::config::StoreAssignmentPolicy;
use crate::error::SparkError;
use crate::session::{DdlPath, SparkSession};
use crate::types::{render, store_assign, CastOptions};
use csi_core::sql::{self, eval_interval_parts, Expr, NumSuffix, SelectCols, Statement};
use csi_core::value::{parse_date, parse_timestamp, Decimal, StructField, Value};

/// Result of a SparkSQL statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SqlResult {
    /// Result column names (case as resolved by Spark).
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

/// The SparkSQL interface over a session.
pub struct SparkSql<'a> {
    session: &'a SparkSession,
}

impl<'a> SparkSql<'a> {
    /// Wraps a session.
    pub fn new(session: &'a SparkSession) -> SparkSql<'a> {
        SparkSql { session }
    }

    fn cast_options(&self) -> CastOptions {
        CastOptions {
            policy: self.session.config.store_assignment_policy(),
            char_varchar_as_string: self.session.config.char_varchar_as_string(),
            date_range_check: true,
        }
    }

    /// Executes one SparkSQL statement.
    pub fn execute(&self, sql_text: &str) -> Result<SqlResult, SparkError> {
        let stmt = sql::parse(sql_text).map_err(|e| SparkError::Parse(e.to_string()))?;
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                stored_as,
                if_not_exists,
            } => {
                let format =
                    minihive::metastore::StorageFormat::from_stored_as(stored_as.as_deref())?;
                let schema: Vec<StructField> = columns
                    .into_iter()
                    .map(|(n, dt)| StructField::new(n, dt))
                    .collect();
                self.session.create_hive_table(
                    &name,
                    &schema,
                    format,
                    DdlPath::SparkSql,
                    if_not_exists,
                )?;
                Ok(SqlResult::default())
            }
            Statement::DropTable { name, if_exists } => {
                self.session.drop_table(&name, if_exists)?;
                Ok(SqlResult::default())
            }
            Statement::Insert { table, rows } => {
                let def = self.session.table_def(&table)?;
                let schema = self.session.resolve_schema(&def);
                let opts = self.cast_options();
                let mut cast_rows = Vec::with_capacity(rows.len());
                for row in rows {
                    if row.len() != schema.len() {
                        return Err(SparkError::Arity {
                            expected: schema.len(),
                            got: row.len(),
                        });
                    }
                    let mut out = Vec::with_capacity(row.len());
                    for (expr, field) in row.iter().zip(&schema) {
                        let raw = self.eval(expr)?;
                        if opts.policy == StoreAssignmentPolicy::Legacy
                            && opts.date_range_check
                            && crate::types::has_out_of_range_datetime(&raw)
                        {
                            self.session.diag().warn(
                                "DATE_RANGE_COERCED",
                                format!(
                                    "value for column {} is outside the supported date range, \
                                     writing NULL",
                                    field.name
                                ),
                            );
                        }
                        out.push(store_assign(&raw, &field.data_type, opts)?);
                    }
                    cast_rows.push(out);
                }
                self.session.write_rows(&def, &schema, &cast_rows)?;
                Ok(SqlResult::default())
            }
            Statement::Select {
                columns,
                table,
                predicate,
            } => {
                let def = self.session.table_def(&table)?;
                let schema = self.session.resolve_schema(&def);
                let mut rows = self.session.read_rows(&def, &schema)?;
                if !predicate.is_empty() {
                    // Spark casts the literal to the column type under the
                    // active store-assignment policy (ANSI raises on bad
                    // literals where Hive would coerce).
                    let opts = self.cast_options();
                    let mut compiled = Vec::with_capacity(predicate.len());
                    for cmp in &predicate {
                        let idx = schema
                            .iter()
                            .position(|f| f.name.eq_ignore_ascii_case(&cmp.column))
                            .ok_or_else(|| {
                                SparkError::analysis(
                                    "UNRESOLVED_COLUMN",
                                    format!("cannot resolve column {:?}", cmp.column),
                                )
                            })?;
                        let raw = self.eval(&cmp.literal)?;
                        let lit = store_assign(&raw, &schema[idx].data_type, opts)?;
                        compiled.push((idx, cmp.op, lit));
                    }
                    rows.retain(|row| {
                        compiled.iter().all(|(idx, op, lit)| {
                            op.matches(csi_core::value::compare_values(&row[*idx], lit))
                        })
                    });
                }
                let (names, idx): (Vec<String>, Vec<usize>) = match columns {
                    SelectCols::Star => (
                        schema.iter().map(|f| f.name.clone()).collect(),
                        (0..schema.len()).collect(),
                    ),
                    SelectCols::Columns(cols) => {
                        let mut names = Vec::new();
                        let mut idx = Vec::new();
                        for c in cols {
                            // Spark's analyzer is case-insensitive by
                            // default but reports the schema's own name.
                            let i = schema
                                .iter()
                                .position(|f| f.name.eq_ignore_ascii_case(&c))
                                .ok_or_else(|| {
                                    SparkError::analysis(
                                        "UNRESOLVED_COLUMN",
                                        format!("cannot resolve column {c:?}"),
                                    )
                                })?;
                            names.push(schema[i].name.clone());
                            idx.push(i);
                        }
                        (names, idx)
                    }
                };
                // Distinct indices let each projected cell be *moved* out of
                // its row instead of deep-cloned — the hot path for wide
                // string columns. Duplicate projections ("SELECT a, a")
                // fall back to cloning.
                let distinct = idx
                    .iter()
                    .all(|i| idx.iter().filter(|j| *j == i).count() == 1);
                let projected = rows
                    .into_iter()
                    .map(|mut r| {
                        idx.iter()
                            .map(|i| {
                                if distinct {
                                    std::mem::replace(&mut r[*i], Value::Null)
                                } else {
                                    r[*i].clone()
                                }
                            })
                            .collect()
                    })
                    .collect();
                Ok(SqlResult {
                    columns: names,
                    rows: projected,
                })
            }
        }
    }

    /// Evaluates a literal under Spark's typing rules.
    pub fn eval(&self, expr: &Expr) -> Result<Value, SparkError> {
        Ok(match expr {
            Expr::Null => Value::Null,
            Expr::Bool(b) => Value::Boolean(*b),
            Expr::Number(raw) => {
                if raw.contains('.') {
                    // Spark types dotted literals as DECIMAL.
                    Value::Decimal(
                        Decimal::parse(raw).map_err(|e| SparkError::Parse(e.to_string()))?,
                    )
                } else if let Ok(v) = raw.parse::<i32>() {
                    Value::Int(v)
                } else if let Ok(v) = raw.parse::<i64>() {
                    Value::Long(v)
                } else {
                    Value::Decimal(
                        Decimal::parse(raw).map_err(|e| SparkError::Parse(e.to_string()))?,
                    )
                }
            }
            Expr::TypedNumber(raw, suffix) => match suffix {
                NumSuffix::Byte => {
                    Value::Byte(raw.parse().map_err(|_| SparkError::Parse(raw.clone()))?)
                }
                NumSuffix::Short => {
                    Value::Short(raw.parse().map_err(|_| SparkError::Parse(raw.clone()))?)
                }
                NumSuffix::Long => {
                    Value::Long(raw.parse().map_err(|_| SparkError::Parse(raw.clone()))?)
                }
                NumSuffix::Decimal => Value::Decimal(
                    Decimal::parse(raw).map_err(|e| SparkError::Parse(e.to_string()))?,
                ),
                NumSuffix::Double => {
                    Value::Double(raw.parse().map_err(|_| SparkError::Parse(raw.clone()))?)
                }
                NumSuffix::Float => {
                    Value::Float(raw.parse().map_err(|_| SparkError::Parse(raw.clone()))?)
                }
            },
            Expr::Str(s) => Value::Str(s.clone()),
            Expr::Binary(b) => Value::Binary(b.clone()),
            // Spark raises on malformed typed literals (unlike Hive's
            // lenient NULL).
            Expr::DateLit(s) => match parse_date(s.trim()) {
                Some(d) => Value::Date(d),
                None => {
                    return Err(SparkError::cast(
                        "CAST_INVALID_INPUT",
                        format!("invalid DATE literal {s:?}"),
                    ))
                }
            },
            Expr::TimestampLit(s) => match parse_timestamp(s.trim()) {
                Some(us) => Value::Timestamp(us),
                None => {
                    return Err(SparkError::cast(
                        "CAST_INVALID_INPUT",
                        format!("invalid TIMESTAMP literal {s:?}"),
                    ))
                }
            },
            Expr::IntervalLit { parts } => {
                let (months, micros) = eval_interval_parts(parts).map_err(SparkError::Parse)?;
                Value::Interval { months, micros }
            }
            Expr::Cast(inner, ty) => {
                let v = self.eval(inner)?;
                store_assign(&v, ty, self.cast_options())?
            }
            Expr::Array(items) => Value::Array(
                items
                    .iter()
                    .map(|e| self.eval(e))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            Expr::Map(pairs) => Value::Map(
                pairs
                    .iter()
                    .map(|(k, v)| Ok((self.eval(k)?, self.eval(v)?)))
                    .collect::<Result<Vec<_>, SparkError>>()?,
            ),
            Expr::NamedStruct(fields) => Value::Struct(
                fields
                    .iter()
                    .map(|(n, v)| Ok((n.clone(), self.eval(v)?)))
                    .collect::<Result<Vec<_>, SparkError>>()?,
            ),
            Expr::Neg(inner) => match self.eval(inner)? {
                Value::Byte(v) => Value::Byte(-v),
                Value::Short(v) => Value::Short(-v),
                Value::Int(v) => Value::Int(-v),
                Value::Long(v) => Value::Long(-v),
                Value::Float(v) => Value::Float(-v),
                Value::Double(v) => Value::Double(-v),
                Value::Decimal(d) => Value::Decimal(Decimal {
                    unscaled: -d.unscaled,
                    ..d
                }),
                Value::Interval { months, micros } => Value::Interval {
                    months: -months,
                    micros: -micros,
                },
                other => {
                    return Err(SparkError::Parse(format!(
                        "cannot negate {}",
                        render(&other)
                    )))
                }
            },
        })
    }
}

impl SparkSession {
    /// Shorthand for executing SparkSQL against this session.
    pub fn sql(&self, text: &str) -> Result<SqlResult, SparkError> {
        SparkSql::new(self).execute(text)
    }

    /// Convenience: the active store-assignment policy.
    pub fn policy(&self) -> StoreAssignmentPolicy {
        self.config.store_assignment_policy()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csi_core::diag::DiagSink;
    use minihdfs::MiniHdfs;
    use minihive::metastore::Metastore;
    use parking_lot::Mutex;
    use std::sync::Arc;

    fn session() -> (SparkSession, DiagSink) {
        let sink = DiagSink::new();
        let s = SparkSession::connect(
            Arc::new(Mutex::new(Metastore::new())),
            Arc::new(Mutex::new(MiniHdfs::with_datanodes(3))),
            sink.handle("minispark"),
        );
        (s, sink)
    }

    #[test]
    fn create_insert_select_round_trip() {
        let (s, _) = session();
        s.sql("CREATE TABLE t (a INT, b STRING) STORED AS ORC")
            .unwrap();
        s.sql("INSERT INTO t VALUES (1, 'one')").unwrap();
        let r = s.sql("SELECT * FROM t").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(1), Value::Str("one".into())]]);
    }

    #[test]
    fn ansi_insert_raises_on_overflow() {
        let (s, _) = session();
        s.sql("CREATE TABLE t (a TINYINT)").unwrap();
        // TINYINT was widened to INT by the DDL layer (D03), so 300 fits!
        s.sql("INSERT INTO t VALUES (300)").unwrap();
        let r = s.sql("SELECT * FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Int(300));
        // A genuine overflow on a non-widened type raises.
        s.sql("CREATE TABLE u (a INT)").unwrap();
        let err = s.sql("INSERT INTO u VALUES (99999999999)").unwrap_err();
        assert_eq!(err.code(), "CAST_OVERFLOW");
    }

    #[test]
    fn legacy_policy_nulls_instead() {
        let (mut s, _) = session();
        s.config
            .set(crate::config::STORE_ASSIGNMENT_POLICY, "LEGACY");
        s.sql("CREATE TABLE t (a INT)").unwrap();
        s.sql("INSERT INTO t VALUES (99999999999)").unwrap();
        let r = s.sql("SELECT * FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Null);
    }

    #[test]
    fn decimal_excess_precision_raises_under_ansi() {
        let (s, _) = session();
        s.sql("CREATE TABLE t (d DECIMAL(10,2))").unwrap();
        let err = s.sql("INSERT INTO t VALUES (123.456)").unwrap_err();
        assert_eq!(err.code(), "CAST_OVERFLOW");
        s.sql("INSERT INTO t VALUES (123.45)").unwrap();
        let r = s.sql("SELECT * FROM t").unwrap();
        assert_eq!(
            r.rows[0][0],
            Value::Decimal(Decimal::new(12345, 10, 2).unwrap())
        );
    }

    #[test]
    fn dotted_literals_are_decimals_not_doubles() {
        let (s, _) = session();
        let v = SparkSql::new(&s).eval(&Expr::Number("1.5".into())).unwrap();
        assert_eq!(v, Value::Decimal(Decimal::parse("1.5").unwrap()));
    }

    #[test]
    fn varchar_overflow_raises() {
        let (s, _) = session();
        s.sql("CREATE TABLE t (v VARCHAR(4))").unwrap();
        let err = s.sql("INSERT INTO t VALUES ('abcdef')").unwrap_err();
        assert_eq!(err.code(), "EXCEEDS_CHAR_VARCHAR_LENGTH");
    }

    #[test]
    fn char_round_trip_is_padded() {
        let (s, _) = session();
        s.sql("CREATE TABLE t (c CHAR(6))").unwrap();
        s.sql("INSERT INTO t VALUES ('ab')").unwrap();
        let r = s.sql("SELECT * FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Str("ab    ".into()));
    }

    #[test]
    fn invalid_date_literal_raises() {
        let (s, _) = session();
        s.sql("CREATE TABLE t (d DATE)").unwrap();
        let err = s
            .sql("INSERT INTO t VALUES (DATE '2021-02-30')")
            .unwrap_err();
        assert_eq!(err.code(), "CAST_INVALID_INPUT");
    }

    #[test]
    fn projection_reports_resolved_names() {
        let (s, _) = session();
        s.sql("CREATE TABLE t (CamelCol INT)").unwrap();
        s.sql("INSERT INTO t VALUES (1)").unwrap();
        // The SparkSQL DDL path lost the case; resolution falls back to
        // the Hive schema.
        let r = s.sql("SELECT camelcol FROM t").unwrap();
        assert_eq!(r.columns, vec!["camelcol"]);
        assert!(s.sql("SELECT missing FROM t").is_err());
    }

    #[test]
    fn where_clauses_filter_under_ansi_casting() {
        let (s, _) = session();
        s.sql("CREATE TABLE t (a INT, name STRING)").unwrap();
        s.sql("INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three'), (NULL, 'none')")
            .unwrap();
        let r = s.sql("SELECT * FROM t WHERE a <= 2").unwrap();
        assert_eq!(r.rows.len(), 2);
        let r = s
            .sql("SELECT name FROM t WHERE a = 2 AND name != 'x'")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Str("two".into())]]);
        // The discrepancy surface: a garbage literal *raises* under ANSI
        // where Hive silently matches nothing.
        let err = s.sql("SELECT * FROM t WHERE a = 'junk'").unwrap_err();
        assert_eq!(err.code(), "CAST_INVALID_INPUT");
        assert!(s.sql("SELECT * FROM t WHERE nope = 1").is_err());
    }

    #[test]
    fn interval_create_rejected_by_default() {
        let (s, _) = session();
        let err = s.sql("CREATE TABLE t (i INTERVAL)").unwrap_err();
        assert_eq!(err.code(), "UNSUPPORTED_HIVE_TYPE");
    }
}
