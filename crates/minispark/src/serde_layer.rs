//! Spark's serializer stack over the `miniformats` container formats.
//!
//! Independently written from Hive's SerDe (Finding 6), with Spark's own
//! conversions and optimizations — each individually correct, each a
//! discrepancy surface when composed with Hive's layer:
//!
//! - the Avro writer widens BYTE/SHORT to `int` but records **no logical
//!   annotation**, and the Avro reader has **no narrowing case**: a file
//!   whose physical type is `int` cannot be read back as BYTE/SHORT unless
//!   a (Hive-written) annotation says so — SPARK-39075 / D01;
//! - decimals are written **exactly as the runtime value is scaled**; the
//!   reader accepts any stored scale (lenient to itself, but files written
//!   this way trip Hive's declared-scale validation) — SPARK-39158 / D02;
//! - the ORC writer raises for pre-1900 timestamps (where Hive writes NULL
//!   with a log line) — HIVE-26528 / D06;
//! - Parquet timestamps are proleptic Gregorian, and by default the reader
//!   **ignores** a Julian marker left by other writers — D07;
//! - struct fields resolve **case-sensitively**; unresolved fields read as
//!   NULL — D14.

use crate::config::SparkConfig;
use crate::error::SparkError;
use csi_core::column::{ColumnValues, Validity, ValueColumn};
use csi_core::value::{DataType, Decimal, StructField, Value};
use miniformats::batch::{Bitmap, Column as BatchColumn, ColumnData, RecordBatch, VarBuffer};
use miniformats::physical::{FileSchema, PhysicalColumn, PhysicalType, PhysicalValue};
use miniformats::{avro, orc, parquet, FormatError};
use minihive::metastore::StorageFormat;

/// Maps a Spark type to its physical type in a given format.
pub fn physical_type_for(format: StorageFormat, ty: &DataType) -> Result<PhysicalType, SparkError> {
    Ok(match ty {
        DataType::Boolean => PhysicalType::Bool,
        DataType::Byte => match format {
            StorageFormat::Avro => PhysicalType::Int32,
            _ => PhysicalType::Int8,
        },
        DataType::Short => match format {
            StorageFormat::Avro => PhysicalType::Int32,
            _ => PhysicalType::Int16,
        },
        DataType::Int => PhysicalType::Int32,
        DataType::Long => PhysicalType::Int64,
        DataType::Float => PhysicalType::Float32,
        DataType::Double => PhysicalType::Float64,
        DataType::Decimal(_, _) => PhysicalType::Decimal,
        DataType::String | DataType::Char(_) | DataType::Varchar(_) => PhysicalType::Utf8,
        DataType::Binary => PhysicalType::Bytes,
        DataType::Date => PhysicalType::Int32,
        DataType::Timestamp => PhysicalType::Int64,
        DataType::Interval => {
            return Err(SparkError::SerDe {
                code: "INTERVAL_NOT_STORABLE",
                message: "INTERVAL values have no physical representation".into(),
            })
        }
        DataType::Array(e) => PhysicalType::List(Box::new(physical_type_for(format, e)?)),
        DataType::Map(k, v) => PhysicalType::Map(
            Box::new(physical_type_for(format, k)?),
            Box::new(physical_type_for(format, v)?),
        ),
        DataType::Struct(fields) => PhysicalType::Struct(
            fields
                .iter()
                .map(|f| Ok((f.name.clone(), physical_type_for(format, &f.data_type)?)))
                .collect::<Result<Vec<_>, SparkError>>()?,
        ),
    })
}

fn format_err(e: FormatError) -> SparkError {
    SparkError::SerDe {
        code: "FORMAT_ERROR",
        message: e.to_string(),
    }
}

/// Serializes rows (already store-assigned) into a data file.
///
/// `schema` carries Spark's case-preserved field names.
///
/// This is the thin row-API adapter over [`write_columns`]: rows are
/// transposed into typed column buffers (one byte-copy per cell, no
/// intermediate [`PhysicalValue`] allocation) and serialized columnar.
/// Output bytes are identical to [`write_file_rows`]; with multiple
/// columns *and* multiple invalid cells the reported error can be a
/// different (column-major-first) one.
pub fn write_file(
    format: StorageFormat,
    schema: &[StructField],
    rows: &[Vec<Value>],
    config: &SparkConfig,
) -> Result<Vec<u8>, SparkError> {
    let mut cols: Vec<ValueColumn> = schema
        .iter()
        .map(|f| ValueColumn::with_capacity(&f.data_type, rows.len()))
        .collect();
    for row in rows {
        if row.len() != schema.len() {
            return Err(SparkError::Arity {
                expected: schema.len(),
                got: row.len(),
            });
        }
        for (col, v) in cols.iter_mut().zip(row) {
            col.push(v);
        }
    }
    write_columns(format, schema, &cols, config)
}

/// The retained row-at-a-time serializer: the pre-columnar baseline, kept
/// for differential testing and as the benchmark reference point.
pub fn write_file_rows(
    format: StorageFormat,
    schema: &[StructField],
    rows: &[Vec<Value>],
    config: &SparkConfig,
) -> Result<Vec<u8>, SparkError> {
    let mut file_schema = FileSchema::default();
    for f in schema {
        file_schema.columns.push(PhysicalColumn {
            name: f.name.clone(),
            ty: physical_type_for(format, &f.data_type)?,
            // Spark's writer records no logical annotations (D01).
            logical: None,
        });
    }
    file_schema.meta.insert("writer".into(), "spark".into());
    if format == StorageFormat::Parquet {
        file_schema
            .meta
            .insert(parquet::TIMESTAMP_REBASE_KEY.into(), "proleptic".into());
    }
    let mut out_rows = Vec::with_capacity(rows.len());
    for row in rows {
        if row.len() != schema.len() {
            return Err(SparkError::Arity {
                expected: schema.len(),
                got: row.len(),
            });
        }
        let mut out = Vec::with_capacity(row.len());
        for (f, v) in schema.iter().zip(row) {
            out.push(to_physical(format, &f.data_type, v)?);
        }
        out_rows.push(out);
    }
    let _ = config;
    match format {
        StorageFormat::Orc => orc::encode(&file_schema, &out_rows),
        StorageFormat::Parquet => parquet::encode(&file_schema, &out_rows),
        StorageFormat::Avro => avro::encode(&file_schema, &out_rows),
    }
    .map_err(format_err)
}

/// Serializes typed column buffers directly into a data file — the bulk
/// hot path. Flat columns move buffer-to-buffer with no per-cell enum
/// traffic; nested or type-skewed columns fall back to the per-cell
/// converter and report the same errors as the row path.
pub fn write_columns(
    format: StorageFormat,
    schema: &[StructField],
    cols: &[ValueColumn],
    config: &SparkConfig,
) -> Result<Vec<u8>, SparkError> {
    if cols.len() != schema.len() {
        return Err(SparkError::Arity {
            expected: schema.len(),
            got: cols.len(),
        });
    }
    let mut file_schema = FileSchema::default();
    for f in schema {
        file_schema.columns.push(PhysicalColumn {
            name: f.name.clone(),
            ty: physical_type_for(format, &f.data_type)?,
            // Spark's writer records no logical annotations (D01).
            logical: None,
        });
    }
    file_schema.meta.insert("writer".into(), "spark".into());
    if format == StorageFormat::Parquet {
        file_schema
            .meta
            .insert(parquet::TIMESTAMP_REBASE_KEY.into(), "proleptic".into());
    }
    let _ = config;
    let mut batch = RecordBatch {
        schema: file_schema,
        columns: Vec::with_capacity(cols.len()),
    };
    for (f, col) in schema.iter().zip(cols) {
        let out = column_to_physical(format, f, col)?;
        batch.columns.push(out);
    }
    let encode = match format {
        StorageFormat::Orc => orc::encode_batch(&batch),
        StorageFormat::Parquet => parquet::encode_batch(&batch),
        StorageFormat::Avro => avro::encode_batch(&batch),
    };
    encode.map_err(format_err)
}

/// Converts one typed column into its physical batch column. Each fast
/// path is the vectorized image of the matching [`to_physical`] arm.
fn column_to_physical(
    format: StorageFormat,
    field: &StructField,
    col: &ValueColumn,
) -> Result<BatchColumn, SparkError> {
    let validity = || Bitmap::from_raw(col.validity().words().to_vec(), col.len());
    let avro = format == StorageFormat::Avro;
    let data = match (&field.data_type, col.values()) {
        (DataType::Boolean, ColumnValues::Boolean(v)) => ColumnData::Bool(v.clone()),
        (DataType::Byte, ColumnValues::Byte(v)) if avro => {
            ColumnData::Int32(v.iter().map(|x| *x as i32).collect())
        }
        (DataType::Byte, ColumnValues::Byte(v)) => ColumnData::Int8(v.clone()),
        (DataType::Short, ColumnValues::Short(v)) if avro => {
            ColumnData::Int32(v.iter().map(|x| *x as i32).collect())
        }
        (DataType::Short, ColumnValues::Short(v)) => ColumnData::Int16(v.clone()),
        (DataType::Int, ColumnValues::Int(v)) => ColumnData::Int32(v.clone()),
        (DataType::Long, ColumnValues::Long(v)) => ColumnData::Int64(v.clone()),
        (DataType::Float, ColumnValues::Float(v)) => ColumnData::Float32(v.clone()),
        (DataType::Double, ColumnValues::Double(v)) => ColumnData::Float64(v.clone()),
        // Spark writes the runtime scale, unchanged (D02's writer half).
        (
            DataType::Decimal(_, _),
            ColumnValues::Decimal {
                unscaled, scale, ..
            },
        ) => ColumnData::Decimal {
            unscaled: unscaled.clone(),
            scale: scale.clone(),
        },
        (
            DataType::String | DataType::Char(_) | DataType::Varchar(_),
            ColumnValues::Str { offsets, bytes },
        ) => ColumnData::Utf8(VarBuffer::from_raw(offsets.clone(), bytes.clone())),
        (DataType::Binary, ColumnValues::Binary { offsets, bytes }) => {
            ColumnData::Bytes(VarBuffer::from_raw(offsets.clone(), bytes.clone()))
        }
        (DataType::Date, ColumnValues::Date(v)) => ColumnData::Int32(v.clone()),
        (DataType::Timestamp, ColumnValues::Timestamp(v)) => {
            if format == StorageFormat::Orc {
                let min = minihive::serde_layer::orc_min_timestamp_micros();
                for (i, us) in v.iter().enumerate() {
                    if col.validity().get(i) && *us < min {
                        // Spark's ORC writer refuses what legacy ORC cannot
                        // represent (D06's upstream half: raise, not NULL).
                        return Err(SparkError::SerDe {
                            code: "ORC_TIMESTAMP_RANGE",
                            message: "cannot write pre-1900 timestamp to legacy ORC".into(),
                        });
                    }
                }
            }
            // Parquet: proleptic, no rebase.
            ColumnData::Int64(v.clone())
        }
        // Nested columns, Mixed columns, and type-skewed buffers: the
        // per-cell converter, which raises the row path's exact errors
        // (VALUE_TYPE_MISMATCH, INTERVAL-free by physical_type_for).
        _ => {
            let phys_ty = physical_type_for(format, &field.data_type)?;
            let mut out = BatchColumn::with_capacity(&phys_ty, col.len());
            for i in 0..col.len() {
                let pv = to_physical(format, &field.data_type, &col.get(i))?;
                let ok = out.push_checked(&pv);
                debug_assert!(ok, "to_physical output conforms to physical_type_for");
            }
            return Ok(out);
        }
    };
    Ok(BatchColumn {
        validity: validity(),
        data,
    })
}

fn to_physical(
    format: StorageFormat,
    ty: &DataType,
    value: &Value,
) -> Result<PhysicalValue, SparkError> {
    if value.is_null() {
        return Ok(PhysicalValue::Null);
    }
    Ok(match (ty, value) {
        (DataType::Boolean, Value::Boolean(b)) => PhysicalValue::Bool(*b),
        (DataType::Byte, Value::Byte(v)) => match format {
            StorageFormat::Avro => PhysicalValue::Int32(*v as i32),
            _ => PhysicalValue::Int8(*v),
        },
        (DataType::Short, Value::Short(v)) => match format {
            StorageFormat::Avro => PhysicalValue::Int32(*v as i32),
            _ => PhysicalValue::Int16(*v),
        },
        (DataType::Int, Value::Int(v)) => PhysicalValue::Int32(*v),
        (DataType::Long, Value::Long(v)) => PhysicalValue::Int64(*v),
        (DataType::Float, Value::Float(v)) => PhysicalValue::Float32(*v),
        (DataType::Double, Value::Double(v)) => PhysicalValue::Float64(*v),
        // Spark writes the runtime scale, unchanged (D02's writer half).
        (DataType::Decimal(_, _), Value::Decimal(d)) => PhysicalValue::Decimal {
            unscaled: d.unscaled,
            scale: d.scale,
        },
        (DataType::String | DataType::Char(_) | DataType::Varchar(_), Value::Str(s)) => {
            PhysicalValue::Utf8(s.clone())
        }
        (DataType::Binary, Value::Binary(b)) => PhysicalValue::Bytes(b.clone()),
        (DataType::Date, Value::Date(d)) => PhysicalValue::Int32(*d),
        (DataType::Timestamp, Value::Timestamp(us)) => {
            if format == StorageFormat::Orc
                && *us < minihive::serde_layer::orc_min_timestamp_micros()
            {
                // Spark's ORC writer refuses what legacy ORC cannot
                // represent (D06's upstream half: raise, not NULL).
                return Err(SparkError::SerDe {
                    code: "ORC_TIMESTAMP_RANGE",
                    message: "cannot write pre-1900 timestamp to legacy ORC".into(),
                });
            }
            // Parquet: proleptic, no rebase.
            PhysicalValue::Int64(*us)
        }
        (DataType::Array(et), Value::Array(items)) => PhysicalValue::List(
            items
                .iter()
                .map(|v| to_physical(format, et, v))
                .collect::<Result<Vec<_>, _>>()?,
        ),
        (DataType::Map(kt, vt), Value::Map(pairs)) => PhysicalValue::Map(
            pairs
                .iter()
                .map(|(k, v)| Ok((to_physical(format, kt, k)?, to_physical(format, vt, v)?)))
                .collect::<Result<Vec<_>, SparkError>>()?,
        ),
        (DataType::Struct(fields), Value::Struct(values)) => PhysicalValue::Struct(
            fields
                .iter()
                .zip(values)
                .map(|(f, (_, v))| Ok((f.name.clone(), to_physical(format, &f.data_type, v)?)))
                .collect::<Result<Vec<_>, SparkError>>()?,
        ),
        (ty, v) => {
            return Err(SparkError::SerDe {
                code: "VALUE_TYPE_MISMATCH",
                message: format!("value {} does not match type {ty}", v.signature()),
            })
        }
    })
}

/// Deserializes a data file against Spark's expected schema.
///
/// Thin row-API adapter over [`read_columns`]: the file is decoded into
/// typed column buffers, transformed per column, and transposed back to
/// rows. Values and errors match [`read_file_rows`] (column-major error
/// order on multi-column multi-error files).
pub fn read_file(
    format: StorageFormat,
    schema: &[StructField],
    bytes: &[u8],
    config: &SparkConfig,
) -> Result<Vec<Vec<Value>>, SparkError> {
    let cols = read_columns(format, schema, bytes, config)?;
    let nrows = cols.first().map_or(0, ValueColumn::len);
    let mut out = Vec::with_capacity(nrows);
    for i in 0..nrows {
        out.push(cols.iter().map(|c| c.get(i)).collect());
    }
    Ok(out)
}

/// Deserializes typed column buffers directly — the bulk read hot path.
pub fn read_columns(
    format: StorageFormat,
    schema: &[StructField],
    bytes: &[u8],
    config: &SparkConfig,
) -> Result<Vec<ValueColumn>, SparkError> {
    let batch = match format {
        StorageFormat::Orc => orc::decode_batch(bytes),
        StorageFormat::Parquet => parquet::decode_batch(bytes),
        StorageFormat::Avro => avro::decode_batch(bytes),
    }
    .map_err(format_err)?;
    let honor_julian = config.parquet_rebase_legacy();
    let file_julian = batch
        .schema
        .meta
        .get(parquet::TIMESTAMP_REBASE_KEY)
        .map(String::as_str)
        == Some("julian");
    let rebase = file_julian && honor_julian;
    let nrows = batch.len();
    // Spark resolves columns case-insensitively at the top level (its
    // analyzer is case-insensitive by default) but keeps exact physical
    // type expectations.
    let mut out = Vec::with_capacity(schema.len());
    for f in schema {
        let col = match batch.schema.index_of_ci(&f.name) {
            Some(i) => column_from_physical(
                format,
                f,
                &batch.columns[i],
                &batch.schema.columns[i],
                rebase,
            )?,
            None => ValueColumn::nulls(&f.data_type, nrows),
        };
        out.push(col);
    }
    Ok(out)
}

/// Converts one physical batch column into a typed value column. Each
/// fast path is the vectorized image of the matching [`from_physical`]
/// arm; anything else replays the per-cell reader (so annotation checks,
/// narrowing errors, and nested resolution behave exactly as before).
fn column_from_physical(
    format: StorageFormat,
    field: &StructField,
    col: &BatchColumn,
    column: &PhysicalColumn,
    rebase: bool,
) -> Result<ValueColumn, SparkError> {
    let validity = || Validity::from_raw(col.validity.words().to_vec(), col.len());
    let values = match (&field.data_type, &col.data) {
        (DataType::Boolean, ColumnData::Bool(v)) => ColumnValues::Boolean(v.clone()),
        (DataType::Byte, ColumnData::Int8(v)) => ColumnValues::Byte(v.clone()),
        (DataType::Short, ColumnData::Int16(v)) => ColumnValues::Short(v.clone()),
        (DataType::Int, ColumnData::Int32(v)) => ColumnValues::Int(v.clone()),
        (DataType::Int, ColumnData::Int8(v)) => {
            ColumnValues::Int(v.iter().map(|x| *x as i32).collect())
        }
        (DataType::Int, ColumnData::Int16(v)) => {
            ColumnValues::Int(v.iter().map(|x| *x as i32).collect())
        }
        (DataType::Long, ColumnData::Int64(v)) => ColumnValues::Long(v.clone()),
        (DataType::Long, ColumnData::Int32(v)) => {
            ColumnValues::Long(v.iter().map(|x| *x as i64).collect())
        }
        (DataType::Float, ColumnData::Float32(v)) => ColumnValues::Float(v.clone()),
        (DataType::Double, ColumnData::Float64(v)) => ColumnValues::Double(v.clone()),
        // Spark's decimal reader trusts the stored scale (lenient to its
        // own runtime-scaled files); precision widens to fit the digits.
        // The digits are computed inline — constructing two checked
        // [`Decimal`]s per cell dominated the whole read path — and the
        // checked constructors are replayed only when a bound trips, so
        // out-of-range cells raise exactly the row path's errors.
        (DataType::Decimal(p, _), ColumnData::Decimal { unscaled, scale }) => {
            let mut out_precision = Vec::with_capacity(unscaled.len());
            for i in 0..unscaled.len() {
                if !col.validity.get(i) {
                    out_precision.push(1);
                    continue;
                }
                let (u, s) = (unscaled[i], scale[i]);
                let n = u.unsigned_abs();
                let digits_needed = (match u64::try_from(n) {
                    Ok(0) => 1,
                    Ok(v) => v.ilog10() + 1,
                    Err(_) => n.ilog10() + 1,
                }) as u8;
                if s > Decimal::MAX_PRECISION || digits_needed > Decimal::MAX_PRECISION {
                    Decimal::new(u, Decimal::MAX_PRECISION, s).map_err(|e| SparkError::SerDe {
                        code: "DECIMAL_DECODE",
                        message: e.to_string(),
                    })?;
                }
                let precision = (*p).max(digits_needed).max(s + 1);
                if precision > Decimal::MAX_PRECISION {
                    Decimal::new(u, precision, s).map_err(|e| SparkError::SerDe {
                        code: "DECIMAL_DECODE",
                        message: e.to_string(),
                    })?;
                }
                out_precision.push(precision);
            }
            ColumnValues::Decimal {
                unscaled: unscaled.clone(),
                precision: out_precision,
                scale: scale.clone(),
            }
        }
        (DataType::String | DataType::Char(_) | DataType::Varchar(_), ColumnData::Utf8(buf)) => {
            ColumnValues::Str {
                offsets: buf.offsets().to_vec(),
                bytes: buf.raw_bytes().to_vec(),
            }
        }
        (DataType::Binary, ColumnData::Bytes(buf)) => ColumnValues::Binary {
            offsets: buf.offsets().to_vec(),
            bytes: buf.raw_bytes().to_vec(),
        },
        (DataType::Date, ColumnData::Int32(v)) => ColumnValues::Date(v.clone()),
        (DataType::Timestamp, ColumnData::Int64(v)) => {
            let cutover = minihive::serde_layer::gregorian_cutover_micros();
            let shift = format == StorageFormat::Parquet && rebase;
            ColumnValues::Timestamp(
                v.iter()
                    .map(|us| {
                        if shift && *us < cutover {
                            *us + minihive::serde_layer::JULIAN_SHIFT_MICROS
                        } else {
                            // The default CORRECTED mode reads the raw value
                            // even if the file was written Julian-rebased (D07).
                            *us
                        }
                    })
                    .collect(),
            )
        }
        // Annotation-gated narrowing, nested values, and type-skewed
        // buffers replay the per-cell reader.
        _ => {
            let mut out = ValueColumn::with_capacity(&field.data_type, col.len());
            for i in 0..col.len() {
                let v = from_physical(format, &field.data_type, &col.get(i), column, rebase)?;
                out.push(&v);
            }
            return Ok(out);
        }
    };
    Ok(ValueColumn::from_parts(validity(), values))
}

/// The retained row-at-a-time deserializer: the pre-columnar baseline,
/// kept for differential testing and as the benchmark reference point.
pub fn read_file_rows(
    format: StorageFormat,
    schema: &[StructField],
    bytes: &[u8],
    config: &SparkConfig,
) -> Result<Vec<Vec<Value>>, SparkError> {
    let (file_schema, raw_rows) = match format {
        StorageFormat::Orc => orc::decode(bytes),
        StorageFormat::Parquet => parquet::decode(bytes),
        StorageFormat::Avro => avro::decode(bytes),
    }
    .map_err(format_err)?;
    let honor_julian = config.parquet_rebase_legacy();
    let file_julian = file_schema
        .meta
        .get(parquet::TIMESTAMP_REBASE_KEY)
        .map(String::as_str)
        == Some("julian");
    // Spark resolves columns case-insensitively at the top level (its
    // analyzer is case-insensitive by default) but keeps exact physical
    // type expectations.
    let mapping: Vec<Option<usize>> = schema
        .iter()
        .map(|f| file_schema.index_of_ci(&f.name))
        .collect();
    let mut out = Vec::with_capacity(raw_rows.len());
    for raw in &raw_rows {
        let mut row = Vec::with_capacity(schema.len());
        for (f, idx) in schema.iter().zip(&mapping) {
            let v = match idx {
                Some(i) => from_physical(
                    format,
                    &f.data_type,
                    &raw[*i],
                    &file_schema.columns[*i],
                    file_julian && honor_julian,
                )?,
                None => Value::Null,
            };
            row.push(v);
        }
        out.push(row);
    }
    Ok(out)
}

fn from_physical(
    format: StorageFormat,
    ty: &DataType,
    value: &PhysicalValue,
    column: &PhysicalColumn,
    rebase: bool,
) -> Result<Value, SparkError> {
    if matches!(value, PhysicalValue::Null) {
        return Ok(Value::Null);
    }
    Ok(match (ty, value) {
        (DataType::Boolean, PhysicalValue::Bool(b)) => Value::Boolean(*b),
        (DataType::Byte, PhysicalValue::Int8(v)) => Value::Byte(*v),
        (DataType::Short, PhysicalValue::Int16(v)) => Value::Short(*v),
        // The missing narrowing case of SPARK-39075: physical int can only
        // be read as BYTE/SHORT when a *Hive-compat* annotation proves the
        // logical type; Spark's own Avro files carry no annotation and fail.
        (DataType::Byte, PhysicalValue::Int32(v)) => {
            if column.logical.as_deref() == Some("tinyint") {
                i8::try_from(*v)
                    .map(Value::Byte)
                    .map_err(|_| SparkError::IncompatibleSchema {
                        message: format!("annotated tinyint holds out-of-range value {v}"),
                    })?
            } else {
                return Err(SparkError::IncompatibleSchema {
                    message: format!(
                        "Cannot convert Avro/{} field {} of type INT to Catalyst type TINYINT",
                        format.name(),
                        column.name
                    ),
                });
            }
        }
        (DataType::Short, PhysicalValue::Int32(v)) => {
            if column.logical.as_deref() == Some("smallint") {
                i16::try_from(*v)
                    .map(Value::Short)
                    .map_err(|_| SparkError::IncompatibleSchema {
                        message: format!("annotated smallint holds out-of-range value {v}"),
                    })?
            } else {
                return Err(SparkError::IncompatibleSchema {
                    message: format!(
                        "Cannot convert Avro/{} field {} of type INT to Catalyst type SMALLINT",
                        format.name(),
                        column.name
                    ),
                });
            }
        }
        (DataType::Int, PhysicalValue::Int32(v)) => Value::Int(*v),
        (DataType::Int, PhysicalValue::Int8(v)) => Value::Int(*v as i32),
        (DataType::Int, PhysicalValue::Int16(v)) => Value::Int(*v as i32),
        (DataType::Long, PhysicalValue::Int64(v)) => Value::Long(*v),
        (DataType::Long, PhysicalValue::Int32(v)) => Value::Long(*v as i64),
        (DataType::Float, PhysicalValue::Float32(v)) => Value::Float(*v),
        (DataType::Double, PhysicalValue::Float64(v)) => Value::Double(*v),
        // Spark's decimal reader trusts the stored scale (lenient to its
        // own runtime-scaled files).
        (DataType::Decimal(p, _), PhysicalValue::Decimal { unscaled, scale }) => {
            let digits_needed = Decimal::new(*unscaled, Decimal::MAX_PRECISION, *scale)
                .map_err(|e| SparkError::SerDe {
                    code: "DECIMAL_DECODE",
                    message: e.to_string(),
                })?
                .digit_count() as u8;
            Value::Decimal(
                Decimal::new(*unscaled, (*p).max(digits_needed).max(*scale + 1), *scale).map_err(
                    |e| SparkError::SerDe {
                        code: "DECIMAL_DECODE",
                        message: e.to_string(),
                    },
                )?,
            )
        }
        (DataType::String | DataType::Char(_) | DataType::Varchar(_), PhysicalValue::Utf8(s)) => {
            Value::Str(s.clone())
        }
        (DataType::Binary, PhysicalValue::Bytes(b)) => Value::Binary(b.clone()),
        (DataType::Date, PhysicalValue::Int32(d)) => Value::Date(*d),
        (DataType::Timestamp, PhysicalValue::Int64(us)) => {
            let cutover = minihive::serde_layer::gregorian_cutover_micros();
            let adjusted = if format == StorageFormat::Parquet && rebase && *us < cutover {
                *us + minihive::serde_layer::JULIAN_SHIFT_MICROS
            } else {
                // The default CORRECTED mode reads the raw value even if
                // the file was written Julian-rebased (D07).
                *us
            };
            Value::Timestamp(adjusted)
        }
        (DataType::Array(et), PhysicalValue::List(items)) => Value::Array(
            items
                .iter()
                .map(|v| from_physical(format, et, v, column, rebase))
                .collect::<Result<Vec<_>, _>>()?,
        ),
        (DataType::Map(kt, vt), PhysicalValue::Map(pairs)) => Value::Map(
            pairs
                .iter()
                .map(|(k, v)| {
                    Ok((
                        from_physical(format, kt, k, column, rebase)?,
                        from_physical(format, vt, v, column, rebase)?,
                    ))
                })
                .collect::<Result<Vec<_>, SparkError>>()?,
        ),
        (DataType::Struct(fields), PhysicalValue::Struct(values)) => {
            // Case-SENSITIVE field resolution (D14's upstream half).
            let mut out = Vec::with_capacity(fields.len());
            for f in fields {
                let found = values.iter().find(|(n, _)| *n == f.name);
                let v = match found {
                    Some((_, v)) => from_physical(format, &f.data_type, v, column, rebase)?,
                    None => Value::Null,
                };
                out.push((f.name.clone(), v));
            }
            Value::Struct(out)
        }
        (ty, v) => {
            return Err(SparkError::IncompatibleSchema {
                message: format!("cannot read physical {v:?} as Catalyst type {ty}"),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn field(name: &str, dt: DataType) -> StructField {
        StructField::new(name, dt)
    }

    fn roundtrip(
        format: StorageFormat,
        schema: &[StructField],
        rows: Vec<Vec<Value>>,
    ) -> Result<Vec<Vec<Value>>, SparkError> {
        let config = SparkConfig::new();
        let bytes = write_file(format, schema, &rows, &config)?;
        read_file(format, schema, &bytes, &config)
    }

    #[test]
    fn primitives_round_trip_orc_parquet() {
        let schema = vec![
            field("b", DataType::Byte),
            field("s", DataType::Short),
            field("i", DataType::Int),
            field("t", DataType::String),
        ];
        let rows = vec![vec![
            Value::Byte(1),
            Value::Short(2),
            Value::Int(3),
            Value::Str("x".into()),
        ]];
        for fmt in [StorageFormat::Orc, StorageFormat::Parquet] {
            assert_eq!(roundtrip(fmt, &schema, rows.clone()).unwrap(), rows);
        }
    }

    #[test]
    fn spark_avro_byte_write_then_read_fails() {
        // SPARK-39075 in one test: the write succeeds (widened to int),
        // the read raises IncompatibleSchemaException.
        let schema = vec![field("b", DataType::Byte)];
        let rows = vec![vec![Value::Byte(5)]];
        let err = roundtrip(StorageFormat::Avro, &schema, rows).unwrap_err();
        assert_eq!(err.code(), "INCOMPATIBLE_SCHEMA");
        assert!(err.to_string().contains("TINYINT"));
    }

    #[test]
    fn spark_reads_hive_annotated_avro_bytes() {
        // Hive's writer annotates; Spark's Hive-compat path honors it.
        let columns = vec![minihive::metastore::ColumnDef {
            name: "b".into(),
            hive_type: minihive::HiveType::TinyInt,
        }];
        let sink = csi_core::diag::DiagSink::new();
        let bytes = minihive::serde_layer::write_file(
            StorageFormat::Avro,
            &columns,
            &[vec![Value::Byte(7)]],
            &sink.handle("hive"),
        )
        .unwrap();
        let schema = vec![field("b", DataType::Byte)];
        let rows = read_file(StorageFormat::Avro, &schema, &bytes, &SparkConfig::new()).unwrap();
        assert_eq!(rows[0][0], Value::Byte(7));
    }

    #[test]
    fn spark_decimal_keeps_runtime_scale_and_hive_rejects_it() {
        // D02 end to end at the serde level.
        let schema = vec![field("d", DataType::Decimal(10, 2))];
        let runtime = Value::Decimal(Decimal::parse("1.5").unwrap()); // scale 1
        let config = SparkConfig::new();
        let bytes = write_file(
            StorageFormat::Orc,
            &schema,
            &[vec![runtime.clone()]],
            &config,
        )
        .unwrap();
        // Spark reads its own file fine.
        let back = read_file(StorageFormat::Orc, &schema, &bytes, &config).unwrap();
        assert!(back[0][0].canonical_eq(&runtime));
        // Hive's reader validates the declared scale and rejects.
        let columns = vec![minihive::metastore::ColumnDef {
            name: "d".into(),
            hive_type: minihive::HiveType::Decimal(10, 2),
        }];
        let sink = csi_core::diag::DiagSink::new();
        let err = minihive::serde_layer::read_file(
            StorageFormat::Orc,
            &columns,
            &bytes,
            &sink.handle("hive"),
        )
        .unwrap_err();
        assert!(err.to_string().contains("scale"));
    }

    #[test]
    fn spark_orc_pre1900_timestamp_raises() {
        let schema = vec![field("ts", DataType::Timestamp)];
        let old = csi_core::value::parse_timestamp("1899-01-01 00:00:00").unwrap();
        let err = roundtrip(
            StorageFormat::Orc,
            &schema,
            vec![vec![Value::Timestamp(old)]],
        )
        .unwrap_err();
        assert_eq!(err.code(), "ORC_TIMESTAMP_RANGE");
    }

    #[test]
    fn spark_ignores_julian_marker_by_default() {
        // Hive writes a 1500 CE timestamp into Parquet (Julian-rebased).
        let columns = vec![minihive::metastore::ColumnDef {
            name: "ts".into(),
            hive_type: minihive::HiveType::Timestamp,
        }];
        let ancient = csi_core::value::parse_timestamp("1500-01-01 00:00:00").unwrap();
        let sink = csi_core::diag::DiagSink::new();
        let bytes = minihive::serde_layer::write_file(
            StorageFormat::Parquet,
            &columns,
            &[vec![Value::Timestamp(ancient)]],
            &sink.handle("hive"),
        )
        .unwrap();
        let schema = vec![field("ts", DataType::Timestamp)];
        // Default (CORRECTED): 10 days off — D07.
        let config = SparkConfig::new();
        let rows = read_file(StorageFormat::Parquet, &schema, &bytes, &config).unwrap();
        assert_eq!(
            rows[0][0],
            Value::Timestamp(ancient - minihive::serde_layer::JULIAN_SHIFT_MICROS)
        );
        // LEGACY rebase mode honors the marker.
        let mut legacy = SparkConfig::new();
        legacy.set(crate::config::PARQUET_REBASE_MODE, "LEGACY");
        let rows = read_file(StorageFormat::Parquet, &schema, &bytes, &legacy).unwrap();
        assert_eq!(rows[0][0], Value::Timestamp(ancient));
    }

    #[test]
    fn struct_field_resolution_is_case_sensitive() {
        // Hive wrote lowercase field names; Spark expects "Inner".
        let columns = vec![minihive::metastore::ColumnDef {
            name: "s".into(),
            hive_type: minihive::HiveType::Struct(vec![("inner".into(), minihive::HiveType::Int)]),
        }];
        let sink = csi_core::diag::DiagSink::new();
        let bytes = minihive::serde_layer::write_file(
            StorageFormat::Orc,
            &columns,
            &[vec![Value::Struct(vec![("inner".into(), Value::Int(9))])]],
            &sink.handle("hive"),
        )
        .unwrap();
        let schema = vec![field(
            "s",
            DataType::Struct(vec![StructField::new("Inner", DataType::Int)]),
        )];
        let rows = read_file(StorageFormat::Orc, &schema, &bytes, &SparkConfig::new()).unwrap();
        // The case-sensitive lookup misses and reads NULL (D14).
        assert_eq!(
            rows[0][0],
            Value::Struct(vec![("Inner".into(), Value::Null)])
        );
    }

    #[test]
    fn interval_has_no_physical_representation() {
        let schema = vec![field("i", DataType::Interval)];
        let err = write_file(
            StorageFormat::Orc,
            &schema,
            &[vec![Value::Interval {
                months: 1,
                micros: 0,
            }]],
            &SparkConfig::new(),
        )
        .unwrap_err();
        assert_eq!(err.code(), "INTERVAL_NOT_STORABLE");
    }

    #[test]
    fn avro_map_int_keys_rejected_for_spark_too() {
        let schema = vec![field(
            "m",
            DataType::Map(Box::new(DataType::Int), Box::new(DataType::String)),
        )];
        let rows = vec![vec![Value::Map(vec![(
            Value::Int(1),
            Value::Str("x".into()),
        )])]];
        let err = roundtrip(StorageFormat::Avro, &schema, rows.clone()).unwrap_err();
        assert_eq!(err.code(), "FORMAT_ERROR");
        assert!(roundtrip(StorageFormat::Orc, &schema, rows).is_ok());
    }
}
