//! Errors raised by minispark.

use csi_core::{ErrorKind, InteractionError};
use std::fmt;

/// Error type of minispark operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SparkError {
    /// Analysis-time failure (unknown table/column, bad plan).
    Analysis {
        /// Stable code.
        code: &'static str,
        /// Description.
        message: String,
    },
    /// A cast failed under the ANSI store-assignment policy.
    Cast {
        /// Stable code (e.g. `CAST_OVERFLOW`, `CAST_INVALID_INPUT`).
        code: &'static str,
        /// Description.
        message: String,
    },
    /// The file schema is incompatible with the expected schema
    /// (`IncompatibleSchemaException`, SPARK-39075).
    IncompatibleSchema {
        /// Description.
        message: String,
    },
    /// A type has no representation in the Hive catalog (SPARK-40624).
    UnsupportedHiveType {
        /// Rendered type.
        ty: String,
    },
    /// Spark's serializer rejected the data.
    SerDe {
        /// Stable code.
        code: &'static str,
        /// Description.
        message: String,
    },
    /// SQL parse failure.
    Parse(String),
    /// An internal invariant was violated (`require(...)` failure,
    /// SPARK-27239).
    Assertion {
        /// Description.
        message: String,
    },
    /// A connector-level failure (HDFS, Kafka, YARN).
    Connector {
        /// Stable code.
        code: &'static str,
        /// Description.
        message: String,
    },
    /// Wrong number of values for the table's columns.
    Arity {
        /// Expected.
        expected: usize,
        /// Got.
        got: usize,
    },
}

impl SparkError {
    /// Analysis error constructor.
    pub fn analysis(code: &'static str, message: impl Into<String>) -> SparkError {
        SparkError::Analysis {
            code,
            message: message.into(),
        }
    }

    /// Cast error constructor.
    pub fn cast(code: &'static str, message: impl Into<String>) -> SparkError {
        SparkError::Cast {
            code,
            message: message.into(),
        }
    }

    /// Stable machine-readable code.
    pub fn code(&self) -> &'static str {
        match self {
            SparkError::Analysis { code, .. } => code,
            SparkError::Cast { code, .. } => code,
            SparkError::IncompatibleSchema { .. } => "INCOMPATIBLE_SCHEMA",
            SparkError::UnsupportedHiveType { .. } => "UNSUPPORTED_HIVE_TYPE",
            SparkError::SerDe { code, .. } => code,
            SparkError::Parse(_) => "PARSE_ERROR",
            SparkError::Assertion { .. } => "ASSERTION_FAILED",
            SparkError::Connector { code, .. } => code,
            SparkError::Arity { .. } => "ARITY_MISMATCH",
        }
    }
}

impl fmt::Display for SparkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SparkError::Analysis { code, message } => {
                write!(f, "AnalysisException [{code}]: {message}")
            }
            SparkError::Cast { code, message } => {
                write!(f, "SparkArithmeticException [{code}]: {message}")
            }
            SparkError::IncompatibleSchema { message } => {
                write!(f, "IncompatibleSchemaException: {message}")
            }
            SparkError::UnsupportedHiveType { ty } => {
                write!(f, "Cannot recognize hive type string: {ty}")
            }
            SparkError::SerDe { code, message } => write!(f, "SerDe [{code}]: {message}"),
            SparkError::Parse(m) => write!(f, "ParseException: {m}"),
            SparkError::Assertion { message } => {
                write!(
                    f,
                    "java.lang.IllegalArgumentException: requirement failed: {message}"
                )
            }
            SparkError::Connector { code, message } => write!(f, "[{code}] {message}"),
            SparkError::Arity { expected, got } => write!(
                f,
                "INSERT has {got} values but the table has {expected} columns"
            ),
        }
    }
}

impl std::error::Error for SparkError {}

impl From<SparkError> for InteractionError {
    fn from(e: SparkError) -> InteractionError {
        let kind = match &e {
            SparkError::Assertion { .. } => ErrorKind::AssertionFailure,
            SparkError::IncompatibleSchema { .. } | SparkError::SerDe { .. } => ErrorKind::Crash,
            SparkError::UnsupportedHiveType { .. } => ErrorKind::Unsupported,
            _ => ErrorKind::Rejected,
        };
        InteractionError::new("minispark", kind, e.code(), e.to_string())
    }
}

impl From<minihive::HiveError> for SparkError {
    fn from(e: minihive::HiveError) -> SparkError {
        SparkError::Analysis {
            code: "HIVE_METASTORE",
            message: e.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assertion_maps_to_assertion_failure_kind() {
        let e = SparkError::Assertion {
            message: "length (-1) cannot be negative".into(),
        };
        let ie: InteractionError = e.into();
        assert_eq!(ie.kind, ErrorKind::AssertionFailure);
        assert!(ie.message.contains("requirement failed"));
    }

    #[test]
    fn codes_are_stable() {
        assert_eq!(
            SparkError::cast("CAST_OVERFLOW", "x").code(),
            "CAST_OVERFLOW"
        );
        assert_eq!(
            SparkError::IncompatibleSchema {
                message: "m".into()
            }
            .code(),
            "INCOMPATIBLE_SCHEMA"
        );
    }
}
