//! The HiveQL interface.
//!
//! Executes the shared SQL grammar under Hive's semantics: identifiers fold
//! to lowercase, literals follow Hive's typing rules, and inserted values
//! are coerced **leniently** (unrepresentable values become NULL with a log
//! line). Reads return CHAR columns blank-padded and report Hive's own
//! lowercase column and struct-field names.

use crate::error::HiveError;
use crate::metastore::{Metastore, SharedFs, StorageFormat, TableDef};
use crate::serde_layer;
use crate::types::HiveType;
use crate::value::{coerce, render, MAX_DATE_DAYS, MIN_DATE_DAYS};
use csi_core::column::{ColumnValues, ValueColumn};
use csi_core::diag::DiagHandle;
use csi_core::sql::{self, eval_interval_parts, Expr, NumSuffix, SelectCols, Statement};
use csi_core::value::{parse_date, parse_timestamp, Decimal, Value};
use parking_lot::Mutex;
use std::sync::Arc;

/// A shared metastore handle (Hive and its upstreams see the same catalog).
pub type SharedMetastore = Arc<Mutex<Metastore>>;

/// Result of a HiveQL statement.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct QueryResult {
    /// Result column names (lowercase), empty for DDL/DML.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Vec<Value>>,
}

/// The HiveQL session.
///
/// # Examples
///
/// ```
/// use csi_core::diag::DiagSink;
/// use minihdfs::MiniHdfs;
/// use minihive::metastore::Metastore;
/// use minihive::HiveQl;
/// use parking_lot::Mutex;
/// use std::sync::Arc;
///
/// let sink = DiagSink::new();
/// let hive = HiveQl::new(
///     Arc::new(Mutex::new(Metastore::new())),
///     Arc::new(Mutex::new(MiniHdfs::with_datanodes(3))),
///     sink.handle("minihive"),
/// );
/// hive.execute("CREATE TABLE t (a INT) STORED AS ORC").unwrap();
/// hive.execute("INSERT INTO t VALUES (1), (2)").unwrap();
/// let r = hive.execute("SELECT * FROM t WHERE a > 1").unwrap();
/// assert_eq!(r.rows.len(), 1);
/// ```
#[derive(Clone)]
pub struct HiveQl {
    metastore: SharedMetastore,
    fs: SharedFs,
    diag: DiagHandle,
}

impl HiveQl {
    /// Creates a session over a shared metastore and warehouse filesystem.
    pub fn new(metastore: SharedMetastore, fs: SharedFs, diag: DiagHandle) -> HiveQl {
        HiveQl {
            metastore,
            fs,
            diag,
        }
    }

    /// The shared metastore.
    pub fn metastore(&self) -> &SharedMetastore {
        &self.metastore
    }

    /// Executes one HiveQL statement.
    pub fn execute(&self, sql_text: &str) -> Result<QueryResult, HiveError> {
        let stmt = sql::parse(sql_text).map_err(|e| HiveError::Parse(e.to_string()))?;
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                stored_as,
                if_not_exists,
            } => self.create_table(&name, columns, stored_as.as_deref(), if_not_exists),
            Statement::DropTable { name, if_exists } => self.drop_table(&name, if_exists),
            Statement::Insert { table, rows } => self.insert(&table, rows),
            Statement::Select {
                columns,
                table,
                predicate,
            } => self.select(&table, columns, &predicate),
        }
    }

    fn create_table(
        &self,
        name: &str,
        columns: Vec<(String, csi_core::DataType)>,
        stored_as: Option<&str>,
        if_not_exists: bool,
    ) -> Result<QueryResult, HiveError> {
        let format = StorageFormat::from_stored_as(stored_as)?;
        let hive_columns = columns
            .into_iter()
            .map(|(n, dt)| Ok((n, HiveType::from_data_type(&dt)?)))
            .collect::<Result<Vec<_>, HiveError>>()?;
        let mut ms = self.metastore.lock();
        let def = ms
            .create_table("default", name, hive_columns, format, if_not_exists)?
            .clone();
        drop(ms);
        self.fs
            .lock()
            .mkdirs(&def.location)
            .map_err(|e| HiveError::Storage(e.to_string()))?;
        Ok(QueryResult::default())
    }

    fn drop_table(&self, name: &str, if_exists: bool) -> Result<QueryResult, HiveError> {
        let mut fs = self.fs.lock();
        self.metastore
            .lock()
            .drop_table("default", name, if_exists, &mut fs)?;
        Ok(QueryResult::default())
    }

    fn insert(&self, table: &str, rows: Vec<Vec<Expr>>) -> Result<QueryResult, HiveError> {
        let (def, part) = {
            let mut ms = self.metastore.lock();
            let def = ms.get_table("default", table)?.clone();
            let part = ms.next_part_path(&def);
            (def, part)
        };
        let mut coerced_rows = Vec::with_capacity(rows.len());
        for row in rows {
            if row.len() != def.columns.len() {
                return Err(HiveError::Arity {
                    expected: def.columns.len(),
                    got: row.len(),
                });
            }
            let mut out = Vec::with_capacity(row.len());
            for (expr, col) in row.iter().zip(&def.columns) {
                let raw = self.eval(expr)?;
                out.push(coerce(&raw, &col.hive_type, &self.diag)?);
            }
            coerced_rows.push(out);
        }
        let bytes = serde_layer::write_file(def.format, &def.columns, &coerced_rows, &self.diag)?;
        self.fs
            .lock()
            .create(&part, &bytes)
            .map_err(|e| HiveError::Storage(e.to_string()))?;
        Ok(QueryResult::default())
    }

    /// Bulk `INSERT INTO` over column buffers — the columnar counterpart of
    /// the HiveQL `INSERT` path. Columns whose buffer already inhabits the
    /// target Hive type skip the per-cell lenient coercion entirely;
    /// anything else (decimals, CHAR/VARCHAR, type-skewed or out-of-range
    /// buffers) replays `coerce` per cell, with identical warnings.
    pub fn insert_columns(&self, table: &str, cols: &[ValueColumn]) -> Result<(), HiveError> {
        let (def, part) = {
            let mut ms = self.metastore.lock();
            let def = ms.get_table("default", table)?.clone();
            let part = ms.next_part_path(&def);
            (def, part)
        };
        if cols.len() != def.columns.len() {
            return Err(HiveError::Arity {
                expected: def.columns.len(),
                got: cols.len(),
            });
        }
        let mut coerced = Vec::with_capacity(cols.len());
        for (col, def_col) in cols.iter().zip(&def.columns) {
            if column_coerces_identically(&def_col.hive_type, col) {
                coerced.push(col.clone());
                continue;
            }
            let ty = def_col.hive_type.to_data_type();
            let mut out = ValueColumn::with_capacity(&ty, col.len());
            for i in 0..col.len() {
                out.push(&coerce(&col.get(i), &def_col.hive_type, &self.diag)?);
            }
            coerced.push(out);
        }
        let bytes = serde_layer::write_columns(def.format, &def.columns, &coerced, &self.diag)?;
        self.fs
            .lock()
            .create(&part, &bytes)
            .map_err(|e| HiveError::Storage(e.to_string()))
    }

    /// Bulk `SELECT *` over column buffers — the columnar counterpart of
    /// [`HiveQl::read_all`] behind the SELECT path.
    pub fn read_table_columns(&self, table: &str) -> Result<Vec<ValueColumn>, HiveError> {
        let def = self.metastore.lock().get_table("default", table)?.clone();
        let fs = self.fs.lock();
        let files = self.metastore.lock().table_data_files(&def, &fs)?;
        let mut acc: Option<Vec<ValueColumn>> = None;
        for path in files {
            let bytes = fs
                .read(&path)
                .map_err(|e| HiveError::Storage(e.to_string()))?;
            let cols = serde_layer::read_columns(def.format, &def.columns, &bytes, &self.diag)?;
            match &mut acc {
                None => acc = Some(cols),
                Some(existing) => {
                    for (dst, src) in existing.iter_mut().zip(&cols) {
                        dst.extend_from(src);
                    }
                }
            }
        }
        Ok(acc.unwrap_or_else(|| {
            def.columns
                .iter()
                .map(|c| ValueColumn::for_type(&c.hive_type.to_data_type()))
                .collect()
        }))
    }

    fn select(
        &self,
        table: &str,
        columns: SelectCols,
        predicate: &[csi_core::sql::Comparison],
    ) -> Result<QueryResult, HiveError> {
        let def = self.metastore.lock().get_table("default", table)?.clone();
        let mut rows = self.read_all(&def)?;
        if !predicate.is_empty() {
            // Hive evaluates each comparison after leniently coercing the
            // literal to the column's type; unknown comparisons drop rows.
            let mut compiled = Vec::with_capacity(predicate.len());
            for cmp in predicate {
                let idx =
                    def.column_index(&cmp.column)
                        .ok_or_else(|| HiveError::UnknownColumn {
                            table: def.name.clone(),
                            column: cmp.column.clone(),
                        })?;
                let raw = self.eval(&cmp.literal)?;
                let coerced = coerce(&raw, &def.columns[idx].hive_type, &self.diag)?;
                compiled.push((idx, cmp.op, coerced));
            }
            rows.retain(|row| {
                compiled.iter().all(|(idx, op, lit)| {
                    op.matches(csi_core::value::compare_values(&row[*idx], lit))
                })
            });
        }
        match columns {
            SelectCols::Star => Ok(QueryResult {
                columns: def.columns.iter().map(|c| c.name.clone()).collect(),
                rows,
            }),
            SelectCols::Columns(names) => {
                let mut idx = Vec::with_capacity(names.len());
                for n in &names {
                    idx.push(
                        def.column_index(n)
                            .ok_or_else(|| HiveError::UnknownColumn {
                                table: def.name.clone(),
                                column: n.clone(),
                            })?,
                    );
                }
                // Distinct indices let each projected cell be *moved* out of
                // its row instead of deep-cloned — the hot path for wide
                // string columns. Duplicate projections ("SELECT a, a")
                // fall back to cloning.
                let distinct = idx
                    .iter()
                    .all(|i| idx.iter().filter(|j| *j == i).count() == 1);
                let projected = rows
                    .into_iter()
                    .map(|mut r| {
                        idx.iter()
                            .map(|i| {
                                if distinct {
                                    std::mem::replace(&mut r[*i], Value::Null)
                                } else {
                                    r[*i].clone()
                                }
                            })
                            .collect()
                    })
                    .collect();
                Ok(QueryResult {
                    columns: idx.iter().map(|i| def.columns[*i].name.clone()).collect(),
                    rows: projected,
                })
            }
        }
    }

    fn read_all(&self, def: &TableDef) -> Result<Vec<Vec<Value>>, HiveError> {
        let fs = self.fs.lock();
        let files = self.metastore.lock().table_data_files(def, &fs)?;
        let mut rows = Vec::new();
        for path in files {
            let bytes = fs
                .read(&path)
                .map_err(|e| HiveError::Storage(e.to_string()))?;
            rows.extend(serde_layer::read_file(
                def.format,
                &def.columns,
                &bytes,
                &self.diag,
            )?);
        }
        Ok(rows)
    }

    /// Evaluates a literal expression under Hive's typing rules.
    pub fn eval(&self, expr: &Expr) -> Result<Value, HiveError> {
        Ok(match expr {
            Expr::Null => Value::Null,
            Expr::Bool(b) => Value::Boolean(*b),
            Expr::Number(raw) => {
                if raw.contains('.') {
                    // Hive types floating literals as DOUBLE.
                    Value::Double(raw.parse().map_err(|_| HiveError::Parse(raw.clone()))?)
                } else if let Ok(v) = raw.parse::<i32>() {
                    Value::Int(v)
                } else if let Ok(v) = raw.parse::<i64>() {
                    Value::Long(v)
                } else {
                    Value::Decimal(
                        Decimal::parse(raw).map_err(|e| HiveError::Parse(e.to_string()))?,
                    )
                }
            }
            Expr::TypedNumber(raw, suffix) => match suffix {
                NumSuffix::Byte => {
                    Value::Byte(raw.parse().map_err(|_| HiveError::Parse(raw.clone()))?)
                }
                NumSuffix::Short => {
                    Value::Short(raw.parse().map_err(|_| HiveError::Parse(raw.clone()))?)
                }
                NumSuffix::Long => {
                    Value::Long(raw.parse().map_err(|_| HiveError::Parse(raw.clone()))?)
                }
                NumSuffix::Decimal => Value::Decimal(
                    Decimal::parse(raw).map_err(|e| HiveError::Parse(e.to_string()))?,
                ),
                NumSuffix::Double => {
                    Value::Double(raw.parse().map_err(|_| HiveError::Parse(raw.clone()))?)
                }
                NumSuffix::Float => {
                    Value::Float(raw.parse().map_err(|_| HiveError::Parse(raw.clone()))?)
                }
            },
            Expr::Str(s) => Value::Str(s.clone()),
            Expr::Binary(b) => Value::Binary(b.clone()),
            Expr::DateLit(s) => match parse_date(s.trim()) {
                Some(d) => Value::Date(d),
                None => {
                    // Hive is lenient even for malformed literals.
                    self.diag.warn(
                        "HIVE_BAD_DATE_LITERAL",
                        format!("invalid DATE literal {s:?}, using NULL"),
                    );
                    Value::Null
                }
            },
            Expr::TimestampLit(s) => match parse_timestamp(s.trim()) {
                Some(us) => Value::Timestamp(us),
                None => {
                    self.diag.warn(
                        "HIVE_BAD_TIMESTAMP_LITERAL",
                        format!("invalid TIMESTAMP literal {s:?}, using NULL"),
                    );
                    Value::Null
                }
            },
            Expr::IntervalLit { parts } => {
                let (months, micros) = eval_interval_parts(parts).map_err(HiveError::Parse)?;
                Value::Interval { months, micros }
            }
            Expr::Cast(inner, ty) => {
                let v = self.eval(inner)?;
                let ht = HiveType::from_data_type(ty)?;
                coerce(&v, &ht, &self.diag)?
            }
            Expr::Array(items) => Value::Array(
                items
                    .iter()
                    .map(|e| self.eval(e))
                    .collect::<Result<Vec<_>, _>>()?,
            ),
            Expr::Map(pairs) => Value::Map(
                pairs
                    .iter()
                    .map(|(k, v)| Ok((self.eval(k)?, self.eval(v)?)))
                    .collect::<Result<Vec<_>, HiveError>>()?,
            ),
            Expr::NamedStruct(fields) => Value::Struct(
                fields
                    .iter()
                    .map(|(n, v)| Ok((n.clone(), self.eval(v)?)))
                    .collect::<Result<Vec<_>, HiveError>>()?,
            ),
            Expr::Neg(inner) => match self.eval(inner)? {
                Value::Byte(v) => Value::Byte(-v),
                Value::Short(v) => Value::Short(-v),
                Value::Int(v) => Value::Int(-v),
                Value::Long(v) => Value::Long(-v),
                Value::Float(v) => Value::Float(-v),
                Value::Double(v) => Value::Double(-v),
                Value::Decimal(d) => Value::Decimal(Decimal {
                    unscaled: -d.unscaled,
                    ..d
                }),
                Value::Interval { months, micros } => Value::Interval {
                    months: -months,
                    micros: -micros,
                },
                other => {
                    return Err(HiveError::Parse(format!(
                        "cannot negate {}",
                        render(&other)
                    )))
                }
            },
        })
    }
}

/// Whether a whole column buffer survives Hive's lenient `coerce`
/// byte-for-byte, so the per-cell replay (and its warning plumbing) can be
/// skipped. Only (target, lane) pairs proven identity qualify: exact-variant
/// integrals and booleans, doubles, strings into STRING, and binary.
/// DATE/TIMESTAMP additionally require every slot in the supported range,
/// because `coerce` NULLs (and warns on) out-of-range values. FLOAT is
/// excluded: the row path round-trips f32 through f64, which can quiet
/// signalling NaN payloads. DECIMAL and CHAR/VARCHAR always rescale or pad.
fn column_coerces_identically(ty: &HiveType, col: &ValueColumn) -> bool {
    const MIN_TS: i64 = MIN_DATE_DAYS as i64 * 86_400_000_000;
    const MAX_TS: i64 = (MAX_DATE_DAYS as i64 + 1) * 86_400_000_000 - 1;
    match (ty, col.values()) {
        (HiveType::Boolean, ColumnValues::Boolean(_))
        | (HiveType::TinyInt, ColumnValues::Byte(_))
        | (HiveType::SmallInt, ColumnValues::Short(_))
        | (HiveType::Int, ColumnValues::Int(_))
        | (HiveType::BigInt, ColumnValues::Long(_))
        | (HiveType::Double, ColumnValues::Double(_))
        | (HiveType::Str, ColumnValues::Str { .. })
        | (HiveType::Binary, ColumnValues::Binary { .. }) => true,
        // NULL slots hold a zero placeholder, which is in range, so the
        // whole lane can be scanned without consulting the validity bitmap.
        (HiveType::Date, ColumnValues::Date(days)) => days
            .iter()
            .all(|d| (MIN_DATE_DAYS..=MAX_DATE_DAYS).contains(d)),
        (HiveType::Timestamp, ColumnValues::Timestamp(us)) => {
            us.iter().all(|v| (MIN_TS..=MAX_TS).contains(v))
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csi_core::diag::DiagSink;
    use minihdfs::MiniHdfs;

    fn session() -> (HiveQl, DiagSink) {
        let sink = DiagSink::new();
        let hive = HiveQl::new(
            Arc::new(Mutex::new(Metastore::new())),
            Arc::new(Mutex::new(MiniHdfs::with_datanodes(3))),
            sink.handle("minihive"),
        );
        (hive, sink)
    }

    #[test]
    fn create_insert_select_round_trip() {
        let (hive, _) = session();
        hive.execute("CREATE TABLE t (a INT, b STRING) STORED AS ORC")
            .unwrap();
        hive.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')")
            .unwrap();
        let r = hive.execute("SELECT * FROM t").unwrap();
        assert_eq!(r.columns, vec!["a", "b"]);
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Int(1), Value::Str("one".into())],
                vec![Value::Int(2), Value::Str("two".into())],
            ]
        );
    }

    #[test]
    fn projection_is_case_insensitive() {
        let (hive, _) = session();
        hive.execute("CREATE TABLE t (CamelCol INT)").unwrap();
        hive.execute("INSERT INTO t VALUES (5)").unwrap();
        let r = hive.execute("SELECT CAMELCOL FROM t").unwrap();
        assert_eq!(r.columns, vec!["camelcol"]); // Hive's own name.
        assert_eq!(r.rows[0][0], Value::Int(5));
        assert!(matches!(
            hive.execute("SELECT nope FROM t"),
            Err(HiveError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn lenient_insert_writes_null_with_warning() {
        let (hive, sink) = session();
        hive.execute("CREATE TABLE t (a TINYINT)").unwrap();
        hive.execute("INSERT INTO t VALUES (300)").unwrap();
        let r = hive.execute("SELECT * FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Null);
        assert!(sink
            .drain()
            .iter()
            .any(|d| d.code == "HIVE_INTEGRAL_OUT_OF_RANGE"));
    }

    #[test]
    fn char_values_come_back_padded() {
        let (hive, _) = session();
        hive.execute("CREATE TABLE t (c CHAR(8))").unwrap();
        hive.execute("INSERT INTO t VALUES ('abc')").unwrap();
        let r = hive.execute("SELECT * FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Str("abc     ".into()));
    }

    #[test]
    fn interval_columns_are_unsupported() {
        let (hive, _) = session();
        assert!(matches!(
            hive.execute("CREATE TABLE t (i INTERVAL)"),
            Err(HiveError::UnsupportedType { .. })
        ));
    }

    #[test]
    fn interval_values_cast_to_string_only() {
        let (hive, _) = session();
        hive.execute("CREATE TABLE t (s STRING)").unwrap();
        hive.execute("INSERT INTO t VALUES (INTERVAL 3 MONTH)")
            .unwrap();
        let r = hive.execute("SELECT * FROM t").unwrap();
        assert_eq!(r.rows[0][0], Value::Str("3 months 0 us".into()));
    }

    #[test]
    fn string_boolean_leniency_through_sql() {
        let (hive, _) = session();
        hive.execute("CREATE TABLE t (b BOOLEAN)").unwrap();
        hive.execute("INSERT INTO t VALUES ('t'), ('no'), ('wat')")
            .unwrap();
        let r = hive.execute("SELECT * FROM t").unwrap();
        assert_eq!(
            r.rows,
            vec![
                vec![Value::Boolean(true)],
                vec![Value::Boolean(false)],
                vec![Value::Null],
            ]
        );
    }

    #[test]
    fn numeric_literal_typing() {
        let (hive, _) = session();
        assert_eq!(hive.eval(&Expr::Number("5".into())).unwrap(), Value::Int(5));
        assert_eq!(
            hive.eval(&Expr::Number("5000000000".into())).unwrap(),
            Value::Long(5_000_000_000)
        );
        assert_eq!(
            hive.eval(&Expr::Number("1.5".into())).unwrap(),
            Value::Double(1.5)
        );
    }

    #[test]
    fn multiple_inserts_accumulate_part_files() {
        let (hive, _) = session();
        hive.execute("CREATE TABLE t (a INT)").unwrap();
        for i in 0..3 {
            hive.execute(&format!("INSERT INTO t VALUES ({i})"))
                .unwrap();
        }
        let r = hive.execute("SELECT * FROM t").unwrap();
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn where_clauses_filter_with_lenient_coercion() {
        let (hive, _) = session();
        hive.execute("CREATE TABLE t (a INT, name STRING)").unwrap();
        hive.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two'), (3, 'three'), (NULL, 'none')")
            .unwrap();
        let r = hive.execute("SELECT * FROM t WHERE a >= 2").unwrap();
        assert_eq!(r.rows.len(), 2);
        let r = hive
            .execute("SELECT name FROM t WHERE a > 1 AND name = 'two'")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Str("two".into())]]);
        // NULL rows never match (three-valued logic).
        let r = hive.execute("SELECT * FROM t WHERE a != 99").unwrap();
        assert_eq!(r.rows.len(), 3);
        // Hive leniently coerces a string literal to the column type.
        let r = hive.execute("SELECT * FROM t WHERE a = '2'").unwrap();
        assert_eq!(r.rows.len(), 1);
        // An uncoercible literal becomes NULL: nothing matches, no error.
        let r = hive.execute("SELECT * FROM t WHERE a = 'junk'").unwrap();
        assert!(r.rows.is_empty());
        assert!(matches!(
            hive.execute("SELECT * FROM t WHERE nope = 1"),
            Err(HiveError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn drop_table_removes_data() {
        let (hive, _) = session();
        hive.execute("CREATE TABLE t (a INT)").unwrap();
        hive.execute("INSERT INTO t VALUES (1)").unwrap();
        hive.execute("DROP TABLE t").unwrap();
        assert!(matches!(
            hive.execute("SELECT * FROM t"),
            Err(HiveError::UnknownTable(_))
        ));
        hive.execute("DROP TABLE IF EXISTS t").unwrap();
        // And the name is reusable with fresh data.
        hive.execute("CREATE TABLE t (a INT)").unwrap();
        assert!(hive.execute("SELECT * FROM t").unwrap().rows.is_empty());
    }

    #[test]
    fn avro_map_with_int_keys_fails_but_orc_succeeds() {
        let (hive, _) = session();
        hive.execute("CREATE TABLE o (m MAP<INT,STRING>) STORED AS ORC")
            .unwrap();
        hive.execute("INSERT INTO o VALUES (MAP(1, 'x'))").unwrap();
        assert_eq!(hive.execute("SELECT * FROM o").unwrap().rows.len(), 1);
        hive.execute("CREATE TABLE a (m MAP<INT,STRING>) STORED AS AVRO")
            .unwrap();
        let err = hive
            .execute("INSERT INTO a VALUES (MAP(1, 'x'))")
            .unwrap_err();
        assert!(matches!(err, HiveError::SerDe { .. }));
    }
}
