//! Errors raised by minihive.

use csi_core::fault::{Channel, FaultKind, FaultPoint, InjectedFault};
use csi_core::{ErrorKind, InteractionError};
use std::fmt;

/// Error type of minihive operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HiveError {
    /// The database does not exist.
    UnknownDatabase(String),
    /// The table does not exist.
    UnknownTable(String),
    /// A table with this name already exists.
    TableExists(String),
    /// A referenced column does not exist.
    UnknownColumn {
        /// Table name.
        table: String,
        /// Column as the query wrote it.
        column: String,
    },
    /// The type is not supported by Hive.
    UnsupportedType {
        /// Rendered type name.
        ty: String,
    },
    /// A SQL statement failed to parse.
    Parse(String),
    /// A storage format failed to serialize or deserialize data.
    SerDe {
        /// The storage format.
        format: &'static str,
        /// Description.
        message: String,
    },
    /// A stored value does not match the declared schema.
    SchemaMismatch {
        /// Description.
        message: String,
    },
    /// The warehouse filesystem failed.
    Storage(String),
    /// Wrong number of values in an INSERT row.
    Arity {
        /// Expected columns.
        expected: usize,
        /// Provided values.
        got: usize,
    },
    /// The metastore service cannot be reached.
    MetastoreUnavailable(String),
    /// A metastore RPC exceeded its deadline.
    MetastoreTimeout {
        /// The RPC that timed out.
        op: String,
        /// The deadline, in milliseconds.
        ms: u64,
    },
    /// A metastore response failed Thrift protocol decoding.
    MetastoreCorrupt {
        /// The RPC whose response was corrupted.
        op: String,
    },
}

impl fmt::Display for HiveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HiveError::UnknownDatabase(d) => write!(f, "Database not found: {d}"),
            HiveError::UnknownTable(t) => write!(f, "Table not found: {t}"),
            HiveError::TableExists(t) => write!(f, "Table already exists: {t}"),
            HiveError::UnknownColumn { table, column } => {
                write!(f, "Invalid column reference {column:?} in table {table}")
            }
            HiveError::UnsupportedType { ty } => {
                write!(f, "Unsupported Hive type: {ty}")
            }
            HiveError::Parse(msg) => write!(f, "ParseException: {msg}"),
            HiveError::SerDe { format, message } => {
                write!(f, "SerDe error ({format}): {message}")
            }
            HiveError::SchemaMismatch { message } => {
                write!(f, "schema mismatch: {message}")
            }
            HiveError::Storage(msg) => write!(f, "warehouse storage error: {msg}"),
            HiveError::Arity { expected, got } => write!(
                f,
                "INSERT has {got} values but the table has {expected} columns"
            ),
            HiveError::MetastoreUnavailable(msg) => {
                write!(f, "MetaException: could not connect to metastore: {msg}")
            }
            HiveError::MetastoreTimeout { op, ms } => {
                write!(f, "MetaException: {op} timed out after {ms}ms")
            }
            HiveError::MetastoreCorrupt { op } => {
                write!(
                    f,
                    "TProtocolException: corrupted metastore response for {op}"
                )
            }
        }
    }
}

impl std::error::Error for HiveError {}

impl HiveError {
    /// Stable machine-readable code.
    pub fn code(&self) -> &'static str {
        match self {
            HiveError::UnknownDatabase(_) => "UNKNOWN_DATABASE",
            HiveError::UnknownTable(_) => "UNKNOWN_TABLE",
            HiveError::TableExists(_) => "TABLE_EXISTS",
            HiveError::UnknownColumn { .. } => "UNKNOWN_COLUMN",
            HiveError::UnsupportedType { .. } => "UNSUPPORTED_TYPE",
            HiveError::Parse(_) => "PARSE_ERROR",
            HiveError::SerDe { .. } => "SERDE_ERROR",
            HiveError::SchemaMismatch { .. } => "SCHEMA_MISMATCH",
            HiveError::Storage(_) => "STORAGE_ERROR",
            HiveError::Arity { .. } => "ARITY_MISMATCH",
            HiveError::MetastoreUnavailable(_) => "METASTORE_UNAVAILABLE",
            HiveError::MetastoreTimeout { .. } => "METASTORE_TIMEOUT",
            HiveError::MetastoreCorrupt { .. } => "THRIFT_PROTOCOL_ERROR",
        }
    }
}

impl From<HiveError> for InteractionError {
    fn from(e: HiveError) -> InteractionError {
        let kind = match &e {
            HiveError::UnsupportedType { .. } => ErrorKind::Unsupported,
            HiveError::SerDe { .. } | HiveError::SchemaMismatch { .. } => ErrorKind::Crash,
            HiveError::MetastoreUnavailable(_) => ErrorKind::Unavailable,
            HiveError::MetastoreTimeout { .. } => ErrorKind::Timeout,
            HiveError::MetastoreCorrupt { .. } => ErrorKind::Crash,
            _ => ErrorKind::Rejected,
        };
        InteractionError::new("minihive", kind, e.code(), e.to_string())
    }
}

impl FaultPoint for HiveError {
    const CHANNEL: Channel = Channel::Metastore;

    fn materialize(fault: &InjectedFault) -> HiveError {
        match fault.kind {
            FaultKind::Unavailable => {
                HiveError::MetastoreUnavailable(format!("injected on {}", fault.op))
            }
            FaultKind::Timeout { ms } | FaultKind::Latency { ms } => HiveError::MetastoreTimeout {
                op: fault.op.clone(),
                ms,
            },
            FaultKind::CorruptPayload => HiveError::MetastoreCorrupt {
                op: fault.op.clone(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serde_errors_surface_as_crashes() {
        let e = HiveError::SerDe {
            format: "avro-sim",
            message: "bad".into(),
        };
        let ie: InteractionError = e.into();
        assert_eq!(ie.kind, ErrorKind::Crash);
    }
}
