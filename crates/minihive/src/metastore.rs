//! The Hive metastore: databases, table definitions, and warehouse layout.
//!
//! Hive identifiers are **case-insensitive**: the metastore stores table,
//! column, and struct-field names in lowercase. That is correct per Hive's
//! specification — and the downstream half of the case-sensitivity
//! discrepancies (HIVE-26533, SPARK-40409, D14), because Spark's native
//! schemas are case-*sensitive*.

use crate::error::HiveError;
use crate::types::HiveType;
use csi_core::boundary::{BoundaryCall, CrossingContext};
use csi_core::fault::{Channel, InjectionRegistry};
use minihdfs::{HdfsPath, MiniHdfs};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;

/// The warehouse file system shared between Hive and its upstreams.
pub type SharedFs = Arc<Mutex<MiniHdfs>>;

/// Storage format of a table.
///
/// The serializer is fixed **when the table is created** and cannot be
/// changed afterwards — the property behind the "exposing internal
/// configurations of the downstream" problem class of Section 8.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum StorageFormat {
    /// ORC (the default).
    Orc,
    /// Parquet.
    Parquet,
    /// Avro.
    Avro,
}

impl StorageFormat {
    /// All formats, in the paper's order.
    pub const ALL: [StorageFormat; 3] = [
        StorageFormat::Orc,
        StorageFormat::Parquet,
        StorageFormat::Avro,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StorageFormat::Orc => "ORC",
            StorageFormat::Parquet => "PARQUET",
            StorageFormat::Avro => "AVRO",
        }
    }

    /// Parses a `STORED AS` clause; `None` selects the default (ORC).
    pub fn from_stored_as(s: Option<&str>) -> Result<StorageFormat, HiveError> {
        match s.map(str::to_ascii_uppercase).as_deref() {
            None | Some("ORC") => Ok(StorageFormat::Orc),
            Some("PARQUET") => Ok(StorageFormat::Parquet),
            Some("AVRO") => Ok(StorageFormat::Avro),
            Some(other) => Err(HiveError::UnsupportedType {
                ty: format!("storage format {other}"),
            }),
        }
    }

    /// File extension used in the warehouse.
    pub fn extension(self) -> &'static str {
        match self {
            StorageFormat::Orc => "orc",
            StorageFormat::Parquet => "parquet",
            StorageFormat::Avro => "avro",
        }
    }
}

/// A column definition as stored by the metastore (lowercase name).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnDef {
    /// Lowercase column name.
    pub name: String,
    /// Column type.
    pub hive_type: HiveType,
}

/// A table definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableDef {
    /// Lowercase table name.
    pub name: String,
    /// Columns, in order.
    pub columns: Vec<ColumnDef>,
    /// Storage format, fixed at creation.
    pub format: StorageFormat,
    /// Warehouse directory of the table's data files.
    pub location: HdfsPath,
    /// Free-form table properties.
    pub properties: BTreeMap<String, String>,
}

impl TableDef {
    /// Case-insensitive column lookup; returns the column index.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }
}

/// The metastore.
#[derive(Debug)]
pub struct Metastore {
    databases: BTreeMap<String, BTreeMap<String, TableDef>>,
    warehouse_root: HdfsPath,
    next_part: u64,
    crossing: Option<CrossingContext>,
}

impl Default for Metastore {
    fn default() -> Metastore {
        Metastore::new()
    }
}

impl Metastore {
    /// Creates a metastore with a `default` database rooted at
    /// `/user/hive/warehouse`.
    pub fn new() -> Metastore {
        let mut databases = BTreeMap::new();
        databases.insert("default".to_string(), BTreeMap::new());
        Metastore {
            databases,
            warehouse_root: HdfsPath::parse("/user/hive/warehouse").expect("static path"),
            next_part: 0,
            crossing: None,
        }
    }

    /// Attaches a fault-injection registry by wrapping it in a tracing
    /// [`CrossingContext`]; every metastore RPC entry point routes through
    /// it.
    pub fn set_injection(&mut self, registry: InjectionRegistry) {
        self.set_crossing(CrossingContext::with_registry(registry));
    }

    /// Attaches the deployment's crossing context; every metastore RPC
    /// entry point crosses the [`Channel::Metastore`] boundary through it.
    pub fn set_crossing(&mut self, crossing: CrossingContext) {
        self.crossing = Some(crossing);
    }

    /// The metastore-RPC boundary crossing at the entry of `op`.
    fn cross(&self, op: &str, payload: &str) -> Result<(), HiveError> {
        match &self.crossing {
            Some(ctx) => ctx.cross(BoundaryCall::new(Channel::Metastore, op).with_payload(payload)),
            None => Ok(()),
        }
    }

    /// The warehouse root directory.
    pub fn warehouse_root(&self) -> &HdfsPath {
        &self.warehouse_root
    }

    /// Restores the metastore to its just-constructed state — only the
    /// `default` database, no tables, and the part counter back at zero —
    /// while keeping the attached crossing context.
    ///
    /// This is the metastore half of deployment recycling: `next_part`
    /// numbers leak into warehouse file paths (and from there into
    /// engine error messages), so a pooled deployment that skipped this
    /// reset would produce observably different diagnostics than a fresh
    /// one.
    pub fn reset(&mut self) {
        let crossing = self.crossing.take();
        *self = Metastore::new();
        self.crossing = crossing;
    }

    /// Creates a database. Idempotent.
    pub fn create_database(&mut self, name: &str) {
        self.databases.entry(name.to_ascii_lowercase()).or_default();
    }

    /// Creates a table in a database.
    ///
    /// Table and column names are lower-cased (silently — Hive's documented
    /// case-insensitivity). Duplicate names, after folding, collide.
    pub fn create_table(
        &mut self,
        db: &str,
        name: &str,
        columns: Vec<(String, HiveType)>,
        format: StorageFormat,
        if_not_exists: bool,
    ) -> Result<&TableDef, HiveError> {
        self.cross("create_table", &format!("{db}.{name}"))?;
        let db_key = db.to_ascii_lowercase();
        let table_key = name.to_ascii_lowercase();
        let location = self.warehouse_root.join(&table_key);
        let tables = self
            .databases
            .get_mut(&db_key)
            .ok_or_else(|| HiveError::UnknownDatabase(db.to_string()))?;
        if tables.contains_key(&table_key) {
            if if_not_exists {
                return Ok(&tables[&table_key]);
            }
            return Err(HiveError::TableExists(table_key));
        }
        let def = TableDef {
            name: table_key.clone(),
            columns: columns
                .into_iter()
                .map(|(n, t)| ColumnDef {
                    name: n.to_ascii_lowercase(),
                    hive_type: t,
                })
                .collect(),
            format,
            location,
            properties: BTreeMap::new(),
        };
        tables.insert(table_key.clone(), def);
        Ok(&tables[&table_key])
    }

    /// Looks a table up, case-insensitively.
    pub fn get_table(&self, db: &str, name: &str) -> Result<&TableDef, HiveError> {
        self.cross("get_table", &format!("{db}.{name}"))?;
        self.databases
            .get(&db.to_ascii_lowercase())
            .ok_or_else(|| HiveError::UnknownDatabase(db.to_string()))?
            .get(&name.to_ascii_lowercase())
            .ok_or_else(|| HiveError::UnknownTable(name.to_string()))
    }

    /// Sets a table property.
    pub fn set_table_property(
        &mut self,
        db: &str,
        name: &str,
        key: &str,
        value: &str,
    ) -> Result<(), HiveError> {
        self.cross("set_table_property", &format!("{db}.{name}#{key}"))?;
        let t = self
            .databases
            .get_mut(&db.to_ascii_lowercase())
            .ok_or_else(|| HiveError::UnknownDatabase(db.to_string()))?
            .get_mut(&name.to_ascii_lowercase())
            .ok_or_else(|| HiveError::UnknownTable(name.to_string()))?;
        t.properties.insert(key.to_string(), value.to_string());
        Ok(())
    }

    /// Appends a column to an existing table (schema evolution, as
    /// `ALTER TABLE ... ADD COLUMNS` does).
    ///
    /// Old data files simply lack the column; readers fill it with NULL.
    /// Note that this changes only the *Hive* schema — any case-preserving
    /// schema an upstream cached in table properties goes stale, the
    /// evolution hazard of SPARK-21841-style issues.
    pub fn add_column(
        &mut self,
        db: &str,
        table: &str,
        name: &str,
        hive_type: HiveType,
    ) -> Result<(), HiveError> {
        self.cross("add_column", &format!("{db}.{table}.{name}"))?;
        let t = self
            .databases
            .get_mut(&db.to_ascii_lowercase())
            .ok_or_else(|| HiveError::UnknownDatabase(db.to_string()))?
            .get_mut(&table.to_ascii_lowercase())
            .ok_or_else(|| HiveError::UnknownTable(table.to_string()))?;
        let lower = name.to_ascii_lowercase();
        if t.columns.iter().any(|c| c.name == lower) {
            return Err(HiveError::TableExists(format!("{table}.{lower}")));
        }
        t.columns.push(ColumnDef {
            name: lower,
            hive_type,
        });
        Ok(())
    }

    /// Drops a table (and its warehouse files).
    pub fn drop_table(
        &mut self,
        db: &str,
        name: &str,
        if_exists: bool,
        fs: &mut MiniHdfs,
    ) -> Result<(), HiveError> {
        self.cross("drop_table", &format!("{db}.{name}"))?;
        let db_key = db.to_ascii_lowercase();
        let table_key = name.to_ascii_lowercase();
        let tables = self
            .databases
            .get_mut(&db_key)
            .ok_or_else(|| HiveError::UnknownDatabase(db.to_string()))?;
        match tables.remove(&table_key) {
            Some(def) => {
                if fs.exists(&def.location) {
                    fs.delete(&def.location, true)
                        .map_err(|e| HiveError::Storage(e.to_string()))?;
                }
                Ok(())
            }
            None if if_exists => Ok(()),
            None => Err(HiveError::UnknownTable(name.to_string())),
        }
    }

    /// Lists table names in a database.
    pub fn list_tables(&self, db: &str) -> Result<Vec<&str>, HiveError> {
        self.cross("list_tables", db)?;
        Ok(self
            .databases
            .get(&db.to_ascii_lowercase())
            .ok_or_else(|| HiveError::UnknownDatabase(db.to_string()))?
            .keys()
            .map(String::as_str)
            .collect())
    }

    /// Allocates the path of the next data file for a table.
    pub fn next_part_path(&mut self, table: &TableDef) -> HdfsPath {
        let part = self.next_part;
        self.next_part += 1;
        table
            .location
            .join(&format!("part-{part:05}.{}", table.format.extension()))
    }

    /// Lists a table's data files, oldest first.
    pub fn table_data_files(
        &self,
        table: &TableDef,
        fs: &MiniHdfs,
    ) -> Result<Vec<HdfsPath>, HiveError> {
        self.cross("table_data_files", &table.location.to_string())?;
        if !fs.exists(&table.location) {
            return Ok(Vec::new());
        }
        let mut files: Vec<HdfsPath> = fs
            .list_status(&table.location)
            .map_err(|e| HiveError::Storage(e.to_string()))?
            .into_iter()
            .filter(|s| !s.is_dir)
            .map(|s| s.path)
            .collect();
        files.sort();
        Ok(files)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_table_lowercases_identifiers() {
        let mut ms = Metastore::new();
        let def = ms
            .create_table(
                "default",
                "MyTable",
                vec![("CamelCol".to_string(), HiveType::Int)],
                StorageFormat::Orc,
                false,
            )
            .unwrap();
        assert_eq!(def.name, "mytable");
        assert_eq!(def.columns[0].name, "camelcol");
        // Lookup is case-insensitive.
        assert!(ms.get_table("DEFAULT", "MYTABLE").is_ok());
        let t = ms.get_table("default", "mytable").unwrap();
        assert_eq!(t.column_index("CAMELCOL"), Some(0));
        assert_eq!(t.column_index("nope"), None);
    }

    #[test]
    fn duplicate_tables_collide_after_case_folding() {
        let mut ms = Metastore::new();
        ms.create_table("default", "T", vec![], StorageFormat::Orc, false)
            .unwrap();
        assert!(matches!(
            ms.create_table("default", "t", vec![], StorageFormat::Orc, false),
            Err(HiveError::TableExists(_))
        ));
        // IF NOT EXISTS suppresses the error.
        assert!(ms
            .create_table("default", "t", vec![], StorageFormat::Orc, true)
            .is_ok());
    }

    #[test]
    fn drop_table_removes_warehouse_files() {
        let mut ms = Metastore::new();
        let mut fs = MiniHdfs::with_datanodes(1);
        let def = ms
            .create_table("default", "t", vec![], StorageFormat::Orc, false)
            .unwrap()
            .clone();
        let part = ms.next_part_path(&def);
        fs.create(&part, b"data").unwrap();
        assert_eq!(ms.table_data_files(&def, &fs).unwrap().len(), 1);
        ms.drop_table("default", "t", false, &mut fs).unwrap();
        assert!(!fs.exists(&def.location));
        assert!(matches!(
            ms.drop_table("default", "t", false, &mut fs),
            Err(HiveError::UnknownTable(_))
        ));
        ms.drop_table("default", "t", true, &mut fs).unwrap();
    }

    #[test]
    fn add_column_evolves_the_schema() {
        let mut ms = Metastore::new();
        ms.create_table(
            "default",
            "t",
            vec![("a".to_string(), HiveType::Int)],
            StorageFormat::Orc,
            false,
        )
        .unwrap();
        ms.add_column("default", "t", "NewCol", HiveType::Str)
            .unwrap();
        let def = ms.get_table("default", "t").unwrap();
        assert_eq!(def.columns.len(), 2);
        assert_eq!(def.columns[1].name, "newcol"); // Lowercased.
                                                   // Duplicate (after folding) is rejected.
        assert!(ms
            .add_column("default", "t", "NEWCOL", HiveType::Int)
            .is_err());
        assert!(ms
            .add_column("default", "nope", "x", HiveType::Int)
            .is_err());
    }

    #[test]
    fn storage_format_parsing() {
        assert_eq!(
            StorageFormat::from_stored_as(None).unwrap(),
            StorageFormat::Orc
        );
        assert_eq!(
            StorageFormat::from_stored_as(Some("avro")).unwrap(),
            StorageFormat::Avro
        );
        assert!(StorageFormat::from_stored_as(Some("CSV")).is_err());
    }

    #[test]
    fn part_paths_are_unique_and_extension_typed() {
        let mut ms = Metastore::new();
        let def = ms
            .create_table("default", "t", vec![], StorageFormat::Parquet, false)
            .unwrap()
            .clone();
        let a = ms.next_part_path(&def);
        let b = ms.next_part_path(&def);
        assert_ne!(a, b);
        assert!(a.to_string().ends_with(".parquet"));
    }

    #[test]
    fn unknown_database_errors() {
        let mut ms = Metastore::new();
        assert!(matches!(
            ms.create_table("nope", "t", vec![], StorageFormat::Orc, false),
            Err(HiveError::UnknownDatabase(_))
        ));
        assert!(ms.get_table("nope", "t").is_err());
        assert!(ms.list_tables("nope").is_err());
        ms.create_database("Analytics");
        assert!(ms.list_tables("analytics").unwrap().is_empty());
    }
}
