//! Hive's SerDe layer over the `miniformats` container formats.
//!
//! This is Hive's own, independently-written serializer stack (Finding 6:
//! systems implement ad-hoc serialization on shared wire formats). Its
//! documented behaviors include:
//!
//! - small integers are widened to `int` where the format lacks 8/16-bit
//!   types (Avro), with a **logical type annotation** recorded so Hive's
//!   reader can narrow them back;
//! - decimals are stored with the **table-declared scale**, and the reader
//!   *validates* the stored scale against the declaration — files written
//!   with a different scale are rejected (the downstream half of
//!   SPARK-39158 / D02);
//! - legacy ORC cannot represent pre-1900 timestamps: Hive writes NULL with
//!   a log line (the downstream half of HIVE-26528 / D06);
//! - Parquet timestamps before the 1582 Gregorian cutover are written in
//!   the **Julian calendar** with a file-metadata marker; Hive's reader
//!   honors the marker (the downstream half of D07);
//! - readers resolve columns **case-insensitively** and fill missing
//!   columns with NULL.

use crate::error::HiveError;
use crate::metastore::{ColumnDef, StorageFormat};
use crate::types::HiveType;
use csi_core::column::{ColumnValues, Validity, ValueColumn};
use csi_core::diag::DiagHandle;
use csi_core::value::{parse_date, Decimal, Value};
use miniformats::batch::{Bitmap, Column as BatchColumn, ColumnData, RecordBatch, VarBuffer};
use miniformats::physical::{FileSchema, PhysicalColumn, PhysicalType, PhysicalValue};
use miniformats::{avro, orc, parquet, FormatError};

/// Microseconds of the 1582-10-15 Gregorian cutover.
pub fn gregorian_cutover_micros() -> i64 {
    parse_date("1582-10-15").expect("static date") as i64 * 86_400_000_000
}

/// Microseconds of 1900-01-01, the lower bound of legacy ORC timestamps.
pub fn orc_min_timestamp_micros() -> i64 {
    parse_date("1900-01-01").expect("static date") as i64 * 86_400_000_000
}

/// The Julian-vs-proleptic-Gregorian shift at the 1582 cutover: 10 days.
pub const JULIAN_SHIFT_MICROS: i64 = 10 * 86_400_000_000;

/// Maps a Hive type to its physical type in a given format.
pub fn physical_type_for(format: StorageFormat, ty: &HiveType) -> PhysicalType {
    match ty {
        HiveType::Boolean => PhysicalType::Bool,
        HiveType::TinyInt => match format {
            StorageFormat::Avro => PhysicalType::Int32, // Avro has no int8.
            _ => PhysicalType::Int8,
        },
        HiveType::SmallInt => match format {
            StorageFormat::Avro => PhysicalType::Int32,
            _ => PhysicalType::Int16,
        },
        HiveType::Int => PhysicalType::Int32,
        HiveType::BigInt => PhysicalType::Int64,
        HiveType::Float => PhysicalType::Float32,
        HiveType::Double => PhysicalType::Float64,
        HiveType::Decimal(_, _) => PhysicalType::Decimal,
        HiveType::Str | HiveType::Char(_) | HiveType::Varchar(_) => PhysicalType::Utf8,
        HiveType::Binary => PhysicalType::Bytes,
        HiveType::Date => PhysicalType::Int32,
        HiveType::Timestamp => PhysicalType::Int64,
        HiveType::Array(e) => PhysicalType::List(Box::new(physical_type_for(format, e))),
        HiveType::Map(k, v) => PhysicalType::Map(
            Box::new(physical_type_for(format, k)),
            Box::new(physical_type_for(format, v)),
        ),
        HiveType::Struct(fields) => PhysicalType::Struct(
            fields
                .iter()
                .map(|(n, t)| (n.clone(), physical_type_for(format, t)))
                .collect(),
        ),
    }
}

/// The logical annotation Hive records for a column type, if any.
pub fn logical_annotation(ty: &HiveType) -> Option<String> {
    match ty {
        HiveType::TinyInt => Some("tinyint".into()),
        HiveType::SmallInt => Some("smallint".into()),
        HiveType::Decimal(p, s) => Some(format!("decimal({p},{s})")),
        HiveType::Char(n) => Some(format!("char({n})")),
        HiveType::Varchar(n) => Some(format!("varchar({n})")),
        HiveType::Date => Some("date".into()),
        HiveType::Timestamp => Some("timestamp".into()),
        _ => None,
    }
}

fn serde_err(format: StorageFormat, e: FormatError) -> HiveError {
    HiveError::SerDe {
        format: match format {
            StorageFormat::Orc => "orc-sim",
            StorageFormat::Parquet => "parquet-sim",
            StorageFormat::Avro => "avro-sim",
        },
        message: e.to_string(),
    }
}

/// Serializes coerced rows into a table data file.
///
/// Thin row-API adapter over [`write_columns`]: rows are transposed into
/// typed column buffers and serialized columnar. Output bytes are
/// identical to [`write_file_rows`]; on files with multiple columns and
/// multiple invalid cells the reported error (and diagnostic order) is
/// column-major rather than row-major.
pub fn write_file(
    format: StorageFormat,
    columns: &[ColumnDef],
    rows: &[Vec<Value>],
    diag: &DiagHandle,
) -> Result<Vec<u8>, HiveError> {
    let mut cols: Vec<ValueColumn> = columns
        .iter()
        .map(|c| ValueColumn::with_capacity(&c.hive_type.to_data_type(), rows.len()))
        .collect();
    for row in rows {
        if row.len() != columns.len() {
            return Err(HiveError::Arity {
                expected: columns.len(),
                got: row.len(),
            });
        }
        for (col, v) in cols.iter_mut().zip(row) {
            col.push(v);
        }
    }
    write_columns(format, columns, &cols, diag)
}

/// Serializes typed column buffers directly — the bulk hot path. Flat
/// columns move buffer-to-buffer; nested or type-skewed columns replay
/// the per-cell converter with identical errors and diagnostics.
pub fn write_columns(
    format: StorageFormat,
    columns: &[ColumnDef],
    cols: &[ValueColumn],
    diag: &DiagHandle,
) -> Result<Vec<u8>, HiveError> {
    if cols.len() != columns.len() {
        return Err(HiveError::Arity {
            expected: columns.len(),
            got: cols.len(),
        });
    }
    let mut schema = FileSchema::default();
    for col in columns {
        schema.columns.push(PhysicalColumn {
            name: col.name.clone(),
            ty: physical_type_for(format, &col.hive_type),
            logical: logical_annotation(&col.hive_type),
        });
    }
    schema.meta.insert("writer".into(), "hive".into());
    if format == StorageFormat::Parquet {
        schema
            .meta
            .insert(parquet::TIMESTAMP_REBASE_KEY.into(), "julian".into());
    }
    let mut batch = RecordBatch {
        schema,
        columns: Vec::with_capacity(cols.len()),
    };
    for (def, col) in columns.iter().zip(cols) {
        batch
            .columns
            .push(column_to_physical(format, def, col, diag)?);
    }
    let encode = match format {
        StorageFormat::Orc => orc::encode_batch(&batch),
        StorageFormat::Parquet => parquet::encode_batch(&batch),
        StorageFormat::Avro => avro::encode_batch(&batch),
    };
    encode.map_err(|e| serde_err(format, e))
}

/// Converts one typed column into its physical batch column. Each fast
/// path is the vectorized image of the matching [`to_physical`] arm,
/// including Hive's write-time semantics: declared-scale decimal rescale,
/// pre-1900 ORC timestamps written as NULL with a warning, and the
/// Julian rebase for pre-cutover Parquet timestamps.
fn column_to_physical(
    format: StorageFormat,
    def: &ColumnDef,
    col: &ValueColumn,
    diag: &DiagHandle,
) -> Result<BatchColumn, HiveError> {
    let validity = || Bitmap::from_raw(col.validity().words().to_vec(), col.len());
    let avro = format == StorageFormat::Avro;
    let data = match (&def.hive_type, col.values()) {
        (HiveType::Boolean, ColumnValues::Boolean(v)) => ColumnData::Bool(v.clone()),
        (HiveType::TinyInt, ColumnValues::Byte(v)) if avro => {
            ColumnData::Int32(v.iter().map(|x| *x as i32).collect())
        }
        (HiveType::TinyInt, ColumnValues::Byte(v)) => ColumnData::Int8(v.clone()),
        (HiveType::SmallInt, ColumnValues::Short(v)) if avro => {
            ColumnData::Int32(v.iter().map(|x| *x as i32).collect())
        }
        (HiveType::SmallInt, ColumnValues::Short(v)) => ColumnData::Int16(v.clone()),
        (HiveType::Int, ColumnValues::Int(v)) => ColumnData::Int32(v.clone()),
        (HiveType::BigInt, ColumnValues::Long(v)) => ColumnData::Int64(v.clone()),
        (HiveType::Float, ColumnValues::Float(v)) => ColumnData::Float32(v.clone()),
        (HiveType::Double, ColumnValues::Double(v)) => ColumnData::Float64(v.clone()),
        // Hive stores the table-declared scale, rescaling if needed.
        (
            HiveType::Decimal(p, s),
            ColumnValues::Decimal {
                unscaled, scale, ..
            },
        ) => {
            let mut out_unscaled = Vec::with_capacity(unscaled.len());
            let mut out_scale = Vec::with_capacity(unscaled.len());
            for i in 0..unscaled.len() {
                if !col.validity().get(i) {
                    out_unscaled.push(0);
                    out_scale.push(0);
                    continue;
                }
                let d = Decimal {
                    unscaled: unscaled[i],
                    precision: Decimal::MAX_PRECISION,
                    scale: scale[i],
                };
                // `Display` for `Decimal` ignores precision, so the error
                // message matches the row path exactly.
                let rescaled = crate::value::rescale_half_up(&d, *p, *s).ok_or_else(|| {
                    HiveError::SchemaMismatch {
                        message: format!("decimal {d} does not fit decimal({p},{s})"),
                    }
                })?;
                out_unscaled.push(rescaled.unscaled);
                out_scale.push(rescaled.scale);
            }
            ColumnData::Decimal {
                unscaled: out_unscaled,
                scale: out_scale,
            }
        }
        (
            HiveType::Str | HiveType::Char(_) | HiveType::Varchar(_),
            ColumnValues::Str { offsets, bytes },
        ) => ColumnData::Utf8(VarBuffer::from_raw(offsets.clone(), bytes.clone())),
        (HiveType::Binary, ColumnValues::Binary { offsets, bytes }) => {
            ColumnData::Bytes(VarBuffer::from_raw(offsets.clone(), bytes.clone()))
        }
        (HiveType::Date, ColumnValues::Date(v)) => ColumnData::Int32(v.clone()),
        (HiveType::Timestamp, ColumnValues::Timestamp(v)) => match format {
            StorageFormat::Orc => {
                let min = orc_min_timestamp_micros();
                let mut validity = Bitmap::with_capacity(v.len());
                let mut out = Vec::with_capacity(v.len());
                for (i, us) in v.iter().enumerate() {
                    if col.validity().get(i) && *us < min {
                        // Legacy ORC cannot represent pre-1900 instants;
                        // Hive writes NULL and logs (HIVE-26528 / D06).
                        diag.warn(
                            "HIVE_ORC_LEGACY_TIMESTAMP",
                            "pre-1900 timestamp not representable in legacy ORC, writing NULL"
                                .to_string(),
                        );
                        validity.push(false);
                        out.push(0);
                    } else {
                        validity.push(col.validity().get(i));
                        out.push(*us);
                    }
                }
                return Ok(BatchColumn {
                    validity,
                    data: ColumnData::Int64(out),
                });
            }
            StorageFormat::Parquet => {
                // Julian rebase: Hive writes the hybrid-calendar
                // representation and marks the file metadata.
                let cutover = gregorian_cutover_micros();
                ColumnData::Int64(
                    v.iter()
                        .enumerate()
                        .map(|(i, us)| {
                            if col.validity().get(i) && *us < cutover {
                                *us - JULIAN_SHIFT_MICROS
                            } else {
                                *us
                            }
                        })
                        .collect(),
                )
            }
            StorageFormat::Avro => ColumnData::Int64(v.clone()),
        },
        // Nested, Mixed, and type-skewed columns replay the per-cell
        // converter (identical SchemaMismatch errors and diagnostics).
        _ => {
            let phys_ty = physical_type_for(format, &def.hive_type);
            let mut out = BatchColumn::with_capacity(&phys_ty, col.len());
            for i in 0..col.len() {
                let pv = to_physical(format, &def.hive_type, &col.get(i), diag)?;
                let ok = out.push_checked(&pv);
                debug_assert!(ok, "to_physical output conforms to physical_type_for");
            }
            return Ok(out);
        }
    };
    Ok(BatchColumn {
        validity: validity(),
        data,
    })
}

/// The retained row-at-a-time serializer: the pre-columnar baseline, kept
/// for differential testing and as the benchmark reference point.
pub fn write_file_rows(
    format: StorageFormat,
    columns: &[ColumnDef],
    rows: &[Vec<Value>],
    diag: &DiagHandle,
) -> Result<Vec<u8>, HiveError> {
    let mut schema = FileSchema::default();
    for col in columns {
        schema.columns.push(PhysicalColumn {
            name: col.name.clone(),
            ty: physical_type_for(format, &col.hive_type),
            logical: logical_annotation(&col.hive_type),
        });
    }
    schema.meta.insert("writer".into(), "hive".into());
    if format == StorageFormat::Parquet {
        schema
            .meta
            .insert(parquet::TIMESTAMP_REBASE_KEY.into(), "julian".into());
    }
    let mut out_rows = Vec::with_capacity(rows.len());
    for row in rows {
        if row.len() != columns.len() {
            return Err(HiveError::Arity {
                expected: columns.len(),
                got: row.len(),
            });
        }
        let mut out = Vec::with_capacity(row.len());
        for (col, v) in columns.iter().zip(row) {
            out.push(to_physical(format, &col.hive_type, v, diag)?);
        }
        out_rows.push(out);
    }
    let encode = match format {
        StorageFormat::Orc => orc::encode(&schema, &out_rows),
        StorageFormat::Parquet => parquet::encode(&schema, &out_rows),
        StorageFormat::Avro => avro::encode(&schema, &out_rows),
    };
    encode.map_err(|e| serde_err(format, e))
}

fn to_physical(
    format: StorageFormat,
    ty: &HiveType,
    value: &Value,
    diag: &DiagHandle,
) -> Result<PhysicalValue, HiveError> {
    if value.is_null() {
        return Ok(PhysicalValue::Null);
    }
    Ok(match (ty, value) {
        (HiveType::Boolean, Value::Boolean(b)) => PhysicalValue::Bool(*b),
        (HiveType::TinyInt, Value::Byte(v)) => match format {
            StorageFormat::Avro => PhysicalValue::Int32(*v as i32),
            _ => PhysicalValue::Int8(*v),
        },
        (HiveType::SmallInt, Value::Short(v)) => match format {
            StorageFormat::Avro => PhysicalValue::Int32(*v as i32),
            _ => PhysicalValue::Int16(*v),
        },
        (HiveType::Int, Value::Int(v)) => PhysicalValue::Int32(*v),
        (HiveType::BigInt, Value::Long(v)) => PhysicalValue::Int64(*v),
        (HiveType::Float, Value::Float(v)) => PhysicalValue::Float32(*v),
        (HiveType::Double, Value::Double(v)) => PhysicalValue::Float64(*v),
        (HiveType::Decimal(p, s), Value::Decimal(d)) => {
            // Hive stores the table-declared scale, rescaling if needed.
            let rescaled = crate::value::rescale_half_up(d, *p, *s).ok_or_else(|| {
                HiveError::SchemaMismatch {
                    message: format!("decimal {d} does not fit decimal({p},{s})"),
                }
            })?;
            PhysicalValue::Decimal {
                unscaled: rescaled.unscaled,
                scale: rescaled.scale,
            }
        }
        (HiveType::Str | HiveType::Char(_) | HiveType::Varchar(_), Value::Str(s)) => {
            PhysicalValue::Utf8(s.clone())
        }
        (HiveType::Binary, Value::Binary(b)) => PhysicalValue::Bytes(b.clone()),
        (HiveType::Date, Value::Date(d)) => PhysicalValue::Int32(*d),
        (HiveType::Timestamp, Value::Timestamp(us)) => {
            match format {
                StorageFormat::Orc if *us < orc_min_timestamp_micros() => {
                    // Legacy ORC cannot represent pre-1900 instants; Hive
                    // writes NULL and logs (HIVE-26528 / D06).
                    diag.warn(
                        "HIVE_ORC_LEGACY_TIMESTAMP",
                        "pre-1900 timestamp not representable in legacy ORC, writing NULL"
                            .to_string(),
                    );
                    PhysicalValue::Null
                }
                StorageFormat::Parquet if *us < gregorian_cutover_micros() => {
                    // Julian rebase: Hive writes the hybrid-calendar
                    // representation and marks the file metadata.
                    PhysicalValue::Int64(*us - JULIAN_SHIFT_MICROS)
                }
                _ => PhysicalValue::Int64(*us),
            }
        }
        (HiveType::Array(et), Value::Array(items)) => PhysicalValue::List(
            items
                .iter()
                .map(|v| to_physical(format, et, v, diag))
                .collect::<Result<Vec<_>, _>>()?,
        ),
        (HiveType::Map(kt, vt), Value::Map(pairs)) => PhysicalValue::Map(
            pairs
                .iter()
                .map(|(k, v)| {
                    Ok((
                        to_physical(format, kt, k, diag)?,
                        to_physical(format, vt, v, diag)?,
                    ))
                })
                .collect::<Result<Vec<_>, HiveError>>()?,
        ),
        (HiveType::Struct(fields), Value::Struct(values)) => PhysicalValue::Struct(
            fields
                .iter()
                .zip(values)
                .map(|((fname, fty), (_, v))| {
                    Ok((fname.clone(), to_physical(format, fty, v, diag)?))
                })
                .collect::<Result<Vec<_>, HiveError>>()?,
        ),
        (ty, v) => {
            return Err(HiveError::SchemaMismatch {
                message: format!("value {} does not match column type {ty}", v.signature()),
            })
        }
    })
}

/// Deserializes a table data file against the declared schema.
///
/// Thin row-API adapter over [`read_columns`]. Values and errors match
/// [`read_file_rows`]; the one intended diagnostic difference is that a
/// missing column warns **once per file** instead of once per row (the
/// row baseline re-warned for every row of a million-row file).
pub fn read_file(
    format: StorageFormat,
    columns: &[ColumnDef],
    bytes: &[u8],
    diag: &DiagHandle,
) -> Result<Vec<Vec<Value>>, HiveError> {
    let cols = read_columns(format, columns, bytes, diag)?;
    let nrows = cols.first().map_or(0, ValueColumn::len);
    let mut out = Vec::with_capacity(nrows);
    for i in 0..nrows {
        out.push(cols.iter().map(|c| c.get(i)).collect());
    }
    Ok(out)
}

/// Deserializes typed column buffers directly — the bulk read hot path.
pub fn read_columns(
    format: StorageFormat,
    columns: &[ColumnDef],
    bytes: &[u8],
    diag: &DiagHandle,
) -> Result<Vec<ValueColumn>, HiveError> {
    let batch = match format {
        StorageFormat::Orc => orc::decode_batch(bytes),
        StorageFormat::Parquet => parquet::decode_batch(bytes),
        StorageFormat::Avro => avro::decode_batch(bytes),
    }
    .map_err(|e| serde_err(format, e))?;
    let julian = batch
        .schema
        .meta
        .get(parquet::TIMESTAMP_REBASE_KEY)
        .map(String::as_str)
        == Some("julian");
    let nrows = batch.len();
    // Case-insensitive column resolution; missing columns become NULL.
    let mut out = Vec::with_capacity(columns.len());
    for def in columns {
        let col = match batch.schema.index_of_ci(&def.name) {
            Some(i) => column_from_physical(format, def, &batch.columns[i], julian, diag)?,
            None => {
                diag.warn(
                    "HIVE_MISSING_COLUMN",
                    format!("column {} missing in data file, reading NULL", def.name),
                );
                ValueColumn::nulls(&def.hive_type.to_data_type(), nrows)
            }
        };
        out.push(col);
    }
    Ok(out)
}

/// Converts one physical batch column into a typed value column. Each
/// fast path is the vectorized image of the matching [`from_physical`]
/// arm, including Hive's lenient narrowing (overflow → NULL with a
/// warning) and declared-scale decimal validation.
fn column_from_physical(
    format: StorageFormat,
    def: &ColumnDef,
    col: &BatchColumn,
    julian: bool,
    diag: &DiagHandle,
) -> Result<ValueColumn, HiveError> {
    let validity = || Validity::from_raw(col.validity.words().to_vec(), col.len());
    let values = match (&def.hive_type, &col.data) {
        (HiveType::Boolean, ColumnData::Bool(v)) => ColumnValues::Boolean(v.clone()),
        (HiveType::TinyInt, ColumnData::Int8(v)) => ColumnValues::Byte(v.clone()),
        // Hive's reader narrows widened integers back, leniently — the
        // conversion Spark's Avro reader is missing (SPARK-39075).
        (HiveType::TinyInt, ColumnData::Int32(v)) => {
            let mut validity = Validity::with_capacity(v.len());
            let mut out = Vec::with_capacity(v.len());
            for (i, x) in v.iter().enumerate() {
                if !col.validity.get(i) {
                    validity.push(false);
                    out.push(0);
                    continue;
                }
                match i8::try_from(*x) {
                    Ok(b) => {
                        validity.push(true);
                        out.push(b);
                    }
                    Err(_) => {
                        diag.warn(
                            "HIVE_NARROWING_NULL",
                            format!("int value {x} does not fit tinyint, reading NULL"),
                        );
                        validity.push(false);
                        out.push(0);
                    }
                }
            }
            return Ok(ValueColumn::from_parts(validity, ColumnValues::Byte(out)));
        }
        (HiveType::SmallInt, ColumnData::Int16(v)) => ColumnValues::Short(v.clone()),
        (HiveType::SmallInt, ColumnData::Int32(v)) => {
            let mut validity = Validity::with_capacity(v.len());
            let mut out = Vec::with_capacity(v.len());
            for (i, x) in v.iter().enumerate() {
                if !col.validity.get(i) {
                    validity.push(false);
                    out.push(0);
                    continue;
                }
                match i16::try_from(*x) {
                    Ok(s) => {
                        validity.push(true);
                        out.push(s);
                    }
                    Err(_) => {
                        diag.warn(
                            "HIVE_NARROWING_NULL",
                            format!("int value {x} does not fit smallint, reading NULL"),
                        );
                        validity.push(false);
                        out.push(0);
                    }
                }
            }
            return Ok(ValueColumn::from_parts(validity, ColumnValues::Short(out)));
        }
        (HiveType::Int, ColumnData::Int32(v)) => ColumnValues::Int(v.clone()),
        // Files written with a wider schema than the table declares.
        (HiveType::Int, ColumnData::Int8(v)) => {
            ColumnValues::Int(v.iter().map(|x| *x as i32).collect())
        }
        (HiveType::Int, ColumnData::Int16(v)) => {
            ColumnValues::Int(v.iter().map(|x| *x as i32).collect())
        }
        (HiveType::BigInt, ColumnData::Int64(v)) => ColumnValues::Long(v.clone()),
        (HiveType::BigInt, ColumnData::Int32(v)) => {
            ColumnValues::Long(v.iter().map(|x| *x as i64).collect())
        }
        (HiveType::Float, ColumnData::Float32(v)) => ColumnValues::Float(v.clone()),
        (HiveType::Double, ColumnData::Float64(v)) => ColumnValues::Double(v.clone()),
        (HiveType::Decimal(p, s), ColumnData::Decimal { unscaled, scale }) => {
            // Hive validates the stored scale against the declaration
            // (the rigidity behind SPARK-39158 / D02).
            let mut precision = Vec::with_capacity(unscaled.len());
            for i in 0..unscaled.len() {
                if !col.validity.get(i) {
                    precision.push(1);
                    continue;
                }
                if scale[i] != *s {
                    return Err(HiveError::SerDe {
                        format: "decimal-reader",
                        message: format!(
                            "file stores decimal scale {} but table declares decimal({p},{s})",
                            scale[i]
                        ),
                    });
                }
                // Digits computed inline; the checked constructor is only
                // replayed when a bound trips, for its exact error.
                let n = unscaled[i].unsigned_abs();
                let digits = (match u64::try_from(n) {
                    Ok(0) => 1,
                    Ok(v) => v.ilog10() + 1,
                    Err(_) => n.ilog10() + 1,
                }) as u8;
                if *p == 0 || *p > Decimal::MAX_PRECISION || *s > *p || digits > *p {
                    Decimal::new(unscaled[i], *p, *s).map_err(|e| HiveError::SerDe {
                        format: "decimal-reader",
                        message: e.to_string(),
                    })?;
                }
                precision.push(*p);
            }
            ColumnValues::Decimal {
                unscaled: unscaled.clone(),
                precision,
                scale: scale.clone(),
            }
        }
        (HiveType::Str | HiveType::Char(_) | HiveType::Varchar(_), ColumnData::Utf8(buf)) => {
            ColumnValues::Str {
                offsets: buf.offsets().to_vec(),
                bytes: buf.raw_bytes().to_vec(),
            }
        }
        (HiveType::Binary, ColumnData::Bytes(buf)) => ColumnValues::Binary {
            offsets: buf.offsets().to_vec(),
            bytes: buf.raw_bytes().to_vec(),
        },
        (HiveType::Date, ColumnData::Int32(v)) => ColumnValues::Date(v.clone()),
        (HiveType::Timestamp, ColumnData::Int64(v)) => {
            let cutover = gregorian_cutover_micros();
            let shift = format == StorageFormat::Parquet && julian;
            ColumnValues::Timestamp(
                v.iter()
                    .map(|us| {
                        if shift && *us < cutover {
                            *us + JULIAN_SHIFT_MICROS
                        } else {
                            *us
                        }
                    })
                    .collect(),
            )
        }
        // Nested values and type-skewed buffers replay the per-cell
        // reader (identical errors and diagnostics).
        _ => {
            let mut out = ValueColumn::with_capacity(&def.hive_type.to_data_type(), col.len());
            for i in 0..col.len() {
                let v = from_physical(format, &def.hive_type, &col.get(i), julian, diag)?;
                out.push(&v);
            }
            return Ok(out);
        }
    };
    Ok(ValueColumn::from_parts(validity(), values))
}

/// The retained row-at-a-time deserializer: the pre-columnar baseline,
/// kept for differential testing and as the benchmark reference point.
pub fn read_file_rows(
    format: StorageFormat,
    columns: &[ColumnDef],
    bytes: &[u8],
    diag: &DiagHandle,
) -> Result<Vec<Vec<Value>>, HiveError> {
    let (schema, raw_rows) = match format {
        StorageFormat::Orc => orc::decode(bytes),
        StorageFormat::Parquet => parquet::decode(bytes),
        StorageFormat::Avro => avro::decode(bytes),
    }
    .map_err(|e| serde_err(format, e))?;
    let julian = schema
        .meta
        .get(parquet::TIMESTAMP_REBASE_KEY)
        .map(String::as_str)
        == Some("julian");
    // Case-insensitive column resolution; missing columns become NULL.
    let mapping: Vec<Option<usize>> = columns
        .iter()
        .map(|c| schema.index_of_ci(&c.name))
        .collect();
    let mut out = Vec::with_capacity(raw_rows.len());
    for raw in &raw_rows {
        let mut row = Vec::with_capacity(columns.len());
        for (col, idx) in columns.iter().zip(&mapping) {
            let value = match idx {
                Some(i) => from_physical(format, &col.hive_type, &raw[*i], julian, diag)?,
                None => {
                    diag.warn(
                        "HIVE_MISSING_COLUMN",
                        format!("column {} missing in data file, reading NULL", col.name),
                    );
                    Value::Null
                }
            };
            row.push(value);
        }
        out.push(row);
    }
    Ok(out)
}

fn from_physical(
    format: StorageFormat,
    ty: &HiveType,
    value: &PhysicalValue,
    julian: bool,
    diag: &DiagHandle,
) -> Result<Value, HiveError> {
    if matches!(value, PhysicalValue::Null) {
        return Ok(Value::Null);
    }
    Ok(match (ty, value) {
        (HiveType::Boolean, PhysicalValue::Bool(b)) => Value::Boolean(*b),
        (HiveType::TinyInt, PhysicalValue::Int8(v)) => Value::Byte(*v),
        // Hive's reader narrows widened integers back, leniently — the
        // conversion Spark's Avro reader is missing (SPARK-39075).
        (HiveType::TinyInt, PhysicalValue::Int32(v)) => match i8::try_from(*v) {
            Ok(b) => Value::Byte(b),
            Err(_) => {
                diag.warn(
                    "HIVE_NARROWING_NULL",
                    format!("int value {v} does not fit tinyint, reading NULL"),
                );
                Value::Null
            }
        },
        (HiveType::SmallInt, PhysicalValue::Int16(v)) => Value::Short(*v),
        (HiveType::SmallInt, PhysicalValue::Int32(v)) => match i16::try_from(*v) {
            Ok(s) => Value::Short(s),
            Err(_) => {
                diag.warn(
                    "HIVE_NARROWING_NULL",
                    format!("int value {v} does not fit smallint, reading NULL"),
                );
                Value::Null
            }
        },
        (HiveType::Int, PhysicalValue::Int32(v)) => Value::Int(*v),
        // Files written with a wider schema than the table declares.
        (HiveType::Int, PhysicalValue::Int8(v)) => Value::Int(*v as i32),
        (HiveType::Int, PhysicalValue::Int16(v)) => Value::Int(*v as i32),
        (HiveType::BigInt, PhysicalValue::Int64(v)) => Value::Long(*v),
        (HiveType::BigInt, PhysicalValue::Int32(v)) => Value::Long(*v as i64),
        (HiveType::Float, PhysicalValue::Float32(v)) => Value::Float(*v),
        (HiveType::Double, PhysicalValue::Float64(v)) => Value::Double(*v),
        (HiveType::Decimal(p, s), PhysicalValue::Decimal { unscaled, scale }) => {
            // Hive validates the stored scale against the declaration
            // (the rigidity behind SPARK-39158 / D02).
            if *scale != *s {
                return Err(HiveError::SerDe {
                    format: "decimal-reader",
                    message: format!(
                        "file stores decimal scale {scale} but table declares decimal({p},{s})"
                    ),
                });
            }
            Value::Decimal(
                Decimal::new(*unscaled, *p, *s).map_err(|e| HiveError::SerDe {
                    format: "decimal-reader",
                    message: e.to_string(),
                })?,
            )
        }
        (HiveType::Str | HiveType::Char(_) | HiveType::Varchar(_), PhysicalValue::Utf8(s)) => {
            Value::Str(s.clone())
        }
        (HiveType::Binary, PhysicalValue::Bytes(b)) => Value::Binary(b.clone()),
        (HiveType::Date, PhysicalValue::Int32(d)) => Value::Date(*d),
        (HiveType::Timestamp, PhysicalValue::Int64(us)) => {
            let adjusted =
                if format == StorageFormat::Parquet && julian && *us < gregorian_cutover_micros() {
                    *us + JULIAN_SHIFT_MICROS
                } else {
                    *us
                };
            Value::Timestamp(adjusted)
        }
        (HiveType::Array(et), PhysicalValue::List(items)) => Value::Array(
            items
                .iter()
                .map(|v| from_physical(format, et, v, julian, diag))
                .collect::<Result<Vec<_>, _>>()?,
        ),
        (HiveType::Map(kt, vt), PhysicalValue::Map(pairs)) => Value::Map(
            pairs
                .iter()
                .map(|(k, v)| {
                    Ok((
                        from_physical(format, kt, k, julian, diag)?,
                        from_physical(format, vt, v, julian, diag)?,
                    ))
                })
                .collect::<Result<Vec<_>, HiveError>>()?,
        ),
        (HiveType::Struct(fields), PhysicalValue::Struct(values)) => {
            // Field resolution is case-insensitive; Hive reports its own
            // (lowercase) field names in the result.
            let mut out = Vec::with_capacity(fields.len());
            for (fname, fty) in fields {
                let found = values.iter().find(|(n, _)| n.eq_ignore_ascii_case(fname));
                let v = match found {
                    Some((_, v)) => from_physical(format, fty, v, julian, diag)?,
                    None => Value::Null,
                };
                out.push((fname.clone(), v));
            }
            Value::Struct(out)
        }
        (ty, v) => {
            return Err(HiveError::SerDe {
                format: "hive-reader",
                message: format!("cannot read physical {v:?} as {ty}"),
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use csi_core::diag::DiagSink;
    use csi_core::value::parse_timestamp;

    fn cols(defs: &[(&str, HiveType)]) -> Vec<ColumnDef> {
        defs.iter()
            .map(|(n, t)| ColumnDef {
                name: n.to_string(),
                hive_type: t.clone(),
            })
            .collect()
    }

    fn roundtrip(
        format: StorageFormat,
        columns: &[ColumnDef],
        rows: Vec<Vec<Value>>,
    ) -> Vec<Vec<Value>> {
        let sink = DiagSink::new();
        let h = sink.handle("minihive");
        let bytes = write_file(format, columns, &rows, &h).unwrap();
        read_file(format, columns, &bytes, &h).unwrap()
    }

    #[test]
    fn primitive_round_trip_all_formats() {
        let columns = cols(&[
            ("b", HiveType::Boolean),
            ("i", HiveType::Int),
            ("l", HiveType::BigInt),
            ("f", HiveType::Double),
            ("s", HiveType::Str),
            ("d", HiveType::Date),
        ]);
        let rows = vec![vec![
            Value::Boolean(true),
            Value::Int(-5),
            Value::Long(1 << 40),
            Value::Double(2.5),
            Value::Str("hello".into()),
            Value::Date(19000),
        ]];
        for format in StorageFormat::ALL {
            assert_eq!(
                roundtrip(format, &columns, rows.clone()),
                rows,
                "{format:?}"
            );
        }
    }

    #[test]
    fn tinyint_round_trips_through_avro_via_annotation() {
        // Hive widens to int32 physically but narrows back on read.
        let columns = cols(&[("t", HiveType::TinyInt)]);
        let rows = vec![vec![Value::Byte(7)]];
        assert_eq!(roundtrip(StorageFormat::Avro, &columns, rows.clone()), rows);
        // The file really does store an int32.
        let sink = DiagSink::new();
        let h = sink.handle("minihive");
        let bytes = write_file(StorageFormat::Avro, &columns, &rows, &h).unwrap();
        let (schema, raw) = miniformats::avro::decode(&bytes).unwrap();
        assert_eq!(schema.columns[0].ty, PhysicalType::Int32);
        assert_eq!(schema.columns[0].logical.as_deref(), Some("tinyint"));
        assert_eq!(raw[0][0], PhysicalValue::Int32(7));
    }

    #[test]
    fn decimal_scale_mismatch_is_rejected_on_read() {
        // Simulate a foreign writer that stored scale 1 for a (10,2) table.
        let columns = cols(&[("d", HiveType::Decimal(10, 2))]);
        let mut schema = FileSchema::default();
        schema.columns.push(PhysicalColumn {
            name: "d".into(),
            ty: PhysicalType::Decimal,
            logical: None,
        });
        let raw = vec![vec![PhysicalValue::Decimal {
            unscaled: 15,
            scale: 1,
        }]];
        let bytes = miniformats::orc::encode(&schema, &raw).unwrap();
        let sink = DiagSink::new();
        let err = read_file(StorageFormat::Orc, &columns, &bytes, &sink.handle("h")).unwrap_err();
        assert!(err.to_string().contains("scale"), "{err}");
    }

    #[test]
    fn orc_writes_null_for_pre_1900_timestamps() {
        let columns = cols(&[("ts", HiveType::Timestamp)]);
        let old = parse_timestamp("1899-12-31 23:59:59").unwrap();
        let rows = vec![vec![Value::Timestamp(old)]];
        let sink = DiagSink::new();
        let h = sink.handle("minihive");
        let bytes = write_file(StorageFormat::Orc, &columns, &rows, &h).unwrap();
        let back = read_file(StorageFormat::Orc, &columns, &bytes, &h).unwrap();
        assert_eq!(back[0][0], Value::Null);
        assert!(sink
            .drain()
            .iter()
            .any(|d| d.code == "HIVE_ORC_LEGACY_TIMESTAMP"));
        // Modern timestamps are unaffected.
        let now = parse_timestamp("2020-06-01 12:00:00").unwrap();
        let rows = vec![vec![Value::Timestamp(now)]];
        assert_eq!(roundtrip(StorageFormat::Orc, &columns, rows.clone()), rows);
    }

    #[test]
    fn parquet_julian_rebase_round_trips_through_hive() {
        let columns = cols(&[("ts", HiveType::Timestamp)]);
        let ancient = parse_timestamp("1500-01-01 00:00:00").unwrap();
        let rows = vec![vec![Value::Timestamp(ancient)]];
        // Hive wrote it, Hive reads it: the rebase is invisible.
        assert_eq!(
            roundtrip(StorageFormat::Parquet, &columns, rows.clone()),
            rows
        );
        // But the physical file stores the shifted (Julian) value.
        let sink = DiagSink::new();
        let h = sink.handle("minihive");
        let bytes = write_file(StorageFormat::Parquet, &columns, &rows, &h).unwrap();
        let (_, raw) = miniformats::parquet::decode(&bytes).unwrap();
        assert_eq!(
            raw[0][0],
            PhysicalValue::Int64(ancient - JULIAN_SHIFT_MICROS)
        );
    }

    #[test]
    fn missing_columns_read_as_null_with_warning() {
        let write_cols = cols(&[("a", HiveType::Int)]);
        let read_cols = cols(&[("a", HiveType::Int), ("b", HiveType::Str)]);
        let sink = DiagSink::new();
        let h = sink.handle("minihive");
        let bytes =
            write_file(StorageFormat::Orc, &write_cols, &[vec![Value::Int(1)]], &h).unwrap();
        let back = read_file(StorageFormat::Orc, &read_cols, &bytes, &h).unwrap();
        assert_eq!(back[0], vec![Value::Int(1), Value::Null]);
        assert!(sink.drain().iter().any(|d| d.code == "HIVE_MISSING_COLUMN"));
    }

    #[test]
    fn column_resolution_is_case_insensitive() {
        // A foreign writer recorded "CamelCol"; Hive's table says "camelcol".
        let mut schema = FileSchema::default();
        schema.columns.push(PhysicalColumn {
            name: "CamelCol".into(),
            ty: PhysicalType::Int32,
            logical: None,
        });
        let bytes = miniformats::orc::encode(&schema, &[vec![PhysicalValue::Int32(9)]]).unwrap();
        let read_cols = cols(&[("camelcol", HiveType::Int)]);
        let sink = DiagSink::new();
        let back = read_file(StorageFormat::Orc, &read_cols, &bytes, &sink.handle("h")).unwrap();
        assert_eq!(back[0][0], Value::Int(9));
    }

    #[test]
    fn nested_values_round_trip() {
        let columns = cols(&[(
            "m",
            HiveType::Map(Box::new(HiveType::Int), Box::new(HiveType::Str)),
        )]);
        let rows = vec![vec![Value::Map(vec![(
            Value::Int(1),
            Value::Str("one".into()),
        )])]];
        for format in [StorageFormat::Orc, StorageFormat::Parquet] {
            assert_eq!(roundtrip(format, &columns, rows.clone()), rows);
        }
        // Avro rejects the non-string map key at write time (HIVE-26531).
        let sink = DiagSink::new();
        let err = write_file(StorageFormat::Avro, &columns, &rows, &sink.handle("h")).unwrap_err();
        assert!(err.to_string().contains("map keys"), "{err}");
    }

    #[test]
    fn struct_fields_resolve_case_insensitively_with_hive_names() {
        // A foreign writer stored case-preserved field names.
        let mut schema = FileSchema::default();
        schema.columns.push(PhysicalColumn {
            name: "s".into(),
            ty: PhysicalType::Struct(vec![("Inner".into(), PhysicalType::Int32)]),
            logical: None,
        });
        let raw = vec![vec![PhysicalValue::Struct(vec![(
            "Inner".into(),
            PhysicalValue::Int32(3),
        )])]];
        let bytes = miniformats::orc::encode(&schema, &raw).unwrap();
        let read_cols = cols(&[("s", HiveType::Struct(vec![("inner".into(), HiveType::Int)]))]);
        let sink = DiagSink::new();
        let back = read_file(StorageFormat::Orc, &read_cols, &bytes, &sink.handle("h")).unwrap();
        // Hive reports its own lowercase field name (D14's downstream half).
        assert_eq!(
            back[0][0],
            Value::Struct(vec![("inner".into(), Value::Int(3))])
        );
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let columns = cols(&[("a", HiveType::Int), ("b", HiveType::Int)]);
        let sink = DiagSink::new();
        let err = write_file(
            StorageFormat::Orc,
            &columns,
            &[vec![Value::Int(1)]],
            &sink.handle("h"),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            HiveError::Arity {
                expected: 2,
                got: 1
            }
        ));
    }
}
