//! Hive's value coercion semantics.
//!
//! Hive is *lenient*: a value that cannot be represented in the target
//! column type becomes NULL with a logged warning, rather than failing the
//! statement. This is correct, documented Hive behavior — and one half of
//! the "inconsistent error behavior across interfaces" discrepancies of
//! Section 8.2, because Spark's ANSI path raises where Hive coerces.

use crate::error::HiveError;
use crate::types::HiveType;
use csi_core::diag::DiagHandle;
use csi_core::value::{format_date, format_timestamp, parse_date, parse_timestamp, Decimal, Value};

/// Minimum supported DATE (0001-01-01) in days since the epoch.
pub const MIN_DATE_DAYS: i32 = -719_162;
/// Maximum supported DATE (9999-12-31) in days since the epoch.
pub const MAX_DATE_DAYS: i32 = 2_932_896;

/// Coerces a value into a Hive column type under Hive's lenient rules.
///
/// Unrepresentable values become `Value::Null`, with a warning emitted on
/// `diag`. Only structurally impossible requests (e.g. an interval value)
/// return an error.
pub fn coerce(value: &Value, ty: &HiveType, diag: &DiagHandle) -> Result<Value, HiveError> {
    let null_with = |code: &str, msg: String| {
        diag.warn(code, msg);
        Ok(Value::Null)
    };
    if value.is_null() {
        return Ok(Value::Null);
    }
    match ty {
        HiveType::Boolean => match value {
            Value::Boolean(b) => Ok(Value::Boolean(*b)),
            // Hive's lenient string-to-boolean conversion accepts several
            // spellings (the downstream half of discrepancy D12).
            Value::Str(s) => match s.trim().to_ascii_lowercase().as_str() {
                "true" | "t" | "yes" | "y" | "1" => Ok(Value::Boolean(true)),
                "false" | "f" | "no" | "n" | "0" => Ok(Value::Boolean(false)),
                other => null_with(
                    "HIVE_CAST_NULL",
                    format!("cannot convert {other:?} to boolean, writing NULL"),
                ),
            },
            Value::Byte(v) => Ok(Value::Boolean(*v != 0)),
            Value::Int(v) => Ok(Value::Boolean(*v != 0)),
            other => null_with(
                "HIVE_CAST_NULL",
                format!("cannot convert {} to boolean", other.signature()),
            ),
        },
        HiveType::TinyInt => integral(value, i8::MIN as i128, i8::MAX as i128, diag)
            .map(|o| o.map(|v| Value::Byte(v as i8)).unwrap_or(Value::Null)),
        HiveType::SmallInt => integral(value, i16::MIN as i128, i16::MAX as i128, diag)
            .map(|o| o.map(|v| Value::Short(v as i16)).unwrap_or(Value::Null)),
        HiveType::Int => integral(value, i32::MIN as i128, i32::MAX as i128, diag)
            .map(|o| o.map(|v| Value::Int(v as i32)).unwrap_or(Value::Null)),
        HiveType::BigInt => integral(value, i64::MIN as i128, i64::MAX as i128, diag)
            .map(|o| o.map(|v| Value::Long(v as i64)).unwrap_or(Value::Null)),
        HiveType::Float => match floating(value, diag)? {
            Some(f) => Ok(Value::Float(f as f32)),
            None => Ok(Value::Null),
        },
        HiveType::Double => match floating(value, diag)? {
            Some(f) => Ok(Value::Double(f)),
            None => Ok(Value::Null),
        },
        HiveType::Decimal(p, s) => {
            let parsed: Option<Decimal> = match value {
                Value::Decimal(d) => Some(*d),
                Value::Byte(v) => Decimal::new(*v as i128, 3, 0).ok(),
                Value::Short(v) => Decimal::new(*v as i128, 5, 0).ok(),
                Value::Int(v) => Decimal::new(*v as i128, 10, 0).ok(),
                Value::Long(v) => Decimal::new(*v as i128, 19, 0).ok(),
                Value::Str(text) => Decimal::parse(text.trim()).ok(),
                _ => None,
            };
            let Some(d) = parsed else {
                return null_with(
                    "HIVE_CAST_NULL",
                    format!("cannot convert {} to decimal({p},{s})", value.signature()),
                );
            };
            match rescale_half_up(&d, *p, *s) {
                Some(out) => Ok(Value::Decimal(out)),
                None => null_with(
                    "HIVE_DECIMAL_OVERFLOW",
                    format!("decimal {d} does not fit decimal({p},{s}), writing NULL"),
                ),
            }
        }
        HiveType::Str => Ok(Value::Str(render(value))),
        HiveType::Char(n) => {
            // Hive CHAR(n): truncate to n, then blank-pad to exactly n.
            let mut s = render(value);
            if s.chars().count() > *n as usize {
                s = s.chars().take(*n as usize).collect();
                diag.warn(
                    "HIVE_CHAR_TRUNCATED",
                    format!("char({n}) value truncated to {n} characters"),
                );
            }
            let pad = *n as usize - s.chars().count();
            s.extend(std::iter::repeat_n(' ', pad));
            Ok(Value::Str(s))
        }
        HiveType::Varchar(n) => {
            // Hive VARCHAR(n): silently truncate to n (documented).
            let s = render(value);
            if s.chars().count() > *n as usize {
                diag.warn(
                    "HIVE_VARCHAR_TRUNCATED",
                    format!("varchar({n}) value truncated to {n} characters"),
                );
                Ok(Value::Str(s.chars().take(*n as usize).collect()))
            } else {
                Ok(Value::Str(s))
            }
        }
        HiveType::Binary => match value {
            Value::Binary(b) => Ok(Value::Binary(b.clone())),
            Value::Str(s) => Ok(Value::Binary(s.clone().into_bytes())),
            other => null_with(
                "HIVE_CAST_NULL",
                format!("cannot convert {} to binary", other.signature()),
            ),
        },
        HiveType::Date => {
            let days = match value {
                Value::Date(d) => Some(*d),
                Value::Timestamp(us) => Some(us.div_euclid(86_400_000_000) as i32),
                Value::Str(s) => parse_date(s.trim()),
                _ => None,
            };
            match days {
                Some(d) if (MIN_DATE_DAYS..=MAX_DATE_DAYS).contains(&d) => Ok(Value::Date(d)),
                Some(d) => null_with(
                    "HIVE_DATE_OUT_OF_RANGE",
                    format!(
                        "date {} outside 0001-01-01..9999-12-31, writing NULL",
                        format_date(d)
                    ),
                ),
                None => null_with(
                    "HIVE_CAST_NULL",
                    format!("cannot convert {} to date", value.signature()),
                ),
            }
        }
        HiveType::Timestamp => {
            let micros = match value {
                Value::Timestamp(us) => Some(*us),
                Value::Date(d) => Some(*d as i64 * 86_400_000_000),
                Value::Str(s) => parse_timestamp(s.trim()),
                _ => None,
            };
            let min = MIN_DATE_DAYS as i64 * 86_400_000_000;
            let max = (MAX_DATE_DAYS as i64 + 1) * 86_400_000_000 - 1;
            match micros {
                Some(us) if (min..=max).contains(&us) => Ok(Value::Timestamp(us)),
                Some(us) => null_with(
                    "HIVE_TIMESTAMP_OUT_OF_RANGE",
                    format!(
                        "timestamp {} outside the supported range, writing NULL",
                        format_timestamp(us)
                    ),
                ),
                None => null_with(
                    "HIVE_CAST_NULL",
                    format!("cannot convert {} to timestamp", value.signature()),
                ),
            }
        }
        HiveType::Array(elem) => match value {
            Value::Array(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(coerce(item, elem, diag)?);
                }
                Ok(Value::Array(out))
            }
            other => null_with(
                "HIVE_CAST_NULL",
                format!("cannot convert {} to array", other.signature()),
            ),
        },
        HiveType::Map(kt, vt) => match value {
            Value::Map(pairs) => {
                let mut out = Vec::with_capacity(pairs.len());
                for (k, v) in pairs {
                    out.push((coerce(k, kt, diag)?, coerce(v, vt, diag)?));
                }
                Ok(Value::Map(out))
            }
            other => null_with(
                "HIVE_CAST_NULL",
                format!("cannot convert {} to map", other.signature()),
            ),
        },
        HiveType::Struct(fields) => match value {
            Value::Struct(values) if values.len() == fields.len() => {
                let mut out = Vec::with_capacity(values.len());
                for ((fname, fty), (_, v)) in fields.iter().zip(values) {
                    // Hive matches struct fields positionally on insert and
                    // stores its own (lower-cased) field names.
                    out.push((fname.clone(), coerce(v, fty, diag)?));
                }
                Ok(Value::Struct(out))
            }
            other => null_with(
                "HIVE_CAST_NULL",
                format!("cannot convert {} to struct", other.signature()),
            ),
        },
    }
}

fn integral(
    value: &Value,
    min: i128,
    max: i128,
    diag: &DiagHandle,
) -> Result<Option<i128>, HiveError> {
    let raw: Option<i128> = match value {
        Value::Byte(v) => Some(*v as i128),
        Value::Short(v) => Some(*v as i128),
        Value::Int(v) => Some(*v as i128),
        Value::Long(v) => Some(*v as i128),
        Value::Boolean(b) => Some(*b as i128),
        Value::Float(f) if f.is_finite() => Some(f.trunc() as i128),
        Value::Double(f) if f.is_finite() => Some(f.trunc() as i128),
        Value::Decimal(d) => {
            let down = d.rescale(d.precision, 0).ok();
            down.map(|x| x.unscaled)
        }
        Value::Str(s) => s.trim().parse::<i128>().ok(),
        _ => None,
    };
    match raw {
        Some(v) if (min..=max).contains(&v) => Ok(Some(v)),
        Some(v) => {
            diag.warn(
                "HIVE_INTEGRAL_OUT_OF_RANGE",
                format!("value {v} outside [{min}, {max}], writing NULL"),
            );
            Ok(None)
        }
        None => {
            diag.warn(
                "HIVE_CAST_NULL",
                format!(
                    "cannot convert {} to integral, writing NULL",
                    value.signature()
                ),
            );
            Ok(None)
        }
    }
}

fn floating(value: &Value, diag: &DiagHandle) -> Result<Option<f64>, HiveError> {
    let raw: Option<f64> = match value {
        Value::Float(f) => Some(*f as f64),
        Value::Double(f) => Some(*f),
        Value::Byte(v) => Some(*v as f64),
        Value::Short(v) => Some(*v as f64),
        Value::Int(v) => Some(*v as f64),
        Value::Long(v) => Some(*v as f64),
        Value::Decimal(d) => Some(d.to_f64()),
        Value::Str(s) => {
            let t = s.trim();
            match t.to_ascii_lowercase().as_str() {
                "nan" => Some(f64::NAN),
                "infinity" | "inf" => Some(f64::INFINITY),
                "-infinity" | "-inf" => Some(f64::NEG_INFINITY),
                _ => t.parse().ok(),
            }
        }
        _ => None,
    };
    if raw.is_none() {
        diag.warn(
            "HIVE_CAST_NULL",
            format!(
                "cannot convert {} to floating point, writing NULL",
                value.signature()
            ),
        );
    }
    Ok(raw)
}

/// Rescales a decimal to `(p, s)` with HALF_UP rounding of excess fractional
/// digits; returns `None` on integral overflow.
pub fn rescale_half_up(d: &Decimal, p: u8, s: u8) -> Option<Decimal> {
    if s >= d.scale {
        return d.rescale(p, s).ok();
    }
    let down = (d.scale - s) as u32;
    let factor = 10i128.pow(down);
    let quotient = d.unscaled / factor;
    let remainder = (d.unscaled % factor).abs();
    let rounded = if remainder * 2 >= factor {
        quotient + d.unscaled.signum()
    } else {
        quotient
    };
    Decimal::new(rounded, p, s).ok()
}

/// Renders a value the way Hive casts it to STRING.
pub fn render(value: &Value) -> String {
    match value {
        Value::Null => "NULL".to_string(),
        Value::Boolean(b) => b.to_string(),
        Value::Byte(v) => v.to_string(),
        Value::Short(v) => v.to_string(),
        Value::Int(v) => v.to_string(),
        Value::Long(v) => v.to_string(),
        Value::Float(v) => format!("{v}"),
        Value::Double(v) => format!("{v}"),
        Value::Decimal(d) => d.to_string(),
        Value::Str(s) => s.clone(),
        Value::Binary(b) => b.iter().map(|x| format!("{x:02x}")).collect(),
        Value::Date(d) => format_date(*d),
        Value::Timestamp(us) => format_timestamp(*us),
        Value::Interval { months, micros } => format!("{months} months {micros} us"),
        Value::Array(items) => {
            let inner: Vec<String> = items.iter().map(render).collect();
            format!("[{}]", inner.join(","))
        }
        Value::Map(pairs) => {
            let inner: Vec<String> = pairs
                .iter()
                .map(|(k, v)| format!("{}:{}", render(k), render(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
        Value::Struct(fields) => {
            let inner: Vec<String> = fields
                .iter()
                .map(|(n, v)| format!("{n}:{}", render(v)))
                .collect();
            format!("{{{}}}", inner.join(","))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use csi_core::diag::DiagSink;

    fn sinkpair() -> (DiagSink, DiagHandle) {
        let sink = DiagSink::new();
        let handle = sink.handle("minihive");
        (sink, handle)
    }

    #[test]
    fn lenient_boolean_strings() {
        let (sink, h) = sinkpair();
        for (raw, want) in [
            ("t", true),
            ("1", true),
            ("YES", true),
            ("f", false),
            ("no", false),
        ] {
            let out = coerce(&Value::Str(raw.into()), &HiveType::Boolean, &h).unwrap();
            assert_eq!(out, Value::Boolean(want), "{raw}");
        }
        assert!(sink.is_empty());
        let out = coerce(&Value::Str("maybe".into()), &HiveType::Boolean, &h).unwrap();
        assert_eq!(out, Value::Null);
        assert_eq!(sink.drain().len(), 1);
    }

    #[test]
    fn integral_out_of_range_becomes_null_with_warning() {
        let (sink, h) = sinkpair();
        let out = coerce(&Value::Int(300), &HiveType::TinyInt, &h).unwrap();
        assert_eq!(out, Value::Null);
        let d = sink.drain();
        assert_eq!(d[0].code, "HIVE_INTEGRAL_OUT_OF_RANGE");
        // In range narrows fine.
        let out = coerce(&Value::Int(100), &HiveType::TinyInt, &h).unwrap();
        assert_eq!(out, Value::Byte(100));
    }

    #[test]
    fn numeric_strings_are_trimmed() {
        let (_, h) = sinkpair();
        let out = coerce(&Value::Str(" 42 ".into()), &HiveType::Int, &h).unwrap();
        assert_eq!(out, Value::Int(42));
    }

    #[test]
    fn decimal_rounds_half_up_and_overflows_to_null() {
        let (sink, h) = sinkpair();
        let v = Value::Decimal(Decimal::parse("123.456").unwrap());
        let out = coerce(&v, &HiveType::Decimal(10, 2), &h).unwrap();
        assert_eq!(out, Value::Decimal(Decimal::new(12346, 10, 2).unwrap()));
        assert!(sink.is_empty());
        // Too many integral digits -> NULL + warning.
        let big = Value::Decimal(Decimal::parse("123456789012.3").unwrap());
        let out = coerce(&big, &HiveType::Decimal(10, 2), &h).unwrap();
        assert_eq!(out, Value::Null);
        assert_eq!(sink.drain()[0].code, "HIVE_DECIMAL_OVERFLOW");
    }

    #[test]
    fn char_pads_and_varchar_truncates() {
        let (sink, h) = sinkpair();
        let out = coerce(&Value::Str("abc".into()), &HiveType::Char(8), &h).unwrap();
        assert_eq!(out, Value::Str("abc     ".into()));
        let out = coerce(&Value::Str("abcdefghij".into()), &HiveType::Varchar(8), &h).unwrap();
        assert_eq!(out, Value::Str("abcdefgh".into()));
        assert!(sink
            .drain()
            .iter()
            .any(|d| d.code == "HIVE_VARCHAR_TRUNCATED"));
    }

    #[test]
    fn dates_out_of_range_become_null() {
        let (sink, h) = sinkpair();
        let ok = coerce(&Value::Date(0), &HiveType::Date, &h).unwrap();
        assert_eq!(ok, Value::Date(0));
        let out = coerce(&Value::Date(MAX_DATE_DAYS + 1), &HiveType::Date, &h).unwrap();
        assert_eq!(out, Value::Null);
        assert_eq!(sink.drain()[0].code, "HIVE_DATE_OUT_OF_RANGE");
    }

    #[test]
    fn invalid_date_strings_become_null() {
        let (sink, h) = sinkpair();
        let out = coerce(&Value::Str("2021-02-30".into()), &HiveType::Date, &h).unwrap();
        assert_eq!(out, Value::Null);
        assert_eq!(sink.drain().len(), 1);
    }

    #[test]
    fn nested_coercion_recurses() {
        let (_, h) = sinkpair();
        let v = Value::Array(vec![Value::Str("1".into()), Value::Str("x".into())]);
        let out = coerce(&v, &HiveType::Array(Box::new(HiveType::Int)), &h).unwrap();
        assert_eq!(out, Value::Array(vec![Value::Int(1), Value::Null]));
    }

    #[test]
    fn struct_insert_is_positional_with_hive_field_names() {
        let (_, h) = sinkpair();
        let ty = HiveType::Struct(vec![("inner".into(), HiveType::Int)]);
        let v = Value::Struct(vec![("Inner".into(), Value::Int(5))]);
        let out = coerce(&v, &ty, &h).unwrap();
        // Hive stores its own lowercase field name.
        assert_eq!(out, Value::Struct(vec![("inner".into(), Value::Int(5))]));
    }

    #[test]
    fn everything_casts_to_string() {
        let (_, h) = sinkpair();
        let out = coerce(&Value::Date(0), &HiveType::Str, &h).unwrap();
        assert_eq!(out, Value::Str("1970-01-01".into()));
        let out = coerce(&Value::Boolean(true), &HiveType::Str, &h).unwrap();
        assert_eq!(out, Value::Str("true".into()));
    }

    #[test]
    fn special_floats_parse() {
        let (_, h) = sinkpair();
        let out = coerce(&Value::Str("NaN".into()), &HiveType::Double, &h).unwrap();
        assert!(matches!(out, Value::Double(f) if f.is_nan()));
        let out = coerce(&Value::Str("-Infinity".into()), &HiveType::Float, &h).unwrap();
        assert!(matches!(out, Value::Float(f) if f == f32::NEG_INFINITY));
    }
}
