//! Hive's HBase storage handler: mapping table rows onto key-value tuples.
//!
//! The Hive→HBase channel of Table 1 ("Data (key-value store)"). Finding 5
//! reports **zero** data-plane CSI failures on key-value tuples — the
//! simple abstraction leaves little room for discrepant interpretation —
//! and this connector demonstrates why: the mapping is a flat
//! render-to-bytes of each cell, with the first column as the row key and
//! one qualifier per remaining column. There are no schemas to fold, no
//! scales to validate, no calendars to rebase.
//!
//! The CSI exposure that *does* exist on this channel is management- and
//! control-plane (configuration of the handler, region availability), which
//! the `minihbase::cluster` and safe-mode mechanics cover.

use crate::error::HiveError;
use crate::metastore::ColumnDef;
use crate::value::{coerce, render};
use csi_core::diag::DiagHandle;
use csi_core::value::Value;
use minihbase::{HBaseError, Region};
use minihdfs::MiniHdfs;

impl From<HBaseError> for HiveError {
    fn from(e: HBaseError) -> HiveError {
        HiveError::Storage(e.to_string())
    }
}

/// A Hive table served by an HBase region instead of warehouse files.
#[derive(Debug)]
pub struct HBaseBackedTable {
    columns: Vec<ColumnDef>,
    region: Region,
}

impl HBaseBackedTable {
    /// Opens (or creates) the backing region for a table definition.
    ///
    /// The first column is the row key; it must be present and non-null on
    /// every insert.
    pub fn open(
        name: &str,
        columns: Vec<ColumnDef>,
        fs: &mut MiniHdfs,
    ) -> Result<HBaseBackedTable, HiveError> {
        if columns.is_empty() {
            return Err(HiveError::SchemaMismatch {
                message: "an HBase-backed table needs at least a row-key column".into(),
            });
        }
        let region = Region::open(&format!("hive_{name}"), fs)?;
        Ok(HBaseBackedTable { columns, region })
    }

    /// Inserts one row: values are coerced per the Hive column types, the
    /// key column is rendered to bytes, and each remaining cell becomes a
    /// `cf:<column>` put.
    pub fn insert(
        &mut self,
        row: &[Value],
        fs: &mut MiniHdfs,
        diag: &DiagHandle,
    ) -> Result<(), HiveError> {
        if row.len() != self.columns.len() {
            return Err(HiveError::Arity {
                expected: self.columns.len(),
                got: row.len(),
            });
        }
        let key_value = coerce(&row[0], &self.columns[0].hive_type, diag)?;
        if key_value.is_null() {
            return Err(HiveError::SchemaMismatch {
                message: "row key must not be NULL".into(),
            });
        }
        let key = render(&key_value).into_bytes();
        for (col, v) in self.columns.iter().zip(row).skip(1) {
            let coerced = coerce(v, &col.hive_type, diag)?;
            let qualifier = format!("cf:{}", col.name).into_bytes();
            if coerced.is_null() {
                self.region.delete(&key, &qualifier, fs)?;
            } else {
                self.region
                    .put(&key, &qualifier, render(&coerced).as_bytes(), fs)?;
            }
        }
        Ok(())
    }

    /// Point lookup by rendered row key: the cells, as rendered strings per
    /// column (NULL for absent cells).
    pub fn get(&self, key: &str) -> Option<Vec<Value>> {
        let key_bytes = key.as_bytes();
        let cells = self.region.scan_row(key_bytes);
        if cells.is_empty() {
            return None;
        }
        let mut out = vec![Value::Str(key.to_string())];
        for col in self.columns.iter().skip(1) {
            let qualifier = format!("cf:{}", col.name).into_bytes();
            let cell = cells.iter().find(|(c, _)| *c == qualifier);
            out.push(match cell {
                Some((_, bytes)) => Value::Str(String::from_utf8_lossy(bytes).into_owned()),
                None => Value::Null,
            });
        }
        Some(out)
    }

    /// Flushes the backing region.
    pub fn flush(&mut self, fs: &mut MiniHdfs) -> Result<(), HiveError> {
        self.region.flush(fs)?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::HiveType;
    use csi_core::diag::DiagSink;

    fn columns() -> Vec<ColumnDef> {
        vec![
            ColumnDef {
                name: "id".into(),
                hive_type: HiveType::Int,
            },
            ColumnDef {
                name: "name".into(),
                hive_type: HiveType::Str,
            },
            ColumnDef {
                name: "score".into(),
                hive_type: HiveType::Double,
            },
        ]
    }

    #[test]
    fn kv_tuples_round_trip_without_discrepancies() {
        // Finding 5's safe corner: the flat mapping round-trips cleanly,
        // including through a flush + region recovery.
        let mut fs = MiniHdfs::with_datanodes(3);
        let sink = DiagSink::new();
        let h = sink.handle("minihive");
        let mut t = HBaseBackedTable::open("users", columns(), &mut fs).unwrap();
        t.insert(
            &[Value::Int(1), Value::Str("ada".into()), Value::Double(9.5)],
            &mut fs,
            &h,
        )
        .unwrap();
        t.insert(
            &[Value::Int(2), Value::Str("grace".into()), Value::Null],
            &mut fs,
            &h,
        )
        .unwrap();
        t.flush(&mut fs).unwrap();
        let row = t.get("1").unwrap();
        assert_eq!(
            row,
            vec![
                Value::Str("1".into()),
                Value::Str("ada".into()),
                Value::Str("9.5".into())
            ]
        );
        let row2 = t.get("2").unwrap();
        assert_eq!(row2[2], Value::Null);
        assert!(t.get("404").is_none());
        // Reopen from the DFS: the same tuples come back.
        let reopened = HBaseBackedTable::open("users", columns(), &mut fs).unwrap();
        assert_eq!(reopened.get("1").unwrap()[1], Value::Str("ada".into()));
    }

    #[test]
    fn updates_overwrite_and_null_deletes() {
        let mut fs = MiniHdfs::with_datanodes(1);
        let sink = DiagSink::new();
        let h = sink.handle("minihive");
        let mut t = HBaseBackedTable::open("u", columns(), &mut fs).unwrap();
        t.insert(
            &[Value::Int(1), Value::Str("a".into()), Value::Double(1.0)],
            &mut fs,
            &h,
        )
        .unwrap();
        t.insert(
            &[Value::Int(1), Value::Str("b".into()), Value::Null],
            &mut fs,
            &h,
        )
        .unwrap();
        let row = t.get("1").unwrap();
        assert_eq!(row[1], Value::Str("b".into()));
        assert_eq!(row[2], Value::Null); // NULL write deleted the cell.
    }

    #[test]
    fn null_row_keys_are_rejected() {
        let mut fs = MiniHdfs::with_datanodes(1);
        let sink = DiagSink::new();
        let h = sink.handle("minihive");
        let mut t = HBaseBackedTable::open("u", columns(), &mut fs).unwrap();
        let err = t
            .insert(
                &[Value::Null, Value::Str("x".into()), Value::Null],
                &mut fs,
                &h,
            )
            .unwrap_err();
        assert!(err.to_string().contains("row key"));
        assert!(HBaseBackedTable::open("e", vec![], &mut fs).is_err());
    }

    #[test]
    fn safe_mode_propagates_as_a_storage_error() {
        let mut fs = MiniHdfs::new();
        let err = HBaseBackedTable::open("u", columns(), &mut fs).unwrap_err();
        assert!(err.to_string().contains("safe mode"));
    }
}
