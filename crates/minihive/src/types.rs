//! Hive's column type system.
//!
//! Hive's types largely mirror the harness types, with one deliberate,
//! faithful difference: **Hive has no INTERVAL column type**. Upstreams that
//! try to store intervals in Hive tables must map them somewhere else —
//! the discrepancy family of SPARK-40624 (D10/D11).

use crate::error::HiveError;
use csi_core::value::{DataType, StructField};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A Hive column type.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum HiveType {
    /// BOOLEAN.
    Boolean,
    /// TINYINT.
    TinyInt,
    /// SMALLINT.
    SmallInt,
    /// INT.
    Int,
    /// BIGINT.
    BigInt,
    /// FLOAT.
    Float,
    /// DOUBLE.
    Double,
    /// DECIMAL(p, s).
    Decimal(u8, u8),
    /// STRING.
    Str,
    /// CHAR(n), blank padded.
    Char(u32),
    /// VARCHAR(n), length-bounded.
    Varchar(u32),
    /// BINARY.
    Binary,
    /// DATE.
    Date,
    /// TIMESTAMP.
    Timestamp,
    /// `ARRAY<t>`.
    Array(Box<HiveType>),
    /// `MAP<k, v>`.
    Map(Box<HiveType>, Box<HiveType>),
    /// `STRUCT<...>`. Field names are stored lower-cased, as Hive does.
    Struct(Vec<(String, HiveType)>),
}

impl HiveType {
    /// Converts a harness [`DataType`] into a Hive type.
    ///
    /// Struct field names are **lower-cased** — Hive's metastore is
    /// case-insensitive and stores the canonical lowercase form. INTERVAL
    /// has no Hive column type and is rejected.
    pub fn from_data_type(dt: &DataType) -> Result<HiveType, HiveError> {
        Ok(match dt {
            DataType::Boolean => HiveType::Boolean,
            DataType::Byte => HiveType::TinyInt,
            DataType::Short => HiveType::SmallInt,
            DataType::Int => HiveType::Int,
            DataType::Long => HiveType::BigInt,
            DataType::Float => HiveType::Float,
            DataType::Double => HiveType::Double,
            DataType::Decimal(p, s) => HiveType::Decimal(*p, *s),
            DataType::String => HiveType::Str,
            DataType::Char(n) => HiveType::Char(*n),
            DataType::Varchar(n) => HiveType::Varchar(*n),
            DataType::Binary => HiveType::Binary,
            DataType::Date => HiveType::Date,
            DataType::Timestamp => HiveType::Timestamp,
            DataType::Interval => {
                return Err(HiveError::UnsupportedType {
                    ty: "INTERVAL".to_string(),
                })
            }
            DataType::Array(e) => HiveType::Array(Box::new(HiveType::from_data_type(e)?)),
            DataType::Map(k, v) => HiveType::Map(
                Box::new(HiveType::from_data_type(k)?),
                Box::new(HiveType::from_data_type(v)?),
            ),
            DataType::Struct(fields) => HiveType::Struct(
                fields
                    .iter()
                    .map(|f| {
                        Ok((
                            f.name.to_ascii_lowercase(),
                            HiveType::from_data_type(&f.data_type)?,
                        ))
                    })
                    .collect::<Result<Vec<_>, HiveError>>()?,
            ),
        })
    }

    /// Converts back to the harness [`DataType`].
    pub fn to_data_type(&self) -> DataType {
        match self {
            HiveType::Boolean => DataType::Boolean,
            HiveType::TinyInt => DataType::Byte,
            HiveType::SmallInt => DataType::Short,
            HiveType::Int => DataType::Int,
            HiveType::BigInt => DataType::Long,
            HiveType::Float => DataType::Float,
            HiveType::Double => DataType::Double,
            HiveType::Decimal(p, s) => DataType::Decimal(*p, *s),
            HiveType::Str => DataType::String,
            HiveType::Char(n) => DataType::Char(*n),
            HiveType::Varchar(n) => DataType::Varchar(*n),
            HiveType::Binary => DataType::Binary,
            HiveType::Date => DataType::Date,
            HiveType::Timestamp => DataType::Timestamp,
            HiveType::Array(e) => DataType::Array(Box::new(e.to_data_type())),
            HiveType::Map(k, v) => {
                DataType::Map(Box::new(k.to_data_type()), Box::new(v.to_data_type()))
            }
            HiveType::Struct(fields) => DataType::Struct(
                fields
                    .iter()
                    .map(|(n, t)| StructField::new(n.clone(), t.to_data_type()))
                    .collect(),
            ),
        }
    }

    /// Hive DDL rendering.
    pub fn ddl(&self) -> String {
        match self {
            HiveType::Boolean => "boolean".into(),
            HiveType::TinyInt => "tinyint".into(),
            HiveType::SmallInt => "smallint".into(),
            HiveType::Int => "int".into(),
            HiveType::BigInt => "bigint".into(),
            HiveType::Float => "float".into(),
            HiveType::Double => "double".into(),
            HiveType::Decimal(p, s) => format!("decimal({p},{s})"),
            HiveType::Str => "string".into(),
            HiveType::Char(n) => format!("char({n})"),
            HiveType::Varchar(n) => format!("varchar({n})"),
            HiveType::Binary => "binary".into(),
            HiveType::Date => "date".into(),
            HiveType::Timestamp => "timestamp".into(),
            HiveType::Array(e) => format!("array<{}>", e.ddl()),
            HiveType::Map(k, v) => format!("map<{},{}>", k.ddl(), v.ddl()),
            HiveType::Struct(fields) => {
                let inner: Vec<String> = fields
                    .iter()
                    .map(|(n, t)| format!("{n}:{}", t.ddl()))
                    .collect();
                format!("struct<{}>", inner.join(","))
            }
        }
    }
}

impl fmt::Display for HiveType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.ddl())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trip() {
        for dt in DataType::primitives() {
            if dt == DataType::Interval {
                assert!(HiveType::from_data_type(&dt).is_err());
                continue;
            }
            let ht = HiveType::from_data_type(&dt).unwrap();
            assert_eq!(ht.to_data_type(), dt, "{dt}");
        }
    }

    #[test]
    fn struct_field_names_are_lowercased() {
        let dt = DataType::Struct(vec![StructField::new("Inner", DataType::Int)]);
        let ht = HiveType::from_data_type(&dt).unwrap();
        assert_eq!(ht.ddl(), "struct<inner:int>");
        // The round trip is therefore NOT the identity — the case is lost,
        // which is exactly the D14 discrepancy surface.
        assert_ne!(ht.to_data_type(), dt);
    }

    #[test]
    fn interval_is_rejected_even_nested() {
        let dt = DataType::Array(Box::new(DataType::Interval));
        assert!(matches!(
            HiveType::from_data_type(&dt),
            Err(HiveError::UnsupportedType { .. })
        ));
    }

    #[test]
    fn ddl_renders_nested_types() {
        let ht = HiveType::Map(
            Box::new(HiveType::Int),
            Box::new(HiveType::Array(Box::new(HiveType::Varchar(5)))),
        );
        assert_eq!(ht.ddl(), "map<int,array<varchar(5)>>");
    }
}
