//! `minihive` — a warehouse substrate modeled on Apache Hive.
//!
//! Provides the downstream half of the Section 8 cross-testing case study:
//!
//! - a **metastore** with databases, tables, and case-insensitive schemas
//!   (Hive lower-cases column names — one half of the case-sensitivity
//!   discrepancies HIVE-26533 / SPARK-40409);
//! - a **HiveQL interface** interpreting the shared SQL grammar under Hive's
//!   lenient coercion rules (invalid values become NULL with a log line,
//!   rather than raising — one half of the inconsistent-error
//!   discrepancies);
//! - a **SerDe layer** over the three container formats of `miniformats`
//!   with Hive's conversions: logical-type annotations for widened small
//!   integers, declared-scale decimals validated on read, and
//!   Julian-rebased Parquet timestamps (the substrate of SPARK-39075,
//!   SPARK-39158, HIVE-26531, HIVE-26528).
//!
//! Every rule implemented here matches Hive's documented behavior; the CSI
//! discrepancies arise only in combination with `minispark`.

pub mod error;
pub mod hbase_handler;
pub mod hiveql;
pub mod metastore;
pub mod serde_layer;
pub mod types;
pub mod value;

pub use error::HiveError;
pub use hiveql::HiveQl;
pub use metastore::{ColumnDef, Metastore, SharedFs, StorageFormat, TableDef};
pub use types::HiveType;
