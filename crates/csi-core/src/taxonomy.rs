//! The paper's CSI failure taxonomy: symptoms, root-cause discrepancy
//! patterns, and fix patterns.
//!
//! Every enum in this module corresponds to a row dimension of one of the
//! paper's tables:
//!
//! - [`Symptom`] / [`SymptomGroup`] — Table 3;
//! - [`DataAbstraction`] and [`DataProperty`] — Tables 4 and 5;
//! - [`DataPattern`] — Table 6;
//! - [`ConfigPattern`] and [`ConfigScope`] — Table 7 and Finding 8;
//! - [`MonitoringPattern`] — Section 6.2.2;
//! - [`ControlPattern`] and [`ApiMisuse`] — Table 8 and Finding 11;
//! - [`FixPattern`] and [`FixLocation`] — Table 9 and Finding 13.
//!
//! [`RootCause`] ties the per-plane dimensions together so a single failure
//! record can be classified consistently across all tables.

use crate::plane::Plane;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Grouping of failure symptoms used by Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SymptomGroup {
    /// The whole system (or one of the interacting systems) is affected.
    System,
    /// A job or task is affected while the systems stay up.
    JobTask,
    /// The effect is on operation: observability, behavior, performance.
    Operation,
}

impl fmt::Display for SymptomGroup {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SymptomGroup::System => write!(f, "System"),
            SymptomGroup::JobTask => write!(f, "Job/Task"),
            SymptomGroup::Operation => write!(f, "Operation"),
        }
    }
}

/// Failure symptom (impact) of a CSI failure, per Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Symptom {
    /// System-level runtime crash or hang.
    RuntimeCrashHang,
    /// System fails to start.
    StartupFailure,
    /// System-level performance degradation.
    SystemPerformance,
    /// System-level data loss.
    SystemDataLoss,
    /// System-level unexpected behavior.
    SystemUnexpectedBehavior,
    /// A submitted job or task fails.
    JobTaskFailure,
    /// A job or task fails to start.
    JobTaskStartupFailure,
    /// A job or task completes with wrong results.
    WrongResults,
    /// Job-level data loss.
    JobDataLoss,
    /// Job-level performance issues.
    JobPerformance,
    /// Usability issue surfaced to the job owner.
    UsabilityIssue,
    /// A job or task crashes or hangs mid-run.
    JobTaskCrashHang,
    /// Metrics, logs, or status signals are lost or wrong.
    ReducedObservability,
    /// Operationally unexpected behavior.
    OperationUnexpectedBehavior,
    /// Operation-level performance issue.
    OperationPerformance,
}

impl Symptom {
    /// All symptoms in the order used by Table 3.
    pub const ALL: [Symptom; 15] = [
        Symptom::RuntimeCrashHang,
        Symptom::StartupFailure,
        Symptom::SystemPerformance,
        Symptom::SystemDataLoss,
        Symptom::SystemUnexpectedBehavior,
        Symptom::JobTaskFailure,
        Symptom::JobTaskStartupFailure,
        Symptom::WrongResults,
        Symptom::JobDataLoss,
        Symptom::JobPerformance,
        Symptom::UsabilityIssue,
        Symptom::JobTaskCrashHang,
        Symptom::ReducedObservability,
        Symptom::OperationUnexpectedBehavior,
        Symptom::OperationPerformance,
    ];

    /// The Table 3 group this symptom belongs to.
    pub fn group(self) -> SymptomGroup {
        match self {
            Symptom::RuntimeCrashHang
            | Symptom::StartupFailure
            | Symptom::SystemPerformance
            | Symptom::SystemDataLoss
            | Symptom::SystemUnexpectedBehavior => SymptomGroup::System,
            Symptom::JobTaskFailure
            | Symptom::JobTaskStartupFailure
            | Symptom::WrongResults
            | Symptom::JobDataLoss
            | Symptom::JobPerformance
            | Symptom::UsabilityIssue => SymptomGroup::JobTask,
            Symptom::JobTaskCrashHang
            | Symptom::ReducedObservability
            | Symptom::OperationUnexpectedBehavior
            | Symptom::OperationPerformance => SymptomGroup::Operation,
        }
    }

    /// Whether the paper counts this symptom as "crashing behavior"
    /// (Finding 3: 89/120 failures crash).
    pub fn is_crashing(self) -> bool {
        matches!(
            self,
            Symptom::RuntimeCrashHang
                | Symptom::StartupFailure
                | Symptom::JobTaskFailure
                | Symptom::JobTaskStartupFailure
                | Symptom::JobTaskCrashHang
        )
    }
}

impl fmt::Display for Symptom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Symptom::RuntimeCrashHang => "Runtime crash/hang",
            Symptom::StartupFailure => "Startup failure",
            Symptom::SystemPerformance => "Performance issue",
            Symptom::SystemDataLoss => "Data loss",
            Symptom::SystemUnexpectedBehavior => "Unexpected behavior",
            Symptom::JobTaskFailure => "Job/task failure",
            Symptom::JobTaskStartupFailure => "Job/task startup failure",
            Symptom::WrongResults => "Wrong results",
            Symptom::JobDataLoss => "Data loss",
            Symptom::JobPerformance => "Performance issues",
            Symptom::UsabilityIssue => "Usability issue",
            Symptom::JobTaskCrashHang => "Job/task crash/hang",
            Symptom::ReducedObservability => "Reduced observability",
            Symptom::OperationUnexpectedBehavior => "Unexpected behavior",
            Symptom::OperationPerformance => "Performance issue",
        };
        f.write_str(s)
    }
}

/// Data abstraction in which a data-plane discrepancy is rooted (Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataAbstraction {
    /// Structured tables (schemas, columns).
    Table,
    /// Files and file systems.
    File,
    /// Data streams.
    Stream,
    /// Key-value tuples.
    KvTuple,
}

impl DataAbstraction {
    /// All abstractions in Table 5 row order.
    pub const ALL: [DataAbstraction; 4] = [
        DataAbstraction::Table,
        DataAbstraction::File,
        DataAbstraction::Stream,
        DataAbstraction::KvTuple,
    ];
}

impl fmt::Display for DataAbstraction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataAbstraction::Table => "Table",
            DataAbstraction::File => "File",
            DataAbstraction::Stream => "Stream",
            DataAbstraction::KvTuple => "KV Tuple",
        };
        f.write_str(s)
    }
}

/// Data property in which a data-plane discrepancy is rooted (Tables 4 and 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataProperty {
    /// Name, identifier, or address of the data.
    Address,
    /// Data schema: structure representation and serialization.
    SchemaStructure,
    /// Data schema: values and their interpretation (type, encoding).
    SchemaValue,
    /// Custom metadata explicitly defined by the data store
    /// (e.g. `isCompressed`, `isPresentLocally`).
    CustomProperty,
    /// Data operation semantics (e.g. concurrency support, element ordering).
    ApiSemantics,
}

impl DataProperty {
    /// All properties in Table 5 column order.
    pub const ALL: [DataProperty; 5] = [
        DataProperty::Address,
        DataProperty::SchemaStructure,
        DataProperty::SchemaValue,
        DataProperty::CustomProperty,
        DataProperty::ApiSemantics,
    ];

    /// Whether the paper classifies this property as *metadata*
    /// (Finding 4: 50/61 data-plane failures are metadata-caused).
    pub fn is_metadata(self) -> bool {
        !matches!(self, DataProperty::ApiSemantics)
    }

    /// Whether this is "typical" metadata (addresses/names and schemas) as
    /// opposed to custom metadata (Finding 4: 42/61 vs 8/61).
    pub fn is_typical_metadata(self) -> bool {
        matches!(
            self,
            DataProperty::Address | DataProperty::SchemaStructure | DataProperty::SchemaValue
        )
    }
}

impl fmt::Display for DataProperty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataProperty::Address => "Address",
            DataProperty::SchemaStructure => "Schema (structure)",
            DataProperty::SchemaValue => "Schema (value)",
            DataProperty::CustomProperty => "Custom property",
            DataProperty::ApiSemantics => "API semantics",
        };
        f.write_str(s)
    }
}

/// Discrepancy pattern of a data-plane CSI failure (Table 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataPattern {
    /// Data is serialized/deserialized or type-cast in conflicting ways by
    /// the interacting systems (e.g. FLINK-17189).
    TypeConfusion,
    /// One of the interacting systems fails to support certain data
    /// operations (e.g. SPARK-18910).
    UnsupportedOperation,
    /// The interacting systems use different conventions for data operation
    /// (e.g. SPARK-21686).
    UnspokenConvention,
    /// Undefined values are interpreted differently (e.g. `-1` file length,
    /// SPARK-27239).
    UndefinedValue,
    /// The data consumer makes wrong assumptions about the data operation
    /// (e.g. SPARK-19361: Kafka offsets assumed contiguous).
    WrongApiAssumption,
}

impl DataPattern {
    /// All patterns in Table 6 row order.
    pub const ALL: [DataPattern; 5] = [
        DataPattern::TypeConfusion,
        DataPattern::UnsupportedOperation,
        DataPattern::UnspokenConvention,
        DataPattern::UndefinedValue,
        DataPattern::WrongApiAssumption,
    ];
}

impl fmt::Display for DataPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataPattern::TypeConfusion => "Type confusion",
            DataPattern::UnsupportedOperation => "Unsupported operations",
            DataPattern::UnspokenConvention => "Unspoken convention",
            DataPattern::UndefinedValue => "Undefined values",
            DataPattern::WrongApiAssumption => "Wrong API assumptions",
        };
        f.write_str(s)
    }
}

/// Discrepancy pattern of a configuration-related CSI failure (Table 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ConfigPattern {
    /// Configuration settings are incorrectly ignored (e.g. SPARK-10181).
    Ignorance,
    /// Configuration settings are incorrectly overruled (e.g. SPARK-16901).
    UnexpectedOverride,
    /// Configuration values are wrong in a CSI context but would be correct
    /// in another context (e.g. FLINK-19141).
    InconsistentContext,
    /// Configuration errors break the CSI code itself (e.g. SPARK-15046).
    MishandledValue,
}

impl ConfigPattern {
    /// All patterns in Table 7 row order.
    pub const ALL: [ConfigPattern; 4] = [
        ConfigPattern::Ignorance,
        ConfigPattern::UnexpectedOverride,
        ConfigPattern::InconsistentContext,
        ConfigPattern::MishandledValue,
    ];
}

impl fmt::Display for ConfigPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConfigPattern::Ignorance => "Ignorance",
            ConfigPattern::UnexpectedOverride => "Unexpected override",
            ConfigPattern::InconsistentContext => "Inconsistent context",
            ConfigPattern::MishandledValue => "Mishandling configuration values",
        };
        f.write_str(s)
    }
}

/// Scope of a configuration-related CSI failure (Finding 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ConfigScope {
    /// The issue concerns a specific configuration parameter.
    Parameter,
    /// The issue lies in the configuration-management components of the
    /// involved systems (e.g. HIVE-11250).
    Component,
}

/// Pattern of a monitoring-related CSI failure (Section 6.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MonitoringPattern {
    /// Observability is impaired: metrics/logs/status not stored, not
    /// propagated, or misreported (e.g. SPARK-10851, SPARK-3627).
    ImpairedObservability,
    /// Discrepant policies trigger cross-system monitoring *actions*
    /// (e.g. FLINK-887: YARN's pmem monitor kills Flink's JobManager).
    ActionTriggering,
}

/// Sub-pattern of control-plane API misuse (Finding 11).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ApiMisuse {
    /// Violation of implicit API semantics: synchrony, ordering,
    /// thread safety (e.g. FLINK-12342).
    ImplicitSemantics,
    /// API invoked in the wrong context (e.g. FLINK-5542, FLINK-4155).
    WrongContext,
}

/// Discrepancy pattern of a control-plane CSI failure (Table 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ControlPattern {
    /// Upstream violates semantics of downstream APIs.
    ApiSemanticViolation(ApiMisuse),
    /// Interacting systems hold inconsistent views of states or resources
    /// (e.g. HBASE-537: NameNode safe mode).
    StateResourceInconsistency,
    /// Upstream assumes feature consistency across downstream
    /// versions/configurations (e.g. YARN-9724).
    FeatureInconsistency,
}

impl fmt::Display for ControlPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ControlPattern::ApiSemanticViolation(_) => "API semantic violation",
            ControlPattern::StateResourceInconsistency => "State/resource inconsistency",
            ControlPattern::FeatureInconsistency => "Feature inconsistency",
        };
        f.write_str(s)
    }
}

/// Root cause of a CSI failure: the discrepancy, classified per plane.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum RootCause {
    /// Data-plane discrepancy (Section 6.1).
    Data {
        /// The abstraction the data takes (Table 5 rows).
        abstraction: DataAbstraction,
        /// The property in which the discrepancy lies (Table 5 columns).
        property: DataProperty,
        /// The discrepancy pattern (Table 6).
        pattern: DataPattern,
        /// Whether the failure is root-caused by ad-hoc data serialization
        /// (Finding 6: 15/61).
        serialization_rooted: bool,
    },
    /// Management-plane configuration discrepancy (Section 6.2.1).
    Config {
        /// The discrepancy pattern (Table 7).
        pattern: ConfigPattern,
        /// Parameter- vs component-scoped (Finding 8).
        scope: ConfigScope,
    },
    /// Management-plane monitoring discrepancy (Section 6.2.2).
    Monitoring {
        /// The monitoring discrepancy pattern.
        pattern: MonitoringPattern,
    },
    /// Control-plane discrepancy (Section 6.3).
    Control {
        /// The discrepancy pattern (Table 8).
        pattern: ControlPattern,
    },
}

impl RootCause {
    /// The plane on which this root cause manifests.
    pub fn plane(&self) -> Plane {
        match self {
            RootCause::Data { .. } => Plane::Data,
            RootCause::Config { .. } | RootCause::Monitoring { .. } => Plane::Management,
            RootCause::Control { .. } => Plane::Control,
        }
    }
}

/// Fix pattern applied to a CSI failure (Table 9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FixPattern {
    /// Check specific conditions to avoid CSI issues (e.g. SPARK-27239).
    Checking,
    /// Add or improve exception handling of CSI issues (e.g. FLINK-3081).
    ErrorHandling,
    /// Fix the cross-system interaction code itself (e.g. FLINK-12342).
    Interaction,
    /// No merged fix, or a documentation-only fix.
    Other,
}

impl FixPattern {
    /// All fix patterns in Table 9 row order.
    pub const ALL: [FixPattern; 4] = [
        FixPattern::Checking,
        FixPattern::ErrorHandling,
        FixPattern::Interaction,
        FixPattern::Other,
    ];
}

impl fmt::Display for FixPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FixPattern::Checking => "Checking",
            FixPattern::ErrorHandling => "Error handling",
            FixPattern::Interaction => "Interaction",
            FixPattern::Other => "Others",
        };
        f.write_str(s)
    }
}

/// Where the fix landed (Finding 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FixLocation {
    /// Upstream code specific to the downstream, inside a dedicated
    /// connector/handler/client module (68/79 cases).
    UpstreamConnector,
    /// Upstream code specific to the downstream but not modularized
    /// (11/79 cases).
    UpstreamSpecific,
    /// Upstream generic code shared across downstream systems
    /// (36 cases, e.g. SPARK-10122).
    UpstreamGeneric,
    /// The downstream system fixed an API contract violation
    /// (1 case: YARN-9724).
    Downstream,
    /// No merged code fix.
    None,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symptom_groups_partition_all_symptoms() {
        let mut by_group = [0usize; 3];
        for s in Symptom::ALL {
            match s.group() {
                SymptomGroup::System => by_group[0] += 1,
                SymptomGroup::JobTask => by_group[1] += 1,
                SymptomGroup::Operation => by_group[2] += 1,
            }
        }
        assert_eq!(by_group, [5, 6, 4]);
    }

    #[test]
    fn crashing_symptoms_match_finding_3() {
        let crashing: Vec<Symptom> = Symptom::ALL
            .into_iter()
            .filter(|s| s.is_crashing())
            .collect();
        assert_eq!(
            crashing,
            [
                Symptom::RuntimeCrashHang,
                Symptom::StartupFailure,
                Symptom::JobTaskFailure,
                Symptom::JobTaskStartupFailure,
                Symptom::JobTaskCrashHang,
            ]
        );
    }

    #[test]
    fn metadata_classification_matches_finding_4() {
        assert!(DataProperty::Address.is_metadata());
        assert!(DataProperty::Address.is_typical_metadata());
        assert!(DataProperty::CustomProperty.is_metadata());
        assert!(!DataProperty::CustomProperty.is_typical_metadata());
        assert!(!DataProperty::ApiSemantics.is_metadata());
    }

    #[test]
    fn root_cause_plane_mapping() {
        let data = RootCause::Data {
            abstraction: DataAbstraction::Table,
            property: DataProperty::SchemaValue,
            pattern: DataPattern::TypeConfusion,
            serialization_rooted: true,
        };
        assert_eq!(data.plane(), Plane::Data);
        let cfg = RootCause::Config {
            pattern: ConfigPattern::Ignorance,
            scope: ConfigScope::Parameter,
        };
        assert_eq!(cfg.plane(), Plane::Management);
        let mon = RootCause::Monitoring {
            pattern: MonitoringPattern::ActionTriggering,
        };
        assert_eq!(mon.plane(), Plane::Management);
        let ctl = RootCause::Control {
            pattern: ControlPattern::FeatureInconsistency,
        };
        assert_eq!(ctl.plane(), Plane::Control);
    }
}
