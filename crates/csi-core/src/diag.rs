//! Capturable diagnostics emitted by the simulated systems.
//!
//! The error-handling oracle of Section 8 accepts an invalid write if the
//! data is "rejected or corrected with feedback (e.g., log messages)". To
//! observe that feedback, every simulated system writes warnings into a
//! shared [`DiagSink`]; the harness drains the sink around each operation.

use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// Severity of a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Level {
    /// Informational.
    Info,
    /// A warning: something was coerced, defaulted, or ignored.
    Warn,
    /// An error that was logged but not propagated.
    Error,
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Level::Info => write!(f, "INFO"),
            Level::Warn => write!(f, "WARN"),
            Level::Error => write!(f, "ERROR"),
        }
    }
}

/// One diagnostic record.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Diagnostic {
    /// The system that emitted the record.
    pub system: String,
    /// Severity.
    pub level: Level,
    /// Stable machine-readable code (e.g. `NOT_CASE_PRESERVING`).
    pub code: String,
    /// Human-readable message.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {}: {}",
            self.level, self.system, self.code, self.message
        )
    }
}

/// A shared, thread-safe sink of diagnostics.
///
/// Cloning is cheap; clones observe the same buffer.
///
/// # Examples
///
/// ```
/// use csi_core::diag::{DiagSink, Level};
///
/// let sink = DiagSink::new();
/// let handle = sink.handle("minihive");
/// handle.warn("COERCED_TO_NULL", "value out of range, wrote NULL");
/// let drained = sink.drain();
/// assert_eq!(drained.len(), 1);
/// assert_eq!(drained[0].code, "COERCED_TO_NULL");
/// assert!(sink.drain().is_empty());
/// ```
#[derive(Debug, Clone, Default)]
pub struct DiagSink {
    buf: Arc<Mutex<Vec<Diagnostic>>>,
}

impl DiagSink {
    /// Creates an empty sink.
    pub fn new() -> DiagSink {
        DiagSink::default()
    }

    /// A handle bound to a system name, for convenient emission.
    pub fn handle(&self, system: impl Into<String>) -> DiagHandle {
        DiagHandle {
            sink: self.clone(),
            system: system.into(),
        }
    }

    /// Appends a diagnostic.
    pub fn push(&self, d: Diagnostic) {
        self.buf.lock().push(d);
    }

    /// Removes and returns all buffered diagnostics.
    pub fn drain(&self) -> Vec<Diagnostic> {
        std::mem::take(&mut *self.buf.lock())
    }

    /// Returns a snapshot without draining.
    pub fn snapshot(&self) -> Vec<Diagnostic> {
        self.buf.lock().clone()
    }

    /// Number of buffered diagnostics.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// Whether the sink is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }
}

/// An emission handle bound to one system name.
#[derive(Debug, Clone)]
pub struct DiagHandle {
    sink: DiagSink,
    system: String,
}

impl DiagHandle {
    /// Emits an informational record.
    pub fn info(&self, code: impl Into<String>, message: impl Into<String>) {
        self.emit(Level::Info, code, message);
    }

    /// Emits a warning.
    pub fn warn(&self, code: impl Into<String>, message: impl Into<String>) {
        self.emit(Level::Warn, code, message);
    }

    /// Emits a logged (non-propagated) error.
    pub fn error(&self, code: impl Into<String>, message: impl Into<String>) {
        self.emit(Level::Error, code, message);
    }

    /// The system name this handle is bound to.
    pub fn system(&self) -> &str {
        &self.system
    }

    fn emit(&self, level: Level, code: impl Into<String>, message: impl Into<String>) {
        self.sink.push(Diagnostic {
            system: self.system.clone(),
            level,
            code: code.into(),
            message: message.into(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_buffer() {
        let sink = DiagSink::new();
        let clone = sink.clone();
        sink.handle("a").info("X", "hello");
        assert_eq!(clone.len(), 1);
        clone.handle("b").error("Y", "bad");
        let all = sink.drain();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].system, "a");
        assert_eq!(all[1].level, Level::Error);
        assert!(clone.is_empty());
    }

    #[test]
    fn snapshot_does_not_drain() {
        let sink = DiagSink::new();
        sink.handle("s").warn("W", "w");
        assert_eq!(sink.snapshot().len(), 1);
        assert_eq!(sink.snapshot().len(), 1);
    }
}
