//! Discrepancy reports produced by cross-system testing.
//!
//! The raw output of the oracles ([`crate::oracle::OracleFailure`]) contains
//! many test failures per underlying discrepancy (Section 8.2: "There will
//! be many more test failures produced than the ones listed, but they
//! correspond to the same discrepancies"). A [`Discrepancy`] is the
//! deduplicated unit the paper reports — 15 of them on the Spark–Hive data
//! plane — and a [`DiscrepancyReport`] is the full run summary, serializable
//! to JSON like the artifact's `*failed.json` files.

use crate::oracle::OracleFailure;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The five problem categories of Section 8.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProblemCategory {
    /// "Cannot read what was written" (2/15).
    CannotReadWritten,
    /// "Type violations" (2/15).
    TypeViolation,
    /// "Exposing internal configurations of the downstream to the upstream"
    /// (5/15).
    InternalConfigExposure,
    /// "Inconsistent error behavior across interfaces" (7/15).
    InconsistentErrorBehavior,
    /// "Relying on custom (non-default) configurations" (8/15).
    CustomConfigReliance,
}

impl ProblemCategory {
    /// All categories in the order used by Section 8.2.
    pub const ALL: [ProblemCategory; 5] = [
        ProblemCategory::CannotReadWritten,
        ProblemCategory::TypeViolation,
        ProblemCategory::InternalConfigExposure,
        ProblemCategory::InconsistentErrorBehavior,
        ProblemCategory::CustomConfigReliance,
    ];
}

impl fmt::Display for ProblemCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProblemCategory::CannotReadWritten => "Cannot read what was written",
            ProblemCategory::TypeViolation => "Type violations",
            ProblemCategory::InternalConfigExposure => {
                "Exposing internal configurations of the downstream to the upstream"
            }
            ProblemCategory::InconsistentErrorBehavior => {
                "Inconsistent error behavior across interfaces"
            }
            ProblemCategory::CustomConfigReliance => {
                "Relying on custom (non-default) configurations"
            }
        };
        f.write_str(s)
    }
}

/// One distinct discrepancy between the interacting systems.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Discrepancy {
    /// Stable identifier, e.g. `"D01"`.
    pub id: String,
    /// The real-world issue key(s) this corresponds to, e.g. `SPARK-39075`.
    pub issue_keys: Vec<String>,
    /// One-line description.
    pub title: String,
    /// Problem categories (a discrepancy can belong to several).
    pub categories: Vec<ProblemCategory>,
    /// The test failures that evidence this discrepancy.
    pub evidence: Vec<OracleFailure>,
    /// Compact causal crossing sequence of a representative failing
    /// observation (empty when tracing was disabled).
    pub trace: Vec<String>,
}

impl Discrepancy {
    /// Whether the discrepancy belongs to a category.
    pub fn has_category(&self, c: ProblemCategory) -> bool {
        self.categories.contains(&c)
    }
}

/// Full result of a cross-testing run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DiscrepancyReport {
    /// Total inputs exercised.
    pub inputs_total: usize,
    /// How many inputs were valid.
    pub inputs_valid: usize,
    /// How many inputs were invalid.
    pub inputs_invalid: usize,
    /// Total observations (input × plan × format runs).
    pub observations: usize,
    /// Raw oracle failures before deduplication.
    pub raw_failures: Vec<OracleFailure>,
    /// Distinct discrepancies after classification.
    pub discrepancies: Vec<Discrepancy>,
    /// Oracle failures the classifier could not attribute (should be empty
    /// once the discrepancy catalogue is complete).
    pub unattributed: Vec<OracleFailure>,
    /// Total boundary crossings per channel across the whole campaign
    /// (empty when tracing was disabled).
    pub trace_totals: BTreeMap<String, usize>,
}

impl DiscrepancyReport {
    /// Number of distinct discrepancies found.
    pub fn distinct(&self) -> usize {
        self.discrepancies.len()
    }

    /// Count of discrepancies per category (categories overlap).
    pub fn category_counts(&self) -> Vec<(ProblemCategory, usize)> {
        ProblemCategory::ALL
            .iter()
            .map(|&c| {
                (
                    c,
                    self.discrepancies
                        .iter()
                        .filter(|d| d.has_category(c))
                        .count(),
                )
            })
            .collect()
    }

    /// All issue keys covered by the found discrepancies, sorted.
    pub fn issue_keys(&self) -> Vec<String> {
        let set: BTreeSet<String> = self
            .discrepancies
            .iter()
            .flat_map(|d| d.issue_keys.iter().cloned())
            .collect();
        set.into_iter().collect()
    }

    /// Renders a human-readable summary.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "cross-testing: {} inputs ({} valid, {} invalid), {} observations\n",
            self.inputs_total, self.inputs_valid, self.inputs_invalid, self.observations
        ));
        out.push_str(&format!(
            "{} raw oracle failures -> {} distinct discrepancies\n",
            self.raw_failures.len(),
            self.distinct()
        ));
        for d in &self.discrepancies {
            out.push_str(&format!(
                "  {} [{}] {} ({} failures)\n",
                d.id,
                d.issue_keys.join(", "),
                d.title,
                d.evidence.len()
            ));
            for line in &d.trace {
                out.push_str(&format!("      {line}\n"));
            }
        }
        out.push_str("category totals:\n");
        for (c, n) in self.category_counts() {
            out.push_str(&format!("  {n:2} x {c}\n"));
        }
        if !self.trace_totals.is_empty() {
            out.push_str("boundary crossings per channel:\n");
            for (channel, n) in &self.trace_totals {
                out.push_str(&format!("  {n:6} x {channel}\n"));
            }
        }
        if !self.unattributed.is_empty() {
            out.push_str(&format!(
                "WARNING: {} unattributed failures\n",
                self.unattributed.len()
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::OracleKind;

    fn failure(input_id: usize) -> OracleFailure {
        OracleFailure {
            oracle: OracleKind::Differential,
            input_id,
            plans: vec!["A->B".into()],
            formats: vec!["ORC".into()],
            detail: "diverged".into(),
        }
    }

    fn report() -> DiscrepancyReport {
        DiscrepancyReport {
            inputs_total: 10,
            inputs_valid: 6,
            inputs_invalid: 4,
            observations: 240,
            raw_failures: vec![failure(1), failure(2)],
            discrepancies: vec![
                Discrepancy {
                    id: "D01".into(),
                    issue_keys: vec!["SPARK-39075".into()],
                    title: "BYTE/SHORT via Avro cannot be read back".into(),
                    categories: vec![
                        ProblemCategory::CannotReadWritten,
                        ProblemCategory::InternalConfigExposure,
                    ],
                    evidence: vec![failure(1)],
                    trace: vec!["#0 Spark->Hive metastore:get_table [Data] @0ms ok".into()],
                },
                Discrepancy {
                    id: "D05".into(),
                    issue_keys: vec!["SPARK-40439".into()],
                    title: "decimal overflow: exception vs NULL".into(),
                    categories: vec![
                        ProblemCategory::InconsistentErrorBehavior,
                        ProblemCategory::CustomConfigReliance,
                    ],
                    evidence: vec![failure(2)],
                    trace: vec![],
                },
            ],
            unattributed: vec![],
            trace_totals: BTreeMap::from([("metastore".to_string(), 4)]),
        }
    }

    #[test]
    fn category_counts_allow_overlap() {
        let r = report();
        let counts: Vec<usize> = r.category_counts().iter().map(|(_, n)| *n).collect();
        assert_eq!(counts, vec![1, 0, 1, 1, 1]);
        assert_eq!(r.distinct(), 2);
    }

    #[test]
    fn issue_keys_are_sorted_and_deduped() {
        let r = report();
        assert_eq!(r.issue_keys(), vec!["SPARK-39075", "SPARK-40439"]);
    }

    #[test]
    fn render_mentions_every_discrepancy() {
        let text = report().render();
        assert!(text.contains("D01"));
        assert!(text.contains("D05"));
        assert!(text.contains("2 distinct discrepancies"));
        assert!(text.contains("#0 Spark->Hive metastore:get_table"));
        assert!(text.contains("boundary crossings per channel:"));
    }

    #[test]
    fn report_serializes_to_json() {
        let r = report();
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: DiscrepancyReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
