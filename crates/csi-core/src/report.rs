//! Discrepancy reports produced by cross-system testing.
//!
//! The raw output of the oracles ([`crate::oracle::OracleFailure`]) contains
//! many test failures per underlying discrepancy (Section 8.2: "There will
//! be many more test failures produced than the ones listed, but they
//! correspond to the same discrepancies"). A [`Discrepancy`] is the
//! deduplicated unit the paper reports — 15 of them on the Spark–Hive data
//! plane — and a [`DiscrepancyReport`] is the full run summary, serializable
//! to JSON like the artifact's `*failed.json` files.

use crate::detect::DetectorAgreement;
use crate::oracle::OracleFailure;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// The five problem categories of Section 8.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum ProblemCategory {
    /// "Cannot read what was written" (2/15).
    CannotReadWritten,
    /// "Type violations" (2/15).
    TypeViolation,
    /// "Exposing internal configurations of the downstream to the upstream"
    /// (5/15).
    InternalConfigExposure,
    /// "Inconsistent error behavior across interfaces" (7/15).
    InconsistentErrorBehavior,
    /// "Relying on custom (non-default) configurations" (8/15).
    CustomConfigReliance,
}

impl ProblemCategory {
    /// All categories in the order used by Section 8.2.
    pub const ALL: [ProblemCategory; 5] = [
        ProblemCategory::CannotReadWritten,
        ProblemCategory::TypeViolation,
        ProblemCategory::InternalConfigExposure,
        ProblemCategory::InconsistentErrorBehavior,
        ProblemCategory::CustomConfigReliance,
    ];
}

impl fmt::Display for ProblemCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProblemCategory::CannotReadWritten => "Cannot read what was written",
            ProblemCategory::TypeViolation => "Type violations",
            ProblemCategory::InternalConfigExposure => {
                "Exposing internal configurations of the downstream to the upstream"
            }
            ProblemCategory::InconsistentErrorBehavior => {
                "Inconsistent error behavior across interfaces"
            }
            ProblemCategory::CustomConfigReliance => {
                "Relying on custom (non-default) configurations"
            }
        };
        f.write_str(s)
    }
}

/// One distinct discrepancy between the interacting systems.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Discrepancy {
    /// Stable identifier, e.g. `"D01"`.
    pub id: String,
    /// The real-world issue key(s) this corresponds to, e.g. `SPARK-39075`.
    pub issue_keys: Vec<String>,
    /// One-line description.
    pub title: String,
    /// Problem categories (a discrepancy can belong to several).
    pub categories: Vec<ProblemCategory>,
    /// The test failures that evidence this discrepancy.
    pub evidence: Vec<OracleFailure>,
    /// Compact causal crossing sequence of a representative failing
    /// observation (empty when tracing was disabled).
    pub trace: Vec<String>,
}

impl Discrepancy {
    /// Whether the discrepancy belongs to a category.
    pub fn has_category(&self, c: ProblemCategory) -> bool {
        self.categories.contains(&c)
    }
}

/// Full result of a cross-testing run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DiscrepancyReport {
    /// Total inputs exercised.
    pub inputs_total: usize,
    /// How many inputs were valid.
    pub inputs_valid: usize,
    /// How many inputs were invalid.
    pub inputs_invalid: usize,
    /// Total observations (input × plan × format runs).
    pub observations: usize,
    /// Raw oracle failures before deduplication.
    pub raw_failures: Vec<OracleFailure>,
    /// Distinct discrepancies after classification.
    pub discrepancies: Vec<Discrepancy>,
    /// Oracle failures the classifier could not attribute (should be empty
    /// once the discrepancy catalogue is complete).
    pub unattributed: Vec<OracleFailure>,
    /// Total boundary crossings per channel across the whole campaign
    /// (empty when tracing was disabled).
    pub trace_totals: BTreeMap<String, usize>,
    /// Whether the online detector ran during the campaign. Distinguishes
    /// "detection off" from "detection on, nothing flagged".
    pub detector_enabled: bool,
    /// Online detections per channel across the whole campaign (a
    /// detection spanning several channels counts once per channel).
    pub detection_totals: BTreeMap<String, usize>,
    /// Online detections per detection kind.
    pub detection_kinds: BTreeMap<String, usize>,
    /// Agreement with the offline §9 oracle over fault-bearing
    /// observations; `None` when no observation had a fired fault.
    pub detector_agreement: Option<DetectorAgreement>,
}

impl DiscrepancyReport {
    /// Number of distinct discrepancies found.
    pub fn distinct(&self) -> usize {
        self.discrepancies.len()
    }

    /// Count of discrepancies per category (categories overlap).
    pub fn category_counts(&self) -> Vec<(ProblemCategory, usize)> {
        ProblemCategory::ALL
            .iter()
            .map(|&c| {
                (
                    c,
                    self.discrepancies
                        .iter()
                        .filter(|d| d.has_category(c))
                        .count(),
                )
            })
            .collect()
    }

    /// All issue keys covered by the found discrepancies, sorted.
    pub fn issue_keys(&self) -> Vec<String> {
        let set: BTreeSet<String> = self
            .discrepancies
            .iter()
            .flat_map(|d| d.issue_keys.iter().cloned())
            .collect();
        set.into_iter().collect()
    }

    /// Renders the standard human-readable summary: every section that has
    /// something to say, through the single [`Render`] path.
    pub fn render(&self) -> String {
        Render::standard(self).to_string()
    }
}

/// One renderable section of a campaign report. The single [`Render`]
/// path is parameterized by a section list instead of growing a new
/// bolted-on optional block per feature.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Section {
    /// Input/observation/failure headline counts.
    Summary,
    /// The distinct discrepancies with their representative traces.
    Discrepancies,
    /// Problem-category totals.
    Categories,
    /// Boundary crossings per channel.
    Traces,
    /// Online detections per channel and kind, plus oracle agreement.
    Detections,
    /// Fault-matrix cells (rows supplied via [`Render::fault_cells`]).
    FaultCells,
    /// Coverage-guided exploration stats (supplied via
    /// [`Render::exploration`]).
    Exploration,
    /// Co-failure clusters of a compound campaign (supplied via
    /// [`Render::clusters`]).
    Clusters,
    /// Unattributed-failure warning.
    Warnings,
}

impl Section {
    /// Every section, in canonical render order.
    pub const ALL: [Section; 9] = [
        Section::Summary,
        Section::Discrepancies,
        Section::Categories,
        Section::Traces,
        Section::Detections,
        Section::FaultCells,
        Section::Exploration,
        Section::Clusters,
        Section::Warnings,
    ];
}

/// One fault-matrix cell, reduced to what a campaign report renders.
/// Defined here (not in the test harness) so matrix campaigns render
/// through the same [`Render`] path as cross-test campaigns.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCellRow {
    /// The injected fault's spec id.
    pub fault_id: String,
    /// The scenario the fault was injected into.
    pub scenario: String,
    /// The offline oracle's §9 bucket for the cell.
    pub outcome: String,
    /// How many online detections the cell produced.
    pub detections: usize,
    /// One-line cell evidence.
    pub detail: String,
}

/// One corpus entry of a coverage-guided campaign: an input whose
/// observation produced a signature never seen before.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CorpusRow {
    /// The input's id in the (grown) input pool.
    pub input_id: usize,
    /// The input's human-readable label.
    pub label: String,
    /// `"grid"` for catalogue inputs, `"corpus"` for synthesized corpus
    /// seeds, `"mutation"` for corpus mutants.
    pub origin: String,
    /// Execution count at which the input entered the corpus.
    pub executed: usize,
}

/// First discovery of one discrepancy class during exploration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiscoveryRow {
    /// The discrepancy id, e.g. `"D05"`.
    pub id: String,
    /// Observations executed when the class first had evidence.
    pub executed: usize,
    /// `"grid"` when the evidencing input came from the seed catalogue,
    /// `"corpus"` when a synthesized corpus seed produced it,
    /// `"mutation"` when a corpus mutant produced it.
    pub origin: String,
}

/// One shrunk reproducer: the minimal 1-row/1-column scenario that still
/// triggers its discrepancy class.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShrinkRow {
    /// The discrepancy id the reproducer preserves.
    pub id: String,
    /// Compact scenario, e.g. `"ss:SparkSQL->DataFrame:AVRO"`.
    pub scenario: String,
    /// The shrunk input's label.
    pub label: String,
    /// Rows in the reproducer's table (always 1).
    pub rows: usize,
    /// Columns in the reproducer's table (always 1).
    pub columns: usize,
    /// Accepted shrink steps.
    pub steps: usize,
    /// Reproducer re-executions the shrinker spent.
    pub checks: usize,
}

/// One co-failure cluster of a compound (k-fault × interleaving) campaign:
/// discrepancies grouped by shared causal-trace prefix, plus the minimal
/// reproducer the cluster ddmin-shrank to.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterRow {
    /// Hex fingerprint of the shared causal prefix (the cluster key).
    pub fingerprint: String,
    /// Number of member discrepancies.
    pub members: usize,
    /// The last step of the shared prefix — the crossing the cluster
    /// failed through (`channel|op|plane|status`).
    pub crack: String,
    /// Depth of the shared prefix, in crossings.
    pub prefix_len: usize,
    /// Fault-set id of the shrunk reproducer (member ids joined with `+`).
    pub fault_set: String,
    /// Number of faults in the shrunk reproducer.
    pub faults: usize,
    /// Interleave-schedule id of the shrunk reproducer.
    pub schedule: String,
    /// Scenario of the shrunk reproducer's discrepant job.
    pub scenario: String,
}

/// Headline stats of a compound (k-fault × interleaving) exploration pass,
/// rendered alongside its [`ClusterRow`]s.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CompoundStats {
    /// The pass seed.
    pub seed: u64,
    /// Maximum faults armed simultaneously (k).
    pub kfaults: usize,
    /// Concurrent jobs sharing one deployment per trial.
    pub jobs: usize,
    /// Trials executed.
    pub executed: usize,
    /// Size of the enumerated (fault-set × interleaving) product space.
    pub space: usize,
    /// Distinct compound coverage signatures seen.
    pub signatures: usize,
    /// Member discrepancies across all clusters.
    pub discrepancies: usize,
    /// Shrink re-executions spent across all clusters.
    pub shrink_checks: usize,
}

/// Summary of a coverage-guided exploration campaign, rendered through
/// [`Render::exploration`] and serialized alongside the report.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExplorationStats {
    /// The exploration seed.
    pub seed: u64,
    /// The observation budget the campaign was given.
    pub budget: usize,
    /// Size of the exhaustive (experiment × plan × format × input) grid
    /// the budget is measured against.
    pub grid_cells: usize,
    /// Observations actually executed.
    pub executed: usize,
    /// Observations drawn fresh from the exhaustive grid.
    pub fresh: usize,
    /// Observations of mutated corpus entries (including corpus sweeps).
    pub mutated: usize,
    /// Observations executed under a fault overlay.
    pub faulted: usize,
    /// Distinct coverage signatures seen.
    pub signatures: usize,
    /// Signatures first produced by a mutated input — coverage the
    /// exhaustive seed grid cannot reach.
    pub novel_from_mutation: usize,
    /// Signatures first produced by a synthesized corpus seed — coverage
    /// the hand-built catalogue alone never reaches.
    pub novel_from_corpus: usize,
    /// Hex fingerprints of every signature seen, in canonical order, so
    /// two runs can be diffed by *which* coverage they reached.
    pub signatures_seen: Vec<String>,
    /// The corpus, in admission order.
    pub corpus: Vec<CorpusRow>,
    /// First discovery per discrepancy class, in catalogue order.
    pub discoveries: Vec<DiscoveryRow>,
    /// Shrunk reproducers, in catalogue order.
    pub shrinks: Vec<ShrinkRow>,
}

/// The single rendering path for campaign reports.
///
/// ```
/// use csi_core::report::{DiscrepancyReport, Render, Section};
/// let report = DiscrepancyReport::default();
/// let text = Render::new(&report)
///     .section(Section::Summary)
///     .section(Section::Detections)
///     .to_string();
/// assert!(text.starts_with("cross-testing:"));
/// ```
#[derive(Debug, Clone)]
pub struct Render<'a> {
    report: &'a DiscrepancyReport,
    sections: Vec<Section>,
    fault_cells: &'a [FaultCellRow],
    exploration: Option<&'a ExplorationStats>,
    clusters: &'a [ClusterRow],
    compound: Option<&'a CompoundStats>,
}

impl<'a> Render<'a> {
    /// A renderer with no sections selected.
    pub fn new(report: &'a DiscrepancyReport) -> Render<'a> {
        Render {
            report,
            sections: Vec::new(),
            fault_cells: &[],
            exploration: None,
            clusters: &[],
            compound: None,
        }
    }

    /// The standard selection: summary, discrepancies and categories
    /// always; traces and detections when the campaign recorded them;
    /// warnings when anything went unattributed.
    pub fn standard(report: &'a DiscrepancyReport) -> Render<'a> {
        let mut r = Render::new(report)
            .section(Section::Summary)
            .section(Section::Discrepancies)
            .section(Section::Categories);
        if !report.trace_totals.is_empty() {
            r = r.section(Section::Traces);
        }
        if report.detector_enabled {
            r = r.section(Section::Detections);
        }
        if !report.unattributed.is_empty() {
            r = r.section(Section::Warnings);
        }
        r
    }

    /// Appends a section (idempotent; render order is the canonical
    /// [`Section::ALL`] order, not call order).
    pub fn section(mut self, section: Section) -> Render<'a> {
        if !self.sections.contains(&section) {
            self.sections.push(section);
        }
        self
    }

    /// Supplies fault-matrix rows and selects the [`Section::FaultCells`]
    /// section.
    pub fn fault_cells(mut self, rows: &'a [FaultCellRow]) -> Render<'a> {
        self.fault_cells = rows;
        self.section(Section::FaultCells)
    }

    /// Supplies exploration stats and selects the [`Section::Exploration`]
    /// section.
    pub fn exploration(mut self, stats: &'a ExplorationStats) -> Render<'a> {
        self.exploration = Some(stats);
        self.section(Section::Exploration)
    }

    /// Supplies compound-pass stats and co-failure cluster rows and
    /// selects the [`Section::Clusters`] section.
    pub fn clusters(mut self, stats: &'a CompoundStats, rows: &'a [ClusterRow]) -> Render<'a> {
        self.compound = Some(stats);
        self.clusters = rows;
        self.section(Section::Clusters)
    }

    fn has(&self, section: Section) -> bool {
        self.sections.contains(&section)
    }
}

impl fmt::Display for Render<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = self.report;
        for section in Section::ALL {
            if !self.has(section) {
                continue;
            }
            match section {
                Section::Summary => {
                    writeln!(
                        f,
                        "cross-testing: {} inputs ({} valid, {} invalid), {} observations",
                        r.inputs_total, r.inputs_valid, r.inputs_invalid, r.observations
                    )?;
                    writeln!(
                        f,
                        "{} raw oracle failures -> {} distinct discrepancies",
                        r.raw_failures.len(),
                        r.distinct()
                    )?;
                }
                Section::Discrepancies => {
                    for d in &r.discrepancies {
                        writeln!(
                            f,
                            "  {} [{}] {} ({} failures)",
                            d.id,
                            d.issue_keys.join(", "),
                            d.title,
                            d.evidence.len()
                        )?;
                        for line in &d.trace {
                            writeln!(f, "      {line}")?;
                        }
                    }
                }
                Section::Categories => {
                    writeln!(f, "category totals:")?;
                    for (c, n) in r.category_counts() {
                        writeln!(f, "  {n:2} x {c}")?;
                    }
                }
                Section::Traces => {
                    if !r.trace_totals.is_empty() {
                        writeln!(f, "boundary crossings per channel:")?;
                        for (channel, n) in &r.trace_totals {
                            writeln!(f, "  {n:6} x {channel}")?;
                        }
                    }
                }
                Section::Detections => {
                    if r.detection_totals.is_empty() {
                        writeln!(f, "online detections: none")?;
                    } else {
                        writeln!(f, "online detections per channel:")?;
                        for (channel, n) in &r.detection_totals {
                            writeln!(f, "  {n:6} x {channel}")?;
                        }
                        writeln!(f, "online detections per kind:")?;
                        for (kind, n) in &r.detection_kinds {
                            writeln!(f, "  {n:6} x {kind}")?;
                        }
                    }
                    if let Some(a) = &r.detector_agreement {
                        writeln!(
                            f,
                            "detector vs offline oracle: {} fault-bearing observations, \
                             precision {:.3}, recall {:.3} (tp {} fp {} fn {} tn {})",
                            a.total(),
                            a.precision(),
                            a.recall(),
                            a.true_positives,
                            a.false_positives,
                            a.false_negatives,
                            a.true_negatives
                        )?;
                    }
                }
                Section::FaultCells => {
                    if !self.fault_cells.is_empty() {
                        writeln!(f, "fault matrix cells:")?;
                        for row in self.fault_cells {
                            writeln!(
                                f,
                                "  {} x {}: {} ({} detections) {}",
                                row.fault_id, row.scenario, row.outcome, row.detections, row.detail
                            )?;
                        }
                    }
                }
                Section::Exploration => {
                    if let Some(s) = self.exploration {
                        writeln!(
                            f,
                            "exploration: seed {}, budget {} over a {}-cell grid",
                            s.seed, s.budget, s.grid_cells
                        )?;
                        writeln!(
                            f,
                            "  executed {} observations ({} fresh, {} mutated, {} fault-overlay)",
                            s.executed, s.fresh, s.mutated, s.faulted
                        )?;
                        writeln!(
                            f,
                            "  coverage: {} signatures ({} novel from mutation, {} novel from \
                             corpus), corpus {} entries",
                            s.signatures,
                            s.novel_from_mutation,
                            s.novel_from_corpus,
                            s.corpus.len()
                        )?;
                        for d in &s.discoveries {
                            writeln!(
                                f,
                                "  discovered {} after {} executions ({})",
                                d.id, d.executed, d.origin
                            )?;
                        }
                        for sh in &s.shrinks {
                            writeln!(
                                f,
                                "  shrunk {} -> {} [{}] ({} row x {} col, {} steps, {} checks)",
                                sh.id,
                                sh.scenario,
                                sh.label,
                                sh.rows,
                                sh.columns,
                                sh.steps,
                                sh.checks
                            )?;
                        }
                    }
                }
                Section::Clusters => {
                    if let Some(s) = self.compound {
                        writeln!(
                            f,
                            "compound pass: seed {}, k<={} faults x {} jobs, {} trials over a \
                             {}-point product space",
                            s.seed, s.kfaults, s.jobs, s.executed, s.space
                        )?;
                        writeln!(
                            f,
                            "  {} signatures, {} discrepancies -> {} co-failure clusters \
                             ({} shrink checks)",
                            s.signatures,
                            s.discrepancies,
                            self.clusters.len(),
                            s.shrink_checks
                        )?;
                        for c in self.clusters {
                            writeln!(
                                f,
                                "  cluster {} ({} members, prefix depth {}): cracks at {}",
                                c.fingerprint, c.members, c.prefix_len, c.crack
                            )?;
                            writeln!(
                                f,
                                "    reproducer: faults [{}] ({}), schedule {}, job {}",
                                c.fault_set, c.faults, c.schedule, c.scenario
                            )?;
                        }
                    }
                }
                Section::Warnings => {
                    if !r.unattributed.is_empty() {
                        writeln!(f, "WARNING: {} unattributed failures", r.unattributed.len())?;
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::OracleKind;

    fn failure(input_id: usize) -> OracleFailure {
        OracleFailure {
            oracle: OracleKind::Differential,
            input_id,
            plans: vec!["A->B".into()],
            formats: vec!["ORC".into()],
            detail: "diverged".into(),
        }
    }

    fn report() -> DiscrepancyReport {
        DiscrepancyReport {
            inputs_total: 10,
            inputs_valid: 6,
            inputs_invalid: 4,
            observations: 240,
            raw_failures: vec![failure(1), failure(2)],
            discrepancies: vec![
                Discrepancy {
                    id: "D01".into(),
                    issue_keys: vec!["SPARK-39075".into()],
                    title: "BYTE/SHORT via Avro cannot be read back".into(),
                    categories: vec![
                        ProblemCategory::CannotReadWritten,
                        ProblemCategory::InternalConfigExposure,
                    ],
                    evidence: vec![failure(1)],
                    trace: vec!["#0 Spark->Hive metastore:get_table [Data] @0ms ok".into()],
                },
                Discrepancy {
                    id: "D05".into(),
                    issue_keys: vec!["SPARK-40439".into()],
                    title: "decimal overflow: exception vs NULL".into(),
                    categories: vec![
                        ProblemCategory::InconsistentErrorBehavior,
                        ProblemCategory::CustomConfigReliance,
                    ],
                    evidence: vec![failure(2)],
                    trace: vec![],
                },
            ],
            unattributed: vec![],
            trace_totals: BTreeMap::from([("metastore".to_string(), 4)]),
            detector_enabled: false,
            detection_totals: BTreeMap::new(),
            detection_kinds: BTreeMap::new(),
            detector_agreement: None,
        }
    }

    #[test]
    fn category_counts_allow_overlap() {
        let r = report();
        let counts: Vec<usize> = r.category_counts().iter().map(|(_, n)| *n).collect();
        assert_eq!(counts, vec![1, 0, 1, 1, 1]);
        assert_eq!(r.distinct(), 2);
    }

    #[test]
    fn issue_keys_are_sorted_and_deduped() {
        let r = report();
        assert_eq!(r.issue_keys(), vec!["SPARK-39075", "SPARK-40439"]);
    }

    #[test]
    fn render_mentions_every_discrepancy() {
        let text = report().render();
        assert!(text.contains("D01"));
        assert!(text.contains("D05"));
        assert!(text.contains("2 distinct discrepancies"));
        assert!(text.contains("#0 Spark->Hive metastore:get_table"));
        assert!(text.contains("boundary crossings per channel:"));
    }

    #[test]
    fn render_sections_are_selectable_and_canonically_ordered() {
        let r = report();
        // Only the summary, regardless of selection call order.
        let text = Render::new(&r).section(Section::Summary).to_string();
        assert!(text.contains("cross-testing: 10 inputs"));
        assert!(!text.contains("D01"));
        assert!(!text.contains("category totals:"));
        // Requesting sections out of order still renders canonically.
        let text = Render::new(&r)
            .section(Section::Categories)
            .section(Section::Summary)
            .to_string();
        let summary_at = text.find("cross-testing:").unwrap();
        let categories_at = text.find("category totals:").unwrap();
        assert!(summary_at < categories_at);
    }

    #[test]
    fn detections_section_reports_none_and_totals() {
        let mut r = report();
        r.detector_enabled = true;
        let text = r.render();
        assert!(text.contains("online detections: none"), "{text}");
        r.detection_totals.insert("metastore".into(), 3);
        r.detection_kinds.insert("swallowed-error".into(), 3);
        let mut agreement = DetectorAgreement::default();
        agreement.score(true, true);
        agreement.score(false, false);
        r.detector_agreement = Some(agreement);
        let text = r.render();
        assert!(text.contains("online detections per channel:"), "{text}");
        assert!(text.contains("3 x metastore"), "{text}");
        assert!(text.contains("3 x swallowed-error"), "{text}");
        assert!(
            text.contains("precision 1.000, recall 1.000 (tp 1 fp 0 fn 0 tn 1)"),
            "{text}"
        );
    }

    #[test]
    fn fault_cell_rows_render_through_the_same_path() {
        let r = report();
        let rows = vec![FaultCellRow {
            fault_id: "ms-unavail-get".into(),
            scenario: "sh:spark-sql->hiveql:orc".into(),
            outcome: "swallowed".into(),
            detections: 1,
            detail: "no error surfaced".into(),
        }];
        let text = Render::new(&r)
            .section(Section::Summary)
            .fault_cells(&rows)
            .to_string();
        assert!(text.contains("fault matrix cells:"), "{text}");
        assert!(
            text.contains("ms-unavail-get x sh:spark-sql->hiveql:orc: swallowed (1 detections)"),
            "{text}"
        );
    }

    #[test]
    fn exploration_stats_render_through_the_same_path() {
        let r = report();
        let stats = ExplorationStats {
            seed: 42,
            budget: 600,
            grid_cells: 10_128,
            executed: 600,
            fresh: 420,
            mutated: 150,
            faulted: 30,
            signatures: 37,
            novel_from_mutation: 4,
            novel_from_corpus: 2,
            signatures_seen: vec!["00deadbeef001234".into()],
            corpus: vec![CorpusRow {
                input_id: 3,
                label: "a tinyint".into(),
                origin: "grid".into(),
                executed: 12,
            }],
            discoveries: vec![DiscoveryRow {
                id: "D01".into(),
                executed: 64,
                origin: "grid".into(),
            }],
            shrinks: vec![ShrinkRow {
                id: "D01".into(),
                scenario: "ss:SparkSQL->DataFrame:AVRO".into(),
                label: "a tinyint".into(),
                rows: 1,
                columns: 1,
                steps: 2,
                checks: 9,
            }],
        };
        let text = Render::new(&r)
            .section(Section::Summary)
            .exploration(&stats)
            .to_string();
        assert!(
            text.contains("exploration: seed 42, budget 600 over a 10128-cell grid"),
            "{text}"
        );
        assert!(
            text.contains(
                "37 signatures (4 novel from mutation, 2 novel from corpus), corpus 1 entries"
            ),
            "{text}"
        );
        assert!(
            text.contains("discovered D01 after 64 executions (grid)"),
            "{text}"
        );
        assert!(
            text.contains("shrunk D01 -> ss:SparkSQL->DataFrame:AVRO [a tinyint] (1 row x 1 col, 2 steps, 9 checks)"),
            "{text}"
        );
        let json = serde_json::to_string(&stats).unwrap();
        let back: ExplorationStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn cluster_rows_render_through_the_same_path() {
        let r = report();
        let stats = CompoundStats {
            seed: 42,
            kfaults: 3,
            jobs: 2,
            executed: 120,
            space: 480,
            signatures: 19,
            discrepancies: 7,
            shrink_checks: 23,
        };
        let rows = vec![ClusterRow {
            fingerprint: "00deadbeef001234".into(),
            members: 4,
            crack: "metastore|get_table|Data|fault:unavailable".into(),
            prefix_len: 3,
            fault_set: "ms-unavail-get+hdfs-corrupt-read".into(),
            faults: 2,
            schedule: "identity".into(),
            scenario: "ss:SparkSQL->SparkSQL:ORC".into(),
        }];
        let text = Render::new(&r)
            .section(Section::Summary)
            .clusters(&stats, &rows)
            .to_string();
        assert!(
            text.contains("compound pass: seed 42, k<=3 faults x 2 jobs"),
            "{text}"
        );
        assert!(
            text.contains("7 discrepancies -> 1 co-failure clusters"),
            "{text}"
        );
        assert!(
            text.contains("cluster 00deadbeef001234 (4 members, prefix depth 3)"),
            "{text}"
        );
        assert!(
            text.contains(
                "reproducer: faults [ms-unavail-get+hdfs-corrupt-read] (2), schedule identity"
            ),
            "{text}"
        );
        let json = serde_json::to_string(&rows).unwrap();
        let back: Vec<ClusterRow> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, rows);
        let json = serde_json::to_string(&stats).unwrap();
        let back: CompoundStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn report_serializes_to_json() {
        let r = report();
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: DiscrepancyReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
    }
}
