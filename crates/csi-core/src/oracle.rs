//! The three test oracles of Section 8.1.
//!
//! 1. **Write–Read (WR)**: for valid data, the data read back must equal the
//!    data written, even across interfaces.
//! 2. **Error handling (EH)**: invalid data must be rejected, or corrected
//!    with feedback (e.g. a log message), during the write.
//! 3. **Differential (Diff)**: results and behavior must be consistent across
//!    interfaces and backend formats.
//!
//! Oracles operate on [`Observation`]s — one write-then-read run through a
//! particular interface pair and storage format — and produce
//! [`OracleFailure`]s, the raw material the discrepancy classifier groups
//! into distinct discrepancies.

use crate::boundary::InteractionTrace;
use crate::column::ValueColumn;
use crate::detect::Detection;
use crate::diag::{Diagnostic, Level};
use crate::error::InteractionError;
use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Which oracle produced a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum OracleKind {
    /// Write–Read.
    WriteRead,
    /// Error handling.
    ErrorHandling,
    /// Differential.
    Differential,
}

impl fmt::Display for OracleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OracleKind::WriteRead => write!(f, "wr"),
            OracleKind::ErrorHandling => write!(f, "eh"),
            OracleKind::Differential => write!(f, "difft"),
        }
    }
}

/// Outcome of a write through one interface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WriteOutcome {
    /// `Ok` if the write was accepted.
    pub result: Result<(), InteractionError>,
    /// Diagnostics emitted by either system during the write.
    pub diagnostics: Vec<Diagnostic>,
}

/// Outcome of a read through one interface.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReadOutcome {
    /// The values read back for the column under test, one per row written.
    pub result: Result<Vec<Value>, InteractionError>,
    /// Diagnostics emitted during the read.
    pub diagnostics: Vec<Diagnostic>,
}

/// One write-then-read run of a single test input through a
/// (write interface, read interface, format) combination.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Observation {
    /// Identifier of the generated input.
    pub input_id: usize,
    /// The plan, e.g. `"SparkSQL->HiveQL"`.
    pub plan: String,
    /// The storage format, e.g. `"ORC"`.
    pub format: String,
    /// Write outcome.
    pub write: WriteOutcome,
    /// Read outcome; `None` when the write failed and no read was attempted.
    pub read: Option<ReadOutcome>,
    /// The causal sequence of boundary crossings this observation drove.
    pub trace: InteractionTrace,
    /// What the online detector flagged while the observation ran (empty
    /// when detection is off).
    pub detections: Vec<Detection>,
}

/// Canonical behavior of an observation, for differential comparison.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Behavior {
    /// The write was rejected; the payload is the error signature.
    WriteRejected(String),
    /// The write succeeded but the read failed.
    ReadFailed(String),
    /// Both succeeded; the payload is the value signature of the rows.
    Values(String),
}

impl fmt::Display for Behavior {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Behavior::WriteRejected(sig) => write!(f, "write rejected ({sig})"),
            Behavior::ReadFailed(sig) => write!(f, "read failed ({sig})"),
            Behavior::Values(sig) => write!(f, "values {sig}"),
        }
    }
}

impl Observation {
    /// The canonical behavior signature of this observation.
    pub fn behavior(&self) -> Behavior {
        match (&self.write.result, &self.read) {
            (Err(e), _) => Behavior::WriteRejected(e.signature()),
            (Ok(()), Some(read)) => match &read.result {
                Err(e) => Behavior::ReadFailed(e.signature()),
                Ok(values) if values.len() <= 1 => {
                    let sigs: Vec<String> = values.iter().map(Value::signature).collect();
                    Behavior::Values(sigs.join(";"))
                }
                Ok(values) => {
                    // Bulk reads: a per-row signature join would allocate a
                    // string per cell. Digest the rows through the columnar
                    // fingerprint instead; canonically equal multi-row reads
                    // digest equally. Single-row observations (the entire
                    // pre-existing catalogue) keep the legacy signature so
                    // report bytes are unchanged.
                    let col = ValueColumn::from_values(
                        &values
                            .iter()
                            .find_map(Value::natural_type)
                            .unwrap_or(DataType::String),
                        values,
                    );
                    Behavior::Values(format!(
                        "<{} rows digest {:016x}>",
                        values.len(),
                        col.fingerprint()
                    ))
                }
            },
            (Ok(()), None) => Behavior::Values("<no read attempted>".into()),
        }
    }

    /// Whether any warning-or-worse diagnostic was emitted.
    pub fn has_feedback(&self) -> bool {
        let warned = |ds: &[Diagnostic]| ds.iter().any(|d| d.level >= Level::Warn);
        warned(&self.write.diagnostics)
            || self.read.as_ref().is_some_and(|r| warned(&r.diagnostics))
    }
}

/// A single oracle failure, mirroring one entry of the artifact's
/// `*failed.json` files.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OracleFailure {
    /// The oracle that flagged the failure.
    pub oracle: OracleKind,
    /// The generated input's identifier.
    pub input_id: usize,
    /// Interface combination(s) involved.
    pub plans: Vec<String>,
    /// Format(s) involved.
    pub formats: Vec<String>,
    /// Human-readable description of what diverged.
    pub detail: String,
}

/// Write–Read oracle: for a *valid* input, the written value must be read
/// back unchanged.
///
/// Returns `None` when the oracle passes.
pub fn check_write_read(expected: &Value, obs: &Observation) -> Option<OracleFailure> {
    let fail = |detail: String| {
        Some(OracleFailure {
            oracle: OracleKind::WriteRead,
            input_id: obs.input_id,
            plans: vec![obs.plan.clone()],
            formats: vec![obs.format.clone()],
            detail,
        })
    };
    match (&obs.write.result, &obs.read) {
        (Err(e), _) => fail(format!("valid value rejected on write: {e}")),
        (Ok(()), Some(read)) => match &read.result {
            Err(e) => fail(format!("cannot read what was written: {e}")),
            Ok(values) => {
                if values.len() != 1 {
                    return fail(format!("expected 1 row back, got {}", values.len()));
                }
                if values[0].canonical_eq(expected) {
                    None
                } else {
                    fail(format!(
                        "read back {} but wrote {}",
                        values[0].signature(),
                        expected.signature()
                    ))
                }
            }
        },
        (Ok(()), None) => fail("write succeeded but no read was attempted".into()),
    }
}

/// Vectorized Write–Read oracle over whole columns: the bulk-campaign
/// counterpart of [`check_write_read`].
///
/// Comparison goes through [`ValueColumn::canonical_eq`], whose fast path
/// is a word-wise validity check plus a raw buffer compare — no per-cell
/// enum traffic unless the buffers actually differ. On divergence the
/// failure detail pinpoints the first differing row.
pub fn check_write_read_columns(
    input_id: usize,
    plan: &str,
    format: &str,
    expected: &ValueColumn,
    actual: &ValueColumn,
) -> Option<OracleFailure> {
    if expected.canonical_eq(actual) {
        return None;
    }
    let detail = if expected.len() != actual.len() {
        format!(
            "expected {} rows back, got {}",
            expected.len(),
            actual.len()
        )
    } else {
        let first = (0..expected.len())
            .find(|&i| !expected.get(i).canonical_eq(&actual.get(i)))
            .unwrap_or(0);
        format!(
            "row {first}: read back {} but wrote {}",
            actual.get(first).signature(),
            expected.get(first).signature()
        )
    };
    Some(OracleFailure {
        oracle: OracleKind::WriteRead,
        input_id,
        plans: vec![plan.to_string()],
        formats: vec![format.to_string()],
        detail,
    })
}

/// Error-handling oracle, artifact-faithful: an *invalid* input fails the
/// oracle when it is "successfully inserted and read back" unchanged
/// (e.g. SPARK-40630). Rejections and corrections pass.
pub fn check_error_handling(raw: &Value, obs: &Observation) -> Option<OracleFailure> {
    match (&obs.write.result, &obs.read) {
        (Err(_), _) => None, // Rejected: the oracle passes.
        (Ok(()), Some(read)) => {
            match &read.result {
                // An invalid value that poisons the read is *worse* than a
                // rejection, but the artifact's EH oracle only flags silent
                // acceptance; read errors surface via WR/Diff instead.
                Err(_) => None,
                Ok(values) => {
                    let unchanged =
                        values.len() == 1 && values[0].canonical_eq(raw) && !raw.is_null();
                    if unchanged {
                        Some(OracleFailure {
                            oracle: OracleKind::ErrorHandling,
                            input_id: obs.input_id,
                            plans: vec![obs.plan.clone()],
                            formats: vec![obs.format.clone()],
                            detail: "invalid value successfully inserted and read back".into(),
                        })
                    } else {
                        None
                    }
                }
            }
        }
        (Ok(()), None) => None,
    }
}

/// A stricter error-handling oracle (an extension beyond the artifact):
/// corrections must come *with feedback* — a value silently coerced with no
/// warning-level diagnostic also fails.
pub fn check_error_handling_strict(raw: &Value, obs: &Observation) -> Option<OracleFailure> {
    if let Some(f) = check_error_handling(raw, obs) {
        return Some(f);
    }
    match (&obs.write.result, &obs.read) {
        (Ok(()), Some(read)) => match &read.result {
            Ok(_) if !obs.has_feedback() => Some(OracleFailure {
                oracle: OracleKind::ErrorHandling,
                input_id: obs.input_id,
                plans: vec![obs.plan.clone()],
                formats: vec![obs.format.clone()],
                detail: "invalid value silently corrected without feedback".into(),
            }),
            _ => None,
        },
        _ => None,
    }
}

/// Differential oracle: all observations of the same input must exhibit the
/// same behavior across interface pairs and formats.
///
/// Returns one failure per input whose observations split into more than one
/// behavior class; the detail lists each class and its members.
pub fn check_differential(observations: &[Observation]) -> Vec<OracleFailure> {
    let mut by_input: BTreeMap<usize, Vec<&Observation>> = BTreeMap::new();
    for obs in observations {
        by_input.entry(obs.input_id).or_default().push(obs);
    }
    let mut failures = Vec::new();
    for (input_id, group) in by_input {
        let mut classes: BTreeMap<Behavior, Vec<&Observation>> = BTreeMap::new();
        for obs in group {
            classes.entry(obs.behavior()).or_default().push(obs);
        }
        if classes.len() > 1 {
            let mut plans = Vec::new();
            let mut formats = Vec::new();
            let mut lines = Vec::new();
            for (behavior, members) in &classes {
                let names: Vec<String> = members
                    .iter()
                    .map(|o| format!("{}/{}", o.plan, o.format))
                    .collect();
                lines.push(format!("{behavior} <- [{}]", names.join(", ")));
                for o in members {
                    if !plans.contains(&o.plan) {
                        plans.push(o.plan.clone());
                    }
                    if !formats.contains(&o.format) {
                        formats.push(o.format.clone());
                    }
                }
            }
            failures.push(OracleFailure {
                oracle: OracleKind::Differential,
                input_id,
                plans,
                formats,
                detail: lines.join(" | "),
            });
        }
    }
    failures
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diag::Diagnostic;

    fn ok_obs(input_id: usize, plan: &str, format: &str, value: Value) -> Observation {
        Observation {
            input_id,
            plan: plan.into(),
            format: format.into(),
            write: WriteOutcome {
                result: Ok(()),
                diagnostics: vec![],
            },
            read: Some(ReadOutcome {
                result: Ok(vec![value]),
                diagnostics: vec![],
            }),
            trace: InteractionTrace::default(),
            detections: vec![],
        }
    }

    fn rejected_obs(input_id: usize, plan: &str, format: &str, code: &str) -> Observation {
        Observation {
            input_id,
            plan: plan.into(),
            format: format.into(),
            write: WriteOutcome {
                result: Err(InteractionError::rejected("sys", code, "nope")),
                diagnostics: vec![],
            },
            read: None,
            trace: InteractionTrace::default(),
            detections: vec![],
        }
    }

    #[test]
    fn write_read_passes_on_round_trip() {
        let obs = ok_obs(1, "A->A", "ORC", Value::Int(7));
        assert!(check_write_read(&Value::Int(7), &obs).is_none());
    }

    #[test]
    fn write_read_fails_on_value_change() {
        let obs = ok_obs(1, "A->A", "ORC", Value::Int(8));
        let f = check_write_read(&Value::Int(7), &obs).unwrap();
        assert_eq!(f.oracle, OracleKind::WriteRead);
        assert!(f.detail.contains("read back"));
    }

    #[test]
    fn write_read_fails_on_rejection_and_read_error() {
        let rej = rejected_obs(2, "A->B", "AVRO", "X");
        assert!(check_write_read(&Value::Int(1), &rej).is_some());
        let mut obs = ok_obs(2, "A->B", "AVRO", Value::Int(1));
        obs.read = Some(ReadOutcome {
            result: Err(InteractionError::crash("sys", "BOOM", "bad")),
            diagnostics: vec![],
        });
        let f = check_write_read(&Value::Int(1), &obs).unwrap();
        assert!(f.detail.contains("cannot read"));
    }

    #[test]
    fn error_handling_passes_on_rejection() {
        let obs = rejected_obs(3, "A->A", "ORC", "INVALID");
        assert!(check_error_handling(&Value::Int(999), &obs).is_none());
    }

    #[test]
    fn error_handling_passes_on_corrected_with_feedback() {
        let mut obs = ok_obs(3, "A->A", "ORC", Value::Null);
        obs.write.diagnostics.push(Diagnostic {
            system: "sys".into(),
            level: Level::Warn,
            code: "COERCED".into(),
            message: "out of range -> NULL".into(),
        });
        assert!(check_error_handling(&Value::Int(999), &obs).is_none());
    }

    #[test]
    fn error_handling_fails_on_silent_acceptance() {
        let obs = ok_obs(3, "A->A", "ORC", Value::Int(999));
        let f = check_error_handling(&Value::Int(999), &obs).unwrap();
        assert!(f.detail.contains("inserted and read back"));
    }

    #[test]
    fn error_handling_passes_on_silent_correction_but_strict_does_not() {
        // Corrected with no feedback: the artifact-faithful oracle passes,
        // the strict extension flags it.
        let obs = ok_obs(3, "A->A", "ORC", Value::Null);
        assert!(check_error_handling(&Value::Int(999), &obs).is_none());
        let f = check_error_handling_strict(&Value::Int(999), &obs).unwrap();
        assert!(f.detail.contains("without feedback"));
    }

    #[test]
    fn strict_oracle_passes_with_feedback() {
        let mut obs = ok_obs(3, "A->A", "ORC", Value::Null);
        obs.write.diagnostics.push(Diagnostic {
            system: "sys".into(),
            level: Level::Warn,
            code: "COERCED".into(),
            message: "coerced".into(),
        });
        assert!(check_error_handling_strict(&Value::Int(999), &obs).is_none());
    }

    #[test]
    fn differential_passes_when_consistent() {
        let obs = vec![
            ok_obs(5, "A->A", "ORC", Value::Int(1)),
            ok_obs(5, "A->B", "ORC", Value::Int(1)),
            ok_obs(5, "B->A", "PARQUET", Value::Int(1)),
        ];
        assert!(check_differential(&obs).is_empty());
    }

    #[test]
    fn differential_flags_split_behavior() {
        let obs = vec![
            ok_obs(5, "A->A", "ORC", Value::Int(1)),
            rejected_obs(5, "A->B", "ORC", "CAST"),
            ok_obs(6, "A->A", "ORC", Value::Int(2)),
        ];
        let failures = check_differential(&obs);
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].input_id, 5);
        assert!(failures[0].detail.contains("write rejected"));
        assert_eq!(failures[0].plans.len(), 2);
    }

    #[test]
    fn differential_groups_same_rejection_together() {
        // Two interfaces rejecting with the same code are consistent.
        let obs = vec![
            rejected_obs(7, "A->A", "ORC", "CAST"),
            rejected_obs(7, "A->B", "AVRO", "CAST"),
        ];
        assert!(check_differential(&obs).is_empty());
    }
}
