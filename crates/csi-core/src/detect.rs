//! Online CSI failure detection over the boundary crossing stream.
//!
//! The offline oracle ([`crate::fault::classify_fault_outcome`]) judges an
//! observation *after* it ends, from the fired-fault log and the surfaced
//! error. This module moves that judgement to run time: an
//! [`OnlineDetector`] attaches to a [`CrossingContext`] as a
//! [`CrossingSink`] and watches every metastore/HDFS/Kafka/YARN/HBase
//! crossing as it happens, emitting typed [`Detection`]s —
//!
//! - [`DetectionKind::SwallowedError`]: a fault fired at the boundary but
//!   no error surfaced to the caller (the paper's most common §9 bucket);
//! - [`DetectionKind::MistranslatedError`]: an error surfaced, but with a
//!   different kind/code than any fired fault's canonical signature —
//!   context was lost crossing the boundary;
//! - [`DetectionKind::LatencyStorm`]: the same (channel, op) crossing
//!   absorbed injected latency over and over, the FLINK-12342 shape where
//!   a slow dependency turns into a storm of slow control-plane calls;
//! - [`DetectionKind::PatternAnomaly`]: the observation's crossing
//!   sequence diverged from a learned per-scenario baseline;
//! - [`DetectionKind::CoOccurrence`]: faults on *different* channels fired
//!   within one virtual-time window — the cross-system co-occurrence
//!   cluster signal ("Systemic Flakiness") that single-crossing judgement
//!   cannot see.
//!
//! Determinism contract: detections are a pure function of the crossing
//! stream, the surfaced error, and a frozen [`BaselineSet`] — never of
//! wall-clock time or worker interleaving — so serial and sharded
//! campaigns produce byte-identical detection sets.
//!
//! Compound campaigns (`csi_test::multi`: k-fault sets armed at once,
//! several jobs interleaved on one shared deployment) exercise exactly the
//! cascading scenarios [`DetectionKind::CoOccurrence`] exists for: the
//! shared [`CrossingContext`] carries every job's crossings in one stream,
//! so faults that only co-fire under a particular interleaving land in the
//! same virtual-time window and become detectable — which a per-job stream
//! would never show.

use crate::boundary::{Crossing, CrossingOutcome, CrossingSink, InteractionTrace};
use crate::error::{ErrorKind, InteractionError};
use crate::fault::{canonical_signature, Channel, FaultKind, InjectedFault};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// The typed failure classes the online detector emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DetectionKind {
    /// A fault fired at the boundary, no error surfaced to the caller.
    SwallowedError,
    /// An error surfaced with a kind/code matching no fired fault's
    /// canonical signature.
    MistranslatedError,
    /// Repeated injected latency on one (channel, op) crossing.
    LatencyStorm,
    /// Crossing sequence diverged from the learned per-scenario baseline.
    PatternAnomaly,
    /// Faults on distinct channels fired within one virtual-time window.
    CoOccurrence,
}

impl DetectionKind {
    /// All kinds, in canonical order.
    pub const ALL: [DetectionKind; 5] = [
        DetectionKind::SwallowedError,
        DetectionKind::MistranslatedError,
        DetectionKind::LatencyStorm,
        DetectionKind::PatternAnomaly,
        DetectionKind::CoOccurrence,
    ];

    /// Whether this kind mirrors an offline §9 error-handling bucket
    /// (swallowed / mistranslated) rather than a timing or shape signal.
    pub fn is_error_handling(self) -> bool {
        matches!(
            self,
            DetectionKind::SwallowedError | DetectionKind::MistranslatedError
        )
    }
}

impl fmt::Display for DetectionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DetectionKind::SwallowedError => "swallowed-error",
            DetectionKind::MistranslatedError => "mistranslated-error",
            DetectionKind::LatencyStorm => "latency-storm",
            DetectionKind::PatternAnomaly => "pattern-anomaly",
            DetectionKind::CoOccurrence => "co-occurrence",
        };
        f.write_str(s)
    }
}

/// One online detection: what fired, where in the stream, and why.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Detection {
    /// The failure class.
    pub kind: DetectionKind,
    /// The scenario (observation) the detection belongs to.
    pub scenario: String,
    /// The channels involved, in canonical order, deduplicated.
    pub channels: Vec<Channel>,
    /// Sequence number of the crossing that anchored the detection.
    pub seq: u64,
    /// Virtual time of the anchoring crossing, in milliseconds.
    pub at_ms: u64,
    /// Human-readable evidence.
    pub detail: String,
}

/// Detector thresholds. All windows are in *virtual* milliseconds — the
/// boundary clock, not wall time — so thresholds behave identically under
/// any worker interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorConfig {
    /// Latency-fault firings on one (channel, op) that constitute a storm.
    pub storm_threshold: u64,
    /// Max gap between faulted crossings that still clusters them.
    pub co_window_ms: u64,
}

impl Default for DetectorConfig {
    fn default() -> DetectorConfig {
        DetectorConfig {
            storm_threshold: 32,
            co_window_ms: 60_000,
        }
    }
}

/// The learned crossing profile of one scenario: the (channel, op)
/// sequence a fault-free run performs.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ScenarioProfile {
    /// (channel, op) pairs in causal order.
    pub ops: Vec<(Channel, String)>,
}

/// Frozen per-scenario baselines, learned from fault-free calibration
/// traces. Shared immutably (via `Arc`) across every worker's detector so
/// sharding cannot perturb what "normal" means.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineSet {
    /// Scenario key → learned profile.
    pub profiles: BTreeMap<String, ScenarioProfile>,
}

impl BaselineSet {
    /// Learns (or overwrites) the baseline for `scenario` from a
    /// calibration trace.
    pub fn learn(&mut self, scenario: &str, trace: &InteractionTrace) {
        let ops = trace
            .crossings
            .iter()
            .map(|c| (c.call.channel, c.call.op.clone()))
            .collect();
        self.profiles
            .insert(scenario.to_string(), ScenarioProfile { ops });
    }

    /// Number of learned scenarios.
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether no scenario has been learned.
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }
}

/// A streaming observer of detections, invoked the moment each
/// [`Detection`] is recorded — before the observation finishes and long
/// before the campaign report exists.
///
/// This is the push half of detection-as-a-service: `csi-serve` hands
/// every tenant's campaign a tap that writes detection frames to the
/// tenant's connection, so detections stream out incrementally while the
/// campaign is still running. Taps observe only; they cannot alter the
/// detection set, so a tapped campaign stays byte-identical to an
/// untapped one.
///
/// Taps may be invoked while detector (and boundary) locks are held:
/// like [`CrossingSink`]s, they must never call back into a crossing
/// context or detector.
#[derive(Clone)]
pub struct DetectionTap(Arc<dyn Fn(&Detection) + Send + Sync>);

impl DetectionTap {
    /// Wraps a callback as a tap.
    pub fn new(f: impl Fn(&Detection) + Send + Sync + 'static) -> DetectionTap {
        DetectionTap(Arc::new(f))
    }

    /// Invokes the tap with one detection.
    pub fn emit(&self, detection: &Detection) {
        (self.0)(detection)
    }
}

impl fmt::Debug for DetectionTap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("DetectionTap")
    }
}

/// Detector configuration plus frozen baselines — everything needed to
/// build one worker's [`OnlineDetector`]. Cheap to clone; the baselines
/// are shared.
#[derive(Debug, Clone)]
pub struct DetectorSpec {
    /// Thresholds.
    pub config: DetectorConfig,
    /// Frozen per-scenario baselines.
    pub baselines: Arc<BaselineSet>,
    /// Streaming observer of detections, if any.
    pub tap: Option<DetectionTap>,
}

impl DetectorSpec {
    /// A spec with default thresholds and no baselines (pattern-anomaly
    /// detection stays silent until baselines are learned).
    pub fn new(config: DetectorConfig) -> DetectorSpec {
        DetectorSpec {
            config,
            baselines: Arc::new(BaselineSet::default()),
            tap: None,
        }
    }

    /// Replaces the baselines.
    pub fn with_baselines(mut self, baselines: Arc<BaselineSet>) -> DetectorSpec {
        self.baselines = baselines;
        self
    }

    /// Attaches a streaming detection tap.
    pub fn with_tap(mut self, tap: DetectionTap) -> DetectorSpec {
        self.tap = Some(tap);
        self
    }

    /// Builds a detector from this spec.
    pub fn build(&self) -> OnlineDetector {
        OnlineDetector::from_spec(self.clone())
    }
}

impl Default for DetectorSpec {
    fn default() -> DetectorSpec {
        DetectorSpec::new(DetectorConfig::default())
    }
}

#[derive(Debug)]
struct DetectorState {
    spec: DetectorSpec,
    active: bool,
    scenario: String,
    fired: Vec<InjectedFault>,
    /// seq/at_ms/channel of every faulted crossing, in stream order.
    faulted: Vec<(u64, u64, Channel)>,
    latency_counts: BTreeMap<(Channel, String), u64>,
    ops: Vec<(Channel, String)>,
    detections: Vec<Detection>,
    last_crossing: (u64, u64),
}

/// The online detector: a [`CrossingSink`] with per-observation state.
///
/// Lifecycle: [`begin`](OnlineDetector::begin) at the start of an
/// observation, crossings arrive through the sink hook while the scenario
/// runs, [`finish`](OnlineDetector::finish) with the surfaced error (if
/// any) closes the observation and returns its detections. Crossings seen
/// outside a begin/finish window (deployment seeding, table recycling)
/// are ignored.
///
/// Clones share state — cloning is how the same detector is handed to a
/// context as a sink while the executor keeps a handle for
/// `begin`/`finish`.
#[derive(Debug, Clone)]
pub struct OnlineDetector {
    inner: Arc<Mutex<DetectorState>>,
}

impl OnlineDetector {
    /// A detector with the given thresholds and frozen baselines.
    pub fn new(config: DetectorConfig, baselines: Arc<BaselineSet>) -> OnlineDetector {
        OnlineDetector::from_spec(DetectorSpec {
            config,
            baselines,
            tap: None,
        })
    }

    /// A detector built from a spec.
    pub fn from_spec(spec: DetectorSpec) -> OnlineDetector {
        OnlineDetector {
            inner: Arc::new(Mutex::new(DetectorState {
                spec,
                active: false,
                scenario: String::new(),
                fired: Vec::new(),
                faulted: Vec::new(),
                latency_counts: BTreeMap::new(),
                ops: Vec::new(),
                detections: Vec::new(),
                last_crossing: (0, 0),
            })),
        }
    }

    /// A boxed sink handle sharing this detector's state, ready for
    /// [`CrossingContext::set_sink`](crate::boundary::CrossingContext::set_sink).
    pub fn sink(&self) -> Box<dyn CrossingSink> {
        Box::new(self.clone())
    }

    /// Opens an observation: clears per-observation state and starts
    /// listening.
    pub fn begin(&self, scenario: &str) {
        let mut s = self.inner.lock();
        s.active = true;
        s.scenario = scenario.to_string();
        s.fired.clear();
        s.faulted.clear();
        s.latency_counts.clear();
        s.ops.clear();
        s.detections.clear();
        s.last_crossing = (0, 0);
    }

    /// Closes the observation with the error that surfaced to the caller
    /// (if any), runs the end-of-stream rules, and returns every
    /// detection of the observation, in emission order.
    pub fn finish(&self, surfaced: Option<&InteractionError>) -> Vec<Detection> {
        let mut s = self.inner.lock();
        if !s.active {
            return Vec::new();
        }
        s.active = false;

        // §9 error-handling mirror of `classify_fault_outcome`: the fired
        // set is reconstructed from Faulted crossings — provably the
        // registry's own log, since the boundary is the only interposer.
        if !s.fired.is_empty() {
            let (seq, at_ms) = s.fired_anchor();
            match surfaced {
                None => {
                    let channels = distinct_channels(s.fired.iter().map(|f| f.channel));
                    let fired_ids: Vec<&str> = s.fired.iter().map(|f| f.spec_id.as_str()).collect();
                    let detection = Detection {
                        kind: DetectionKind::SwallowedError,
                        scenario: s.scenario.clone(),
                        channels,
                        seq,
                        at_ms,
                        detail: format!(
                            "{} fault(s) fired [{}] but no error surfaced",
                            s.fired.len(),
                            fired_ids.join(", ")
                        ),
                    };
                    s.emit(detection);
                }
                Some(e) if matches!(e.kind, ErrorKind::Crash | ErrorKind::AssertionFailure) => {
                    // Crash bucket: the failure is loud; nothing slipped
                    // through a crack. The offline oracle owns it.
                }
                Some(e) => {
                    let translated_ok = s.fired.iter().any(|f| {
                        canonical_signature(f.channel, f.kind)
                            .is_some_and(|(kind, code)| e.kind == kind && e.code == code)
                    });
                    if !translated_ok {
                        let channels = distinct_channels(s.fired.iter().map(|f| f.channel));
                        let expected: Vec<String> = s
                            .fired
                            .iter()
                            .filter_map(|f| canonical_signature(f.channel, f.kind))
                            .map(|(kind, code)| format!("{kind}:{code}"))
                            .collect();
                        let detection = Detection {
                            kind: DetectionKind::MistranslatedError,
                            scenario: s.scenario.clone(),
                            channels,
                            seq,
                            at_ms,
                            detail: format!(
                                "surfaced {} matches none of [{}]",
                                e.signature(),
                                expected.join(", ")
                            ),
                        };
                        s.emit(detection);
                    }
                }
            }
        }

        // Crossing-pattern anomaly vs. the frozen per-scenario baseline.
        let baselines = s.spec.baselines.clone();
        if let Some(profile) = baselines.profiles.get(&s.scenario) {
            if s.ops != profile.ops {
                let divergence = s
                    .ops
                    .iter()
                    .zip(&profile.ops)
                    .position(|(a, b)| a != b)
                    .unwrap_or_else(|| s.ops.len().min(profile.ops.len()));
                let channels = match s
                    .ops
                    .get(divergence)
                    .or_else(|| profile.ops.get(divergence))
                {
                    Some((channel, _)) => vec![*channel],
                    None => Vec::new(),
                };
                let detection = Detection {
                    kind: DetectionKind::PatternAnomaly,
                    scenario: s.scenario.clone(),
                    channels,
                    seq: divergence as u64,
                    at_ms: 0,
                    detail: format!(
                        "crossing sequence diverged from baseline at #{divergence} \
                         (observed {} ops, baseline {})",
                        s.ops.len(),
                        profile.ops.len()
                    ),
                };
                s.emit(detection);
            }
        }

        // Cross-channel co-occurrence: cluster faulted crossings by
        // virtual-time gaps; a cluster spanning ≥2 channels is the signal.
        let window = s.spec.config.co_window_ms;
        let mut cluster: Vec<(u64, u64, Channel)> = Vec::new();
        let faulted = s.faulted.clone();
        let mut clusters: Vec<Vec<(u64, u64, Channel)>> = Vec::new();
        for event in faulted {
            match cluster.last() {
                Some(&(_, last_at, _)) if event.1.saturating_sub(last_at) <= window => {
                    cluster.push(event);
                }
                Some(_) => {
                    clusters.push(std::mem::take(&mut cluster));
                    cluster.push(event);
                }
                None => cluster.push(event),
            }
        }
        if !cluster.is_empty() {
            clusters.push(cluster);
        }
        for cluster in clusters {
            let channels = distinct_channels(cluster.iter().map(|&(_, _, c)| c));
            if channels.len() >= 2 {
                let (seq, at_ms, _) = cluster[0];
                let detection = Detection {
                    kind: DetectionKind::CoOccurrence,
                    scenario: s.scenario.clone(),
                    channels: channels.clone(),
                    seq,
                    at_ms,
                    detail: format!(
                        "{} faulted crossings across {} channels within {window}ms windows",
                        cluster.len(),
                        channels.len()
                    ),
                };
                s.emit(detection);
            }
        }

        std::mem::take(&mut s.detections)
    }
}

impl DetectorState {
    /// Records one detection, streaming it through the tap (if any)
    /// first. Every detection site funnels through here, so a tap sees
    /// exactly the detections the final report carries, in order.
    fn emit(&mut self, detection: Detection) {
        if let Some(tap) = &self.spec.tap {
            tap.emit(&detection);
        }
        self.detections.push(detection);
    }

    /// seq/at_ms of the first faulted crossing — the anchor for the
    /// error-handling detections.
    fn fired_anchor(&self) -> (u64, u64) {
        self.faulted
            .first()
            .map(|&(seq, at_ms, _)| (seq, at_ms))
            .unwrap_or(self.last_crossing)
    }

    fn observe(&mut self, crossing: &Crossing) {
        if !self.active {
            return;
        }
        self.last_crossing = (crossing.seq, crossing.at_ms);
        self.ops
            .push((crossing.call.channel, crossing.call.op.clone()));
        if let CrossingOutcome::Faulted { fault } = &crossing.outcome {
            self.fired.push(fault.clone());
            self.faulted
                .push((crossing.seq, crossing.at_ms, crossing.call.channel));
            if matches!(
                fault.kind,
                FaultKind::Latency { .. } | FaultKind::Timeout { .. }
            ) {
                let key = (crossing.call.channel, crossing.call.op.clone());
                let count = self.latency_counts.entry(key).or_insert(0);
                *count += 1;
                // Emit exactly once, online, the moment the storm
                // threshold is crossed — not at end of stream.
                if *count == self.spec.config.storm_threshold {
                    let detection = Detection {
                        kind: DetectionKind::LatencyStorm,
                        scenario: self.scenario.clone(),
                        channels: vec![crossing.call.channel],
                        seq: crossing.seq,
                        at_ms: crossing.at_ms,
                        detail: format!(
                            "{} delayed {}:{} crossings (threshold {})",
                            count,
                            crossing.call.channel,
                            crossing.call.op,
                            self.spec.config.storm_threshold
                        ),
                    };
                    self.emit(detection);
                }
            }
        }
    }
}

impl CrossingSink for OnlineDetector {
    fn on_crossing(&mut self, crossing: &Crossing) {
        self.inner.lock().observe(crossing);
    }
}

fn distinct_channels(iter: impl Iterator<Item = Channel>) -> Vec<Channel> {
    let present: std::collections::BTreeSet<Channel> = iter.collect();
    Channel::ALL
        .into_iter()
        .filter(|c| present.contains(c))
        .collect()
}

/// Agreement between the online detector and the offline
/// [`classify_fault_outcome`] oracle, over observations where faults
/// fired. Positive = the oracle labels the outcome swallowed or
/// mistranslated; the detector's positive = it emitted a matching
/// error-handling detection. Counts are integers so reports serialize
/// byte-identically; ratios are derived at render time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DetectorAgreement {
    /// Oracle positive, detector positive.
    pub true_positives: usize,
    /// Oracle negative, detector positive.
    pub false_positives: usize,
    /// Oracle positive, detector negative.
    pub false_negatives: usize,
    /// Oracle negative, detector negative.
    pub true_negatives: usize,
}

impl DetectorAgreement {
    /// Scores one observation.
    pub fn score(&mut self, oracle_positive: bool, detector_positive: bool) {
        match (oracle_positive, detector_positive) {
            (true, true) => self.true_positives += 1,
            (false, true) => self.false_positives += 1,
            (true, false) => self.false_negatives += 1,
            (false, false) => self.true_negatives += 1,
        }
    }

    /// Number of scored observations.
    pub fn total(&self) -> usize {
        self.true_positives + self.false_positives + self.false_negatives + self.true_negatives
    }

    /// TP / (TP + FP); 1.0 when the detector never fired.
    pub fn precision(&self) -> f64 {
        let flagged = self.true_positives + self.false_positives;
        if flagged == 0 {
            1.0
        } else {
            self.true_positives as f64 / flagged as f64
        }
    }

    /// TP / (TP + FN); 1.0 when the oracle never fired.
    pub fn recall(&self) -> f64 {
        let positives = self.true_positives + self.false_negatives;
        if positives == 0 {
            1.0
        } else {
            self.true_positives as f64 / positives as f64
        }
    }
}

/// Whether a detection set contains an error-handling detection — the
/// detector-side positive when scoring against the offline oracle.
pub fn flags_error_handling(detections: &[Detection]) -> bool {
    detections.iter().any(|d| d.kind.is_error_handling())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::{BoundaryCall, CrossingContext};
    use crate::fault::{classify_fault_outcome, FaultOutcome, FaultSpec, Trigger};

    fn ms_call(op: &str) -> BoundaryCall {
        BoundaryCall::new(Channel::Metastore, op)
    }

    fn spec(id: &str, channel: Channel, op: &str, kind: FaultKind) -> FaultSpec {
        FaultSpec {
            id: id.into(),
            channel,
            op: op.into(),
            kind,
            trigger: Trigger::Always,
        }
    }

    fn drive(ctx: &CrossingContext, calls: &[BoundaryCall]) {
        for call in calls {
            let _ = ctx.intercept(call.clone());
        }
    }

    #[test]
    fn clean_stream_yields_no_detections() {
        let detector = OnlineDetector::from_spec(DetectorSpec::default());
        let ctx = CrossingContext::new();
        ctx.set_sink(detector.sink());
        detector.begin("s");
        drive(&ctx, &[ms_call("get_table"), ms_call("create_table")]);
        assert!(detector.finish(None).is_empty());
    }

    #[test]
    fn swallowed_fault_is_detected_iff_oracle_agrees() {
        let detector = OnlineDetector::from_spec(DetectorSpec::default());
        let ctx = CrossingContext::new();
        ctx.arm(spec(
            "u",
            Channel::Metastore,
            "get_table",
            FaultKind::Unavailable,
        ));
        ctx.set_sink(detector.sink());
        detector.begin("s");
        drive(&ctx, &[ms_call("get_table")]);
        // No error surfaced: the oracle says swallowed, and so does the
        // detector, from the stream alone.
        let detections = detector.finish(None);
        assert_eq!(
            classify_fault_outcome(&ctx.fired(), None),
            FaultOutcome::Swallowed
        );
        assert_eq!(detections.len(), 1);
        assert_eq!(detections[0].kind, DetectionKind::SwallowedError);
        assert_eq!(detections[0].channels, vec![Channel::Metastore]);
        assert!(
            detections[0].detail.contains("[u]"),
            "{}",
            detections[0].detail
        );
    }

    #[test]
    fn mistranslated_error_is_detected() {
        let detector = OnlineDetector::from_spec(DetectorSpec::default());
        let ctx = CrossingContext::new();
        ctx.arm(spec(
            "u",
            Channel::Metastore,
            "get_table",
            FaultKind::Unavailable,
        ));
        ctx.set_sink(detector.sink());
        detector.begin("s");
        drive(&ctx, &[ms_call("get_table")]);
        let generic = InteractionError::new("spark", ErrorKind::Rejected, "INTERNAL", "boom");
        let fired = ctx.fired();
        assert_eq!(
            classify_fault_outcome(&fired, Some(&generic)),
            FaultOutcome::Mistranslated
        );
        let detections = detector.finish(Some(&generic));
        assert_eq!(detections.len(), 1);
        assert_eq!(detections[0].kind, DetectionKind::MistranslatedError);
        assert!(
            detections[0].detail.contains("rejected:INTERNAL"),
            "{}",
            detections[0].detail
        );
        assert!(
            detections[0]
                .detail
                .contains("unavailable:METASTORE_UNAVAILABLE"),
            "{}",
            detections[0].detail
        );
    }

    #[test]
    fn propagated_with_context_stays_silent() {
        let detector = OnlineDetector::from_spec(DetectorSpec::default());
        let ctx = CrossingContext::new();
        ctx.arm(spec(
            "u",
            Channel::Metastore,
            "get_table",
            FaultKind::Unavailable,
        ));
        ctx.set_sink(detector.sink());
        detector.begin("s");
        drive(&ctx, &[ms_call("get_table")]);
        let canonical = InteractionError::new(
            "hive",
            ErrorKind::Unavailable,
            "METASTORE_UNAVAILABLE",
            "down",
        );
        assert!(detector.finish(Some(&canonical)).is_empty());
    }

    #[test]
    fn crash_bucket_is_left_to_the_offline_oracle() {
        let detector = OnlineDetector::from_spec(DetectorSpec::default());
        let ctx = CrossingContext::new();
        ctx.arm(spec(
            "u",
            Channel::Metastore,
            "get_table",
            FaultKind::Unavailable,
        ));
        ctx.set_sink(detector.sink());
        detector.begin("s");
        drive(&ctx, &[ms_call("get_table")]);
        let crash = InteractionError::new("spark", ErrorKind::Crash, "NPE", "null");
        assert!(detector.finish(Some(&crash)).is_empty());
    }

    #[test]
    fn latency_storm_fires_online_at_the_threshold_exactly_once() {
        let detector = OnlineDetector::new(
            DetectorConfig {
                storm_threshold: 3,
                ..DetectorConfig::default()
            },
            Arc::new(BaselineSet::default()),
        );
        let ctx = CrossingContext::new();
        ctx.arm(spec(
            "slow",
            Channel::Yarn,
            "allocate",
            FaultKind::Latency { ms: 700 },
        ));
        ctx.set_sink(detector.sink());
        detector.begin("yarn:driver");
        let call = BoundaryCall::new(Channel::Yarn, "allocate");
        drive(
            &ctx,
            &[call.clone(), call.clone(), call.clone(), call.clone()],
        );
        // 4 delayed crossings, threshold 3: exactly one storm detection,
        // anchored at the third crossing, plus the swallowed-error mirror
        // (latency faults fired, nothing surfaced).
        let detections = detector.finish(None);
        let storms: Vec<_> = detections
            .iter()
            .filter(|d| d.kind == DetectionKind::LatencyStorm)
            .collect();
        assert_eq!(storms.len(), 1);
        assert_eq!(storms[0].seq, 2);
        assert!(
            storms[0].detail.contains("yarn:allocate"),
            "{}",
            storms[0].detail
        );
        assert!(flags_error_handling(&detections));
    }

    #[test]
    fn pattern_anomaly_against_learned_baseline() {
        // Learn the clean shape of the scenario...
        let ctx = CrossingContext::new();
        drive(&ctx, &[ms_call("get_table"), ms_call("create_table")]);
        let mut baselines = BaselineSet::default();
        baselines.learn("s", &ctx.trace());

        // ...then replay with an extra crossing: anomaly at index 1.
        let detector = OnlineDetector::new(DetectorConfig::default(), Arc::new(baselines.clone()));
        let ctx = CrossingContext::new();
        ctx.set_sink(detector.sink());
        detector.begin("s");
        drive(
            &ctx,
            &[
                ms_call("get_table"),
                ms_call("drop_table"),
                ms_call("create_table"),
            ],
        );
        let detections = detector.finish(None);
        assert_eq!(detections.len(), 1);
        assert_eq!(detections[0].kind, DetectionKind::PatternAnomaly);
        assert_eq!(detections[0].seq, 1);

        // A faithful replay is silent; an unknown scenario is silent too.
        let detector = OnlineDetector::new(DetectorConfig::default(), Arc::new(baselines));
        let ctx = CrossingContext::new();
        ctx.set_sink(detector.sink());
        detector.begin("s");
        drive(&ctx, &[ms_call("get_table"), ms_call("create_table")]);
        assert!(detector.finish(None).is_empty());
        detector.begin("unknown");
        drive(&ctx, &[ms_call("drop_table")]);
        assert!(detector.finish(None).is_empty());
    }

    #[test]
    fn cross_channel_co_occurrence_clusters_by_virtual_time() {
        let detector = OnlineDetector::from_spec(DetectorSpec::default());
        let ctx = CrossingContext::new();
        ctx.arm(spec(
            "ms-slow",
            Channel::Metastore,
            "get_table",
            FaultKind::Latency { ms: 100 },
        ));
        ctx.arm(spec(
            "fs-down",
            Channel::Hdfs,
            "read",
            FaultKind::Unavailable,
        ));
        ctx.set_sink(detector.sink());
        detector.begin("s");
        drive(
            &ctx,
            &[
                ms_call("get_table"),
                BoundaryCall::new(Channel::Hdfs, "read"),
            ],
        );
        let generic = InteractionError::new("hdfs", ErrorKind::Unavailable, "SAFE_MODE", "safe");
        let detections = detector.finish(Some(&generic));
        let co: Vec<_> = detections
            .iter()
            .filter(|d| d.kind == DetectionKind::CoOccurrence)
            .collect();
        assert_eq!(co.len(), 1);
        assert_eq!(co[0].channels, vec![Channel::Metastore, Channel::Hdfs]);

        // Same two channels, but separated by more than the window: no
        // cluster.
        let detector = OnlineDetector::new(
            DetectorConfig {
                co_window_ms: 50,
                ..DetectorConfig::default()
            },
            Arc::new(BaselineSet::default()),
        );
        let ctx = CrossingContext::new();
        ctx.arm(spec(
            "ms-slow",
            Channel::Metastore,
            "get_table",
            FaultKind::Latency { ms: 100 },
        ));
        ctx.arm(spec(
            "fs-down",
            Channel::Hdfs,
            "read",
            FaultKind::Unavailable,
        ));
        ctx.set_sink(detector.sink());
        detector.begin("s");
        drive(
            &ctx,
            &[
                ms_call("get_table"),
                BoundaryCall::new(Channel::Hdfs, "read"),
            ],
        );
        let detections = detector.finish(Some(&generic));
        assert!(detections
            .iter()
            .all(|d| d.kind != DetectionKind::CoOccurrence));
    }

    #[test]
    fn crossings_outside_an_observation_are_ignored() {
        let detector = OnlineDetector::from_spec(DetectorSpec::default());
        let ctx = CrossingContext::new();
        ctx.arm(spec(
            "u",
            Channel::Metastore,
            "get_table",
            FaultKind::Unavailable,
        ));
        ctx.set_sink(detector.sink());
        // Seeding traffic before begin() — invisible to the detector.
        drive(&ctx, &[ms_call("get_table")]);
        detector.begin("s");
        let detections = detector.finish(None);
        assert!(detections.is_empty());
        // And after finish() — also invisible.
        drive(&ctx, &[ms_call("get_table")]);
        detector.begin("s2");
        assert!(detector.finish(None).is_empty());
    }

    #[test]
    fn agreement_ratios() {
        let mut a = DetectorAgreement::default();
        assert_eq!(a.precision(), 1.0);
        assert_eq!(a.recall(), 1.0);
        a.score(true, true);
        a.score(true, true);
        a.score(false, false);
        a.score(true, false);
        a.score(false, true);
        assert_eq!(a.total(), 5);
        assert_eq!(a.true_positives, 2);
        assert_eq!(a.false_negatives, 1);
        assert_eq!(a.false_positives, 1);
        assert_eq!(a.true_negatives, 1);
        assert!((a.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert!((a.recall() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn detections_round_trip_through_serde() {
        let detection = Detection {
            kind: DetectionKind::CoOccurrence,
            scenario: "sh:spark-sql->hiveql:orc:i1".into(),
            channels: vec![Channel::Metastore, Channel::Hdfs],
            seq: 7,
            at_ms: 103,
            detail: "2 faulted crossings across 2 channels".into(),
        };
        let json = serde_json::to_string(&detection).unwrap();
        let back: Detection = serde_json::from_str(&json).unwrap();
        assert_eq!(back, detection);
    }
}
