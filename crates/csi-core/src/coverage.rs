//! Coverage signatures extracted from boundary-crossing traces.
//!
//! The coverage-guided campaign mode (`csi_test::explore`) treats each
//! observation's [`InteractionTrace`] as a feedback signal: the set of
//! (channel, op, plane, outcome-class) tuples it crossed, plus a small set
//! of classifier tags (error codes, oracle verdicts, §9 taxonomy buckets),
//! forms a [`CoverageSignature`]. An input whose observation produces a
//! signature never seen before is *novel* and earns a place in the
//! exploration corpus.
//!
//! Signatures are canonical: tuples and tags live in ordered sets, so two
//! observations that crossed the same boundaries in different interleavings
//! or multiplicities collapse to the same signature. The fingerprint is a
//! plain FNV-1a over the canonical text, which keeps the whole map
//! deterministic and serializable — the properties the explore mode's
//! serial-vs-sharded byte-identity rests on.

use crate::boundary::{CrossingOutcome, InteractionTrace};
use crate::fault::FaultKind;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// The coverage signature of one observation: canonical crossing tuples
/// plus classifier tags.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageSignature {
    /// Canonical `channel|op|plane|outcome-class` tuples, deduplicated.
    pub tuples: BTreeSet<String>,
    /// Classifier tags: error codes, oracle verdicts, taxonomy buckets,
    /// input-shape markers. Deduplicated and ordered.
    pub tags: BTreeSet<String>,
}

/// The outcome class of a crossing, independent of fault parameters: a
/// `Timeout {{ ms: 12_345 }}` and a `Timeout {{ ms: 17 }}` cover the same
/// class.
fn outcome_class(outcome: &CrossingOutcome) -> &'static str {
    match outcome {
        CrossingOutcome::Clean => "ok",
        CrossingOutcome::Faulted { fault } => match fault.kind {
            FaultKind::Unavailable => "fault-unavailable",
            FaultKind::Timeout { .. } => "fault-timeout",
            FaultKind::CorruptPayload => "fault-corrupt",
            FaultKind::Latency { .. } => "fault-latency",
        },
        CrossingOutcome::Noted { .. } => "note",
    }
}

impl CoverageSignature {
    /// Extracts the crossing tuples of a trace; tags start empty.
    pub fn from_trace(trace: &InteractionTrace) -> CoverageSignature {
        let tuples = trace
            .crossings
            .iter()
            .map(|c| {
                format!(
                    "{}|{}|{}|{}",
                    c.call.channel,
                    c.call.op,
                    c.call.plane,
                    outcome_class(&c.outcome)
                )
            })
            .collect();
        CoverageSignature {
            tuples,
            tags: BTreeSet::new(),
        }
    }

    /// Adds a classifier tag (idempotent).
    pub fn tag(&mut self, tag: impl Into<String>) {
        self.tags.insert(tag.into());
    }

    /// The canonical one-line rendering the fingerprint hashes.
    pub fn canonical(&self) -> String {
        let tuples: Vec<&str> = self.tuples.iter().map(String::as_str).collect();
        let tags: Vec<&str> = self.tags.iter().map(String::as_str).collect();
        format!("{}##{}", tuples.join(";"), tags.join(";"))
    }

    /// FNV-1a 64-bit fingerprint of the canonical rendering.
    pub fn fingerprint(&self) -> u64 {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in self.canonical().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0100_0000_01b3);
        }
        hash
    }
}

/// FNV-1a 64-bit fingerprint of an *ordered* causal-trace prefix (see
/// [`InteractionTrace::causal_prefix`]).
///
/// Unlike [`CoverageSignature::fingerprint`], which hashes a deduplicated
/// set, this hash is order-sensitive: the co-failure clustering of compound
/// fault campaigns groups discrepancies by the exact causal path up to the
/// first fault, so `A then B` and `B then A` must land in different
/// clusters.
pub fn prefix_fingerprint(prefix: &[String]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for step in prefix {
        for byte in step.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0100_0000_01b3);
        }
        // Step separator, so ["ab","c"] and ["a","bc"] differ.
        hash ^= u64::from(b'\n');
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    hash
}

/// The set of coverage signatures a campaign has seen, with the execution
/// index each was first observed at.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoverageMap {
    // Keyed by the hex fingerprint (JSON map keys are strings, so a
    // string key round-trips through serialization losslessly).
    first_seen: BTreeMap<String, usize>,
}

impl CoverageMap {
    /// An empty map.
    pub fn new() -> CoverageMap {
        CoverageMap::default()
    }

    /// Records a signature observed at execution index `executed`.
    /// Returns `true` when the signature is novel (first occurrence).
    pub fn observe(&mut self, signature: &CoverageSignature, executed: usize) -> bool {
        let fp = format!("{:016x}", signature.fingerprint());
        if let std::collections::btree_map::Entry::Vacant(slot) = self.first_seen.entry(fp) {
            slot.insert(executed);
            true
        } else {
            false
        }
    }

    /// Whether the signature has been seen.
    pub fn contains(&self, signature: &CoverageSignature) -> bool {
        self.first_seen
            .contains_key(&format!("{:016x}", signature.fingerprint()))
    }

    /// Number of distinct signatures seen.
    pub fn distinct(&self) -> usize {
        self.first_seen.len()
    }

    /// The hex fingerprints of every signature seen, in canonical
    /// (lexicographic) order. Exploration reports expose this so two runs
    /// can be compared by *which* signatures they reached, not just how
    /// many — the corpus-vs-catalogue set difference is computed on it.
    pub fn fingerprints(&self) -> Vec<String> {
        self.first_seen.keys().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::{BoundaryCall, CrossingContext};
    use crate::fault::{Channel, FaultSpec, Trigger};
    use crate::InteractionError;

    fn trace_with(ops: &[&str]) -> InteractionTrace {
        let ctx = CrossingContext::new();
        for op in ops {
            let _: Result<(), InteractionError> =
                ctx.cross(BoundaryCall::new(Channel::Metastore, op));
        }
        ctx.trace()
    }

    #[test]
    fn repeated_and_reordered_crossings_collapse_to_one_signature() {
        let a = CoverageSignature::from_trace(&trace_with(&["get_table", "create_table"]));
        let b =
            CoverageSignature::from_trace(&trace_with(&["create_table", "get_table", "get_table"]));
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.tuples.len(), 2);
    }

    #[test]
    fn fault_parameters_do_not_split_the_outcome_class() {
        let mut traces = Vec::new();
        for ms in [100u64, 90_000] {
            let ctx = CrossingContext::new();
            ctx.arm(FaultSpec {
                id: format!("t-{ms}"),
                channel: Channel::Metastore,
                op: "get_table".into(),
                kind: FaultKind::Timeout { ms },
                trigger: Trigger::Always,
            });
            let _: Result<(), InteractionError> =
                ctx.cross(BoundaryCall::new(Channel::Metastore, "get_table"));
            traces.push(ctx.trace());
        }
        let a = CoverageSignature::from_trace(&traces[0]);
        let b = CoverageSignature::from_trace(&traces[1]);
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert!(a.canonical().contains("fault-timeout"), "{}", a.canonical());
    }

    #[test]
    fn tags_distinguish_otherwise_identical_traces() {
        let base = trace_with(&["get_table"]);
        let plain = CoverageSignature::from_trace(&base);
        let mut tagged = CoverageSignature::from_trace(&base);
        tagged.tag("code:CAST_OVERFLOW");
        assert_ne!(plain.fingerprint(), tagged.fingerprint());
        // Tagging is idempotent.
        let fp = tagged.fingerprint();
        tagged.tag("code:CAST_OVERFLOW");
        assert_eq!(tagged.fingerprint(), fp);
    }

    #[test]
    fn prefix_fingerprints_are_order_sensitive() {
        let ab = prefix_fingerprint(&["a".to_string(), "b".to_string()]);
        let ba = prefix_fingerprint(&["b".to_string(), "a".to_string()]);
        assert_ne!(ab, ba);
        // Step boundaries matter: ["ab"] != ["a","b"].
        assert_ne!(prefix_fingerprint(&["ab".to_string()]), ab);
        assert_eq!(ab, prefix_fingerprint(&["a".to_string(), "b".to_string()]));
    }

    #[test]
    fn causal_prefix_stops_at_the_first_fault() {
        let ctx = CrossingContext::new();
        ctx.arm(FaultSpec {
            id: "mid".into(),
            channel: Channel::Metastore,
            op: "create_table".into(),
            kind: FaultKind::Unavailable,
            trigger: Trigger::Always,
        });
        for op in ["get_table", "create_table", "drop_table"] {
            let _: Result<(), InteractionError> =
                ctx.cross(BoundaryCall::new(Channel::Metastore, op));
        }
        let prefix = ctx.trace().causal_prefix();
        assert_eq!(prefix.len(), 2, "{prefix:?}");
        assert!(prefix[1].contains("fault:unavailable"), "{prefix:?}");
    }

    #[test]
    fn map_reports_novelty_exactly_once() {
        let mut map = CoverageMap::new();
        let sig = CoverageSignature::from_trace(&trace_with(&["get_table"]));
        assert!(map.observe(&sig, 1));
        assert!(!map.observe(&sig, 2));
        assert!(map.contains(&sig));
        assert_eq!(map.distinct(), 1);
        let json = serde_json::to_string(&map).unwrap();
        let back: CoverageMap = serde_json::from_str(&json).unwrap();
        assert_eq!(back, map);
    }
}
