//! A small SQL frontend shared by the simulated systems.
//!
//! The cross-testing harness drives SparkSQL-like and HiveQL-like interfaces
//! with textual statements (Figure 6). Both interfaces share this grammar —
//! `CREATE TABLE`, `DROP TABLE`, `INSERT INTO ... VALUES`, `SELECT` — but
//! interpret the parsed statements under their *own* semantics (identifier
//! case folding, literal coercion, error policies). Faithfully to the paper,
//! the discrepancies live in interpretation, not in syntax.
//!
//! Supported literal forms include typed literals (`DATE '...'`,
//! `TIMESTAMP '...'`, `INTERVAL 3 MONTH`), numeric suffixes (`1Y`, `2S`,
//! `3L`, `1.5BD`), hex binaries (`X'CAFE'`), `CAST(expr AS type)`, and the
//! constructors `ARRAY(...)`, `MAP(...)`, `NAMED_STRUCT(...)`.

use crate::value::{DataType, StructField};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Number(String),
    Str(String),
    HexBin(Vec<u8>),
    Symbol(char),
}

/// Numeric literal suffix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NumSuffix {
    /// `Y` — TINYINT literal.
    Byte,
    /// `S` — SMALLINT literal.
    Short,
    /// `L` — BIGINT literal.
    Long,
    /// `BD` — DECIMAL literal.
    Decimal,
    /// `D` — DOUBLE literal.
    Double,
    /// `F` — FLOAT literal.
    Float,
}

/// Interval unit in an `INTERVAL` literal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntervalUnit {
    /// Calendar years.
    Year,
    /// Calendar months.
    Month,
    /// Days.
    Day,
    /// Hours.
    Hour,
    /// Minutes.
    Minute,
    /// Seconds.
    Second,
}

/// One `<magnitude> <unit>` term of an `INTERVAL` literal.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalPart {
    /// The magnitude, as written (may carry a sign and, for `SECOND`, a
    /// fractional part of up to microsecond precision).
    pub value: String,
    /// The unit keyword.
    pub unit: IntervalUnit,
}

impl IntervalPart {
    /// Convenience constructor.
    pub fn new(value: impl Into<String>, unit: IntervalUnit) -> IntervalPart {
        IntervalPart {
            value: value.into(),
            unit,
        }
    }
}

/// Evaluates the terms of an `INTERVAL` literal to the canonical
/// `(months, micros)` pair shared by both SQL dialects.
///
/// `YEAR`/`MONTH` terms accumulate into months; `DAY`/`HOUR`/`MINUTE`/
/// `SECOND` terms into microseconds. Only `SECOND` magnitudes may carry a
/// fraction, of at most six digits (microsecond precision); every other
/// unit requires an integer. On failure the error carries the offending
/// magnitude, for the dialects to wrap in their own parse-error types.
///
/// # Examples
///
/// ```
/// use csi_core::sql::{eval_interval_parts, IntervalPart, IntervalUnit};
///
/// let parts = [
///     IntervalPart::new("1", IntervalUnit::Day),
///     IntervalPart::new("2", IntervalUnit::Hour),
///     IntervalPart::new("0.5", IntervalUnit::Second),
/// ];
/// assert_eq!(
///     eval_interval_parts(&parts),
///     Ok((0, 86_400_000_000 + 2 * 3_600_000_000 + 500_000))
/// );
/// ```
pub fn eval_interval_parts(parts: &[IntervalPart]) -> Result<(i32, i64), String> {
    let mut months: i64 = 0;
    let mut micros: i64 = 0;
    let bad = |value: &str| format!("interval magnitude {value:?}");
    for part in parts {
        let raw = part.value.trim();
        let micros_per: i64 = match part.unit {
            IntervalUnit::Year | IntervalUnit::Month => {
                let n: i64 = raw.parse().map_err(|_| bad(&part.value))?;
                let m = if part.unit == IntervalUnit::Year {
                    n.checked_mul(12).ok_or_else(|| bad(&part.value))?
                } else {
                    n
                };
                months = months.checked_add(m).ok_or_else(|| bad(&part.value))?;
                continue;
            }
            IntervalUnit::Day => 86_400_000_000,
            IntervalUnit::Hour => 3_600_000_000,
            IntervalUnit::Minute => 60_000_000,
            IntervalUnit::Second => 1_000_000,
        };
        let us = if part.unit == IntervalUnit::Second {
            parse_seconds_micros(raw).ok_or_else(|| bad(&part.value))?
        } else {
            let n: i64 = raw.parse().map_err(|_| bad(&part.value))?;
            n.checked_mul(micros_per).ok_or_else(|| bad(&part.value))?
        };
        micros = micros.checked_add(us).ok_or_else(|| bad(&part.value))?;
    }
    let months = i32::try_from(months).map_err(|_| bad("months out of range"))?;
    Ok((months, micros))
}

/// Parses a `SECOND` magnitude — optionally signed, optionally fractional
/// with up to six digits — to exact microseconds. No floating point is
/// involved, so sub-second values survive unchanged.
fn parse_seconds_micros(raw: &str) -> Option<i64> {
    let (negative, body) = match raw.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, raw),
    };
    let (whole, frac) = match body.split_once('.') {
        Some((w, f)) => (w, f),
        None => (body, ""),
    };
    if whole.is_empty() && frac.is_empty() {
        return None;
    }
    if frac.len() > 6 || !frac.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let seconds: i64 = if whole.is_empty() {
        0
    } else {
        whole
            .parse()
            .ok()
            .filter(|_| whole.bytes().all(|b| b.is_ascii_digit()))?
    };
    let mut sub: i64 = 0;
    if !frac.is_empty() {
        sub = frac.parse().ok()?;
        for _ in frac.len()..6 {
            sub *= 10;
        }
    }
    let magnitude = seconds.checked_mul(1_000_000)?.checked_add(sub)?;
    Some(if negative { -magnitude } else { magnitude })
}

/// A parsed literal expression.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// `NULL`.
    Null,
    /// `TRUE` / `FALSE`.
    Bool(bool),
    /// An unsuffixed numeric literal; its type is dialect-dependent.
    Number(String),
    /// A suffixed numeric literal (`1Y`, `3L`, `1.5BD`, ...).
    TypedNumber(String, NumSuffix),
    /// A quoted string.
    Str(String),
    /// `X'...'` hex binary.
    Binary(Vec<u8>),
    /// `DATE '...'`.
    DateLit(String),
    /// `TIMESTAMP '...'`.
    TimestampLit(String),
    /// `INTERVAL <n> <unit> [<n> <unit> ...]` — one or more terms, each
    /// `INTERVAL 3 MONTH`-style; compound literals (`INTERVAL 1 DAY 2 HOURS`)
    /// carry several terms.
    IntervalLit {
        /// The terms, in source order.
        parts: Vec<IntervalPart>,
    },
    /// `CAST(expr AS type)`.
    Cast(Box<Expr>, DataType),
    /// `ARRAY(e1, e2, ...)`.
    Array(Vec<Expr>),
    /// `MAP(k1, v1, k2, v2, ...)`.
    Map(Vec<(Expr, Expr)>),
    /// `NAMED_STRUCT('name1', e1, ...)`.
    NamedStruct(Vec<(String, Expr)>),
    /// Unary minus.
    Neg(Box<Expr>),
}

/// Projection of a `SELECT`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectCols {
    /// `SELECT *`.
    Star,
    /// `SELECT c1, c2, ...` — names as written, case preserved.
    Columns(Vec<String>),
}

/// Comparison operator in a `WHERE` predicate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=`.
    Eq,
    /// `!=` (also `<>`).
    Ne,
    /// `<`.
    Lt,
    /// `<=`.
    Le,
    /// `>`.
    Gt,
    /// `>=`.
    Ge,
}

impl CmpOp {
    /// Whether an SQL comparison outcome satisfies this operator.
    ///
    /// `None` is the *unknown* of three-valued logic (a NULL operand or
    /// incomparable kinds): no operator matches it.
    pub fn matches(self, ord: Option<std::cmp::Ordering>) -> bool {
        use std::cmp::Ordering;
        let Some(o) = ord else {
            return false;
        };
        match self {
            CmpOp::Eq => o == Ordering::Equal,
            CmpOp::Ne => o != Ordering::Equal,
            CmpOp::Lt => o == Ordering::Less,
            CmpOp::Le => o != Ordering::Greater,
            CmpOp::Gt => o == Ordering::Greater,
            CmpOp::Ge => o != Ordering::Less,
        }
    }
}

/// One comparison of a `WHERE` clause; clauses are AND-conjunctions of
/// comparisons (the subset both dialects support here).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Comparison {
    /// Column name, as written.
    pub column: String,
    /// Operator.
    pub op: CmpOp,
    /// Right-hand literal.
    pub literal: Expr,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    /// `CREATE TABLE [IF NOT EXISTS] t (col type, ...) [STORED AS fmt]`.
    CreateTable {
        /// Table name as written.
        name: String,
        /// Column definitions, case preserved.
        columns: Vec<(String, DataType)>,
        /// Storage format name from `STORED AS`, upper-cased.
        stored_as: Option<String>,
        /// Whether `IF NOT EXISTS` was present.
        if_not_exists: bool,
    },
    /// `DROP TABLE [IF EXISTS] t`.
    DropTable {
        /// Table name as written.
        name: String,
        /// Whether `IF EXISTS` was present.
        if_exists: bool,
    },
    /// `INSERT INTO t VALUES (..), (..)`.
    Insert {
        /// Target table as written.
        table: String,
        /// Rows of literal expressions.
        rows: Vec<Vec<Expr>>,
    },
    /// `SELECT cols FROM t [WHERE c op lit [AND ...]]`.
    Select {
        /// Projection.
        columns: SelectCols,
        /// Source table as written.
        table: String,
        /// AND-conjoined comparisons; empty means no filter.
        predicate: Vec<Comparison>,
    },
}

/// A parse error with a human-readable description.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
}

impl ParseError {
    fn new(message: impl Into<String>) -> ParseError {
        ParseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SQL parse error: {}", self.message)
    }
}

impl std::error::Error for ParseError {}

fn tokenize(input: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let chars: Vec<char> = input.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c.is_whitespace() {
            i += 1;
        } else if c == '\'' {
            // String literal with '' escaping.
            let mut s = String::new();
            i += 1;
            loop {
                if i >= chars.len() {
                    return Err(ParseError::new("unterminated string literal"));
                }
                if chars[i] == '\'' {
                    if i + 1 < chars.len() && chars[i + 1] == '\'' {
                        s.push('\'');
                        i += 2;
                    } else {
                        i += 1;
                        break;
                    }
                } else {
                    s.push(chars[i]);
                    i += 1;
                }
            }
            tokens.push(Token::Str(s));
        } else if c == '`' {
            // Back-quoted identifier, case preserved.
            let mut s = String::new();
            i += 1;
            while i < chars.len() && chars[i] != '`' {
                s.push(chars[i]);
                i += 1;
            }
            if i >= chars.len() {
                return Err(ParseError::new("unterminated quoted identifier"));
            }
            i += 1;
            tokens.push(Token::Ident(s));
        } else if (c == 'X' || c == 'x') && i + 1 < chars.len() && chars[i + 1] == '\'' {
            // Hex binary literal.
            let mut hex = String::new();
            i += 2;
            while i < chars.len() && chars[i] != '\'' {
                hex.push(chars[i]);
                i += 1;
            }
            if i >= chars.len() {
                return Err(ParseError::new("unterminated hex literal"));
            }
            i += 1;
            if !hex.len().is_multiple_of(2) || !hex.chars().all(|c| c.is_ascii_hexdigit()) {
                return Err(ParseError::new(format!("invalid hex literal X'{hex}'")));
            }
            let bytes = (0..hex.len())
                .step_by(2)
                .map(|j| u8::from_str_radix(&hex[j..j + 2], 16).expect("validated hex"))
                .collect();
            tokens.push(Token::HexBin(bytes));
        } else if c.is_ascii_digit()
            || (c == '.' && i + 1 < chars.len() && chars[i + 1].is_ascii_digit())
        {
            // Number, optionally with a fraction and an alpha suffix.
            let mut s = String::new();
            let mut seen_dot = false;
            while i < chars.len() {
                let d = chars[i];
                if d.is_ascii_digit() {
                    s.push(d);
                    i += 1;
                } else if d == '.' && !seen_dot {
                    seen_dot = true;
                    s.push(d);
                    i += 1;
                } else {
                    break;
                }
            }
            // Suffix letters (Y, S, L, D, F, BD) stick to the number.
            let mut suffix = String::new();
            while i < chars.len() && chars[i].is_ascii_alphabetic() && suffix.len() < 2 {
                suffix.push(chars[i]);
                i += 1;
            }
            if !suffix.is_empty() {
                s.push_str(&suffix);
            }
            tokens.push(Token::Number(s));
        } else if c.is_ascii_alphabetic() || c == '_' {
            let mut s = String::new();
            while i < chars.len()
                && (chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '.')
            {
                s.push(chars[i]);
                i += 1;
            }
            tokens.push(Token::Ident(s));
        } else if "(),*<>:;-=!".contains(c) {
            tokens.push(Token::Symbol(c));
            i += 1;
        } else {
            return Err(ParseError::new(format!("unexpected character {c:?}")));
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), ParseError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(ParseError::new(format!(
                "expected keyword {kw}, found {:?}",
                self.peek()
            )))
        }
    }

    fn eat_symbol(&mut self, c: char) -> bool {
        if let Some(Token::Symbol(s)) = self.peek() {
            if *s == c {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_symbol(&mut self, c: char) -> Result<(), ParseError> {
        if self.eat_symbol(c) {
            Ok(())
        } else {
            Err(ParseError::new(format!(
                "expected {c:?}, found {:?}",
                self.peek()
            )))
        }
    }

    fn expect_ident(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(ParseError::new(format!(
                "expected identifier, found {other:?}"
            ))),
        }
    }

    fn expect_string(&mut self) -> Result<String, ParseError> {
        match self.next() {
            Some(Token::Str(s)) => Ok(s),
            other => Err(ParseError::new(format!("expected string, found {other:?}"))),
        }
    }

    fn parse_statement(&mut self) -> Result<Statement, ParseError> {
        if self.eat_keyword("CREATE") {
            self.expect_keyword("TABLE")?;
            let if_not_exists = if self.eat_keyword("IF") {
                self.expect_keyword("NOT")?;
                self.expect_keyword("EXISTS")?;
                true
            } else {
                false
            };
            let name = self.expect_ident()?;
            self.expect_symbol('(')?;
            let mut columns = Vec::new();
            loop {
                let col = self.expect_ident()?;
                let ty = self.parse_type()?;
                columns.push((col, ty));
                if !self.eat_symbol(',') {
                    break;
                }
            }
            self.expect_symbol(')')?;
            let stored_as = if self.eat_keyword("STORED") {
                self.expect_keyword("AS")?;
                Some(self.expect_ident()?.to_ascii_uppercase())
            } else {
                None
            };
            Ok(Statement::CreateTable {
                name,
                columns,
                stored_as,
                if_not_exists,
            })
        } else if self.eat_keyword("DROP") {
            self.expect_keyword("TABLE")?;
            let if_exists = if self.eat_keyword("IF") {
                self.expect_keyword("EXISTS")?;
                true
            } else {
                false
            };
            let name = self.expect_ident()?;
            Ok(Statement::DropTable { name, if_exists })
        } else if self.eat_keyword("INSERT") {
            self.expect_keyword("INTO")?;
            // `TABLE` keyword is optional HiveQL syntax.
            let _ = self.eat_keyword("TABLE");
            let table = self.expect_ident()?;
            self.expect_keyword("VALUES")?;
            let mut rows = Vec::new();
            loop {
                self.expect_symbol('(')?;
                let mut row = Vec::new();
                loop {
                    row.push(self.parse_expr()?);
                    if !self.eat_symbol(',') {
                        break;
                    }
                }
                self.expect_symbol(')')?;
                rows.push(row);
                if !self.eat_symbol(',') {
                    break;
                }
            }
            Ok(Statement::Insert { table, rows })
        } else if self.eat_keyword("SELECT") {
            let columns = if self.eat_symbol('*') {
                SelectCols::Star
            } else {
                let mut cols = vec![self.expect_ident()?];
                while self.eat_symbol(',') {
                    cols.push(self.expect_ident()?);
                }
                SelectCols::Columns(cols)
            };
            self.expect_keyword("FROM")?;
            let table = self.expect_ident()?;
            let mut predicate = Vec::new();
            if self.eat_keyword("WHERE") {
                loop {
                    let column = self.expect_ident()?;
                    let op = self.parse_cmp_op()?;
                    let literal = self.parse_expr()?;
                    predicate.push(Comparison {
                        column,
                        op,
                        literal,
                    });
                    if !self.eat_keyword("AND") {
                        break;
                    }
                }
            }
            Ok(Statement::Select {
                columns,
                table,
                predicate,
            })
        } else {
            Err(ParseError::new(format!(
                "expected CREATE/DROP/INSERT/SELECT, found {:?}",
                self.peek()
            )))
        }
    }

    fn parse_cmp_op(&mut self) -> Result<CmpOp, ParseError> {
        if self.eat_symbol('=') {
            return Ok(CmpOp::Eq);
        }
        if self.eat_symbol('!') {
            self.expect_symbol('=')?;
            return Ok(CmpOp::Ne);
        }
        if self.eat_symbol('<') {
            if self.eat_symbol('=') {
                return Ok(CmpOp::Le);
            }
            if self.eat_symbol('>') {
                return Ok(CmpOp::Ne);
            }
            return Ok(CmpOp::Lt);
        }
        if self.eat_symbol('>') {
            if self.eat_symbol('=') {
                return Ok(CmpOp::Ge);
            }
            return Ok(CmpOp::Gt);
        }
        Err(ParseError::new(format!(
            "expected comparison operator, found {:?}",
            self.peek()
        )))
    }

    fn parse_expr(&mut self) -> Result<Expr, ParseError> {
        if self.eat_symbol('-') {
            return Ok(Expr::Neg(Box::new(self.parse_expr()?)));
        }
        match self.next() {
            Some(Token::Str(s)) => Ok(Expr::Str(s)),
            Some(Token::HexBin(b)) => Ok(Expr::Binary(b)),
            Some(Token::Number(raw)) => Ok(split_number(&raw)?),
            Some(Token::Ident(id)) => {
                let upper = id.to_ascii_uppercase();
                match upper.as_str() {
                    "NULL" => Ok(Expr::Null),
                    "TRUE" => Ok(Expr::Bool(true)),
                    "FALSE" => Ok(Expr::Bool(false)),
                    "DATE" => Ok(Expr::DateLit(self.expect_string()?)),
                    "TIMESTAMP" => Ok(Expr::TimestampLit(self.expect_string()?)),
                    "INTERVAL" => {
                        let mut parts = Vec::new();
                        loop {
                            let (value, neg) = match self.next() {
                                Some(Token::Str(s)) => (s, false),
                                Some(Token::Number(n)) => (n, false),
                                Some(Token::Symbol('-')) => match self.next() {
                                    Some(Token::Number(n)) => (n, true),
                                    other => {
                                        return Err(ParseError::new(format!(
                                            "expected interval magnitude, found {other:?}"
                                        )))
                                    }
                                },
                                other => {
                                    return Err(ParseError::new(format!(
                                        "expected interval magnitude, found {other:?}"
                                    )))
                                }
                            };
                            let unit_name = self.expect_ident()?.to_ascii_uppercase();
                            let unit = match unit_name.trim_end_matches('S') {
                                "YEAR" => IntervalUnit::Year,
                                "MONTH" => IntervalUnit::Month,
                                "DAY" => IntervalUnit::Day,
                                "HOUR" => IntervalUnit::Hour,
                                "MINUTE" => IntervalUnit::Minute,
                                "SECOND" => IntervalUnit::Second,
                                other => {
                                    return Err(ParseError::new(format!(
                                        "unknown interval unit {other}"
                                    )))
                                }
                            };
                            let value = if neg { format!("-{value}") } else { value };
                            parts.push(IntervalPart { value, unit });
                            // Another magnitude token continues the compound
                            // literal (`INTERVAL 1 DAY 2 HOURS`); this grammar
                            // has no infix arithmetic, so a trailing `-` can
                            // only start a negative next term.
                            let more = matches!(
                                self.peek(),
                                Some(Token::Str(_))
                                    | Some(Token::Number(_))
                                    | Some(Token::Symbol('-'))
                            );
                            if !more {
                                break;
                            }
                        }
                        Ok(Expr::IntervalLit { parts })
                    }
                    "CAST" => {
                        self.expect_symbol('(')?;
                        let inner = self.parse_expr()?;
                        self.expect_keyword("AS")?;
                        let ty = self.parse_type()?;
                        self.expect_symbol(')')?;
                        Ok(Expr::Cast(Box::new(inner), ty))
                    }
                    "ARRAY" => {
                        self.expect_symbol('(')?;
                        let mut items = Vec::new();
                        if !self.eat_symbol(')') {
                            loop {
                                items.push(self.parse_expr()?);
                                if !self.eat_symbol(',') {
                                    break;
                                }
                            }
                            self.expect_symbol(')')?;
                        }
                        Ok(Expr::Array(items))
                    }
                    "MAP" => {
                        self.expect_symbol('(')?;
                        let mut pairs = Vec::new();
                        if !self.eat_symbol(')') {
                            loop {
                                let k = self.parse_expr()?;
                                self.expect_symbol(',')?;
                                let v = self.parse_expr()?;
                                pairs.push((k, v));
                                if !self.eat_symbol(',') {
                                    break;
                                }
                            }
                            self.expect_symbol(')')?;
                        }
                        Ok(Expr::Map(pairs))
                    }
                    "NAMED_STRUCT" => {
                        self.expect_symbol('(')?;
                        let mut fields = Vec::new();
                        loop {
                            let name = self.expect_string()?;
                            self.expect_symbol(',')?;
                            let v = self.parse_expr()?;
                            fields.push((name, v));
                            if !self.eat_symbol(',') {
                                break;
                            }
                        }
                        self.expect_symbol(')')?;
                        Ok(Expr::NamedStruct(fields))
                    }
                    _ => Err(ParseError::new(format!(
                        "unexpected identifier {id:?} in expression"
                    ))),
                }
            }
            other => Err(ParseError::new(format!(
                "unexpected token {other:?} in expression"
            ))),
        }
    }

    fn parse_type(&mut self) -> Result<DataType, ParseError> {
        let name = self.expect_ident()?.to_ascii_uppercase();
        let ty = match name.as_str() {
            "BOOLEAN" | "BOOL" => DataType::Boolean,
            "TINYINT" | "BYTE" => DataType::Byte,
            "SMALLINT" | "SHORT" => DataType::Short,
            "INT" | "INTEGER" => DataType::Int,
            "BIGINT" | "LONG" => DataType::Long,
            "FLOAT" | "REAL" => DataType::Float,
            "DOUBLE" => DataType::Double,
            "DECIMAL" | "NUMERIC" => {
                if self.eat_symbol('(') {
                    let p = self.expect_number_u32()? as u8;
                    let s = if self.eat_symbol(',') {
                        self.expect_number_u32()? as u8
                    } else {
                        0
                    };
                    self.expect_symbol(')')?;
                    DataType::Decimal(p, s)
                } else {
                    DataType::Decimal(10, 0)
                }
            }
            "STRING" | "TEXT" => DataType::String,
            "CHAR" => {
                self.expect_symbol('(')?;
                let n = self.expect_number_u32()?;
                self.expect_symbol(')')?;
                DataType::Char(n)
            }
            "VARCHAR" => {
                self.expect_symbol('(')?;
                let n = self.expect_number_u32()?;
                self.expect_symbol(')')?;
                DataType::Varchar(n)
            }
            "BINARY" => DataType::Binary,
            "DATE" => DataType::Date,
            "TIMESTAMP" => DataType::Timestamp,
            "INTERVAL" => DataType::Interval,
            "ARRAY" => {
                self.expect_symbol('<')?;
                let inner = self.parse_type()?;
                self.expect_symbol('>')?;
                DataType::Array(Box::new(inner))
            }
            "MAP" => {
                self.expect_symbol('<')?;
                let k = self.parse_type()?;
                self.expect_symbol(',')?;
                let v = self.parse_type()?;
                self.expect_symbol('>')?;
                DataType::Map(Box::new(k), Box::new(v))
            }
            "STRUCT" => {
                self.expect_symbol('<')?;
                let mut fields = Vec::new();
                loop {
                    let fname = self.expect_ident()?;
                    self.expect_symbol(':')?;
                    let fty = self.parse_type()?;
                    fields.push(StructField::new(fname, fty));
                    if !self.eat_symbol(',') {
                        break;
                    }
                }
                self.expect_symbol('>')?;
                DataType::Struct(fields)
            }
            other => return Err(ParseError::new(format!("unknown type {other}"))),
        };
        Ok(ty)
    }

    fn expect_number_u32(&mut self) -> Result<u32, ParseError> {
        match self.next() {
            Some(Token::Number(n)) => n
                .parse()
                .map_err(|_| ParseError::new(format!("expected integer, found {n:?}"))),
            other => Err(ParseError::new(format!(
                "expected integer, found {other:?}"
            ))),
        }
    }
}

fn split_number(raw: &str) -> Result<Expr, ParseError> {
    let upper = raw.to_ascii_uppercase();
    for (suffix, kind) in [
        ("BD", NumSuffix::Decimal),
        ("Y", NumSuffix::Byte),
        ("S", NumSuffix::Short),
        ("L", NumSuffix::Long),
        ("D", NumSuffix::Double),
        ("F", NumSuffix::Float),
    ] {
        if let Some(digits) = upper.strip_suffix(suffix) {
            if !digits.is_empty() && digits.chars().all(|c| c.is_ascii_digit() || c == '.') {
                return Ok(Expr::TypedNumber(digits.to_string(), kind));
            }
        }
    }
    if upper.chars().all(|c| c.is_ascii_digit() || c == '.') {
        Ok(Expr::Number(raw.to_string()))
    } else {
        Err(ParseError::new(format!("invalid numeric literal {raw:?}")))
    }
}

/// Parses a single SQL statement.
///
/// # Examples
///
/// ```
/// use csi_core::sql::{parse, Statement};
///
/// let stmt = parse("SELECT * FROM t").unwrap();
/// assert!(matches!(stmt, Statement::Select { .. }));
/// ```
pub fn parse(input: &str) -> Result<Statement, ParseError> {
    let mut tokens = tokenize(input)?;
    // A trailing semicolon is tolerated.
    if tokens.last() == Some(&Token::Symbol(';')) {
        tokens.pop();
    }
    let mut p = Parser { tokens, pos: 0 };
    let stmt = p.parse_statement()?;
    if p.peek().is_some() {
        return Err(ParseError::new(format!(
            "trailing tokens after statement: {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

/// Renders a string as a SQL literal with `''` escaping.
pub fn quote_string(s: &str) -> String {
    format!("'{}'", s.replace('\'', "''"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_create_table() {
        let stmt = parse(
            "CREATE TABLE t (a INT, B STRING, c DECIMAL(10,2), d MAP<STRING,INT>) STORED AS orc",
        )
        .unwrap();
        match stmt {
            Statement::CreateTable {
                name,
                columns,
                stored_as,
                if_not_exists,
            } => {
                assert_eq!(name, "t");
                assert_eq!(columns.len(), 4);
                assert_eq!(columns[1].0, "B"); // Case preserved by the parser.
                assert_eq!(columns[2].1, DataType::Decimal(10, 2));
                assert_eq!(stored_as.as_deref(), Some("ORC"));
                assert!(!if_not_exists);
            }
            other => panic!("wrong statement: {other:?}"),
        }
    }

    #[test]
    fn parses_struct_and_nested_types() {
        let stmt = parse("CREATE TABLE t (s STRUCT<Inner:INT,b:ARRAY<STRING>>)").unwrap();
        let Statement::CreateTable { columns, .. } = stmt else {
            panic!()
        };
        assert_eq!(columns[0].1.sql_name(), "STRUCT<Inner:INT,b:ARRAY<STRING>>");
    }

    #[test]
    fn parses_insert_with_literals() {
        let stmt = parse(
            "INSERT INTO t VALUES (1, 'it''s', NULL, TRUE, -2.5, DATE '2020-01-02', X'CAFE')",
        )
        .unwrap();
        let Statement::Insert { table, rows } = stmt else {
            panic!()
        };
        assert_eq!(table, "t");
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row[0], Expr::Number("1".into()));
        assert_eq!(row[1], Expr::Str("it's".into()));
        assert_eq!(row[2], Expr::Null);
        assert_eq!(row[3], Expr::Bool(true));
        assert_eq!(row[4], Expr::Neg(Box::new(Expr::Number("2.5".into()))));
        assert_eq!(row[5], Expr::DateLit("2020-01-02".into()));
        assert_eq!(row[6], Expr::Binary(vec![0xCA, 0xFE]));
    }

    #[test]
    fn parses_multiple_rows() {
        let stmt = parse("INSERT INTO t VALUES (1), (2), (3)").unwrap();
        let Statement::Insert { rows, .. } = stmt else {
            panic!()
        };
        assert_eq!(rows.len(), 3);
    }

    #[test]
    fn parses_suffixed_numbers() {
        let stmt = parse("INSERT INTO t VALUES (1Y, 2S, 3L, 1.50BD, 2.5D, 7F)").unwrap();
        let Statement::Insert { rows, .. } = stmt else {
            panic!()
        };
        assert_eq!(rows[0][0], Expr::TypedNumber("1".into(), NumSuffix::Byte));
        assert_eq!(rows[0][1], Expr::TypedNumber("2".into(), NumSuffix::Short));
        assert_eq!(rows[0][2], Expr::TypedNumber("3".into(), NumSuffix::Long));
        assert_eq!(
            rows[0][3],
            Expr::TypedNumber("1.50".into(), NumSuffix::Decimal)
        );
        assert_eq!(
            rows[0][4],
            Expr::TypedNumber("2.5".into(), NumSuffix::Double)
        );
        assert_eq!(rows[0][5], Expr::TypedNumber("7".into(), NumSuffix::Float));
    }

    #[test]
    fn parses_constructors_and_cast() {
        let stmt = parse(
            "INSERT INTO t VALUES (ARRAY(1, 2), MAP('k', 1), NAMED_STRUCT('a', 1, 'b', 'x'), CAST('5' AS INT))",
        )
        .unwrap();
        let Statement::Insert { rows, .. } = stmt else {
            panic!()
        };
        assert!(matches!(rows[0][0], Expr::Array(ref v) if v.len() == 2));
        assert!(matches!(rows[0][1], Expr::Map(ref v) if v.len() == 1));
        assert!(matches!(rows[0][2], Expr::NamedStruct(ref v) if v.len() == 2));
        assert!(matches!(rows[0][3], Expr::Cast(_, DataType::Int)));
    }

    #[test]
    fn parses_intervals() {
        let stmt =
            parse("INSERT INTO t VALUES (INTERVAL 3 MONTH, INTERVAL '7' DAYS, INTERVAL -2 HOURS)")
                .unwrap();
        let Statement::Insert { rows, .. } = stmt else {
            panic!()
        };
        assert_eq!(
            rows[0][0],
            Expr::IntervalLit {
                parts: vec![IntervalPart::new("3", IntervalUnit::Month)]
            }
        );
        assert_eq!(
            rows[0][1],
            Expr::IntervalLit {
                parts: vec![IntervalPart::new("7", IntervalUnit::Day)]
            }
        );
        assert_eq!(
            rows[0][2],
            Expr::IntervalLit {
                parts: vec![IntervalPart::new("-2", IntervalUnit::Hour)]
            }
        );
    }

    #[test]
    fn parses_compound_intervals() {
        let stmt =
            parse("INSERT INTO t VALUES (INTERVAL 1 DAY 2 HOURS, INTERVAL 3 MONTH '4.5' SECONDS)")
                .unwrap();
        let Statement::Insert { rows, .. } = stmt else {
            panic!()
        };
        assert_eq!(
            rows[0][0],
            Expr::IntervalLit {
                parts: vec![
                    IntervalPart::new("1", IntervalUnit::Day),
                    IntervalPart::new("2", IntervalUnit::Hour),
                ]
            }
        );
        assert_eq!(
            rows[0][1],
            Expr::IntervalLit {
                parts: vec![
                    IntervalPart::new("3", IntervalUnit::Month),
                    IntervalPart::new("4.5", IntervalUnit::Second),
                ]
            }
        );
        assert_eq!(
            eval_interval_parts(&[
                IntervalPart::new("3", IntervalUnit::Month),
                IntervalPart::new("4.5", IntervalUnit::Second),
            ]),
            Ok((3, 4_500_000))
        );
    }

    #[test]
    fn parses_select_and_drop() {
        assert_eq!(
            parse("SELECT * FROM t;").unwrap(),
            Statement::Select {
                columns: SelectCols::Star,
                table: "t".into(),
                predicate: vec![]
            }
        );
        assert_eq!(
            parse("SELECT A, b FROM t").unwrap(),
            Statement::Select {
                columns: SelectCols::Columns(vec!["A".into(), "b".into()]),
                table: "t".into(),
                predicate: vec![]
            }
        );
        assert_eq!(
            parse("DROP TABLE IF EXISTS t").unwrap(),
            Statement::DropTable {
                name: "t".into(),
                if_exists: true
            }
        );
    }

    #[test]
    fn parses_where_clauses() {
        let stmt = parse("SELECT * FROM t WHERE a >= 5 AND name = 'x' AND b <> 2").unwrap();
        let Statement::Select { predicate, .. } = stmt else {
            panic!()
        };
        assert_eq!(predicate.len(), 3);
        assert_eq!(predicate[0].column, "a");
        assert_eq!(predicate[0].op, CmpOp::Ge);
        assert_eq!(predicate[1].op, CmpOp::Eq);
        assert_eq!(predicate[1].literal, Expr::Str("x".into()));
        assert_eq!(predicate[2].op, CmpOp::Ne);
        // All operator spellings parse.
        for (text, op) in [
            ("=", CmpOp::Eq),
            ("!=", CmpOp::Ne),
            ("<>", CmpOp::Ne),
            ("<", CmpOp::Lt),
            ("<=", CmpOp::Le),
            (">", CmpOp::Gt),
            (">=", CmpOp::Ge),
        ] {
            let stmt = parse(&format!("SELECT * FROM t WHERE c {text} 1")).unwrap();
            let Statement::Select { predicate, .. } = stmt else {
                panic!()
            };
            assert_eq!(predicate[0].op, op, "{text}");
        }
        // Malformed clauses are rejected.
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t WHERE a ~ 1").is_err());
        assert!(parse("SELECT * FROM t WHERE a = 1 AND").is_err());
    }

    #[test]
    fn quoted_identifiers_preserve_case() {
        let stmt = parse("CREATE TABLE t (`MiXeD` INT)").unwrap();
        let Statement::CreateTable { columns, .. } = stmt else {
            panic!()
        };
        assert_eq!(columns[0].0, "MiXeD");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("SELEC * FROM t").is_err());
        assert!(parse("INSERT INTO t VALUES (1) garbage").is_err());
        assert!(parse("INSERT INTO t VALUES ('unterminated").is_err());
        assert!(parse("CREATE TABLE t (a WIDGET)").is_err());
        assert!(parse("INSERT INTO t VALUES (X'ABC')").is_err());
    }

    #[test]
    fn quote_string_escapes() {
        assert_eq!(quote_string("a'b"), "'a''b'");
        assert_eq!(quote_string(""), "''");
    }
}
