//! String interning for substrate namespaces.
//!
//! Production control planes hold millions of entities whose names repeat
//! heavily (file components like `part-00001.orc`, topic names, owner
//! strings). Storing each occurrence as its own `String` costs an
//! allocation per occurrence per operation. A [`NameTable`] interns every
//! distinct name once and hands out copyable u32 [`Sym`] handles; hot
//! paths then run on symbol comparisons with zero per-operation string
//! clones.
//!
//! Determinism: a symbol's numeric value is the first-occurrence order of
//! its name, a pure function of the operation history. Substrates must
//! never derive anything observable (listings, reports, errors) from
//! symbol *values* — only from the resolved strings — which is what lets
//! deployment pools rebuild their tables in canonical namespace order
//! without changing any output.

use std::collections::HashMap;

/// An interned name: a handle into a [`NameTable`].
///
/// `Sym` ordering is *intern order*, not name order — callers that need
/// name order must resolve and compare strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(u32);

impl Sym {
    /// The raw table index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// A u32 symbol table: each distinct string is stored once.
///
/// The reverse index is a hash map used for **lookups only** — nothing may
/// iterate it, since hash iteration order is nondeterministic.
#[derive(Debug, Default, Clone)]
pub struct NameTable {
    names: Vec<String>,
    index: HashMap<String, u32>,
}

impl NameTable {
    /// Creates an empty table.
    pub fn new() -> NameTable {
        NameTable::default()
    }

    /// Interns `name`, allocating only on first sight.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&id) = self.index.get(name) {
            return Sym(id);
        }
        let id = u32::try_from(self.names.len()).expect("name table overflow");
        self.names.push(name.to_string());
        self.index.insert(name.to_string(), id);
        Sym(id)
    }

    /// Looks up an already-interned name without allocating.
    pub fn lookup(&self, name: &str) -> Option<Sym> {
        self.index.get(name).copied().map(Sym)
    }

    /// Resolves a symbol back to its name.
    ///
    /// # Panics
    ///
    /// Panics if `sym` was not produced by this table (or was invalidated
    /// by a [`NameTable::clear`]).
    pub fn resolve(&self, sym: Sym) -> &str {
        &self.names[sym.index()]
    }

    /// Number of distinct interned names.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the table is empty.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Drops every interned name. All outstanding [`Sym`]s are invalidated;
    /// callers must re-intern anything they still reference.
    pub fn clear(&mut self) {
        self.names.clear();
        self.index.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent_and_order_stable() {
        let mut t = NameTable::new();
        let a = t.intern("warehouse");
        let b = t.intern("part-00001.orc");
        assert_ne!(a, b);
        assert_eq!(t.intern("warehouse"), a);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(a), "warehouse");
        assert_eq!(t.resolve(b), "part-00001.orc");
        assert_eq!(t.lookup("warehouse"), Some(a));
        assert_eq!(t.lookup("nope"), None);
    }

    #[test]
    fn clear_invalidates_and_reuses_ids() {
        let mut t = NameTable::new();
        let a = t.intern("x");
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.lookup("x"), None);
        // Re-interning after a clear restarts id assignment — the property
        // canonical rebuilds rely on for history-independent layouts.
        let b = t.intern("y");
        assert_eq!(a.index(), b.index());
    }
}
