//! Cross-system configuration auditing.
//!
//! Section 6.2.1's implication: "a more fundamental problem is to build a
//! consistent configuration plane across multiple systems … Traceability
//! of how configuration values are applied across systems could be
//! useful." The provenance-tracked [`crate::config::ConfigMap`] records
//! what happened; this module turns those records into an *audit* that
//! surfaces the Table 7 patterns before they become failures:
//!
//! - silently **ignored** values (SPARK-10181-shaped),
//! - silently **overridden** values (SPARK-16901-shaped),
//! - keys expected to be **coherent across systems** but holding
//!   different values (FLINK-19141-shaped),
//! - keys that were **set and never consumed** by the owning system.

use crate::config::{ConfigAction, ConfigMap};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Severity of an audit finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AuditSeverity {
    /// Worth a look.
    Notice,
    /// Likely to surprise an operator.
    Warning,
    /// Matches a known CSI failure pattern.
    Critical,
}

/// One audit finding.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditFinding {
    /// Severity.
    pub severity: AuditSeverity,
    /// Table 7 pattern name this matches.
    pub pattern: &'static str,
    /// The key involved.
    pub key: String,
    /// Description with the provenance evidence.
    pub detail: String,
}

impl fmt::Display for AuditFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:?}] {} on {:?}: {}",
            self.severity, self.pattern, self.key, self.detail
        )
    }
}

/// A declared coherence requirement: these systems must agree on `key`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CoherenceRule {
    /// The configuration key (or a prefix ending in `.` to match a family).
    pub key: String,
    /// Human-readable reason, e.g. "both sides size containers from it".
    pub why: String,
}

/// Audits a single system's configuration history for silent ignores and
/// overrides.
pub fn audit_history(config: &ConfigMap) -> Vec<AuditFinding> {
    let mut findings = Vec::new();
    for (key, _) in config.iter() {
        for p in config.provenance(key) {
            match &p.action {
                ConfigAction::Ignored { incoming, kept } => findings.push(AuditFinding {
                    severity: AuditSeverity::Critical,
                    pattern: "Ignorance",
                    key: key.to_string(),
                    detail: format!(
                        "value {incoming:?} from [{}] was silently dropped (kept {kept:?})",
                        p.source
                    ),
                }),
                ConfigAction::Overridden { old, new } => findings.push(AuditFinding {
                    severity: AuditSeverity::Critical,
                    pattern: "Unexpected override",
                    key: key.to_string(),
                    detail: format!(
                        "[{}] overwrote {old:?} with {new:?} without operator involvement",
                        p.source
                    ),
                }),
                _ => {}
            }
        }
    }
    findings
}

/// Audits coherence across several systems' configurations.
pub fn audit_coherence(configs: &[&ConfigMap], rules: &[CoherenceRule]) -> Vec<AuditFinding> {
    let mut findings = Vec::new();
    for rule in rules {
        // Collect every key matched by the rule in any system.
        let mut keys: BTreeSet<String> = BTreeSet::new();
        for c in configs {
            for (k, _) in c.iter() {
                let matches = if rule.key.ends_with('.') {
                    k.starts_with(&rule.key)
                } else {
                    k == rule.key
                };
                if matches {
                    keys.insert(k.to_string());
                }
            }
        }
        for key in keys {
            let values: Vec<(String, Option<String>)> = configs
                .iter()
                .map(|c| (c.name().to_string(), c.get(&key).map(str::to_string)))
                .collect();
            let distinct: BTreeSet<&String> =
                values.iter().filter_map(|(_, v)| v.as_ref()).collect();
            if distinct.len() > 1 {
                findings.push(AuditFinding {
                    severity: AuditSeverity::Critical,
                    pattern: "Inconsistent context",
                    key: key.clone(),
                    detail: format!(
                        "systems disagree ({}): {}",
                        rule.why,
                        values
                            .iter()
                            .map(|(s, v)| format!("{s}={v:?}"))
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
            }
            let missing: Vec<&str> = values
                .iter()
                .filter(|(_, v)| v.is_none())
                .map(|(s, _)| s.as_str())
                .collect();
            if !missing.is_empty() && distinct.len() == 1 {
                findings.push(AuditFinding {
                    severity: AuditSeverity::Warning,
                    pattern: "Inconsistent context",
                    key,
                    detail: format!(
                        "declared coherent ({}) but unset in: {}",
                        rule.why,
                        missing.join(", ")
                    ),
                });
            }
        }
    }
    findings
}

/// Runs the full audit over a deployment.
pub fn audit_deployment(configs: &[&ConfigMap], rules: &[CoherenceRule]) -> Vec<AuditFinding> {
    let mut findings: Vec<AuditFinding> = configs.iter().flat_map(|c| audit_history(c)).collect();
    findings.extend(audit_coherence(configs, rules));
    findings.sort_by(|a, b| b.severity.cmp(&a.severity).then(a.key.cmp(&b.key)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MergePolicy;

    #[test]
    fn history_audit_surfaces_silent_ignores_and_overrides() {
        let mut spark = ConfigMap::new("spark");
        spark.set("spark.sql.session.timeZone", "UTC", "spark-defaults");
        let mut hive = ConfigMap::new("hive");
        hive.set("spark.sql.session.timeZone", "PST", "hive-site.xml");
        // SPARK-16901 shape: Spark silently overrides Hive's value.
        hive.merge(&spark, MergePolicy::TheirsWin, "spark overlay");
        let findings = audit_history(&hive);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].pattern, "Unexpected override");
        assert_eq!(findings[0].severity, AuditSeverity::Critical);
        // SPARK-10181 shape: an incoming Kerberos key is dropped.
        let mut incoming = ConfigMap::new("user");
        incoming.set("spark.sql.session.timeZone", "CET", "user conf");
        let mut ours = spark.clone();
        ours.merge(&incoming, MergePolicy::OursWin, "session merge");
        let findings = audit_history(&ours);
        assert_eq!(findings[0].pattern, "Ignorance");
    }

    #[test]
    fn coherence_audit_flags_disagreement() {
        // FLINK-19141 shape: Flink and YARN hold different views of the
        // allocation step.
        let mut flink = ConfigMap::new("flink");
        flink.set("yarn.scheduler.minimum-allocation-mb", "1024", "flink-conf");
        let mut yarn = ConfigMap::new("yarn");
        yarn.set("yarn.scheduler.minimum-allocation-mb", "512", "yarn-site");
        let rules = vec![CoherenceRule {
            key: "yarn.scheduler.minimum-allocation-mb".into(),
            why: "both sides size containers from it".into(),
        }];
        let findings = audit_coherence(&[&flink, &yarn], &rules);
        assert_eq!(findings.len(), 1);
        assert!(findings[0].detail.contains("disagree"));
    }

    #[test]
    fn coherence_audit_flags_missing_values_softly() {
        let mut a = ConfigMap::new("a");
        a.set("shared.key", "x", "init");
        let b = ConfigMap::new("b");
        let rules = vec![CoherenceRule {
            key: "shared.key".into(),
            why: "test".into(),
        }];
        let findings = audit_coherence(&[&a, &b], &rules);
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].severity, AuditSeverity::Warning);
        assert!(findings[0].detail.contains("unset in: b"));
    }

    #[test]
    fn prefix_rules_match_key_families() {
        let mut a = ConfigMap::new("a");
        a.set(
            "yarn.resource-types.memory-mb.increment-allocation",
            "512",
            "a",
        );
        let mut b = ConfigMap::new("b");
        b.set(
            "yarn.resource-types.memory-mb.increment-allocation",
            "256",
            "b",
        );
        let rules = vec![CoherenceRule {
            key: "yarn.resource-types.".into(),
            why: "allocation rounding".into(),
        }];
        assert_eq!(audit_coherence(&[&a, &b], &rules).len(), 1);
    }

    #[test]
    fn clean_deployment_audits_clean() {
        let mut a = ConfigMap::new("a");
        a.set("k", "same", "init");
        let mut b = ConfigMap::new("b");
        b.set("k", "same", "init");
        let rules = vec![CoherenceRule {
            key: "k".into(),
            why: "test".into(),
        }];
        assert!(audit_deployment(&[&a, &b], &rules).is_empty());
    }

    #[test]
    fn deployment_audit_sorts_critical_first() {
        let mut a = ConfigMap::new("a");
        a.set("x", "1", "init");
        let mut other = ConfigMap::new("o");
        other.set("x", "2", "init");
        a.merge(&other, MergePolicy::OursWin, "m"); // Critical (ignore).
        let b = ConfigMap::new("b");
        let rules = vec![CoherenceRule {
            key: "x".into(),
            why: "test".into(),
        }];
        let findings = audit_deployment(&[&a, &b], &rules);
        assert!(findings.len() >= 2);
        assert_eq!(findings[0].severity, AuditSeverity::Critical);
    }
}
