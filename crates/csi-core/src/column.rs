//! Columnar storage for harness-level [`Value`]s.
//!
//! The differential oracle and the engines' serde layers both iterate over
//! tables of [`Value`] cells. For the catalogue-sized campaigns that was
//! fine; for million-row tables the per-cell enum matching, heap-allocated
//! rows, and recursive [`Value::canonical_eq`] walks dominate. A
//! [`ValueColumn`] stores one typed contiguous buffer per column plus a
//! validity bitmap, so the hot paths become plain slice scans:
//!
//! * comparison first tries a word-wise validity check plus a raw buffer
//!   compare (`memcmp`-shaped) and only falls back to element-wise
//!   canonical comparison when raw bytes differ — raw equality is
//!   *sufficient* for canonical equality on every variant, just not
//!   necessary for floats (NaN payloads, signed zeros) and decimals
//!   (differing scales);
//! * fingerprinting hashes canonical fixed-width lanes directly instead of
//!   formatting per-cell signature strings.
//!
//! Nested and heterogeneous data stays row-wise in [`ColumnValues::Mixed`];
//! only flat columns — everything the bulk generator emits — get the fast
//! paths.

use crate::value::{canon_f32, canon_f64, DataType, Decimal, Value};
use serde::{Deserialize, Serialize};

/// A validity bitmap (bit set ⇒ slot holds a value).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Validity {
    words: Vec<u64>,
    len: usize,
}

impl Validity {
    /// An empty bitmap with capacity for `n` slots.
    pub fn with_capacity(n: usize) -> Validity {
        Validity {
            words: Vec::with_capacity(n.div_ceil(64)),
            len: 0,
        }
    }

    /// Appends one slot.
    pub fn push(&mut self, valid: bool) {
        let bit = self.len % 64;
        if bit == 0 {
            self.words.push(0);
        }
        if valid {
            *self.words.last_mut().expect("just pushed") |= 1u64 << bit;
        }
        self.len += 1;
    }

    /// Whether slot `i` holds a value.
    pub fn get(&self, i: usize) -> bool {
        self.words[i / 64] & (1u64 << (i % 64)) != 0
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether there are no slots.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of NULL slots.
    pub fn null_count(&self) -> usize {
        self.len
            - self
                .words
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>()
    }

    /// Raw words for word-at-a-time scans.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuilds a bitmap from raw words (bits past `len` must be zero).
    pub fn from_raw(words: Vec<u64>, len: usize) -> Validity {
        debug_assert_eq!(words.len(), len.div_ceil(64));
        Validity { words, len }
    }

    /// An all-NULL bitmap of `n` slots.
    pub fn nulls(n: usize) -> Validity {
        Validity {
            words: vec![0; n.div_ceil(64)],
            len: n,
        }
    }

    /// Whether two bitmaps mark exactly the same slots valid. Trailing
    /// unused bits are always zero, so this is a plain word compare —
    /// the "bitmap-XOR" validity diff.
    pub fn same_as(&self, other: &Validity) -> bool {
        self.len == other.len && self.words == other.words
    }
}

/// The typed buffer behind a [`ValueColumn`]. NULL slots hold a zero-ish
/// placeholder; the validity bitmap is authoritative.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ColumnValues {
    /// BOOLEAN cells.
    Boolean(Vec<bool>),
    /// BYTE cells.
    Byte(Vec<i8>),
    /// SHORT cells.
    Short(Vec<i16>),
    /// INT cells.
    Int(Vec<i32>),
    /// LONG cells.
    Long(Vec<i64>),
    /// FLOAT cells (raw bits in the buffer; canonicalized on compare).
    Float(Vec<f32>),
    /// DOUBLE cells.
    Double(Vec<f64>),
    /// DECIMAL cells: parallel unscaled/precision/scale lanes.
    Decimal {
        /// Unscaled integers.
        unscaled: Vec<i128>,
        /// Per-cell precision.
        precision: Vec<u8>,
        /// Per-cell scale.
        scale: Vec<u8>,
    },
    /// STRING / CHAR / VARCHAR cells: offsets + bytes.
    Str {
        /// One entry per cell plus a trailing end offset.
        offsets: Vec<usize>,
        /// Concatenated UTF-8 payloads.
        bytes: Vec<u8>,
    },
    /// BINARY cells: offsets + bytes.
    Binary {
        /// One entry per cell plus a trailing end offset.
        offsets: Vec<usize>,
        /// Concatenated payloads.
        bytes: Vec<u8>,
    },
    /// DATE cells (days since epoch).
    Date(Vec<i32>),
    /// TIMESTAMP cells (microseconds since epoch).
    Timestamp(Vec<i64>),
    /// INTERVAL cells: parallel month/microsecond lanes.
    Interval {
        /// Year-month components.
        months: Vec<i32>,
        /// Day-time components.
        micros: Vec<i64>,
    },
    /// Row-wise storage for nested or heterogeneous cells — the escape
    /// hatch that keeps the columnar API total over [`Value`].
    Mixed(Vec<Value>),
}

macro_rules! lane {
    ($buf:expr, $v:expr) => {{
        $buf.push($v);
    }};
}

impl ColumnValues {
    fn for_type(ty: &DataType, cap: usize) -> ColumnValues {
        match ty {
            DataType::Boolean => ColumnValues::Boolean(Vec::with_capacity(cap)),
            DataType::Byte => ColumnValues::Byte(Vec::with_capacity(cap)),
            DataType::Short => ColumnValues::Short(Vec::with_capacity(cap)),
            DataType::Int => ColumnValues::Int(Vec::with_capacity(cap)),
            DataType::Long => ColumnValues::Long(Vec::with_capacity(cap)),
            DataType::Float => ColumnValues::Float(Vec::with_capacity(cap)),
            DataType::Double => ColumnValues::Double(Vec::with_capacity(cap)),
            DataType::Decimal(_, _) => ColumnValues::Decimal {
                unscaled: Vec::with_capacity(cap),
                precision: Vec::with_capacity(cap),
                scale: Vec::with_capacity(cap),
            },
            DataType::String | DataType::Char(_) | DataType::Varchar(_) => ColumnValues::Str {
                offsets: vec![0],
                bytes: Vec::new(),
            },
            DataType::Binary => ColumnValues::Binary {
                offsets: vec![0],
                bytes: Vec::new(),
            },
            DataType::Date => ColumnValues::Date(Vec::with_capacity(cap)),
            DataType::Timestamp => ColumnValues::Timestamp(Vec::with_capacity(cap)),
            DataType::Interval => ColumnValues::Interval {
                months: Vec::with_capacity(cap),
                micros: Vec::with_capacity(cap),
            },
            DataType::Array(_) | DataType::Map(_, _) | DataType::Struct(_) => {
                ColumnValues::Mixed(Vec::with_capacity(cap))
            }
        }
    }

    fn push_null(&mut self) {
        match self {
            ColumnValues::Boolean(v) => lane!(v, false),
            ColumnValues::Byte(v) => lane!(v, 0),
            ColumnValues::Short(v) => lane!(v, 0),
            ColumnValues::Int(v) => lane!(v, 0),
            ColumnValues::Long(v) => lane!(v, 0),
            ColumnValues::Float(v) => lane!(v, 0.0),
            ColumnValues::Double(v) => lane!(v, 0.0),
            ColumnValues::Decimal {
                unscaled,
                precision,
                scale,
            } => {
                unscaled.push(0);
                precision.push(1);
                scale.push(0);
            }
            ColumnValues::Str { offsets, bytes } | ColumnValues::Binary { offsets, bytes } => {
                offsets.push(bytes.len());
            }
            ColumnValues::Date(v) => lane!(v, 0),
            ColumnValues::Timestamp(v) => lane!(v, 0),
            ColumnValues::Interval { months, micros } => {
                months.push(0);
                micros.push(0);
            }
            ColumnValues::Mixed(v) => v.push(Value::Null),
        }
    }

    /// Appends a non-null value if it inhabits this buffer; `false` on a
    /// variant mismatch (nothing appended).
    fn push_typed(&mut self, value: &Value) -> bool {
        match (self, value) {
            (ColumnValues::Boolean(v), Value::Boolean(x)) => lane!(v, *x),
            (ColumnValues::Byte(v), Value::Byte(x)) => lane!(v, *x),
            (ColumnValues::Short(v), Value::Short(x)) => lane!(v, *x),
            (ColumnValues::Int(v), Value::Int(x)) => lane!(v, *x),
            (ColumnValues::Long(v), Value::Long(x)) => lane!(v, *x),
            (ColumnValues::Float(v), Value::Float(x)) => lane!(v, *x),
            (ColumnValues::Double(v), Value::Double(x)) => lane!(v, *x),
            (
                ColumnValues::Decimal {
                    unscaled,
                    precision,
                    scale,
                },
                Value::Decimal(d),
            ) => {
                unscaled.push(d.unscaled);
                precision.push(d.precision);
                scale.push(d.scale);
            }
            (ColumnValues::Str { offsets, bytes }, Value::Str(s)) => {
                bytes.extend_from_slice(s.as_bytes());
                offsets.push(bytes.len());
            }
            (ColumnValues::Binary { offsets, bytes }, Value::Binary(b)) => {
                bytes.extend_from_slice(b);
                offsets.push(bytes.len());
            }
            (ColumnValues::Date(v), Value::Date(x)) => lane!(v, *x),
            (ColumnValues::Timestamp(v), Value::Timestamp(x)) => lane!(v, *x),
            (
                ColumnValues::Interval { months, micros },
                Value::Interval {
                    months: m,
                    micros: u,
                },
            ) => {
                months.push(*m);
                micros.push(*u);
            }
            (ColumnValues::Mixed(v), value) => v.push(value.clone()),
            _ => return false,
        }
        true
    }

    fn get(&self, i: usize) -> Value {
        match self {
            ColumnValues::Boolean(v) => Value::Boolean(v[i]),
            ColumnValues::Byte(v) => Value::Byte(v[i]),
            ColumnValues::Short(v) => Value::Short(v[i]),
            ColumnValues::Int(v) => Value::Int(v[i]),
            ColumnValues::Long(v) => Value::Long(v[i]),
            ColumnValues::Float(v) => Value::Float(v[i]),
            ColumnValues::Double(v) => Value::Double(v[i]),
            ColumnValues::Decimal {
                unscaled,
                precision,
                scale,
            } => Value::Decimal(Decimal {
                unscaled: unscaled[i],
                precision: precision[i],
                scale: scale[i],
            }),
            ColumnValues::Str { offsets, bytes } => Value::Str(
                std::str::from_utf8(&bytes[offsets[i]..offsets[i + 1]])
                    .expect("pushed from &str")
                    .to_string(),
            ),
            ColumnValues::Binary { offsets, bytes } => {
                Value::Binary(bytes[offsets[i]..offsets[i + 1]].to_vec())
            }
            ColumnValues::Date(v) => Value::Date(v[i]),
            ColumnValues::Timestamp(v) => Value::Timestamp(v[i]),
            ColumnValues::Interval { months, micros } => Value::Interval {
                months: months[i],
                micros: micros[i],
            },
            ColumnValues::Mixed(v) => v[i].clone(),
        }
    }

    /// Whether the raw buffers are equal. Sufficient (not necessary) for
    /// canonical equality: every variant's canonical form is a function of
    /// the raw cell, and NULL placeholders are deterministic.
    fn raw_eq(&self, other: &ColumnValues) -> bool {
        match (self, other) {
            (ColumnValues::Float(a), ColumnValues::Float(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (ColumnValues::Double(a), ColumnValues::Double(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
            }
            (ColumnValues::Mixed(_), _) | (_, ColumnValues::Mixed(_)) => false,
            _ => self == other,
        }
    }
}

/// A typed column of [`Value`]s with a validity bitmap.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValueColumn {
    validity: Validity,
    values: ColumnValues,
}

impl ValueColumn {
    /// An empty column whose buffer matches `ty`.
    pub fn for_type(ty: &DataType) -> ValueColumn {
        ValueColumn::with_capacity(ty, 0)
    }

    /// An empty column with row capacity pre-reserved.
    pub fn with_capacity(ty: &DataType, cap: usize) -> ValueColumn {
        ValueColumn {
            validity: Validity::with_capacity(cap),
            values: ColumnValues::for_type(ty, cap),
        }
    }

    /// Builds a column from row-wise values: cells matching `ty` land in
    /// the typed buffer; any mismatch falls back to a [`ColumnValues::Mixed`]
    /// column holding clones (so this is total, like the row path).
    pub fn from_values(ty: &DataType, values: &[Value]) -> ValueColumn {
        let mut col = ValueColumn::with_capacity(ty, values.len());
        for v in values {
            col.push(v);
        }
        col
    }

    /// Assembles a column from a bitmap and a typed buffer, for producers
    /// (engine serde layers) that fill lanes in bulk. The buffer's slot
    /// count must match the bitmap's.
    pub fn from_parts(validity: Validity, values: ColumnValues) -> ValueColumn {
        ValueColumn { validity, values }
    }

    /// An all-NULL column of `n` slots typed for `ty`.
    pub fn nulls(ty: &DataType, n: usize) -> ValueColumn {
        let mut col = ValueColumn::with_capacity(ty, n);
        for _ in 0..n {
            col.push(&Value::Null);
        }
        col
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.validity.len()
    }

    /// Whether the column has no slots.
    pub fn is_empty(&self) -> bool {
        self.validity.is_empty()
    }

    /// The validity bitmap.
    pub fn validity(&self) -> &Validity {
        &self.validity
    }

    /// The typed buffer.
    pub fn values(&self) -> &ColumnValues {
        &self.values
    }

    /// Mutable access to the typed buffer, for in-place rewrites that keep
    /// the validity bitmap intact (e.g. CHAR padding trims).
    pub fn values_mut(&mut self) -> &mut ColumnValues {
        &mut self.values
    }

    /// Number of NULL slots.
    pub fn null_count(&self) -> usize {
        self.validity.null_count()
    }

    /// Appends a cell. A variant mismatch demotes the column to
    /// [`ColumnValues::Mixed`] — appends never fail.
    pub fn push(&mut self, value: &Value) {
        if value.is_null() {
            self.validity.push(false);
            self.values.push_null();
            return;
        }
        if !self.values.push_typed(value) {
            self.demote_to_mixed();
            let ok = self.values.push_typed(value);
            debug_assert!(ok, "Mixed accepts any value");
        }
        self.validity.push(true);
    }

    /// Appends a cell only if it fits the typed buffer; `Err` returns the
    /// offending value's index without demoting.
    pub fn push_strict(&mut self, value: &Value) -> Result<(), usize> {
        if value.is_null() {
            self.validity.push(false);
            self.values.push_null();
            return Ok(());
        }
        if self.values.push_typed(value) {
            self.validity.push(true);
            Ok(())
        } else {
            Err(self.len())
        }
    }

    /// Materializes slot `i`.
    pub fn get(&self, i: usize) -> Value {
        if !self.validity.get(i) {
            return Value::Null;
        }
        self.values.get(i)
    }

    /// Materializes the whole column row-wise.
    pub fn to_values(&self) -> Vec<Value> {
        (0..self.len()).map(|i| self.get(i)).collect()
    }

    /// Appends every cell of `other`.
    pub fn extend_from(&mut self, other: &ValueColumn) {
        for i in 0..other.len() {
            // Cheap for matching buffer kinds: push_typed is a buffer
            // append; only Mixed columns re-clone per cell.
            self.push(&other.get(i));
        }
    }

    fn demote_to_mixed(&mut self) {
        let mut cells = Vec::with_capacity(self.len() + 1);
        for i in 0..self.len() {
            cells.push(self.get(i));
        }
        self.values = ColumnValues::Mixed(cells);
    }

    /// Vectorized counterpart of element-wise [`Value::canonical_eq`].
    ///
    /// Fast path: same buffer kind + word-equal validity bitmaps + raw
    /// buffer equality ⇒ equal, with no per-cell work. Slow path (raw
    /// bytes differ, or either side is [`ColumnValues::Mixed`]): per-slot
    /// canonical comparison, because float NaN payloads, signed zeros and
    /// decimal rescalings are canonically equal without being raw-equal.
    pub fn canonical_eq(&self, other: &ValueColumn) -> bool {
        if self.len() != other.len() {
            return false;
        }
        if !self.validity.same_as(&other.validity) {
            return false;
        }
        if self.values.raw_eq(&other.values) {
            return true;
        }
        (0..self.len()).all(|i| {
            if !self.validity.get(i) {
                return true; // both NULL: validity already matched
            }
            self.values.get(i).canonical_eq(&other.values.get(i))
        })
    }

    /// A stable 64-bit fingerprint of the column's canonical content.
    /// Equal columns (under [`ValueColumn::canonical_eq`]) fingerprint
    /// equally; hashing runs over canonical lanes, not signature strings.
    pub fn fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.word(self.len() as u64);
        for w in self.validity.words() {
            h.word(*w);
        }
        match &self.values {
            ColumnValues::Boolean(v) => {
                h.write(b"bool");
                for (i, x) in v.iter().enumerate() {
                    h.word(u64::from(self.validity.get(i) && *x));
                }
            }
            ColumnValues::Byte(v) => hash_ints(&mut h, b"i8", v, &self.validity, |x| *x as i64),
            ColumnValues::Short(v) => hash_ints(&mut h, b"i16", v, &self.validity, |x| *x as i64),
            ColumnValues::Int(v) => hash_ints(&mut h, b"i32", v, &self.validity, |x| *x as i64),
            ColumnValues::Long(v) => hash_ints(&mut h, b"i64", v, &self.validity, |x| *x),
            ColumnValues::Float(v) => {
                h.write(b"f32");
                for (i, x) in v.iter().enumerate() {
                    let bits = if self.validity.get(i) {
                        canon_f32(*x)
                    } else {
                        0
                    };
                    h.word(u64::from(bits));
                }
            }
            ColumnValues::Double(v) => {
                h.write(b"f64");
                for (i, x) in v.iter().enumerate() {
                    let bits = if self.validity.get(i) {
                        canon_f64(*x)
                    } else {
                        0
                    };
                    h.word(bits);
                }
            }
            ColumnValues::Decimal {
                unscaled, scale, ..
            } => {
                h.write(b"dec");
                for i in 0..unscaled.len() {
                    if !self.validity.get(i) {
                        h.word(u64::MAX);
                        continue;
                    }
                    // Canonical form: strip trailing zeros so rescaled
                    // decimals (canonically equal) hash equally.
                    let (mut u, mut s) = (unscaled[i], scale[i]);
                    while s > 0 && u % 10 == 0 {
                        u /= 10;
                        s -= 1;
                    }
                    h.word(u as u64);
                    h.word((u >> 64) as u64);
                    h.word(u64::from(s));
                }
            }
            ColumnValues::Str { offsets, bytes } => hash_var(&mut h, b"str", offsets, bytes),
            ColumnValues::Binary { offsets, bytes } => hash_var(&mut h, b"bin", offsets, bytes),
            ColumnValues::Date(v) => hash_ints(&mut h, b"date", v, &self.validity, |x| *x as i64),
            ColumnValues::Timestamp(v) => hash_ints(&mut h, b"ts", v, &self.validity, |x| *x),
            ColumnValues::Interval { months, micros } => {
                h.write(b"iv");
                for i in 0..months.len() {
                    if self.validity.get(i) {
                        h.word(months[i] as u64);
                        h.word(micros[i] as u64);
                    } else {
                        h.word(u64::MAX);
                    }
                }
            }
            ColumnValues::Mixed(v) => {
                h.write(b"mixed");
                for (i, x) in v.iter().enumerate() {
                    if self.validity.get(i) {
                        h.write(x.signature().as_bytes());
                    } else {
                        h.write(b"null");
                    }
                    h.write(b";");
                }
            }
        }
        h.finish()
    }
}

fn hash_ints<T, F: Fn(&T) -> i64>(h: &mut Fnv, tag: &[u8], v: &[T], validity: &Validity, f: F) {
    h.write(tag);
    for (i, x) in v.iter().enumerate() {
        let n = if validity.get(i) { f(x) } else { 0 };
        h.word(n as u64);
    }
}

fn hash_var(h: &mut Fnv, tag: &[u8], offsets: &[usize], bytes: &[u8]) {
    h.write(tag);
    for w in offsets {
        h.word(*w as u64);
    }
    h.write(bytes);
}

/// FNV-1a style folding hasher for column fingerprints, consuming input
/// eight bytes per multiply so digesting a million-row lane costs one
/// round per word, not one per byte. Stability matters only within a
/// report: canonically equal columns make identical call sequences here,
/// so they digest equally.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn word(&mut self, w: u64) {
        self.0 ^= w;
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rem.len()].copy_from_slice(rem);
            self.word(u64::from_le_bytes(tail));
        }
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn int_col(vals: &[Option<i32>]) -> ValueColumn {
        let cells: Vec<Value> = vals
            .iter()
            .map(|v| v.map_or(Value::Null, Value::Int))
            .collect();
        ValueColumn::from_values(&DataType::Int, &cells)
    }

    #[test]
    fn round_trips_every_flat_type() {
        let cases: Vec<(DataType, Vec<Value>)> = vec![
            (DataType::Boolean, vec![Value::Boolean(true), Value::Null]),
            (DataType::Byte, vec![Value::Byte(-1), Value::Null]),
            (DataType::Short, vec![Value::Short(300)]),
            (DataType::Int, vec![Value::Int(i32::MIN), Value::Null]),
            (DataType::Long, vec![Value::Long(i64::MAX)]),
            (
                DataType::Float,
                vec![Value::Float(f32::NAN), Value::Float(-0.0)],
            ),
            (DataType::Double, vec![Value::Double(1.5), Value::Null]),
            (
                DataType::Decimal(10, 2),
                vec![
                    Value::Decimal(Decimal::new(12345, 10, 2).unwrap()),
                    Value::Null,
                ],
            ),
            (
                DataType::String,
                vec![
                    Value::Str("héllo".into()),
                    Value::Str(String::new()),
                    Value::Null,
                ],
            ),
            (
                DataType::Binary,
                vec![Value::Binary(vec![0, 255]), Value::Null],
            ),
            (DataType::Date, vec![Value::Date(-719162)]),
            (DataType::Timestamp, vec![Value::Timestamp(-1), Value::Null]),
            (
                DataType::Interval,
                vec![
                    Value::Interval {
                        months: 1,
                        micros: -5,
                    },
                    Value::Null,
                ],
            ),
        ];
        for (ty, cells) in cases {
            let col = ValueColumn::from_values(&ty, &cells);
            let back = col.to_values();
            assert_eq!(back.len(), cells.len(), "{ty:?}");
            for (a, b) in cells.iter().zip(&back) {
                assert!(a.canonical_eq(b), "{ty:?}: {a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn mismatched_cells_demote_to_mixed() {
        let cells = vec![Value::Int(1), Value::Str("two".into()), Value::Null];
        let col = ValueColumn::from_values(&DataType::Int, &cells);
        assert!(matches!(col.values(), ColumnValues::Mixed(_)));
        assert_eq!(col.to_values(), cells);
    }

    #[test]
    fn canonical_eq_fast_path_and_fallback_agree() {
        let a = int_col(&[Some(1), None, Some(3)]);
        let b = int_col(&[Some(1), None, Some(3)]);
        let c = int_col(&[Some(1), Some(0), Some(3)]); // None vs Some(0): raw buffers equal, validity differs
        assert!(a.canonical_eq(&b));
        assert!(!a.canonical_eq(&c));

        // Floats: raw-unequal but canonically equal (NaN payloads, -0.0).
        let f1 = ValueColumn::from_values(
            &DataType::Double,
            &[
                Value::Double(f64::from_bits(0x7ff8_0000_0000_0001)),
                Value::Double(-0.0),
            ],
        );
        let f2 = ValueColumn::from_values(
            &DataType::Double,
            &[Value::Double(f64::NAN), Value::Double(0.0)],
        );
        assert!(f1.canonical_eq(&f2));
        assert_eq!(f1.fingerprint(), f2.fingerprint());
    }

    #[test]
    fn decimal_rescalings_compare_and_fingerprint_equal() {
        let a = ValueColumn::from_values(
            &DataType::Decimal(10, 2),
            &[Value::Decimal(Decimal::new(120, 10, 2).unwrap())],
        );
        let b = ValueColumn::from_values(
            &DataType::Decimal(10, 1),
            &[Value::Decimal(Decimal::new(12, 10, 1).unwrap())],
        );
        assert!(a.canonical_eq(&b));
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn fingerprints_separate_unequal_columns() {
        let a = int_col(&[Some(1), Some(2)]);
        let b = int_col(&[Some(1), Some(3)]);
        let c = int_col(&[Some(1), None]);
        assert_ne!(a.fingerprint(), b.fingerprint());
        assert_ne!(a.fingerprint(), c.fingerprint());
        assert_eq!(a.fingerprint(), int_col(&[Some(1), Some(2)]).fingerprint());
    }

    #[test]
    fn str_columns_distinguish_cell_boundaries() {
        let a = ValueColumn::from_values(
            &DataType::String,
            &[Value::Str("ab".into()), Value::Str("c".into())],
        );
        let b = ValueColumn::from_values(
            &DataType::String,
            &[Value::Str("a".into()), Value::Str("bc".into())],
        );
        assert!(!a.canonical_eq(&b));
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn push_strict_rejects_mismatches_without_demoting() {
        let mut col = ValueColumn::for_type(&DataType::Int);
        col.push_strict(&Value::Int(7)).unwrap();
        assert_eq!(col.push_strict(&Value::Str("x".into())), Err(1));
        assert!(matches!(col.values(), ColumnValues::Int(_)));
        assert_eq!(col.len(), 1);
    }
}
