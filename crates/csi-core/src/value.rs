//! Cross-system value model: a SQL-style type system and literal values.
//!
//! The cross-testing harness of Section 8 generates inputs that "cover all
//! the data types supported by each interface". This module defines the
//! harness-level representation of those inputs. Each simulated system
//! converts [`Value`]s into its own internal representation at its boundary;
//! the conversions are exactly where the studied discrepancies live.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A fixed-point decimal: an unscaled integer plus precision and scale.
///
/// `Decimal { unscaled: 12345, precision: 5, scale: 2 }` represents `123.45`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Decimal {
    /// The digits, as an integer scaled by `10^scale`.
    pub unscaled: i128,
    /// Maximum number of digits this value's type allows.
    pub precision: u8,
    /// Number of digits to the right of the decimal point.
    pub scale: u8,
}

impl Decimal {
    /// Maximum supported precision, matching Spark's and Hive's `DECIMAL(38)`.
    pub const MAX_PRECISION: u8 = 38;

    /// Creates a decimal, validating that the digits fit the precision.
    pub fn new(unscaled: i128, precision: u8, scale: u8) -> Result<Decimal, DecimalError> {
        if precision == 0 || precision > Decimal::MAX_PRECISION {
            return Err(DecimalError::BadPrecision(precision));
        }
        if scale > precision {
            return Err(DecimalError::BadScale { precision, scale });
        }
        let d = Decimal {
            unscaled,
            precision,
            scale,
        };
        if d.digit_count() > precision as u32 {
            return Err(DecimalError::Overflow {
                digits: d.digit_count(),
                precision,
            });
        }
        Ok(d)
    }

    /// Number of significant decimal digits in the unscaled value.
    pub fn digit_count(&self) -> u32 {
        let n = self.unscaled.unsigned_abs();
        // The 64-bit ilog10 is a table lookup; the 128-bit one divides.
        match u64::try_from(n) {
            Ok(0) => 1,
            Ok(v) => v.ilog10() + 1,
            Err(_) => n.ilog10() + 1,
        }
    }

    /// Parses a decimal literal like `-123.45`, inferring precision and scale.
    pub fn parse(text: &str) -> Result<Decimal, DecimalError> {
        let t = text.trim();
        let (neg, t) = match t.strip_prefix('-') {
            Some(rest) => (true, rest),
            None => (false, t.strip_prefix('+').unwrap_or(t)),
        };
        let (int_part, frac_part) = match t.split_once('.') {
            Some((i, f)) => (i, f),
            None => (t, ""),
        };
        if int_part.is_empty() && frac_part.is_empty() {
            return Err(DecimalError::Unparseable(text.to_string()));
        }
        if !int_part.chars().all(|c| c.is_ascii_digit())
            || !frac_part.chars().all(|c| c.is_ascii_digit())
        {
            return Err(DecimalError::Unparseable(text.to_string()));
        }
        let digits: String = int_part.chars().chain(frac_part.chars()).collect();
        let unscaled: i128 = if digits.is_empty() {
            0
        } else {
            digits
                .parse()
                .map_err(|_| DecimalError::Unparseable(text.to_string()))?
        };
        let unscaled = if neg { -unscaled } else { unscaled };
        let scale = frac_part.len() as u8;
        let d = Decimal {
            unscaled,
            precision: 0,
            scale,
        };
        let precision = d.digit_count().max(scale as u32 + 1).min(255) as u8;
        if precision > Decimal::MAX_PRECISION {
            return Err(DecimalError::Overflow {
                digits: d.digit_count(),
                precision: Decimal::MAX_PRECISION,
            });
        }
        Decimal::new(unscaled, precision, scale)
    }

    /// Rescales to a new precision/scale, failing if digits would be lost on
    /// the integral side; excess fractional digits are rejected, not rounded.
    pub fn rescale(&self, precision: u8, scale: u8) -> Result<Decimal, DecimalError> {
        let mut unscaled = self.unscaled;
        if scale >= self.scale {
            let up = (scale - self.scale) as u32;
            unscaled = unscaled
                .checked_mul(10i128.checked_pow(up).ok_or(DecimalError::Overflow {
                    digits: 39,
                    precision,
                })?)
                .ok_or(DecimalError::Overflow {
                    digits: 39,
                    precision,
                })?;
        } else {
            let down = (self.scale - scale) as u32;
            let factor = 10i128.pow(down);
            if unscaled % factor != 0 {
                return Err(DecimalError::LossOfScale {
                    from: self.scale,
                    to: scale,
                });
            }
            unscaled /= factor;
        }
        Decimal::new(unscaled, precision, scale)
    }

    /// The value as an `f64` (lossy for large precisions).
    pub fn to_f64(&self) -> f64 {
        self.unscaled as f64 / 10f64.powi(self.scale as i32)
    }

    /// The numerically-equal decimal with the smallest scale (trailing
    /// fractional zeros removed). Used for canonical comparisons.
    pub fn normalized(&self) -> Decimal {
        let mut unscaled = self.unscaled;
        let mut scale = self.scale;
        while scale > 0 && unscaled % 10 == 0 {
            unscaled /= 10;
            scale -= 1;
        }
        Decimal {
            unscaled,
            precision: self.precision,
            scale,
        }
    }
}

impl fmt::Display for Decimal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.scale == 0 {
            return write!(f, "{}", self.unscaled);
        }
        let neg = self.unscaled < 0;
        let digits = self.unscaled.unsigned_abs().to_string();
        let scale = self.scale as usize;
        let padded = if digits.len() <= scale {
            format!("{}{}", "0".repeat(scale - digits.len() + 1), digits)
        } else {
            digits
        };
        let (int_part, frac_part) = padded.split_at(padded.len() - scale);
        write!(
            f,
            "{}{}.{}",
            if neg { "-" } else { "" },
            int_part,
            frac_part
        )
    }
}

/// Errors raised by [`Decimal`] operations.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum DecimalError {
    /// Precision outside `1..=38`.
    BadPrecision(u8),
    /// Scale exceeds precision.
    BadScale {
        /// Declared precision.
        precision: u8,
        /// Offending scale.
        scale: u8,
    },
    /// More digits than the precision allows.
    Overflow {
        /// Digits present.
        digits: u32,
        /// Precision allowed.
        precision: u8,
    },
    /// Rescaling would drop non-zero fractional digits.
    LossOfScale {
        /// Original scale.
        from: u8,
        /// Requested scale.
        to: u8,
    },
    /// Not a decimal literal.
    Unparseable(String),
}

impl fmt::Display for DecimalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecimalError::BadPrecision(p) => write!(f, "invalid decimal precision {p}"),
            DecimalError::BadScale { precision, scale } => {
                write!(f, "scale {scale} exceeds precision {precision}")
            }
            DecimalError::Overflow { digits, precision } => {
                write!(f, "{digits} digits exceed precision {precision}")
            }
            DecimalError::LossOfScale { from, to } => {
                write!(f, "cannot rescale from scale {from} to {to} without loss")
            }
            DecimalError::Unparseable(s) => write!(f, "not a decimal literal: {s:?}"),
        }
    }
}

impl std::error::Error for DecimalError {}

/// A named, typed field of a [`DataType::Struct`].
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct StructField {
    /// Field name, case-preserved.
    pub name: String,
    /// Field type.
    pub data_type: DataType,
    /// Whether NULL is allowed.
    pub nullable: bool,
}

impl StructField {
    /// Convenience constructor for a nullable field.
    pub fn new(name: impl Into<String>, data_type: DataType) -> StructField {
        StructField {
            name: name.into(),
            data_type,
            nullable: true,
        }
    }
}

/// The SQL-style type system shared by the harness.
///
/// This is the union of the types documented for SparkSQL/DataFrame and
/// HiveQL interfaces; individual systems support subsets with their own
/// coercion rules.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// BOOLEAN.
    Boolean,
    /// BYTE / TINYINT (8-bit signed).
    Byte,
    /// SHORT / SMALLINT (16-bit signed).
    Short,
    /// INT / INTEGER (32-bit signed).
    Int,
    /// LONG / BIGINT (64-bit signed).
    Long,
    /// FLOAT / REAL (32-bit IEEE 754).
    Float,
    /// DOUBLE (64-bit IEEE 754).
    Double,
    /// DECIMAL(precision, scale).
    Decimal(u8, u8),
    /// STRING (unbounded UTF-8).
    String,
    /// CHAR(n): fixed-length, blank-padded.
    Char(u32),
    /// VARCHAR(n): bounded variable-length.
    Varchar(u32),
    /// BINARY (byte array).
    Binary,
    /// DATE (days since 1970-01-01).
    Date,
    /// TIMESTAMP (microseconds since the epoch).
    Timestamp,
    /// Year-month + day-time INTERVAL.
    Interval,
    /// ARRAY of an element type.
    Array(Box<DataType>),
    /// MAP from a key type to a value type.
    Map(Box<DataType>, Box<DataType>),
    /// STRUCT of named fields.
    Struct(Vec<StructField>),
}

impl DataType {
    /// The primitive (non-nested) types, used by input generators.
    pub fn primitives() -> Vec<DataType> {
        vec![
            DataType::Boolean,
            DataType::Byte,
            DataType::Short,
            DataType::Int,
            DataType::Long,
            DataType::Float,
            DataType::Double,
            DataType::Decimal(10, 2),
            DataType::String,
            DataType::Char(8),
            DataType::Varchar(8),
            DataType::Binary,
            DataType::Date,
            DataType::Timestamp,
            DataType::Interval,
        ]
    }

    /// Whether this is a nested (container) type.
    pub fn is_nested(&self) -> bool {
        matches!(
            self,
            DataType::Array(_) | DataType::Map(_, _) | DataType::Struct(_)
        )
    }

    /// Whether this is a numeric type.
    pub fn is_numeric(&self) -> bool {
        matches!(
            self,
            DataType::Byte
                | DataType::Short
                | DataType::Int
                | DataType::Long
                | DataType::Float
                | DataType::Double
                | DataType::Decimal(_, _)
        )
    }

    /// Whether this is a character type (STRING/CHAR/VARCHAR).
    pub fn is_character(&self) -> bool {
        matches!(
            self,
            DataType::String | DataType::Char(_) | DataType::Varchar(_)
        )
    }

    /// Renders the type in SQL DDL syntax, e.g. `DECIMAL(10,2)`.
    pub fn sql_name(&self) -> String {
        match self {
            DataType::Boolean => "BOOLEAN".into(),
            DataType::Byte => "TINYINT".into(),
            DataType::Short => "SMALLINT".into(),
            DataType::Int => "INT".into(),
            DataType::Long => "BIGINT".into(),
            DataType::Float => "FLOAT".into(),
            DataType::Double => "DOUBLE".into(),
            DataType::Decimal(p, s) => format!("DECIMAL({p},{s})"),
            DataType::String => "STRING".into(),
            DataType::Char(n) => format!("CHAR({n})"),
            DataType::Varchar(n) => format!("VARCHAR({n})"),
            DataType::Binary => "BINARY".into(),
            DataType::Date => "DATE".into(),
            DataType::Timestamp => "TIMESTAMP".into(),
            DataType::Interval => "INTERVAL".into(),
            DataType::Array(e) => format!("ARRAY<{}>", e.sql_name()),
            DataType::Map(k, v) => format!("MAP<{},{}>", k.sql_name(), v.sql_name()),
            DataType::Struct(fields) => {
                let inner: Vec<String> = fields
                    .iter()
                    .map(|f| format!("{}:{}", f.name, f.data_type.sql_name()))
                    .collect();
                format!("STRUCT<{}>", inner.join(","))
            }
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.sql_name())
    }
}

/// A literal value in the harness representation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// BOOLEAN.
    Boolean(bool),
    /// BYTE.
    Byte(i8),
    /// SHORT.
    Short(i16),
    /// INT.
    Int(i32),
    /// LONG.
    Long(i64),
    /// FLOAT.
    Float(f32),
    /// DOUBLE.
    Double(f64),
    /// DECIMAL.
    Decimal(Decimal),
    /// STRING / CHAR / VARCHAR payload.
    Str(String),
    /// BINARY payload.
    Binary(Vec<u8>),
    /// DATE: days since 1970-01-01.
    Date(i32),
    /// TIMESTAMP: microseconds since the epoch.
    Timestamp(i64),
    /// INTERVAL: months plus microseconds.
    Interval {
        /// Year-month component, in months.
        months: i32,
        /// Day-time component, in microseconds.
        micros: i64,
    },
    /// ARRAY.
    Array(Vec<Value>),
    /// MAP as ordered key/value pairs.
    Map(Vec<(Value, Value)>),
    /// STRUCT as ordered name/value pairs.
    Struct(Vec<(String, Value)>),
}

impl Value {
    /// Whether the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A canonical form for comparison: floats are compared bit-wise with
    /// all NaNs unified, and struct field names are compared exactly.
    ///
    /// The differential oracle needs a total equality on values: `NaN == NaN`
    /// must hold so that two interfaces both producing NaN are *consistent*.
    pub fn canonical_eq(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Float(a), Value::Float(b)) => canon_f32(*a) == canon_f32(*b),
            (Value::Double(a), Value::Double(b)) => canon_f64(*a) == canon_f64(*b),
            (Value::Array(a), Value::Array(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.canonical_eq(y))
            }
            (Value::Map(a), Value::Map(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b)
                        .all(|((ak, av), (bk, bv))| ak.canonical_eq(bk) && av.canonical_eq(bv))
            }
            (Value::Struct(a), Value::Struct(b)) => {
                a.len() == b.len()
                    && a.iter()
                        .zip(b)
                        .all(|((an, av), (bn, bv))| an == bn && av.canonical_eq(bv))
            }
            (Value::Decimal(a), Value::Decimal(b)) => {
                // Decimals compare by numeric value, not representation.
                let (sa, sb) = (a.scale as u32, b.scale as u32);
                let max = sa.max(sb);
                let ua = a.unscaled.checked_mul(10i128.pow(max - sa));
                let ub = b.unscaled.checked_mul(10i128.pow(max - sb));
                match (ua, ub) {
                    (Some(x), Some(y)) => x == y,
                    _ => a == b,
                }
            }
            _ => self == other,
        }
    }

    /// A stable signature string used to group differential observations.
    pub fn signature(&self) -> String {
        match self {
            Value::Null => "null".into(),
            Value::Boolean(b) => format!("bool:{b}"),
            Value::Byte(v) => format!("i8:{v}"),
            Value::Short(v) => format!("i16:{v}"),
            Value::Int(v) => format!("i32:{v}"),
            Value::Long(v) => format!("i64:{v}"),
            Value::Float(v) => format!("f32:{:08x}", canon_f32(*v)),
            Value::Double(v) => format!("f64:{:016x}", canon_f64(*v)),
            Value::Decimal(d) => format!("dec:{}", d.normalized()),
            Value::Str(s) => format!("str:{s:?}"),
            Value::Binary(b) => {
                let hex: String = b.iter().map(|x| format!("{x:02x}")).collect();
                format!("bin:{hex}")
            }
            Value::Date(d) => format!("date:{d}"),
            Value::Timestamp(t) => format!("ts:{t}"),
            Value::Interval { months, micros } => format!("iv:{months}m{micros}us"),
            Value::Array(items) => {
                let inner: Vec<String> = items.iter().map(|v| v.signature()).collect();
                format!("arr:[{}]", inner.join(","))
            }
            Value::Map(pairs) => {
                let inner: Vec<String> = pairs
                    .iter()
                    .map(|(k, v)| format!("{}=>{}", k.signature(), v.signature()))
                    .collect();
                format!("map:[{}]", inner.join(","))
            }
            Value::Struct(fields) => {
                let inner: Vec<String> = fields
                    .iter()
                    .map(|(n, v)| format!("{n}:{}", v.signature()))
                    .collect();
                format!("struct:[{}]", inner.join(","))
            }
        }
    }

    /// The most natural [`DataType`] of this value, if it has one.
    pub fn natural_type(&self) -> Option<DataType> {
        Some(match self {
            Value::Null => return None,
            Value::Boolean(_) => DataType::Boolean,
            Value::Byte(_) => DataType::Byte,
            Value::Short(_) => DataType::Short,
            Value::Int(_) => DataType::Int,
            Value::Long(_) => DataType::Long,
            Value::Float(_) => DataType::Float,
            Value::Double(_) => DataType::Double,
            Value::Decimal(d) => DataType::Decimal(d.precision, d.scale),
            Value::Str(_) => DataType::String,
            Value::Binary(_) => DataType::Binary,
            Value::Date(_) => DataType::Date,
            Value::Timestamp(_) => DataType::Timestamp,
            Value::Interval { .. } => DataType::Interval,
            Value::Array(items) => {
                DataType::Array(Box::new(items.iter().find_map(|v| v.natural_type())?))
            }
            Value::Map(pairs) => {
                let (k, v) = pairs.first()?;
                DataType::Map(Box::new(k.natural_type()?), Box::new(v.natural_type()?))
            }
            Value::Struct(fields) => DataType::Struct(
                fields
                    .iter()
                    .map(|(n, v)| Some(StructField::new(n.clone(), v.natural_type()?)))
                    .collect::<Option<Vec<_>>>()?,
            ),
        })
    }
}

/// SQL comparison of two values.
///
/// Returns `None` when either side is NULL (three-valued logic: the
/// predicate is *unknown*) or the values are not comparable. Numerics
/// compare across widths; strings, binaries, booleans, dates, and
/// timestamps compare within their own kind.
pub fn compare_values(a: &Value, b: &Value) -> Option<std::cmp::Ordering> {
    use std::cmp::Ordering;
    fn numeric(v: &Value) -> Option<f64> {
        Some(match v {
            Value::Byte(x) => *x as f64,
            Value::Short(x) => *x as f64,
            Value::Int(x) => *x as f64,
            Value::Long(x) => *x as f64,
            Value::Float(x) => *x as f64,
            Value::Double(x) => *x,
            Value::Decimal(d) => d.to_f64(),
            _ => return None,
        })
    }
    if a.is_null() || b.is_null() {
        return None;
    }
    if let (Some(x), Some(y)) = (numeric(a), numeric(b)) {
        return x.partial_cmp(&y);
    }
    match (a, b) {
        (Value::Str(x), Value::Str(y)) => Some(x.cmp(y)),
        (Value::Binary(x), Value::Binary(y)) => Some(x.cmp(y)),
        (Value::Boolean(x), Value::Boolean(y)) => Some(x.cmp(y)),
        (Value::Date(x), Value::Date(y)) => Some(x.cmp(y)),
        (Value::Timestamp(x), Value::Timestamp(y)) => Some(x.cmp(y)),
        _ => {
            if a.canonical_eq(b) {
                Some(Ordering::Equal)
            } else {
                None
            }
        }
    }
}

/// Canonical bit pattern for oracle float comparison: all NaNs unified,
/// signed zeros merged. Shared with the columnar diff in [`crate::column`].
pub(crate) fn canon_f32(v: f32) -> u32 {
    if v.is_nan() {
        f32::NAN.to_bits()
    } else if v == 0.0 {
        0 // Unify +0.0 and -0.0.
    } else {
        v.to_bits()
    }
}

/// 64-bit counterpart of [`canon_f32`].
pub(crate) fn canon_f64(v: f64) -> u64 {
    if v.is_nan() {
        f64::NAN.to_bits()
    } else if v == 0.0 {
        0
    } else {
        v.to_bits()
    }
}

/// Renders a date (days since epoch) as `YYYY-MM-DD` (proleptic Gregorian).
pub fn format_date(days: i32) -> String {
    let (y, m, d) = civil_from_days(days as i64);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Parses `YYYY-MM-DD` into days since the epoch.
pub fn parse_date(text: &str) -> Option<i32> {
    let mut parts = text.split('-');
    let (ys, ms, ds) = (parts.next()?, parts.next()?, parts.next()?);
    if parts.next().is_some() {
        return None;
    }
    let y: i64 = ys.parse().ok()?;
    let m: u32 = ms.parse().ok()?;
    let d: u32 = ds.parse().ok()?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    if d > days_in_month(y, m) {
        return None;
    }
    Some(days_from_civil(y, m, d) as i32)
}

/// Renders a timestamp (microseconds since epoch) as
/// `YYYY-MM-DD HH:MM:SS.ffffff` in UTC.
pub fn format_timestamp(micros: i64) -> String {
    let days = micros.div_euclid(86_400_000_000);
    let in_day = micros.rem_euclid(86_400_000_000);
    let (y, m, d) = civil_from_days(days);
    let secs = in_day / 1_000_000;
    let frac = in_day % 1_000_000;
    let (hh, mm, ss) = (secs / 3600, (secs / 60) % 60, secs % 60);
    format!("{y:04}-{m:02}-{d:02} {hh:02}:{mm:02}:{ss:02}.{frac:06}")
}

/// Parses `YYYY-MM-DD HH:MM:SS[.ffffff]` into microseconds since the epoch.
pub fn parse_timestamp(text: &str) -> Option<i64> {
    let (date_part, time_part) = text.split_once(' ')?;
    let days = parse_date(date_part)? as i64;
    let (hms, frac) = match time_part.split_once('.') {
        Some((h, f)) => (h, f),
        None => (time_part, ""),
    };
    let mut it = hms.split(':');
    let hh: i64 = it.next()?.parse().ok()?;
    let mm: i64 = it.next()?.parse().ok()?;
    let ss: i64 = it.next()?.parse().ok()?;
    if it.next().is_some() || hh >= 24 || mm >= 60 || ss >= 60 {
        return None;
    }
    let micros_frac: i64 = if frac.is_empty() {
        0
    } else if frac.len() <= 6 && frac.chars().all(|c| c.is_ascii_digit()) {
        let padded = format!("{frac:0<6}");
        padded.parse().ok()?
    } else {
        return None;
    };
    Some(days * 86_400_000_000 + (hh * 3600 + mm * 60 + ss) * 1_000_000 + micros_frac)
}

fn is_leap(y: i64) -> bool {
    (y % 4 == 0 && y % 100 != 0) || y % 400 == 0
}

fn days_in_month(y: i64, m: u32) -> u32 {
    match m {
        1 | 3 | 5 | 7 | 8 | 10 | 12 => 31,
        4 | 6 | 9 | 11 => 30,
        2 => {
            if is_leap(y) {
                29
            } else {
                28
            }
        }
        _ => 0,
    }
}

// Howard Hinnant's civil-from-days / days-from-civil algorithms.
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = y.div_euclid(400);
    let yoe = y.rem_euclid(400);
    let mp = if m > 2 { m - 3 } else { m + 9 } as i64;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    era * 146_097 + doe - 719_468
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decimal_display_round_trips() {
        for text in ["0", "1.50", "-0.05", "123.45", "-9999999999.999"] {
            let d = Decimal::parse(text).unwrap();
            // Parse keeps trailing zeros via scale, so rendering matches.
            assert_eq!(d.to_string(), text, "round-trip for {text}");
        }
    }

    #[test]
    fn decimal_parse_rejects_garbage() {
        for text in ["", ".", "abc", "1.2.3", "--5", "1e5"] {
            assert!(Decimal::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn decimal_new_enforces_precision() {
        assert!(Decimal::new(12345, 5, 2).is_ok());
        assert!(matches!(
            Decimal::new(123456, 5, 2),
            Err(DecimalError::Overflow { .. })
        ));
        assert!(matches!(
            Decimal::new(1, 0, 0),
            Err(DecimalError::BadPrecision(0))
        ));
        assert!(matches!(
            Decimal::new(1, 3, 4),
            Err(DecimalError::BadScale { .. })
        ));
    }

    #[test]
    fn decimal_rescale_preserves_value_or_fails() {
        let d = Decimal::parse("12.30").unwrap();
        let up = d.rescale(10, 4).unwrap();
        assert_eq!(up.to_string(), "12.3000");
        let down = d.rescale(10, 1).unwrap();
        assert_eq!(down.to_string(), "12.3");
        assert!(matches!(
            Decimal::parse("12.34").unwrap().rescale(10, 1),
            Err(DecimalError::LossOfScale { .. })
        ));
    }

    #[test]
    fn decimal_canonical_eq_ignores_scale_representation() {
        let a = Value::Decimal(Decimal::parse("1.5").unwrap());
        let b = Value::Decimal(Decimal::parse("1.50").unwrap());
        assert!(a.canonical_eq(&b));
        assert_ne!(a, b);
    }

    #[test]
    fn nan_is_canonically_equal_to_nan() {
        let a = Value::Double(f64::NAN);
        let b = Value::Double(f64::from_bits(0x7ff8_0000_0000_0001));
        assert!(a.canonical_eq(&b));
        assert!(Value::Float(f32::NAN).canonical_eq(&Value::Float(-f32::NAN)));
        assert!(Value::Double(0.0).canonical_eq(&Value::Double(-0.0)));
        assert!(!Value::Double(1.0).canonical_eq(&Value::Double(2.0)));
    }

    #[test]
    fn date_round_trips() {
        for text in ["1970-01-01", "2000-02-29", "1969-12-31", "2038-01-19"] {
            let days = parse_date(text).unwrap();
            assert_eq!(format_date(days), text);
        }
        assert_eq!(parse_date("1970-01-01"), Some(0));
        assert_eq!(parse_date("1970-01-02"), Some(1));
        assert_eq!(parse_date("1969-12-31"), Some(-1));
    }

    #[test]
    fn date_rejects_invalid() {
        for text in ["2021-02-29", "2021-13-01", "2021-00-10", "x", "2021-1"] {
            assert_eq!(parse_date(text), None, "{text:?}");
        }
    }

    #[test]
    fn timestamp_round_trips() {
        for text in [
            "1970-01-01 00:00:00.000000",
            "2001-09-09 01:46:40.123456",
            "1969-12-31 23:59:59.999999",
        ] {
            let us = parse_timestamp(text).unwrap();
            assert_eq!(format_timestamp(us), text);
        }
        assert_eq!(parse_timestamp("1970-01-01 00:00:01"), Some(1_000_000));
    }

    #[test]
    fn timestamp_rejects_invalid() {
        for text in ["1970-01-01", "1970-01-01 25:00:00", "1970-01-01 00:61:00"] {
            assert_eq!(parse_timestamp(text), None, "{text:?}");
        }
    }

    #[test]
    fn sql_names_render_nested_types() {
        let t = DataType::Map(
            Box::new(DataType::String),
            Box::new(DataType::Array(Box::new(DataType::Decimal(10, 2)))),
        );
        assert_eq!(t.sql_name(), "MAP<STRING,ARRAY<DECIMAL(10,2)>>");
        let s = DataType::Struct(vec![
            StructField::new("Inner", DataType::Int),
            StructField::new("b", DataType::Boolean),
        ]);
        assert_eq!(s.sql_name(), "STRUCT<Inner:INT,b:BOOLEAN>");
    }

    #[test]
    fn decimal_signature_is_scale_canonical() {
        let a = Value::Decimal(Decimal::parse("1.50").unwrap());
        let b = Value::Decimal(Decimal::parse("1.5").unwrap());
        assert_eq!(a.signature(), b.signature());
        let c = Value::Decimal(Decimal::parse("1.51").unwrap());
        assert_ne!(a.signature(), c.signature());
        assert_eq!(Decimal::parse("100").unwrap().normalized().scale, 0);
        assert_eq!(
            Decimal::parse("0.00").unwrap().normalized(),
            Decimal::new(0, 3, 0).unwrap().normalized()
        );
    }

    #[test]
    fn signatures_distinguish_values() {
        let a = Value::Array(vec![Value::Int(1), Value::Null]);
        let b = Value::Array(vec![Value::Int(1), Value::Int(0)]);
        assert_ne!(a.signature(), b.signature());
        assert_eq!(a.signature(), a.clone().signature());
    }

    #[test]
    fn compare_values_follows_sql_semantics() {
        use std::cmp::Ordering;
        // Cross-width numeric comparison.
        assert_eq!(
            compare_values(&Value::Byte(5), &Value::Long(5)),
            Some(Ordering::Equal)
        );
        assert_eq!(
            compare_values(
                &Value::Decimal(Decimal::parse("1.5").unwrap()),
                &Value::Double(2.0)
            ),
            Some(Ordering::Less)
        );
        // NULL makes the comparison unknown.
        assert_eq!(compare_values(&Value::Null, &Value::Int(1)), None);
        assert_eq!(compare_values(&Value::Int(1), &Value::Null), None);
        // Like kinds compare; unlike kinds do not.
        assert_eq!(
            compare_values(&Value::Str("a".into()), &Value::Str("b".into())),
            Some(Ordering::Less)
        );
        assert_eq!(
            compare_values(&Value::Date(1), &Value::Date(0)),
            Some(Ordering::Greater)
        );
        assert_eq!(
            compare_values(&Value::Str("1".into()), &Value::Int(1)),
            None
        );
    }

    #[test]
    fn natural_type_of_nested_values() {
        let v = Value::Struct(vec![
            ("a".into(), Value::Int(1)),
            ("b".into(), Value::Str("x".into())),
        ]);
        let t = v.natural_type().unwrap();
        assert_eq!(t.sql_name(), "STRUCT<a:INT,b:STRING>");
        assert_eq!(Value::Null.natural_type(), None);
    }
}
