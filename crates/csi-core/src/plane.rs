//! Interaction planes and interaction kinds.
//!
//! The paper organizes CSI failures by the logical *plane* on which the
//! failing interaction happens (Section 2.2). The plane concepts originate in
//! the networking literature and map onto cloud systems as follows: the
//! control plane carries scheduling/coordination, the data plane carries data
//! operations, and the management plane carries configuration and monitoring.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Logical plane of a cross-system interaction (Section 2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Plane {
    /// Core control logic: scheduling, resource allocation, coordination,
    /// fault tolerance, recovery.
    Control,
    /// Data operations, in the form of tables, files, tuples, and streams.
    Data,
    /// System configuration and monitoring.
    Management,
}

impl Plane {
    /// All planes, in the order used by the paper's tables.
    pub const ALL: [Plane; 3] = [Plane::Control, Plane::Data, Plane::Management];
}

impl fmt::Display for Plane {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Plane::Control => write!(f, "Control"),
            Plane::Data => write!(f, "Data"),
            Plane::Management => write!(f, "Management"),
        }
    }
}

/// The concrete channel through which an upstream talks to a downstream
/// (the "Interaction" column of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InteractionKind {
    /// Warehouse tables (e.g. Hive tables).
    DataTables,
    /// Files or file systems (e.g. HDFS).
    DataFiles,
    /// Streaming topics and offsets (e.g. Kafka).
    DataStreaming,
    /// Key-value store operations (e.g. HBase).
    DataKeyValue,
    /// Resource management (e.g. YARN container allocation).
    ControlResources,
    /// Delegated computation (e.g. Hive-on-Spark).
    ControlCompute,
}

impl InteractionKind {
    /// The plane on which this interaction channel natively operates.
    ///
    /// Note that a failure observed over a given channel can still manifest on
    /// a *different* plane; e.g. a Spark–Hive table interaction can fail on
    /// the management plane when Kerberos configuration is silently dropped
    /// (SPARK-10181). Table 1 classifies channels, Table 2 classifies failure
    /// planes; the two are related but not identical.
    pub fn native_plane(self) -> Plane {
        match self {
            InteractionKind::DataTables
            | InteractionKind::DataFiles
            | InteractionKind::DataStreaming
            | InteractionKind::DataKeyValue => Plane::Data,
            InteractionKind::ControlResources | InteractionKind::ControlCompute => Plane::Control,
        }
    }
}

impl fmt::Display for InteractionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            InteractionKind::DataTables => "Data (tables)",
            InteractionKind::DataFiles => "Data (files)",
            InteractionKind::DataStreaming => "Data (streaming)",
            InteractionKind::DataKeyValue => "Data (key-value store)",
            InteractionKind::ControlResources => "Control (resource management)",
            InteractionKind::ControlCompute => "Control (compute)",
        };
        f.write_str(s)
    }
}

/// One of the seven systems covered by the open-source study, plus the
/// CBS-era systems used in the comparison dataset (Section 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum SystemId {
    /// Apache Spark (data processing).
    Spark,
    /// Apache Hive (warehouse).
    Hive,
    /// Apache Hadoop YARN (resource management).
    Yarn,
    /// Apache Hadoop HDFS (distributed file system).
    Hdfs,
    /// Apache Flink (stream processing).
    Flink,
    /// Apache Kafka (log/stream broker).
    Kafka,
    /// Apache HBase (key-value store).
    HBase,
    /// Hadoop MapReduce (CBS comparison only).
    MapReduce,
    /// Apache Cassandra (CBS comparison only).
    Cassandra,
    /// Apache ZooKeeper (CBS comparison only).
    ZooKeeper,
    /// Apache Flume (CBS comparison only).
    Flume,
}

impl fmt::Display for SystemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SystemId::Spark => "Spark",
            SystemId::Hive => "Hive",
            SystemId::Yarn => "YARN",
            SystemId::Hdfs => "HDFS",
            SystemId::Flink => "Flink",
            SystemId::Kafka => "Kafka",
            SystemId::HBase => "HBase",
            SystemId::MapReduce => "MapReduce",
            SystemId::Cassandra => "Cassandra",
            SystemId::ZooKeeper => "ZooKeeper",
            SystemId::Flume => "Flume",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_planes_match_channel_families() {
        assert_eq!(InteractionKind::DataTables.native_plane(), Plane::Data);
        assert_eq!(InteractionKind::DataFiles.native_plane(), Plane::Data);
        assert_eq!(InteractionKind::DataStreaming.native_plane(), Plane::Data);
        assert_eq!(InteractionKind::DataKeyValue.native_plane(), Plane::Data);
        assert_eq!(
            InteractionKind::ControlResources.native_plane(),
            Plane::Control
        );
        assert_eq!(
            InteractionKind::ControlCompute.native_plane(),
            Plane::Control
        );
    }

    #[test]
    fn plane_display_is_stable() {
        let names: Vec<String> = Plane::ALL.iter().map(|p| p.to_string()).collect();
        assert_eq!(names, ["Control", "Data", "Management"]);
    }

    #[test]
    fn plane_serde_round_trip() {
        for p in Plane::ALL {
            let json = serde_json::to_string(&p).unwrap();
            let back: Plane = serde_json::from_str(&json).unwrap();
            assert_eq!(p, back);
        }
    }
}
