//! Core library for studying and testing cross-system interaction (CSI) failures.
//!
//! This crate is the reusable heart of the reproduction of *"Fail through the
//! Cracks: Cross-System Interaction Failures in Modern Cloud Systems"*
//! (EuroSys '23). It provides:
//!
//! - the paper's failure **taxonomy** ([`plane`], [`taxonomy`]): interaction
//!   planes, symptoms, discrepancy patterns, and fix patterns;
//! - a cross-system **value model** ([`value`]) with a rich SQL-style type
//!   system used as the lingua franca of the differential testing harness;
//! - the three **test oracles** of Section 8 ([`oracle`]): write–read, error
//!   handling, and differential;
//! - **discrepancy reports** ([`report`]) mirroring the artifact's
//!   `*failed.json` output;
//! - a deterministic **discrete-event simulator** ([`sim`]) used to reproduce
//!   timing-sensitive control-plane failures such as FLINK-12342;
//! - an **online CSI failure detector** ([`detect`]) that consumes boundary
//!   crossings as a stream and emits typed detections, cross-checked
//!   against the offline §9 oracle;
//! - **coverage signatures** ([`coverage`]) distilled from interaction
//!   traces, the feedback signal of the coverage-guided campaign mode;
//! - a provenance-tracking **configuration plane** ([`config`]) that makes
//!   cross-system configuration merges and overrides observable;
//! - a small **SQL frontend** ([`sql`]) shared by the simulated systems, with
//!   per-system dialect hooks;
//! - a capturable **diagnostic sink** ([`diag`]) so oracles can observe
//!   warnings emitted by either side of an interaction;
//! - **machine-checkable data contracts** ([`spec`]) with breaking-change
//!   diffing, and a **configuration audit** ([`audit`]) over the
//!   provenance-tracked config plane — the Section 10 directions
//!   implemented as reusable tools.
//!
//! The simulated systems (`minispark`, `minihive`, `minihdfs`, `miniyarn`,
//! `minikafka`, `miniflink`) build on these primitives; the `csi-test` crate
//! composes them into the Spark–Hive cross-testing tool of Section 8 and the
//! `csi-study` crate encodes the 120-case failure dataset of Sections 3–7.

pub mod audit;
pub mod boundary;
pub mod column;
pub mod config;
pub mod coverage;
pub mod detect;
pub mod diag;
pub mod error;
pub mod fault;
pub mod intern;
pub mod oracle;
pub mod plane;
pub mod report;
pub mod sim;
pub mod spec;
pub mod sql;
pub mod taxonomy;
pub mod value;

pub use column::{ColumnValues, Validity, ValueColumn};
pub use error::{ErrorKind, InteractionError};
pub use plane::{InteractionKind, Plane};
pub use value::{DataType, Decimal, StructField, Value};
