//! Machine-checkable cross-system data specifications.
//!
//! Section 10 ("Rethinking data/API specifications") argues that many of
//! the studied CSI failures "can potentially be addressed with
//! comprehensive, machine-checkable data/API specifications". This module
//! is that tool: a [`DataContract`] declares, for one writer/reader pair
//! and one storage format, which logical types must round-trip, which are
//! *known lossy* (with the documented conversion), and which are
//! unsupported. A checker then compares an actual observation against the
//! contract and reports violations — turning the paper's implicit
//! conventions (Table 6: "unspoken convention", "undefined values") into
//! explicit, diffable artifacts.

use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What a contract says about one logical type on one channel.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TypeRule {
    /// Values must round-trip exactly (canonical equality).
    Exact,
    /// Values round-trip through a documented, lossy-but-defined
    /// conversion (e.g. `BYTE` stored as `INT`); the payload names it.
    Converts {
        /// The documented conversion, e.g. `"widened to INT"`.
        to: String,
    },
    /// Writes of this type must be rejected up front.
    Unsupported,
}

impl fmt::Display for TypeRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeRule::Exact => write!(f, "exact round-trip"),
            TypeRule::Converts { to } => write!(f, "converts ({to})"),
            TypeRule::Unsupported => write!(f, "unsupported (must reject)"),
        }
    }
}

/// A declared contract for one (writer, reader, format) channel.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataContract {
    /// The writing system/interface, e.g. `"DataFrame"`.
    pub writer: String,
    /// The reading system/interface, e.g. `"HiveQL"`.
    pub reader: String,
    /// The storage format, e.g. `"AVRO"`.
    pub format: String,
    /// Per-type rules. Types not listed are *unspecified* — exactly the
    /// gap the paper says today's practice leaves open.
    pub rules: Vec<(DataType, TypeRule)>,
}

impl DataContract {
    /// Creates an empty contract for a channel.
    pub fn new(
        writer: impl Into<String>,
        reader: impl Into<String>,
        format: impl Into<String>,
    ) -> DataContract {
        DataContract {
            writer: writer.into(),
            reader: reader.into(),
            format: format.into(),
            rules: Vec::new(),
        }
    }

    /// Declares a rule for a type (builder style).
    pub fn rule(mut self, ty: DataType, rule: TypeRule) -> DataContract {
        self.rules.push((ty, rule));
        self
    }

    /// Looks up the rule covering a type, if declared.
    pub fn rule_for(&self, ty: &DataType) -> Option<&TypeRule> {
        self.rules.iter().find(|(t, _)| t == ty).map(|(_, r)| r)
    }
}

/// One observed write/read outcome to check against a contract.
#[derive(Debug, Clone, PartialEq)]
pub enum ChannelOutcome {
    /// The write was rejected.
    WriteRejected,
    /// Written and read back; the payload is the read value.
    ReadBack(Value),
    /// Written, but the read failed.
    ReadFailed,
}

/// A contract violation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecViolation {
    /// The channel, rendered.
    pub channel: String,
    /// The type under test.
    pub data_type: DataType,
    /// The declared rule.
    pub rule: TypeRule,
    /// What happened instead.
    pub observed: String,
}

impl fmt::Display for SpecViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} declared '{}' but observed {}",
            self.channel,
            self.data_type.sql_name(),
            self.rule,
            self.observed
        )
    }
}

/// Checks one observation against a contract.
///
/// Returns `Ok(())` when the outcome satisfies the declared rule,
/// `Err(SpecViolation)` when it does not, and `Ok(())` for unspecified
/// types (an unspecified type cannot be *violated*, only uncovered — use
/// [`coverage_gaps`] to audit that).
pub fn check(
    contract: &DataContract,
    ty: &DataType,
    written: &Value,
    outcome: &ChannelOutcome,
) -> Result<(), SpecViolation> {
    let channel = format!(
        "{}->{} via {}",
        contract.writer, contract.reader, contract.format
    );
    let Some(rule) = contract.rule_for(ty) else {
        return Ok(());
    };
    let violation = |observed: String| SpecViolation {
        channel: channel.clone(),
        data_type: ty.clone(),
        rule: rule.clone(),
        observed,
    };
    match (rule, outcome) {
        (TypeRule::Exact, ChannelOutcome::ReadBack(v)) => {
            if v.canonical_eq(written) {
                Ok(())
            } else {
                Err(violation(format!(
                    "value changed: wrote {}, read {}",
                    written.signature(),
                    v.signature()
                )))
            }
        }
        (TypeRule::Exact, ChannelOutcome::WriteRejected) => Err(violation("write rejected".into())),
        (TypeRule::Exact, ChannelOutcome::ReadFailed) => Err(violation("read failed".into())),
        // A documented conversion allows value change but not failure.
        (TypeRule::Converts { .. }, ChannelOutcome::ReadBack(_)) => Ok(()),
        (TypeRule::Converts { .. }, ChannelOutcome::WriteRejected) => {
            Err(violation("write rejected".into()))
        }
        (TypeRule::Converts { .. }, ChannelOutcome::ReadFailed) => Err(violation(
            "read failed despite documented conversion".into(),
        )),
        (TypeRule::Unsupported, ChannelOutcome::WriteRejected) => Ok(()),
        (TypeRule::Unsupported, other) => Err(violation(format!(
            "accepted an unsupported type: {other:?}"
        ))),
    }
}

/// Types exercised by a test campaign that the contract does not cover.
pub fn coverage_gaps<'a>(
    contract: &DataContract,
    exercised: impl Iterator<Item = &'a DataType>,
) -> Vec<DataType> {
    let mut gaps = Vec::new();
    for ty in exercised {
        if contract.rule_for(ty).is_none() && !gaps.contains(ty) {
            gaps.push(ty.clone());
        }
    }
    gaps
}

/// A semantic change between two versions of a channel contract —
/// the unit of the paper's "change analysis for cross-system interactions"
/// direction (Section 10): interface changes during software evolution
/// introduce many CSI issues, and a contract diff makes them reviewable.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ContractChange {
    /// A type gained a rule it did not have (new coverage).
    Added {
        /// The type.
        ty: DataType,
        /// The new rule.
        rule: TypeRule,
    },
    /// A type lost its rule (coverage regression).
    Removed {
        /// The type.
        ty: DataType,
        /// The rule that disappeared.
        rule: TypeRule,
    },
    /// A type's rule changed — the change class that breaks co-deployed
    /// upstreams (e.g. `Exact` becoming `Converts`).
    Changed {
        /// The type.
        ty: DataType,
        /// Before.
        from: TypeRule,
        /// After.
        to: TypeRule,
    },
}

impl ContractChange {
    /// Whether this change can break an upstream written against the old
    /// contract (rule weakened or removed).
    pub fn is_breaking(&self) -> bool {
        match self {
            ContractChange::Added { .. } => false,
            ContractChange::Removed { .. } => true,
            ContractChange::Changed { from, to, .. } => match (from, to) {
                // Tightening from a conversion to exactness is safe;
                // anything else changes observable behavior.
                (TypeRule::Converts { .. }, TypeRule::Exact) => false,
                _ => true,
            },
        }
    }
}

/// Diffs two versions of a channel contract.
pub fn diff_contracts(old: &DataContract, new: &DataContract) -> Vec<ContractChange> {
    let mut changes = Vec::new();
    for (ty, old_rule) in &old.rules {
        match new.rule_for(ty) {
            None => changes.push(ContractChange::Removed {
                ty: ty.clone(),
                rule: old_rule.clone(),
            }),
            Some(new_rule) if new_rule != old_rule => changes.push(ContractChange::Changed {
                ty: ty.clone(),
                from: old_rule.clone(),
                to: new_rule.clone(),
            }),
            Some(_) => {}
        }
    }
    for (ty, new_rule) in &new.rules {
        if old.rule_for(ty).is_none() {
            changes.push(ContractChange::Added {
                ty: ty.clone(),
                rule: new_rule.clone(),
            });
        }
    }
    changes
}

/// The contract today's deployments *implicitly* assume: everything
/// round-trips exactly. Checking real systems against it yields exactly
/// the discrepancy list of Section 8.
pub fn naive_contract(writer: &str, reader: &str, format: &str) -> DataContract {
    let mut c = DataContract::new(writer, reader, format);
    for ty in DataType::primitives() {
        c.rules.push((ty, TypeRule::Exact));
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn contract() -> DataContract {
        DataContract::new("DataFrame", "HiveQL", "AVRO")
            .rule(DataType::Int, TypeRule::Exact)
            .rule(
                DataType::Byte,
                TypeRule::Converts {
                    to: "widened to INT".into(),
                },
            )
            .rule(DataType::Interval, TypeRule::Unsupported)
    }

    #[test]
    fn exact_rule_accepts_round_trips_and_rejects_changes() {
        let c = contract();
        assert!(check(
            &c,
            &DataType::Int,
            &Value::Int(5),
            &ChannelOutcome::ReadBack(Value::Int(5))
        )
        .is_ok());
        let err = check(
            &c,
            &DataType::Int,
            &Value::Int(5),
            &ChannelOutcome::ReadBack(Value::Long(5)),
        )
        .unwrap_err();
        assert!(err.to_string().contains("value changed"));
        assert!(check(
            &c,
            &DataType::Int,
            &Value::Int(5),
            &ChannelOutcome::ReadFailed
        )
        .is_err());
    }

    #[test]
    fn converts_rule_allows_documented_change_but_not_failure() {
        let c = contract();
        assert!(check(
            &c,
            &DataType::Byte,
            &Value::Byte(5),
            &ChannelOutcome::ReadBack(Value::Int(5))
        )
        .is_ok());
        // SPARK-39075 as a spec violation: the documented conversion
        // exists on write but the read fails.
        let err = check(
            &c,
            &DataType::Byte,
            &Value::Byte(5),
            &ChannelOutcome::ReadFailed,
        )
        .unwrap_err();
        assert!(err.to_string().contains("documented conversion"));
    }

    #[test]
    fn unsupported_rule_requires_rejection() {
        let c = contract();
        let iv = Value::Interval {
            months: 1,
            micros: 0,
        };
        assert!(check(&c, &DataType::Interval, &iv, &ChannelOutcome::WriteRejected).is_ok());
        assert!(check(
            &c,
            &DataType::Interval,
            &iv,
            &ChannelOutcome::ReadBack(Value::Str("1 month".into()))
        )
        .is_err());
    }

    #[test]
    fn unspecified_types_pass_but_show_as_gaps() {
        let c = contract();
        assert!(check(
            &c,
            &DataType::Double,
            &Value::Double(1.0),
            &ChannelOutcome::ReadFailed
        )
        .is_ok());
        let exercised = [DataType::Double, DataType::Int, DataType::Double];
        let gaps = coverage_gaps(&c, exercised.iter());
        assert_eq!(gaps, vec![DataType::Double]);
    }

    #[test]
    fn naive_contract_covers_all_primitives_exactly() {
        let c = naive_contract("SparkSQL", "SparkSQL", "ORC");
        assert_eq!(c.rules.len(), DataType::primitives().len());
        assert!(matches!(
            c.rule_for(&DataType::Interval),
            Some(TypeRule::Exact)
        ));
    }

    #[test]
    fn contract_diff_classifies_breaking_changes() {
        let v1 = DataContract::new("Spark", "Hive", "ORC")
            .rule(DataType::Int, TypeRule::Exact)
            .rule(DataType::Byte, TypeRule::Exact)
            .rule(
                DataType::Date,
                TypeRule::Converts {
                    to: "epoch days".into(),
                },
            );
        let v2 = DataContract::new("Spark", "Hive", "ORC")
            .rule(DataType::Int, TypeRule::Exact)
            // SPARK-21150-shaped evolution: a code change weakens a rule.
            .rule(
                DataType::Byte,
                TypeRule::Converts {
                    to: "widened".into(),
                },
            )
            // Tightening: the conversion becomes exact.
            .rule(DataType::Date, TypeRule::Exact)
            // New coverage.
            .rule(DataType::Binary, TypeRule::Exact);
        let changes = diff_contracts(&v1, &v2);
        assert_eq!(changes.len(), 3);
        let breaking: Vec<&ContractChange> = changes.iter().filter(|c| c.is_breaking()).collect();
        assert_eq!(breaking.len(), 1);
        assert!(matches!(
            breaking[0],
            ContractChange::Changed {
                ty: DataType::Byte,
                ..
            }
        ));
        // Removal is always breaking.
        let v3 = DataContract::new("Spark", "Hive", "ORC");
        assert!(diff_contracts(&v2, &v3).iter().all(|c| c.is_breaking()));
        // Identity diff is empty.
        assert!(diff_contracts(&v2, &v2).is_empty());
    }

    #[test]
    fn contract_serializes() {
        let c = contract();
        let json = serde_json::to_string(&c).unwrap();
        let back: DataContract = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
