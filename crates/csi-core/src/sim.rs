//! Deterministic discrete-event simulation kernel.
//!
//! Control-plane CSI failures are timing races: FLINK-12342 (Figure 1) only
//! manifests when YARN's allocation latency exceeds Flink's 500 ms heartbeat.
//! Reproducing such races on wall-clock time is flaky; this kernel provides a
//! virtual clock so the failures replay deterministically and the benchmark
//! harness can sweep latency parameters.
//!
//! The simulator is generic over a world state `S`. Events are closures that
//! receive `&mut S` and an [`Ops`] handle through which they schedule further
//! events. Events at equal timestamps fire in scheduling order (FIFO), which
//! keeps runs reproducible.
//!
//! # Examples
//!
//! ```
//! use csi_core::sim::Sim;
//!
//! let mut sim = Sim::new(0u32);
//! sim.schedule_in(10, |count, ops| {
//!     *count += 1;
//!     ops.schedule_in(5, |count, _| *count += 10);
//! });
//! sim.run();
//! assert_eq!(sim.state, 11);
//! assert_eq!(sim.now(), 15);
//! ```

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Virtual time, in milliseconds since simulation start.
pub type Millis = u64;

type Handler<S> = Box<dyn FnOnce(&mut S, &mut Ops<S>)>;

struct Scheduled<S> {
    at: Millis,
    seq: u64,
    handler: Handler<S>,
}

impl<S> PartialEq for Scheduled<S> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<S> Eq for Scheduled<S> {}
impl<S> PartialOrd for Scheduled<S> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<S> Ord for Scheduled<S> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// Scheduling operations available to an event handler while it runs.
pub struct Ops<S> {
    now: Millis,
    pending: Vec<(Millis, Handler<S>)>,
    stop: bool,
}

impl<S> Ops<S> {
    /// Current virtual time.
    pub fn now(&self) -> Millis {
        self.now
    }

    /// Schedules an event `delay` milliseconds from now.
    pub fn schedule_in(
        &mut self,
        delay: Millis,
        handler: impl FnOnce(&mut S, &mut Ops<S>) + 'static,
    ) {
        self.pending
            .push((self.now.saturating_add(delay), Box::new(handler)));
    }

    /// Schedules an event at an absolute virtual time (clamped to now).
    pub fn schedule_at(&mut self, at: Millis, handler: impl FnOnce(&mut S, &mut Ops<S>) + 'static) {
        self.pending.push((at.max(self.now), Box::new(handler)));
    }

    /// Requests that the simulation stop after the current event.
    pub fn stop(&mut self) {
        self.stop = true;
    }
}

/// A discrete-event simulation over world state `S`.
pub struct Sim<S> {
    /// The simulated world; freely inspectable between steps.
    pub state: S,
    now: Millis,
    seq: u64,
    queue: BinaryHeap<Reverse<Scheduled<S>>>,
    events_fired: u64,
    stopped: bool,
}

impl<S> Sim<S> {
    /// Creates a simulation at time zero with the given initial state.
    pub fn new(state: S) -> Sim<S> {
        Sim {
            state,
            now: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            events_fired: 0,
            stopped: false,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Millis {
        self.now
    }

    /// Total number of events fired so far.
    pub fn events_fired(&self) -> u64 {
        self.events_fired
    }

    /// Whether a handler requested a stop.
    pub fn is_stopped(&self) -> bool {
        self.stopped
    }

    /// Number of events still queued.
    pub fn pending_events(&self) -> usize {
        self.queue.len()
    }

    /// Schedules an event `delay` milliseconds from the current time.
    pub fn schedule_in(
        &mut self,
        delay: Millis,
        handler: impl FnOnce(&mut S, &mut Ops<S>) + 'static,
    ) {
        self.push(self.now.saturating_add(delay), Box::new(handler));
    }

    /// Schedules an event at an absolute virtual time (clamped to now).
    pub fn schedule_at(&mut self, at: Millis, handler: impl FnOnce(&mut S, &mut Ops<S>) + 'static) {
        self.push(at.max(self.now), Box::new(handler));
    }

    fn push(&mut self, at: Millis, handler: Handler<S>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, handler }));
    }

    /// Fires the next event; returns `false` if the queue was empty or the
    /// simulation was stopped.
    pub fn step(&mut self) -> bool {
        if self.stopped {
            return false;
        }
        let Some(Reverse(next)) = self.queue.pop() else {
            return false;
        };
        self.now = next.at;
        let mut ops = Ops {
            now: self.now,
            pending: Vec::new(),
            stop: false,
        };
        (next.handler)(&mut self.state, &mut ops);
        self.events_fired += 1;
        for (at, handler) in ops.pending {
            self.push(at, handler);
        }
        if ops.stop {
            self.stopped = true;
        }
        true
    }

    /// Runs until the event queue is empty or a handler calls
    /// [`Ops::stop`]. Returns the final virtual time.
    ///
    /// # Panics
    ///
    /// Panics after `u64::MAX` events, which indicates a runaway schedule.
    pub fn run(&mut self) -> Millis {
        while self.step() {}
        self.now
    }

    /// Runs until virtual time reaches `deadline` (events at exactly
    /// `deadline` still fire), the queue drains, or a handler stops the run.
    /// The clock then advances to `deadline` even if the queue drained early.
    pub fn run_until(&mut self, deadline: Millis) -> Millis {
        loop {
            match self.queue.peek() {
                Some(Reverse(next)) if next.at <= deadline && !self.stopped => {
                    self.step();
                }
                _ => break,
            }
        }
        self.now = self.now.max(deadline);
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_fire_in_time_order() {
        let mut sim = Sim::new(Vec::<u32>::new());
        sim.schedule_in(30, |v, _| v.push(3));
        sim.schedule_in(10, |v, _| v.push(1));
        sim.schedule_in(20, |v, _| v.push(2));
        sim.run();
        assert_eq!(sim.state, vec![1, 2, 3]);
        assert_eq!(sim.now(), 30);
        assert_eq!(sim.events_fired(), 3);
    }

    #[test]
    fn equal_timestamps_fire_fifo() {
        let mut sim = Sim::new(Vec::<u32>::new());
        for i in 0..10 {
            sim.schedule_in(5, move |v, _| v.push(i));
        }
        sim.run();
        assert_eq!(sim.state, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn handlers_can_schedule_recursively() {
        // A periodic tick that reschedules itself five times.
        fn tick(count: &mut u32, ops: &mut Ops<u32>) {
            *count += 1;
            if *count < 5 {
                ops.schedule_in(100, tick);
            }
        }
        let mut sim = Sim::new(0u32);
        sim.schedule_in(100, tick);
        sim.run();
        assert_eq!(sim.state, 5);
        assert_eq!(sim.now(), 500);
    }

    #[test]
    fn stop_halts_the_run() {
        let mut sim = Sim::new(0u32);
        sim.schedule_in(1, |s, ops| {
            *s += 1;
            ops.stop();
        });
        sim.schedule_in(2, |s, _| *s += 100);
        sim.run();
        assert_eq!(sim.state, 1);
        assert!(sim.is_stopped());
        assert_eq!(sim.pending_events(), 1);
    }

    #[test]
    fn run_until_respects_deadline() {
        let mut sim = Sim::new(Vec::<u64>::new());
        for t in [10u64, 20, 30, 40] {
            sim.schedule_in(t, move |v, _| v.push(t));
        }
        sim.run_until(25);
        assert_eq!(sim.state, vec![10, 20]);
        assert_eq!(sim.pending_events(), 2);
        sim.run_until(100);
        assert_eq!(sim.state, vec![10, 20, 30, 40]);
    }

    #[test]
    fn schedule_at_clamps_to_now() {
        let mut sim = Sim::new(Vec::<u64>::new());
        sim.schedule_in(50, |_, ops| {
            // Scheduling in the past clamps to "now" rather than reordering
            // history.
            ops.schedule_at(10, |v, ops| v.push(ops.now()));
        });
        sim.run();
        assert_eq!(sim.state, vec![50]);
    }
}
