//! Provenance-tracking configuration plane.
//!
//! Section 6.2.1 finds that most configuration-related CSI failures are not
//! erroneous values but *coherence* failures: values silently ignored,
//! unexpectedly overridden, or lost while merging configuration from several
//! systems (Table 7). The paper's implication is that "traceability of how
//! configuration values are applied across systems could be useful" — this
//! module implements exactly that.
//!
//! A [`ConfigMap`] stores string key/value pairs together with the full
//! history of how each key reached its current value ([`Provenance`]). Merges
//! take an explicit [`MergePolicy`] and record overrides and ignores, so the
//! silent-override pattern of SPARK-16901 becomes *observable* rather than
//! silent — without changing the (faithfully discrepant) behavior itself.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// What happened to a key during one configuration operation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConfigAction {
    /// The key was set to a value by a source.
    Set {
        /// New value.
        value: String,
    },
    /// An existing value was overridden by a merge.
    Overridden {
        /// Value before the merge.
        old: String,
        /// Value after the merge.
        new: String,
    },
    /// An incoming value was ignored because the existing one won.
    Ignored {
        /// The incoming value that was dropped.
        incoming: String,
        /// The value that was kept.
        kept: String,
    },
    /// The key was explicitly removed.
    Removed {
        /// Value at removal time.
        value: String,
    },
}

/// One step in the history of a configuration key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Provenance {
    /// Which system or file performed the operation (e.g. "hive-site.xml",
    /// "minispark session", "hadoop defaults").
    pub source: String,
    /// What happened.
    pub action: ConfigAction,
}

/// Conflict resolution when merging two configuration maps.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MergePolicy {
    /// Incoming values win; existing values are recorded as overridden.
    /// This is the (failure-prone) behavior of naive config merging.
    TheirsWin,
    /// Existing values win; incoming values are recorded as ignored.
    OursWin,
}

#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
struct Entry {
    value: Option<String>,
    history: Vec<Provenance>,
}

/// A configuration map with per-key provenance.
///
/// # Examples
///
/// ```
/// use csi_core::config::{ConfigMap, MergePolicy};
///
/// let mut spark = ConfigMap::new("spark");
/// spark.set("hive.metastore.uris", "thrift://a:9083", "spark-defaults.conf");
///
/// let mut hive = ConfigMap::new("hive");
/// hive.set("hive.metastore.uris", "thrift://b:9083", "hive-site.xml");
///
/// // Spark merges Hive's configuration; Spark's value silently wins.
/// let report = spark.merge(&hive, MergePolicy::OursWin, "merge hive-site");
/// assert_eq!(report.ignored, vec!["hive.metastore.uris".to_string()]);
/// assert_eq!(spark.get("hive.metastore.uris"), Some("thrift://a:9083"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigMap {
    name: String,
    entries: BTreeMap<String, Entry>,
}

/// Summary of a merge: which keys were overridden or ignored.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MergeReport {
    /// Keys whose existing values were replaced.
    pub overridden: Vec<String>,
    /// Keys whose incoming values were dropped.
    pub ignored: Vec<String>,
    /// Keys that were newly added.
    pub added: Vec<String>,
}

impl ConfigMap {
    /// Creates an empty map owned by `name` (used in provenance records).
    pub fn new(name: impl Into<String>) -> ConfigMap {
        ConfigMap {
            name: name.into(),
            entries: BTreeMap::new(),
        }
    }

    /// The owning system's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Sets a key, recording the source.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>, source: &str) {
        let value = value.into();
        let e = self.entries.entry(key.into()).or_default();
        e.history.push(Provenance {
            source: source.to_string(),
            action: ConfigAction::Set {
                value: value.clone(),
            },
        });
        e.value = Some(value);
    }

    /// Removes a key, recording the removal; returns the old value.
    pub fn remove(&mut self, key: &str, source: &str) -> Option<String> {
        let e = self.entries.get_mut(key)?;
        let old = e.value.take()?;
        e.history.push(Provenance {
            source: source.to_string(),
            action: ConfigAction::Removed { value: old.clone() },
        });
        Some(old)
    }

    /// Gets the current value of a key.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key)?.value.as_deref()
    }

    /// Gets a value, falling back to a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Parses a key as a boolean (`true`/`false`, case-insensitive).
    pub fn get_bool(&self, key: &str) -> Option<Result<bool, ConfigValueError>> {
        self.get(key)
            .map(|v| match v.to_ascii_lowercase().as_str() {
                "true" => Ok(true),
                "false" => Ok(false),
                _ => Err(ConfigValueError {
                    key: key.to_string(),
                    value: v.to_string(),
                    expected: "boolean",
                }),
            })
    }

    /// Parses a key as an integer.
    pub fn get_i64(&self, key: &str) -> Option<Result<i64, ConfigValueError>> {
        self.get(key).map(|v| {
            v.trim().parse().map_err(|_| ConfigValueError {
                key: key.to_string(),
                value: v.to_string(),
                expected: "integer",
            })
        })
    }

    /// Parses a duration with optional unit suffix (`ms`, `s`, `m`, `h`);
    /// a bare number is interpreted as milliseconds.
    pub fn get_duration_ms(&self, key: &str) -> Option<Result<u64, ConfigValueError>> {
        self.get(key).map(|v| {
            let t = v.trim();
            let (num, mult) = if let Some(n) = t.strip_suffix("ms") {
                (n, 1u64)
            } else if let Some(n) = t.strip_suffix('s') {
                (n, 1000)
            } else if let Some(n) = t.strip_suffix('m') {
                (n, 60_000)
            } else if let Some(n) = t.strip_suffix('h') {
                (n, 3_600_000)
            } else {
                (t, 1)
            };
            num.trim()
                .parse::<u64>()
                .map(|n| n * mult)
                .map_err(|_| ConfigValueError {
                    key: key.to_string(),
                    value: v.to_string(),
                    expected: "duration",
                })
        })
    }

    /// All current key/value pairs, sorted by key.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &str)> {
        self.entries
            .iter()
            .filter_map(|(k, e)| Some((k.as_str(), e.value.as_deref()?)))
    }

    /// Number of keys with a current value.
    pub fn len(&self) -> usize {
        self.entries.values().filter(|e| e.value.is_some()).count()
    }

    /// Whether no key currently has a value.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The full history of one key.
    pub fn provenance(&self, key: &str) -> &[Provenance] {
        self.entries
            .get(key)
            .map(|e| e.history.as_slice())
            .unwrap_or(&[])
    }

    /// Merges another map into this one under a policy, recording every
    /// override and ignore in both the provenance and the returned report.
    pub fn merge(&mut self, other: &ConfigMap, policy: MergePolicy, source: &str) -> MergeReport {
        let mut report = MergeReport::default();
        for (key, incoming) in other.iter() {
            match self.get(key).map(str::to_string) {
                None => {
                    self.set(key, incoming, source);
                    report.added.push(key.to_string());
                }
                Some(existing) if existing == incoming => {}
                Some(existing) => match policy {
                    MergePolicy::TheirsWin => {
                        let e = self.entries.get_mut(key).expect("key exists");
                        e.history.push(Provenance {
                            source: source.to_string(),
                            action: ConfigAction::Overridden {
                                old: existing,
                                new: incoming.to_string(),
                            },
                        });
                        e.value = Some(incoming.to_string());
                        report.overridden.push(key.to_string());
                    }
                    MergePolicy::OursWin => {
                        let e = self.entries.get_mut(key).expect("key exists");
                        e.history.push(Provenance {
                            source: source.to_string(),
                            action: ConfigAction::Ignored {
                                incoming: incoming.to_string(),
                                kept: existing,
                            },
                        });
                        report.ignored.push(key.to_string());
                    }
                },
            }
        }
        report
    }

    /// Renders a human-readable trace of how `key` got its value — the
    /// cross-system traceability tool the paper calls for.
    pub fn trace(&self, key: &str) -> String {
        let mut out = format!("{} / {key}:\n", self.name);
        let history = self.provenance(key);
        if history.is_empty() {
            out.push_str("  (never set)\n");
            return out;
        }
        for p in history {
            let line = match &p.action {
                ConfigAction::Set { value } => format!("set to {value:?}"),
                ConfigAction::Overridden { old, new } => {
                    format!("OVERRIDDEN {old:?} -> {new:?}")
                }
                ConfigAction::Ignored { incoming, kept } => {
                    format!("IGNORED incoming {incoming:?}, kept {kept:?}")
                }
                ConfigAction::Removed { value } => format!("removed (was {value:?})"),
            };
            out.push_str(&format!("  [{}] {line}\n", p.source));
        }
        out
    }
}

/// A configuration value that failed to parse as the requested type.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigValueError {
    /// The key.
    pub key: String,
    /// The raw value.
    pub value: String,
    /// What the caller expected.
    pub expected: &'static str,
}

impl fmt::Display for ConfigValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "config {}={:?} is not a valid {}",
            self.key, self.value, self.expected
        )
    }
}

impl std::error::Error for ConfigValueError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_get_and_typed_getters() {
        let mut c = ConfigMap::new("t");
        c.set("a.flag", "TRUE", "test");
        c.set("a.n", "42", "test");
        c.set("a.dur", "2s", "test");
        c.set("a.bad", "wat", "test");
        assert_eq!(c.get_bool("a.flag"), Some(Ok(true)));
        assert_eq!(c.get_i64("a.n"), Some(Ok(42)));
        assert_eq!(c.get_duration_ms("a.dur"), Some(Ok(2000)));
        assert!(c.get_bool("a.bad").unwrap().is_err());
        assert_eq!(c.get_bool("missing"), None);
    }

    #[test]
    fn duration_units() {
        let mut c = ConfigMap::new("t");
        for (raw, ms) in [
            ("500", 500u64),
            ("500ms", 500),
            ("3m", 180_000),
            ("1h", 3_600_000),
        ] {
            c.set("k", raw, "test");
            assert_eq!(c.get_duration_ms("k"), Some(Ok(ms)), "{raw}");
        }
    }

    #[test]
    fn merge_theirs_win_records_override() {
        let mut a = ConfigMap::new("a");
        a.set("k", "1", "init");
        let mut b = ConfigMap::new("b");
        b.set("k", "2", "init");
        b.set("only-b", "x", "init");
        let report = a.merge(&b, MergePolicy::TheirsWin, "merge-b");
        assert_eq!(a.get("k"), Some("2"));
        assert_eq!(a.get("only-b"), Some("x"));
        assert_eq!(report.overridden, vec!["k"]);
        assert_eq!(report.added, vec!["only-b"]);
        assert!(matches!(
            a.provenance("k").last().unwrap().action,
            ConfigAction::Overridden { .. }
        ));
    }

    #[test]
    fn merge_ours_win_records_ignore() {
        let mut a = ConfigMap::new("a");
        a.set("k", "1", "init");
        let mut b = ConfigMap::new("b");
        b.set("k", "2", "init");
        let report = a.merge(&b, MergePolicy::OursWin, "merge-b");
        assert_eq!(a.get("k"), Some("1"));
        assert_eq!(report.ignored, vec!["k"]);
        let trace = a.trace("k");
        assert!(trace.contains("IGNORED"), "{trace}");
    }

    #[test]
    fn merge_equal_values_is_silent() {
        let mut a = ConfigMap::new("a");
        a.set("k", "same", "init");
        let mut b = ConfigMap::new("b");
        b.set("k", "same", "init");
        let report = a.merge(&b, MergePolicy::TheirsWin, "m");
        assert!(report.overridden.is_empty() && report.ignored.is_empty());
        assert_eq!(a.provenance("k").len(), 1);
    }

    #[test]
    fn remove_keeps_history() {
        let mut c = ConfigMap::new("t");
        c.set("k", "v", "s1");
        assert_eq!(c.remove("k", "s2"), Some("v".to_string()));
        assert_eq!(c.get("k"), None);
        assert_eq!(c.provenance("k").len(), 2);
        assert_eq!(c.remove("k", "s3"), None);
        assert!(c.is_empty());
    }

    #[test]
    fn trace_of_unset_key() {
        let c = ConfigMap::new("t");
        assert!(c.trace("nope").contains("never set"));
    }
}
