//! The instrumented cross-system boundary layer.
//!
//! Every interaction the paper studies is a *crossing*: one system's call
//! entering another system through a Table 1 channel. This module gives
//! that crossing a single choke point. A [`BoundaryCall`] describes the
//! crossing (channel, endpoints, plane, operation, payload digest); a
//! [`CrossingContext`] owns the [`InjectionRegistry`] hook, a virtual
//! latency clock, and an append-only [`InteractionTrace`] sink. Connector
//! layers call [`CrossingContext::cross`] at the entry of every
//! interaction-facing operation instead of hand-rolling the
//! interpose-then-materialize pattern, so fault injection and tracing
//! happen in exactly one place — and wiring a new channel is one
//! [`FaultPoint`] impl plus `cross(...)` calls.
//!
//! Tracing is side-effect-free: a disabled context drives the registry
//! identically (same counters, same fired faults, same virtual delay) and
//! merely skips the sink, so trace-disabled campaigns reproduce traced
//! campaigns byte-for-byte modulo the trace fields. Payload digests mask
//! runs of ASCII digits before hashing, so generated artifact names
//! (`part-00017.csv`) digest identically regardless of how deployments
//! were pooled or recycled — the property that keeps traces byte-identical
//! between serial and sharded runs.

use crate::fault::{
    Channel, FaultKind, FaultPlan, FaultPoint, FaultSpec, InjectedFault, InjectionRegistry,
    Interception,
};
use crate::plane::{InteractionKind, Plane, SystemId};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// One cross-system call descriptor: everything Table 1 records about an
/// interaction, as observed at the boundary.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BoundaryCall {
    /// The interaction channel being crossed.
    pub channel: Channel,
    /// The system issuing the call.
    pub upstream: SystemId,
    /// The system serving the call.
    pub downstream: SystemId,
    /// The interaction kind (Table 1's "Interaction" column).
    pub kind: InteractionKind,
    /// The plane the crossing runs on (§2.2).
    pub plane: Plane,
    /// The operation name at the downstream system's interface.
    pub op: String,
    /// Digit-masked FNV-1a digest of the payload summary (0 when none).
    pub payload_digest: u64,
}

impl BoundaryCall {
    /// Describes a crossing on `channel` with that channel's canonical
    /// endpoints and interaction kind; refine with the builder methods.
    pub fn new(channel: Channel, op: &str) -> BoundaryCall {
        let (upstream, downstream, kind) = match channel {
            Channel::Metastore => (SystemId::Spark, SystemId::Hive, InteractionKind::DataTables),
            Channel::Hdfs => (SystemId::Spark, SystemId::Hdfs, InteractionKind::DataFiles),
            Channel::Kafka => (
                SystemId::Spark,
                SystemId::Kafka,
                InteractionKind::DataStreaming,
            ),
            Channel::Yarn => (
                SystemId::Flink,
                SystemId::Yarn,
                InteractionKind::ControlResources,
            ),
            Channel::HBase => (
                SystemId::Hive,
                SystemId::HBase,
                InteractionKind::DataKeyValue,
            ),
        };
        BoundaryCall {
            channel,
            upstream,
            downstream,
            kind,
            plane: kind.native_plane(),
            op: op.to_string(),
            payload_digest: 0,
        }
    }

    /// Attaches a payload summary (a path, a table name, a topic/partition
    /// label) as a digit-masked digest.
    pub fn with_payload(mut self, payload: &str) -> BoundaryCall {
        self.payload_digest = digest_payload(payload);
        self
    }

    /// Overrides the upstream (calling) system.
    pub fn from_upstream(mut self, upstream: SystemId) -> BoundaryCall {
        self.upstream = upstream;
        self
    }

    /// Overrides the plane (e.g. [`Plane::Management`] for configuration
    /// forwarding or metrics crossings).
    pub fn with_plane(mut self, plane: Plane) -> BoundaryCall {
        self.plane = plane;
        self
    }
}

/// Digit-masked FNV-1a 64-bit digest: every maximal run of ASCII digits
/// collapses to a single `#` before hashing, so counters embedded in
/// generated names (`part-00017.csv`) never make two equivalent payloads
/// digest differently across deployment pooling or recycling.
fn digest_payload(payload: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    let mut in_digits = false;
    for byte in payload.bytes() {
        let masked = if byte.is_ascii_digit() {
            if in_digits {
                continue;
            }
            in_digits = true;
            b'#'
        } else {
            in_digits = false;
            byte
        };
        hash ^= u64::from(masked);
        hash = hash.wrapping_mul(0x0100_0000_01b3);
    }
    hash
}

/// What happened at one crossing.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum CrossingOutcome {
    /// The call crossed cleanly.
    Clean,
    /// An armed fault fired at the boundary (latency faults included —
    /// the call still proceeds, only slower).
    Faulted {
        /// The fault that fired.
        fault: InjectedFault,
    },
    /// An annotated decision point (e.g. which replica served a
    /// redundant read).
    Noted {
        /// The annotation.
        info: String,
    },
}

/// One recorded crossing: sequence number, virtual time, call, outcome.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Crossing {
    /// 0-based position in the observation's crossing sequence.
    pub seq: u64,
    /// Virtual time the crossing started at, in milliseconds.
    pub at_ms: u64,
    /// The call descriptor.
    pub call: BoundaryCall,
    /// What happened.
    pub outcome: CrossingOutcome,
}

impl Crossing {
    /// One-line rendering for compact trace summaries.
    pub fn compact(&self) -> String {
        let status = match &self.outcome {
            CrossingOutcome::Clean => "ok".to_string(),
            CrossingOutcome::Faulted { fault } => {
                format!("fault:{} ({})", fault.spec_id, fault.kind)
            }
            CrossingOutcome::Noted { info } => format!("note:{info}"),
        };
        format!(
            "#{} {}->{} {}:{} [{}] @{}ms {}",
            self.seq,
            self.call.upstream,
            self.call.downstream,
            self.call.channel,
            self.call.op,
            self.call.plane,
            self.at_ms,
            status
        )
    }
}

/// The append-only causal crossing sequence of one observation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InteractionTrace {
    /// The crossings, in causal order.
    pub crossings: Vec<Crossing>,
}

impl InteractionTrace {
    /// Number of recorded crossings.
    pub fn len(&self) -> usize {
        self.crossings.len()
    }

    /// Whether no crossing was recorded.
    pub fn is_empty(&self) -> bool {
        self.crossings.is_empty()
    }

    /// Crossing count per channel, in canonical channel order.
    pub fn channel_counts(&self) -> BTreeMap<String, usize> {
        let mut counts = BTreeMap::new();
        for crossing in &self.crossings {
            *counts.entry(crossing.call.channel.to_string()).or_insert(0) += 1;
        }
        counts
    }

    /// Compact one-line-per-crossing rendering.
    pub fn compact(&self) -> Vec<String> {
        self.crossings.iter().map(Crossing::compact).collect()
    }

    /// The *causal prefix* of the trace: the ordered crossing tuples from
    /// the start up to and including the first faulted crossing (the whole
    /// trace when nothing faulted). Two discrepancies that share this
    /// prefix failed through the same causal path — the co-failure
    /// clustering key of compound fault campaigns (the flakiness study's
    /// shared-root-cause grouping, computed on `InteractionTrace`s).
    ///
    /// Tuples are `channel|op|plane|status`, deliberately free of sequence
    /// numbers, timestamps, and payload digests so pooling, recycling, and
    /// table-name differences never split a cluster.
    pub fn causal_prefix(&self) -> Vec<String> {
        let mut prefix = Vec::new();
        for crossing in &self.crossings {
            let status = match &crossing.outcome {
                CrossingOutcome::Clean => "ok".to_string(),
                CrossingOutcome::Faulted { fault } => format!("fault:{}", fault.kind),
                CrossingOutcome::Noted { info } => format!("note:{info}"),
            };
            prefix.push(format!(
                "{}|{}|{}|{}",
                crossing.call.channel, crossing.call.op, crossing.call.plane, status
            ));
            if matches!(crossing.outcome, CrossingOutcome::Faulted { .. }) {
                break;
            }
        }
        prefix
    }
}

impl fmt::Display for InteractionTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for line in self.compact() {
            writeln!(f, "{line}")?;
        }
        Ok(())
    }
}

/// A streaming consumer of crossings, attached beside the append-only
/// trace: the sink sees every crossing *as it happens*, even on a
/// trace-disabled context. This is the hook the online detector
/// ([`crate::detect`]) rides on — the boundary stays the single choke
/// point, and run-time analysis never has to wait for a campaign to end.
///
/// Sinks must never call back into the [`CrossingContext`] that notifies
/// them: notification happens under the context's own lock, so a
/// re-entrant crossing from inside a sink would deadlock.
pub trait CrossingSink: Send {
    /// Called once per crossing, in causal order, before the crossing is
    /// appended to the trace.
    fn on_crossing(&mut self, crossing: &Crossing);
}

struct ContextState {
    enabled: bool,
    clock_ms: u64,
    next_seq: u64,
    trace: InteractionTrace,
    sink: Option<Box<dyn CrossingSink>>,
}

impl fmt::Debug for ContextState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("ContextState")
            .field("enabled", &self.enabled)
            .field("clock_ms", &self.clock_ms)
            .field("next_seq", &self.next_seq)
            .field("trace", &self.trace)
            .field("sink", &self.sink.as_ref().map(|_| "<attached>"))
            .finish()
    }
}

/// The per-deployment crossing context: the single choke point every
/// connector-layer operation routes through.
///
/// Owns the [`InjectionRegistry`] (fault hook), a virtual latency clock,
/// and the [`InteractionTrace`] sink. Cloned into every mini-system a
/// deployment wires together, so all crossings of one observation land in
/// one causally ordered trace.
#[derive(Debug, Clone)]
pub struct CrossingContext {
    registry: InjectionRegistry,
    state: Arc<Mutex<ContextState>>,
}

impl Default for CrossingContext {
    fn default() -> CrossingContext {
        CrossingContext::new()
    }
}

impl CrossingContext {
    fn with_enabled(registry: InjectionRegistry, enabled: bool) -> CrossingContext {
        CrossingContext {
            registry,
            state: Arc::new(Mutex::new(ContextState {
                enabled,
                clock_ms: 0,
                next_seq: 0,
                trace: InteractionTrace::default(),
                sink: None,
            })),
        }
    }

    /// A tracing context with a fresh, empty registry.
    pub fn new() -> CrossingContext {
        CrossingContext::with_enabled(InjectionRegistry::new(), true)
    }

    /// A context that drives its registry identically but records no
    /// trace — for pinning that tracing is side-effect-free.
    pub fn disabled() -> CrossingContext {
        CrossingContext::with_enabled(InjectionRegistry::new(), false)
    }

    /// A tracing context around an existing registry (the bridge the
    /// `set_injection` compatibility shims use).
    pub fn with_registry(registry: InjectionRegistry) -> CrossingContext {
        CrossingContext::with_enabled(registry, true)
    }

    /// Whether this context records crossings.
    pub fn is_enabled(&self) -> bool {
        self.state.lock().enabled
    }

    /// Arms one fault in the underlying registry.
    pub fn arm(&self, spec: FaultSpec) {
        self.registry.arm(spec);
    }

    /// Arms every fault of a plan.
    pub fn arm_plan(&self, plan: &FaultPlan) {
        self.registry.arm_plan(plan);
    }

    /// Arms every member of a k-fault combination.
    pub fn arm_set(&self, set: &crate::fault::FaultSet) {
        self.registry.arm_set(set);
    }

    /// Removes every armed fault from the underlying registry (counters
    /// and the fired log are cleared separately by
    /// [`reset`](CrossingContext::reset)). Deployment pools call this
    /// when a deployment is returned, so a recycled stack can never
    /// replay the previous campaign's fault plan.
    pub fn disarm_all(&self) {
        self.registry.disarm_all();
    }

    /// The faults that fired since the last [`reset`](CrossingContext::reset).
    pub fn fired(&self) -> Vec<InjectedFault> {
        self.registry.fired()
    }

    /// The current injected service latency, in virtual milliseconds.
    pub fn virtual_delay_ms(&self) -> u64 {
        self.registry.virtual_delay_ms()
    }

    /// Resets per-observation state: registry call counters and fired log,
    /// the virtual clock, and the trace sink. The campaign executor calls
    /// this at the start of every observation.
    pub fn reset(&self) {
        self.registry.reset_counters();
        let mut state = self.state.lock();
        state.clock_ms = 0;
        state.next_seq = 0;
        state.trace.crossings.clear();
    }

    /// A snapshot of the trace recorded since the last reset.
    pub fn trace(&self) -> InteractionTrace {
        self.state.lock().trace.clone()
    }

    /// Attaches a streaming sink: from now on every crossing is handed to
    /// `sink` as it happens, in causal order, whether or not the trace is
    /// enabled. Replaces any previously attached sink. Sinks survive
    /// [`reset`](CrossingContext::reset) — per-observation state belongs
    /// to the sink, not the context.
    pub fn set_sink(&self, sink: Box<dyn CrossingSink>) {
        self.state.lock().sink = Some(sink);
    }

    /// Detaches the streaming sink, if any.
    pub fn clear_sink(&self) {
        self.state.lock().sink = None;
    }

    fn push(&self, call: BoundaryCall, outcome: CrossingOutcome, cost_ms: u64) {
        let mut state = self.state.lock();
        let at_ms = state.clock_ms;
        state.clock_ms += 1 + cost_ms;
        let seq = state.next_seq;
        state.next_seq += 1;
        let crossing = Crossing {
            seq,
            at_ms,
            call,
            outcome,
        };
        if let Some(sink) = state.sink.as_mut() {
            sink.on_crossing(&crossing);
        }
        if state.enabled {
            state.trace.crossings.push(crossing);
        }
    }

    /// Routes one crossing: counts the call against armed faults, records
    /// it in the trace, advances the virtual clock, and materializes any
    /// non-latency fault into the downstream system's native error.
    ///
    /// This is the one-liner every connector layer calls at the entry of
    /// an interaction-facing operation.
    pub fn cross<E: FaultPoint>(&self, call: BoundaryCall) -> Result<(), E> {
        match self.registry.intercept_full(call.channel, &call.op) {
            Interception::Clean => {
                self.push(call, CrossingOutcome::Clean, 0);
                Ok(())
            }
            Interception::Latency(fault) => {
                let cost = fault_cost_ms(&fault);
                self.push(call, CrossingOutcome::Faulted { fault }, cost);
                Ok(())
            }
            Interception::Fault(fault) => {
                let error = E::materialize(&fault);
                let cost = fault_cost_ms(&fault);
                self.push(call, CrossingOutcome::Faulted { fault }, cost);
                Err(error)
            }
        }
    }

    /// Like [`cross`](CrossingContext::cross), but hands the fired fault
    /// back to the caller instead of materializing it — for crossings
    /// whose fault response is not an error (deterministically garbled
    /// bytes, a poisoned location) rather than a native error.
    pub fn intercept(&self, call: BoundaryCall) -> Option<InjectedFault> {
        match self.registry.intercept_full(call.channel, &call.op) {
            Interception::Clean => {
                self.push(call, CrossingOutcome::Clean, 0);
                None
            }
            Interception::Latency(fault) => {
                let cost = fault_cost_ms(&fault);
                self.push(call, CrossingOutcome::Faulted { fault }, cost);
                None
            }
            Interception::Fault(fault) => {
                let cost = fault_cost_ms(&fault);
                self.push(
                    call,
                    CrossingOutcome::Faulted {
                        fault: fault.clone(),
                    },
                    cost,
                );
                Some(fault)
            }
        }
    }

    /// Records a crossing that has no fault point (pure connector logic,
    /// e.g. Spark-side configuration forwarding): trace only, the
    /// registry is not consulted.
    pub fn record(&self, call: BoundaryCall) {
        self.push(call, CrossingOutcome::Clean, 0);
    }

    /// Records an annotated decision at a crossing (e.g. which replica a
    /// redundant read was actually served by).
    pub fn note(&self, call: BoundaryCall, info: &str) {
        self.push(
            call,
            CrossingOutcome::Noted {
                info: info.to_string(),
            },
            0,
        );
    }
}

fn fault_cost_ms(fault: &InjectedFault) -> u64 {
    match fault.kind {
        FaultKind::Timeout { ms } | FaultKind::Latency { ms } => ms,
        FaultKind::Unavailable | FaultKind::CorruptPayload => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::{ErrorKind, InteractionError};
    use crate::fault::Trigger;

    impl FaultPoint for InteractionError {
        const CHANNEL: Channel = Channel::Metastore;
        fn materialize(fault: &InjectedFault) -> Self {
            InteractionError::new(
                "test",
                ErrorKind::Unavailable,
                "TEST_FAULT",
                fault.spec_id.clone(),
            )
        }
    }

    fn call(op: &str) -> BoundaryCall {
        BoundaryCall::new(Channel::Metastore, op)
    }

    #[test]
    fn canonical_endpoints_follow_the_channel() {
        let c = BoundaryCall::new(Channel::Yarn, "allocate");
        assert_eq!(c.upstream, SystemId::Flink);
        assert_eq!(c.downstream, SystemId::Yarn);
        assert_eq!(c.plane, Plane::Control);
        let c = BoundaryCall::new(Channel::HBase, "route");
        assert_eq!(c.kind, InteractionKind::DataKeyValue);
        assert_eq!(c.plane, Plane::Data);
    }

    #[test]
    fn payload_digest_masks_digit_runs() {
        let a = call("create").with_payload("/wh/t/part-00017.csv");
        let b = call("create").with_payload("/wh/t/part-31337.csv");
        let c = call("create").with_payload("/wh/t/part-x.csv");
        assert_eq!(a.payload_digest, b.payload_digest);
        assert_ne!(a.payload_digest, c.payload_digest);
    }

    #[test]
    fn clean_crossings_are_traced_with_advancing_clock() {
        let ctx = CrossingContext::new();
        let r: Result<(), InteractionError> = ctx.cross(call("get_table"));
        assert!(r.is_ok());
        let r: Result<(), InteractionError> = ctx.cross(call("create_table"));
        assert!(r.is_ok());
        let trace = ctx.trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.crossings[0].seq, 0);
        assert_eq!(trace.crossings[0].at_ms, 0);
        assert_eq!(trace.crossings[1].at_ms, 1);
        assert_eq!(trace.channel_counts()["metastore"], 2);
    }

    #[test]
    fn faulted_crossings_materialize_and_charge_the_clock() {
        let ctx = CrossingContext::new();
        ctx.arm(FaultSpec {
            id: "ms-timeout".into(),
            channel: Channel::Metastore,
            op: "get_table".into(),
            kind: FaultKind::Timeout { ms: 500 },
            trigger: Trigger::Always,
        });
        let err: Result<(), InteractionError> = ctx.cross(call("get_table"));
        assert_eq!(err.unwrap_err().message, "ms-timeout");
        let ok: Result<(), InteractionError> = ctx.cross(call("create_table"));
        assert!(ok.is_ok());
        let trace = ctx.trace();
        assert!(matches!(
            trace.crossings[0].outcome,
            CrossingOutcome::Faulted { .. }
        ));
        // The second crossing starts after the timeout's 500 virtual ms.
        assert_eq!(trace.crossings[1].at_ms, 501);
        assert_eq!(ctx.fired().len(), 1);
    }

    #[test]
    fn latency_faults_trace_but_do_not_error() {
        let ctx = CrossingContext::new();
        ctx.arm(FaultSpec {
            id: "slow".into(),
            channel: Channel::Metastore,
            op: "get_table".into(),
            kind: FaultKind::Latency { ms: 300 },
            trigger: Trigger::Always,
        });
        let r: Result<(), InteractionError> = ctx.cross(call("get_table"));
        assert!(r.is_ok());
        assert_eq!(ctx.virtual_delay_ms(), 300);
        assert!(matches!(
            ctx.trace().crossings[0].outcome,
            CrossingOutcome::Faulted { .. }
        ));
    }

    #[test]
    fn disabled_context_drives_the_registry_identically() {
        let traced = CrossingContext::new();
        let silent = CrossingContext::disabled();
        for ctx in [&traced, &silent] {
            ctx.arm(FaultSpec {
                id: "u".into(),
                channel: Channel::Metastore,
                op: "get_table".into(),
                kind: FaultKind::Unavailable,
                trigger: Trigger::OnCall(1),
            });
            let _: Result<(), InteractionError> = ctx.cross(call("get_table"));
            let _: Result<(), InteractionError> = ctx.cross(call("get_table"));
        }
        assert_eq!(traced.fired(), silent.fired());
        assert_eq!(traced.trace().len(), 2);
        assert!(silent.trace().is_empty());
    }

    #[test]
    fn reset_clears_trace_clock_and_counters() {
        let ctx = CrossingContext::new();
        ctx.arm(FaultSpec {
            id: "u".into(),
            channel: Channel::Metastore,
            op: "get_table".into(),
            kind: FaultKind::Unavailable,
            trigger: Trigger::OnCall(0),
        });
        let first: Result<(), InteractionError> = ctx.cross(call("get_table"));
        assert!(first.is_err());
        ctx.reset();
        assert!(ctx.trace().is_empty());
        assert!(ctx.fired().is_empty());
        // OnCall(0) is scoped per reset: it fires again.
        let again: Result<(), InteractionError> = ctx.cross(call("get_table"));
        assert!(again.is_err());
        assert_eq!(ctx.trace().crossings[0].at_ms, 0);
    }

    #[test]
    fn notes_and_records_land_in_the_trace() {
        let ctx = CrossingContext::new();
        ctx.record(call("forward_config").with_plane(Plane::Management));
        ctx.note(call("read"), "served-by=primary");
        let lines = ctx.trace().compact();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("[Management]"), "{}", lines[0]);
        assert!(lines[1].ends_with("note:served-by=primary"), "{}", lines[1]);
    }

    #[test]
    fn sinks_stream_every_crossing_even_when_tracing_is_disabled() {
        #[derive(Default)]
        struct Tape(Arc<Mutex<Vec<String>>>);
        impl CrossingSink for Tape {
            fn on_crossing(&mut self, crossing: &Crossing) {
                self.0.lock().push(crossing.compact());
            }
        }
        let tape = Arc::new(Mutex::new(Vec::new()));
        for ctx in [CrossingContext::new(), CrossingContext::disabled()] {
            tape.lock().clear();
            ctx.set_sink(Box::new(Tape(tape.clone())));
            let _: Result<(), InteractionError> = ctx.cross(call("get_table"));
            ctx.note(call("read"), "served-by=primary");
            let seen = tape.lock().clone();
            assert_eq!(seen.len(), 2, "sink missed a crossing: {seen:?}");
            assert!(seen[0].starts_with("#0 "), "{}", seen[0]);
            assert!(seen[1].starts_with("#1 "), "{}", seen[1]);
            // Reset keeps the sink attached and restarts seq/clock.
            ctx.reset();
            let _: Result<(), InteractionError> = ctx.cross(call("get_table"));
            assert!(tape.lock()[2].starts_with("#0 "), "{}", tape.lock()[2]);
            ctx.clear_sink();
            let _: Result<(), InteractionError> = ctx.cross(call("get_table"));
            assert_eq!(tape.lock().len(), 3);
        }
    }

    #[test]
    fn traces_round_trip_through_serde() {
        let ctx = CrossingContext::new();
        ctx.arm(FaultSpec {
            id: "u".into(),
            channel: Channel::Metastore,
            op: "get_table".into(),
            kind: FaultKind::Unavailable,
            trigger: Trigger::Always,
        });
        let _: Result<(), InteractionError> = ctx.cross(call("get_table").with_payload("t"));
        let trace = ctx.trace();
        let json = serde_json::to_string(&trace).unwrap();
        let back: InteractionTrace = serde_json::from_str(&json).unwrap();
        assert_eq!(back, trace);
    }
}
