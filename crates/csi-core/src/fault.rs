//! Deterministic fault injection at cross-system interaction boundaries.
//!
//! The paper's central claim is that failures fall *between* systems — at
//! metastore RPCs, HDFS file operations, Kafka broker fetches, and YARN
//! allocations. This module makes those boundaries injectable: a seeded,
//! serializable [`FaultPlan`] is armed into a shared [`InjectionRegistry`],
//! and each mini-system's connector layer calls
//! [`CrossingContext::cross`](crate::boundary::CrossingContext::cross) at
//! the entry of its interaction-facing operations — the boundary layer is
//! the only caller of the registry's interpose machinery. A fired fault is
//! *materialized* into the system's native
//! error type through the [`FaultPoint`] trait, so the fault then travels
//! exactly the error-translation path a real boundary failure would take —
//! which is what the [`FaultOutcome`] taxonomy classifies.
//!
//! Everything is deterministic: triggers count calls per `(channel, op)`
//! pair, counters are reset per observation by the executor, and no wall
//! clock or OS randomness is involved, so fault campaigns replay
//! byte-identically across runs and worker counts.

use crate::error::{ErrorKind, InteractionError};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// An interaction channel of the paper's Table 1 that faults can be
/// injected on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Channel {
    /// Hive metastore RPCs (get/create/alter/drop table).
    Metastore,
    /// HDFS namenode/datanode file operations.
    Hdfs,
    /// Kafka broker requests (produce, fetch, offset lookup).
    Kafka,
    /// YARN ResourceManager requests (allocate, cluster metrics).
    Yarn,
    /// HBase key-value requests (region location lookup, routed gets).
    HBase,
}

impl Channel {
    /// All channels, in canonical order.
    pub const ALL: [Channel; 5] = [
        Channel::Metastore,
        Channel::Hdfs,
        Channel::Kafka,
        Channel::Yarn,
        Channel::HBase,
    ];
}

impl fmt::Display for Channel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Channel::Metastore => "metastore",
            Channel::Hdfs => "hdfs",
            Channel::Kafka => "kafka",
            Channel::Yarn => "yarn",
            Channel::HBase => "hbase",
        };
        f.write_str(s)
    }
}

/// What kind of fault to inject.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultKind {
    /// The serving side is unavailable (safe mode, broker down, RM down).
    Unavailable,
    /// The call times out after `ms` of (virtual) time.
    Timeout {
        /// Simulated elapsed time before the timeout fires.
        ms: u64,
    },
    /// The response payload is corrupted in flight. On read-like ops the
    /// connector may deliver deterministically garbled bytes instead of an
    /// error, exercising the caller's deserialization path.
    CorruptPayload,
    /// The call succeeds but takes `ms` longer than usual — the timing-race
    /// fault behind FLINK-12342. Latency faults never produce an error;
    /// they are recorded as fired and surfaced via
    /// [`InjectionRegistry::virtual_delay_ms`].
    Latency {
        /// Added service latency in virtual milliseconds.
        ms: u64,
    },
}

impl fmt::Display for FaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultKind::Unavailable => write!(f, "unavailable"),
            FaultKind::Timeout { ms } => write!(f, "timeout({ms}ms)"),
            FaultKind::CorruptPayload => write!(f, "corrupt-payload"),
            FaultKind::Latency { ms } => write!(f, "latency(+{ms}ms)"),
        }
    }
}

/// When a fault fires, relative to the per-observation call counter of its
/// `(channel, op)` pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Trigger {
    /// Fire on every matching call.
    Always,
    /// Fire only on the `n`-th matching call (0-based) of the observation.
    OnCall(u64),
}

/// One enumerable fault: where, what, and when.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Stable identifier, unique within a plan (e.g. `"ms-unavail-get"`).
    pub id: String,
    /// The interaction channel to interpose on.
    pub channel: Channel,
    /// The operation name at that channel (e.g. `"get_table"`).
    pub op: String,
    /// The fault to inject.
    pub kind: FaultKind,
    /// When to fire.
    pub trigger: Trigger,
}

/// A seeded, enumerable, serializable set of faults.
///
/// The seed is carried so a plan derived from it (offsets, latency
/// magnitudes) can be reproduced and so campaign reports can name the run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// The seed the plan was derived from.
    pub seed: u64,
    /// The faults, in injection-catalogue order.
    pub faults: Vec<FaultSpec>,
}

impl FaultPlan {
    /// A plan with no faults. Arming it must be behaviorally identical to
    /// arming nothing — the fault-free-replay property test pins this.
    pub fn empty(seed: u64) -> FaultPlan {
        FaultPlan {
            seed,
            faults: Vec::new(),
        }
    }
}

/// A combination of faults armed *simultaneously* for one trial — the
/// paper's cascading incidents (8/11 studied CSI failures) co-occur rather
/// than arrive one at a time, so compound campaigns inject sets, not
/// singletons.
///
/// The id is the member spec ids joined with `+` (or `"none"` when empty),
/// which keeps reports and cluster reproducers human-readable and makes
/// set identity purely structural.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultSet {
    /// Stable identifier: member ids joined with `+`, `"none"` when empty.
    pub id: String,
    /// The member faults, in combination order.
    pub faults: Vec<FaultSpec>,
}

impl FaultSet {
    /// Builds a set from member specs, deriving the id.
    pub fn new(faults: Vec<FaultSpec>) -> FaultSet {
        let id = if faults.is_empty() {
            "none".to_string()
        } else {
            faults
                .iter()
                .map(|f| f.id.as_str())
                .collect::<Vec<_>>()
                .join("+")
        };
        FaultSet { id, faults }
    }

    /// The empty set. Arming it is behaviorally identical to arming
    /// nothing, exactly like [`FaultPlan::empty`].
    pub fn empty() -> FaultSet {
        FaultSet::new(Vec::new())
    }

    /// Number of member faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }
}

/// Splitmix-style step used to derive combination choices from a seed.
fn mix(x: &mut u64) -> u64 {
    *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deterministic, seeded enumeration of k-fault combinations (k ≤ 3).
///
/// Every singleton is always present (the k=1 slice — the existing fault
/// matrix), in catalogue order. For `k ≥ 2` the pair (and for `k = 3` the
/// triple) space is sampled without replacement: up to `per_k` seeded
/// draws per arity, each a strictly increasing index tuple so no
/// combination appears twice and member order matches catalogue order.
/// The result is a pure function of `(specs, k, seed, per_k)`, so compound
/// campaigns replay byte-identically.
pub fn fault_combinations(specs: &[FaultSpec], k: usize, seed: u64, per_k: usize) -> Vec<FaultSet> {
    let k = k.min(3);
    let mut out: Vec<FaultSet> = specs
        .iter()
        .map(|s| FaultSet::new(vec![s.clone()]))
        .collect();
    if specs.len() < 2 {
        return out;
    }
    let mut state = seed ^ 0xC0FF_EE00_D15E_A5E5;
    let mut seen: std::collections::BTreeSet<Vec<usize>> = std::collections::BTreeSet::new();
    for arity in 2..=k {
        if specs.len() < arity {
            break;
        }
        let mut drawn = 0;
        // Bounded attempts so a tiny catalogue cannot loop forever once the
        // distinct-combination space is exhausted.
        for _ in 0..per_k * 8 {
            if drawn >= per_k {
                break;
            }
            let mut idx: Vec<usize> = Vec::with_capacity(arity);
            while idx.len() < arity {
                let i = (mix(&mut state) % specs.len() as u64) as usize;
                if !idx.contains(&i) {
                    idx.push(i);
                }
            }
            idx.sort_unstable();
            if seen.insert(idx.clone()) {
                out.push(FaultSet::new(
                    idx.iter().map(|&i| specs[i].clone()).collect(),
                ));
                drawn += 1;
            }
        }
    }
    out
}

/// Record of a fault that actually fired.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedFault {
    /// The [`FaultSpec::id`] that fired.
    pub spec_id: String,
    /// Channel it fired on.
    pub channel: Channel,
    /// Operation it fired on.
    pub op: String,
    /// The injected fault kind.
    pub kind: FaultKind,
    /// 0-based call index (within the observation) at which it fired.
    pub call: u64,
}

#[derive(Debug, Default)]
struct RegistryState {
    armed: Vec<FaultSpec>,
    calls: BTreeMap<(Channel, String), u64>,
    fired: Vec<InjectedFault>,
    delay_ms: u64,
}

/// The shared injection registry: one per deployment, cloned into every
/// mini-system the deployment wires together.
///
/// Interior mutability (the mini-systems intercept from `&self` methods)
/// behind an `Arc` so all connector layers of one deployment observe the
/// same call counters and fired-fault log.
#[derive(Debug, Clone, Default)]
pub struct InjectionRegistry {
    inner: Arc<Mutex<RegistryState>>,
}

impl InjectionRegistry {
    /// Creates an empty registry (no faults armed).
    pub fn new() -> InjectionRegistry {
        InjectionRegistry::default()
    }

    /// Arms one fault.
    pub fn arm(&self, spec: FaultSpec) {
        self.inner.lock().armed.push(spec);
    }

    /// Arms every fault of a plan.
    pub fn arm_plan(&self, plan: &FaultPlan) {
        let mut state = self.inner.lock();
        state.armed.extend(plan.faults.iter().cloned());
    }

    /// Arms every fault of a combination set simultaneously. Members on
    /// distinct `(channel, op)` pairs all fire independently; on a shared
    /// pair the first armed match wins, same as [`arm_plan`].
    ///
    /// [`arm_plan`]: InjectionRegistry::arm_plan
    pub fn arm_set(&self, set: &FaultSet) {
        let mut state = self.inner.lock();
        state.armed.extend(set.faults.iter().cloned());
    }

    /// Disarms all faults (armed specs only; counters and the fired log
    /// are kept).
    pub fn disarm_all(&self) {
        self.inner.lock().armed.clear();
    }

    /// Resets per-observation state: call counters, the fired log, and the
    /// accumulated virtual delay. The campaign executor calls this at the
    /// start of every observation so `OnCall` triggers are scoped to one
    /// observation — the property that makes fault campaigns byte-identical
    /// across worker counts (workers reuse deployments differently, but
    /// every observation starts from counter zero).
    pub fn reset_counters(&self) {
        let mut state = self.inner.lock();
        state.calls.clear();
        state.fired.clear();
        state.delay_ms = 0;
    }

    /// The faults that fired since the last [`reset_counters`] call.
    ///
    /// [`reset_counters`]: InjectionRegistry::reset_counters
    pub fn fired(&self) -> Vec<InjectedFault> {
        self.inner.lock().fired.clone()
    }

    /// The current injected service latency, in virtual milliseconds — the
    /// largest [`FaultKind::Latency`] that fired since the last reset.
    pub fn virtual_delay_ms(&self) -> u64 {
        self.inner.lock().delay_ms
    }

    /// Counts the call against the armed faults and reports what fired.
    ///
    /// Latency faults are recorded (fired log + delay) and returned as
    /// [`Interception::Latency`]: the call proceeds, only slower, which is
    /// exactly how timing faults like FLINK-12342 manifest.
    ///
    /// Crate-private: the boundary layer
    /// ([`CrossingContext`](crate::boundary::CrossingContext)) is the only
    /// interpose point; connector code never touches the registry directly.
    pub(crate) fn intercept_full(&self, channel: Channel, op: &str) -> Interception {
        let mut state = self.inner.lock();
        if state.armed.is_empty() {
            return Interception::Clean;
        }
        let counter = state.calls.entry((channel, op.to_string())).or_insert(0);
        let call = *counter;
        *counter += 1;
        let Some(spec) = state.armed.iter().find(|s| {
            s.channel == channel
                && s.op == op
                && match s.trigger {
                    Trigger::Always => true,
                    Trigger::OnCall(n) => n == call,
                }
        }) else {
            return Interception::Clean;
        };
        let fault = InjectedFault {
            spec_id: spec.id.clone(),
            channel,
            op: op.to_string(),
            kind: spec.kind,
            call,
        };
        state.fired.push(fault.clone());
        if let FaultKind::Latency { ms } = fault.kind {
            state.delay_ms = state.delay_ms.max(ms);
            return Interception::Latency(fault);
        }
        Interception::Fault(fault)
    }
}

/// The boundary-layer view of one interpose: clean, fired-but-proceeding
/// (latency), or fired-and-materialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Interception {
    /// No armed fault matched.
    Clean,
    /// A latency fault fired; the call proceeds, only slower.
    Latency(InjectedFault),
    /// A fault fired and must be materialized as the native error.
    Fault(InjectedFault),
}

/// A connector-layer fault point: turns a fired fault into the system's
/// native error type, so injected faults enter the same error-translation
/// chain real boundary failures do.
pub trait FaultPoint: Sized {
    /// The interaction channel this error type's system serves.
    const CHANNEL: Channel;

    /// Materializes a fired fault as a native error.
    fn materialize(fault: &InjectedFault) -> Self;
}

/// How a system handled an injected boundary fault — the paper's
/// error-handling taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum FaultOutcome {
    /// The fault fired but no error surfaced to the caller.
    Swallowed,
    /// An error surfaced, but translated into a different kind or code
    /// than the fault's canonical signature (context lost at the boundary).
    Mistranslated,
    /// The canonical error kind and code survived to the caller.
    PropagatedWithContext,
    /// The fault escalated into a crash or assertion failure.
    Crash,
}

impl fmt::Display for FaultOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            FaultOutcome::Swallowed => "swallowed",
            FaultOutcome::Mistranslated => "mistranslated",
            FaultOutcome::PropagatedWithContext => "propagated-with-context",
            FaultOutcome::Crash => "crash",
        };
        f.write_str(s)
    }
}

/// The canonical `(kind, code)` a faithful propagation of a fault surfaces
/// with — the signature the channel's own error type carries for that
/// fault. `None` for faults with no canonical error signature (latency
/// never errors; corrupt payloads escalate via the crash rule instead).
pub fn canonical_signature(channel: Channel, kind: FaultKind) -> Option<(ErrorKind, &'static str)> {
    match (channel, kind) {
        (Channel::Metastore, FaultKind::Unavailable) => {
            Some((ErrorKind::Unavailable, "METASTORE_UNAVAILABLE"))
        }
        (Channel::Metastore, FaultKind::Timeout { .. }) => {
            Some((ErrorKind::Timeout, "METASTORE_TIMEOUT"))
        }
        (Channel::Hdfs, FaultKind::Unavailable) => Some((ErrorKind::Unavailable, "SAFE_MODE")),
        (Channel::Hdfs, FaultKind::Timeout { .. }) => Some((ErrorKind::Timeout, "RPC_TIMEOUT")),
        (Channel::Kafka, FaultKind::Unavailable) => {
            Some((ErrorKind::Unavailable, "BROKER_UNAVAILABLE"))
        }
        (Channel::Kafka, FaultKind::Timeout { .. }) => {
            Some((ErrorKind::Timeout, "REQUEST_TIMED_OUT"))
        }
        (Channel::Kafka, FaultKind::CorruptPayload) => {
            // The broker CRC-checks records and rejects corruption cleanly.
            Some((ErrorKind::Rejected, "CORRUPT_RECORD"))
        }
        (Channel::Yarn, FaultKind::Unavailable) => Some((ErrorKind::Unavailable, "RM_UNAVAILABLE")),
        (Channel::Yarn, FaultKind::Timeout { .. }) => Some((ErrorKind::Timeout, "RM_TIMEOUT")),
        (Channel::HBase, FaultKind::Unavailable) => {
            Some((ErrorKind::Unavailable, "REGION_SERVER_DOWN"))
        }
        (Channel::HBase, FaultKind::Timeout { .. }) => {
            Some((ErrorKind::Timeout, "HBASE_RPC_TIMEOUT"))
        }
        _ => None,
    }
}

/// Classifies what a caller-visible error (or its absence) says about how
/// the stack handled the fired faults.
///
/// Rule order matters: a crash is checked before faithful propagation so a
/// corrupt payload that detonates in a downstream deserializer lands in
/// [`FaultOutcome::Crash`] even when some signature accidentally matches.
pub fn classify_fault_outcome(
    fired: &[InjectedFault],
    surfaced: Option<&InteractionError>,
) -> FaultOutcome {
    match surfaced {
        None => FaultOutcome::Swallowed,
        Some(e) if matches!(e.kind, ErrorKind::Crash | ErrorKind::AssertionFailure) => {
            FaultOutcome::Crash
        }
        Some(e)
            if fired.iter().any(|f| {
                canonical_signature(f.channel, f.kind)
                    .is_some_and(|(kind, code)| e.kind == kind && e.code == code)
            }) =>
        {
            FaultOutcome::PropagatedWithContext
        }
        Some(_) => FaultOutcome::Mistranslated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hit(reg: &InjectionRegistry, channel: Channel, op: &str) -> Option<InjectedFault> {
        match reg.intercept_full(channel, op) {
            Interception::Fault(f) => Some(f),
            Interception::Latency(_) | Interception::Clean => None,
        }
    }

    fn spec(id: &str, op: &str, kind: FaultKind, trigger: Trigger) -> FaultSpec {
        FaultSpec {
            id: id.into(),
            channel: Channel::Metastore,
            op: op.into(),
            kind,
            trigger,
        }
    }

    #[test]
    fn always_trigger_fires_on_every_matching_call() {
        let reg = InjectionRegistry::new();
        reg.arm(spec(
            "a",
            "get_table",
            FaultKind::Unavailable,
            Trigger::Always,
        ));
        assert!(hit(&reg, Channel::Metastore, "get_table").is_some());
        assert!(hit(&reg, Channel::Metastore, "get_table").is_some());
        // Other ops and channels are untouched.
        assert!(hit(&reg, Channel::Metastore, "create_table").is_none());
        assert!(hit(&reg, Channel::Hdfs, "get_table").is_none());
        assert_eq!(reg.fired().len(), 2);
    }

    #[test]
    fn on_call_trigger_fires_exactly_once_per_reset() {
        let reg = InjectionRegistry::new();
        reg.arm(spec(
            "a",
            "read",
            FaultKind::Unavailable,
            Trigger::OnCall(1),
        ));
        assert!(hit(&reg, Channel::Metastore, "read").is_none()); // call 0
        let f = hit(&reg, Channel::Metastore, "read").unwrap(); // call 1
        assert_eq!(f.call, 1);
        assert!(hit(&reg, Channel::Metastore, "read").is_none()); // call 2
        reg.reset_counters();
        assert!(reg.fired().is_empty());
        assert!(hit(&reg, Channel::Metastore, "read").is_none()); // call 0 again
        assert!(hit(&reg, Channel::Metastore, "read").is_some()); // call 1 again
    }

    #[test]
    fn latency_faults_record_delay_but_do_not_error() {
        let reg = InjectionRegistry::new();
        reg.arm(FaultSpec {
            id: "slow".into(),
            channel: Channel::Yarn,
            op: "allocate".into(),
            kind: FaultKind::Latency { ms: 700 },
            trigger: Trigger::Always,
        });
        assert!(hit(&reg, Channel::Yarn, "allocate").is_none());
        assert_eq!(reg.virtual_delay_ms(), 700);
        assert_eq!(reg.fired().len(), 1);
        reg.reset_counters();
        assert_eq!(reg.virtual_delay_ms(), 0);
    }

    #[test]
    fn empty_plan_is_inert() {
        let reg = InjectionRegistry::new();
        reg.arm_plan(&FaultPlan::empty(42));
        assert!(hit(&reg, Channel::Metastore, "get_table").is_none());
        // With nothing armed, intercept does not even count calls.
        assert!(reg.fired().is_empty());
    }

    #[test]
    fn plans_round_trip_through_serde() {
        let plan = FaultPlan {
            seed: 7,
            faults: vec![FaultSpec {
                id: "k".into(),
                channel: Channel::Kafka,
                op: "fetch".into(),
                kind: FaultKind::Timeout { ms: 30_000 },
                trigger: Trigger::OnCall(2),
            }],
        };
        let json = serde_json::to_string(&plan).unwrap();
        let back: FaultPlan = serde_json::from_str(&json).unwrap();
        assert_eq!(back, plan);
    }

    #[test]
    fn fault_sets_are_deterministic_and_round_trip() {
        let specs: Vec<FaultSpec> = (0..6)
            .map(|i| {
                spec(
                    &format!("f{i}"),
                    "get_table",
                    FaultKind::Unavailable,
                    Trigger::Always,
                )
            })
            .collect();
        let a = fault_combinations(&specs, 3, 42, 4);
        let b = fault_combinations(&specs, 3, 42, 4);
        assert_eq!(a, b, "same seed must enumerate identical combinations");
        // All six singletons lead, in catalogue order.
        assert_eq!(a[..6].iter().map(|s| s.len()).max(), Some(1));
        assert!(a.iter().any(|s| s.len() == 2));
        assert!(a.iter().any(|s| s.len() == 3));
        // No duplicate combinations.
        let ids: std::collections::BTreeSet<&str> = a.iter().map(|s| s.id.as_str()).collect();
        assert_eq!(ids.len(), a.len());
        let json = serde_json::to_string(&a[6]).unwrap();
        let back: FaultSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, a[6]);
        assert_eq!(FaultSet::empty().id, "none");
    }

    #[test]
    fn arming_a_set_fires_each_member_independently() {
        let reg = InjectionRegistry::new();
        let set = FaultSet::new(vec![
            spec("a", "get_table", FaultKind::Unavailable, Trigger::Always),
            spec("b", "create_table", FaultKind::Unavailable, Trigger::Always),
        ]);
        assert_eq!(set.id, "a+b");
        reg.arm_set(&set);
        assert!(hit(&reg, Channel::Metastore, "get_table").is_some());
        assert!(hit(&reg, Channel::Metastore, "create_table").is_some());
        assert_eq!(reg.fired().len(), 2);
    }

    #[test]
    fn classification_covers_all_four_buckets() {
        let fired = vec![InjectedFault {
            spec_id: "a".into(),
            channel: Channel::Metastore,
            op: "get_table".into(),
            kind: FaultKind::Unavailable,
            call: 0,
        }];
        assert_eq!(
            classify_fault_outcome(&fired, None),
            FaultOutcome::Swallowed
        );
        let faithful = InteractionError::new(
            "minihive",
            ErrorKind::Unavailable,
            "METASTORE_UNAVAILABLE",
            "injected",
        );
        assert_eq!(
            classify_fault_outcome(&fired, Some(&faithful)),
            FaultOutcome::PropagatedWithContext
        );
        let collapsed = InteractionError::rejected("minispark", "HIVE_METASTORE", "wrapped");
        assert_eq!(
            classify_fault_outcome(&fired, Some(&collapsed)),
            FaultOutcome::Mistranslated
        );
        let crash = InteractionError::crash("minispark", "FORMAT_ERROR", "boom");
        assert_eq!(
            classify_fault_outcome(&fired, Some(&crash)),
            FaultOutcome::Crash
        );
    }

    #[test]
    fn crash_rule_wins_over_propagation() {
        // A corrupt payload whose canonical signature is a clean rejection
        // still classifies as a crash when the surfaced error is a crash.
        let fired = vec![InjectedFault {
            spec_id: "c".into(),
            channel: Channel::Kafka,
            op: "fetch".into(),
            kind: FaultKind::CorruptPayload,
            call: 0,
        }];
        let crash = InteractionError::crash("minikafka", "CORRUPT_RECORD", "crc");
        assert_eq!(
            classify_fault_outcome(&fired, Some(&crash)),
            FaultOutcome::Crash
        );
    }
}
